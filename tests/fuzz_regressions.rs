//! Replay of the minimised fuzzing counterexamples checked in under
//! `tests/regressions/`: every `.tsl` + `.pipeline` pair must still
//! load, still apply its recorded rules, still diverge under its
//! recorded model, and still sit within the acceptance bound (≤ 6
//! action statements, ≤ 2 passes). A witness that stops replaying means
//! an engine change silently lost a known divergence — exactly the
//! regression this corpus exists to catch.

use std::path::PathBuf;

use transafety::fuzz::{check_pair, load_witness, statement_count, OracleConfig, Witness};
use transafety::Budget;

fn regressions_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/regressions")
}

/// Load every checked-in witness pair, sorted by name for stable
/// failure messages.
fn corpus() -> Vec<(String, Witness)> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(regressions_dir()).expect("tests/regressions exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_some_and(|e| e == "tsl") {
            let name = path
                .file_stem()
                .expect("named file")
                .to_string_lossy()
                .into_owned();
            let witness = load_witness(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            out.push((name, witness));
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Deterministic per-witness oracle: a pure state cap, no wall clock,
/// so the replay verdicts cannot flake under CI load.
fn oracle(witness: &Witness) -> OracleConfig {
    OracleConfig {
        model: witness.model,
        budget: Budget::unlimited().max_states(50_000),
        jobs: 1,
        por: true,
    }
}

#[test]
fn the_corpus_contains_the_seeded_known_unsafe_cases() {
    let names: Vec<String> = corpus().into_iter().map(|(n, _)| n).collect();
    assert!(names.len() >= 2, "regression corpus shrank: {names:?}");
    for expected in ["ewbw_tso", "rrw_tso"] {
        assert!(
            names.iter().any(|n| n == expected),
            "seeded regression {expected} missing from {names:?}"
        );
    }
}

#[test]
fn every_regression_replays_as_the_recorded_divergence() {
    for (name, witness) in corpus() {
        assert!(
            !witness.violation,
            "{name}: a refinement violation may never be checked in as a regression \
             without first being fixed"
        );
        // The recorded pipeline (pick re-resolved from the rules line if
        // the engine's rewrite enumeration drifted) must apply exactly
        // the recorded rules.
        let pipeline = witness.effective_pipeline();
        let applied = pipeline.apply(&witness.program);
        assert_eq!(
            applied.applied.iter().map(|p| p.rule).collect::<Vec<_>>(),
            witness.rules,
            "{name}: pipeline no longer applies the recorded rules"
        );
        // The divergence itself must still be there.
        let report = check_pair(&witness.program, &pipeline, &oracle(&witness));
        assert!(
            report.outcome.is_divergence(),
            "{name}: known divergence lost under {} — oracle said {:?}",
            witness.model,
            report.outcome
        );
        assert!(
            !report.outcome.is_violation(),
            "{name}: expected divergence replayed as a refinement violation: {:?}",
            report.outcome
        );
    }
}

#[test]
fn every_regression_is_within_the_acceptance_bound() {
    for (name, witness) in corpus() {
        let count = statement_count(&witness.program);
        assert!(
            count <= 6,
            "{name}: witness has {count} action statements (> 6):\n{}",
            witness.program
        );
        assert!(
            witness.effective_pipeline().len() <= 2,
            "{name}: pipeline has more than 2 passes"
        );
    }
}
