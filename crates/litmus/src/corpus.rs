//! The litmus corpus: every program from the paper plus the classic
//! shared-memory litmus tests.

use transafety_lang::{parse_program, parse_program_with_symbols, SourceProgram};

/// A named litmus program with its provenance.
///
/// # Example
///
/// ```
/// use transafety_litmus::{by_name, corpus};
/// assert!(corpus().len() >= 20);
/// let fig2 = by_name("fig2-original").unwrap();
/// assert_eq!(fig2.paper_ref, Some("Fig. 2"));
/// assert_eq!(fig2.parse().program.thread_count(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Litmus {
    /// A unique kebab-case name.
    pub name: &'static str,
    /// What the test demonstrates.
    pub description: &'static str,
    /// The paper figure/section it reproduces, if any.
    pub paper_ref: Option<&'static str>,
    /// Concrete syntax (see `transafety-lang`'s parser).
    pub source: &'static str,
}

impl Litmus {
    /// Parses the program.
    ///
    /// # Panics
    ///
    /// Panics if the source does not parse — corpus sources are
    /// validated by the test suite, so this only happens on a corrupted
    /// build.
    #[must_use]
    pub fn parse(&self) -> SourceProgram {
        parse_program(self.source)
            .unwrap_or_else(|e| panic!("corpus program {} failed to parse: {e}", self.name))
    }
}

/// The full corpus.
#[must_use]
pub fn corpus() -> Vec<Litmus> {
    vec![
        // ---- programs from the paper --------------------------------
        Litmus {
            name: "intro-original",
            description: "the §1 request/response example; cannot print 1 under SC",
            paper_ref: Some("§1"),
            source: "data := 1;
                     if (requestReady == 1) { data := 2; responseReady := 1; }
                     ||
                     requestReady := 1;
                     if (responseReady == 1) print data;",
        },
        Litmus {
            name: "intro-constant-propagated",
            description: "the §1 example after (unsafe under SC) constant propagation of data=1",
            paper_ref: Some("§1"),
            source: "data := 1;
                     if (requestReady == 1) { data := 2; responseReady := 1; }
                     ||
                     requestReady := 1;
                     if (responseReady == 1) print 1;",
        },
        Litmus {
            name: "intro-volatile",
            description: "the §1 example with volatile flags; data race free (§3)",
            paper_ref: Some("§1, §3"),
            source: "volatile requestReady, responseReady;
                     data := 1;
                     if (requestReady == 1) { data := 2; responseReady := 1; }
                     ||
                     requestReady := 1;
                     if (responseReady == 1) print data;",
        },
        Litmus {
            name: "fig1-original",
            description: "elimination example, original: cannot print 1 then 0",
            paper_ref: Some("Fig. 1"),
            source: "x := 2; y := 1; x := 1;
                     ||
                     r1 := y; print r1; r1 := x; r2 := x; print r2;",
        },
        Litmus {
            name: "fig1-transformed",
            description: "elimination example, transformed: can print 1 then 0",
            paper_ref: Some("Fig. 1"),
            source: "y := 1; x := 1;
                     ||
                     r1 := y; print r1; r1 := x; r2 := r1; print r2;",
        },
        Litmus {
            name: "fig2-original",
            description: "reordering example, original: cannot print 1",
            paper_ref: Some("Fig. 2"),
            source: "r2 := x; y := r2; || r1 := y; x := 1; print r1;",
        },
        Litmus {
            name: "fig2-transformed",
            description: "reordering example, transformed: can print 1",
            paper_ref: Some("Fig. 2"),
            source: "r2 := x; y := r2; || x := 1; r1 := y; print r1;",
        },
        Litmus {
            name: "fig3-a",
            description: "irrelevant-read introduction, original: DRF, cannot print two zeros",
            paper_ref: Some("Fig. 3(a)"),
            source: "lock m; x := 1; print y; unlock m;
                     ||
                     lock m; y := 1; print x; unlock m;",
        },
        Litmus {
            name: "fig3-b",
            description: "irrelevant-read introduction, after inserting unused reads",
            paper_ref: Some("Fig. 3(b)"),
            source: "r1 := y; lock m; x := 1; print y; unlock m;
                     ||
                     r2 := x; lock m; y := 1; print x; unlock m;",
        },
        Litmus {
            name: "fig3-c",
            description: "irrelevant-read introduction, after reusing the reads: prints two zeros",
            paper_ref: Some("Fig. 3(c)"),
            source: "r1 := y; lock m; x := 1; print r1; unlock m;
                     ||
                     r2 := x; lock m; y := 1; print r2; unlock m;",
        },
        Litmus {
            name: "fig5-volatile",
            description: "the §5 unelimination example (v volatile)",
            paper_ref: Some("Fig. 5"),
            source: "volatile v; v := 1; y := 1; || r1 := x; r2 := v; print r2;",
        },
        Litmus {
            name: "fig5-transformed",
            description: "the §5 example after dropping the last release and the irrelevant read",
            paper_ref: Some("Fig. 5"),
            source: "volatile v; y := 1; || r2 := v; print r2;",
        },
        Litmus {
            name: "oota",
            description: "the §5 out-of-thin-air candidate: 42 must never appear",
            paper_ref: Some("§5"),
            source: "r2 := y; x := r2; print r2; || r1 := x; y := r1;",
        },
        Litmus {
            name: "section4-worked",
            description: "the §4 worked elimination example (conditional locked writes)",
            paper_ref: Some("§4"),
            source: "x := 1; r1 := y; r2 := x; print r2;
                     if (r2 != 0) { lock m; x := 2; x := r2; unlock m; }",
        },
        // ---- classic litmus tests ------------------------------------
        Litmus {
            name: "sb",
            description: "store buffering: 0,0 forbidden under SC, allowed under TSO",
            paper_ref: None,
            source: "x := 1; r1 := y; print r1; || y := 1; r2 := x; print r2;",
        },
        Litmus {
            name: "sb-volatile",
            description: "store buffering with volatile (fenced) locations",
            paper_ref: None,
            source: "volatile x, y;
                     x := 1; r1 := y; print r1; || y := 1; r2 := x; print r2;",
        },
        Litmus {
            name: "mp",
            description: "message passing via a racy flag",
            paper_ref: None,
            source: "x := 1; flag := 1; || r1 := flag; r2 := x; print r1; print r2;",
        },
        Litmus {
            name: "mp-volatile",
            description: "message passing via a volatile flag; DRF",
            paper_ref: None,
            source: "volatile flag;
                     x := 1; flag := 1;
                     ||
                     r1 := flag; if (r1 == 1) { r2 := x; print r2; }",
        },
        Litmus {
            name: "mp-spin",
            description: "message passing with a volatile spin loop; DRF",
            paper_ref: None,
            source: "volatile flag;
                     x := 1; flag := 1;
                     ||
                     while (flag != 1) skip;
                     r2 := x; print r2;",
        },
        Litmus {
            name: "lb",
            description: "load buffering: 1,1 forbidden under SC and TSO",
            paper_ref: None,
            source: "r1 := x; y := 1; print r1; || r2 := y; x := 1; print r2;",
        },
        Litmus {
            name: "iriw",
            description: "independent reads of independent writes",
            paper_ref: None,
            source: "x := 1; || y := 1;
                     || r1 := x; r2 := y; print r1; print r2;
                     || r3 := y; r4 := x; print r3; print r4;",
        },
        Litmus {
            name: "corr",
            description: "read coherence: two reads of x may not see 1 then 0 after a single write",
            paper_ref: None,
            source: "x := 1; || r1 := x; r2 := x; print r1; print r2;",
        },
        Litmus {
            name: "locked-counter",
            description: "a lock-protected read-modify-write pair; DRF",
            paper_ref: None,
            source: "lock m; r1 := c; r1 := 1; c := r1; unlock m;
                     ||
                     lock m; r2 := c; print r2; unlock m;",
        },
        Litmus {
            name: "racy-counter",
            description: "the same counter without locks; racy",
            paper_ref: None,
            source: "r1 := c; r1 := 1; c := r1; || r2 := c; print r2;",
        },
        Litmus {
            name: "dekker-core",
            description: "the core of Dekker's algorithm on volatile flags; DRF",
            paper_ref: None,
            source: "volatile a, b;
                     a := 1; r1 := b; if (r1 == 0) { r2 := z; print r2; }
                     ||
                     b := 1; r3 := a; if (r3 == 0) { z := 1; }",
        },
        Litmus {
            name: "redundant-load-pair",
            description: "a single thread with a redundant load pair (E-RAR fodder)",
            paper_ref: None,
            source: "r1 := x; r2 := x; print r2;",
        },
        Litmus {
            name: "store-forward",
            description: "store-to-load forwarding within one thread (E-RAW fodder)",
            paper_ref: None,
            source: "x := 1; r1 := x; print r1; || r9 := x;",
        },
        Litmus {
            name: "overwritten-store",
            description: "an overwritten store (E-WBW fodder)",
            paper_ref: None,
            source: "x := 2; x := 1; || r1 := x; print r1;",
        },
        Litmus {
            name: "sb-locked",
            description: "store buffering with both sides lock-protected; DRF and SC-only",
            paper_ref: None,
            source: "lock m; x := 1; r1 := y; unlock m; print r1;
                     ||
                     lock m; y := 1; r2 := x; unlock m; print r2;",
        },
        Litmus {
            name: "wrc",
            description: "write-to-read causality: y=1 implies x visible under SC and TSO",
            paper_ref: None,
            source: "x := 1;
                     || r1 := x; if (r1 == 1) y := 1;
                     || r2 := y; r3 := x; print r2; print r3;",
        },
        Litmus {
            name: "mp-two-payloads",
            description: "message passing of two payloads through one volatile flag; DRF",
            paper_ref: None,
            source: "volatile flag;
                     a := 1; b := 2; flag := 1;
                     ||
                     r0 := flag;
                     if (r0 == 1) { r1 := a; r2 := b; print r1; print r2; }",
        },
        Litmus {
            name: "roach-motel",
            description: "accesses movable into an adjacent critical section",
            paper_ref: None,
            source: "x := r0; lock m; y := 1; unlock m; r1 := z;
                     ||
                     lock m; r2 := y; print r2; unlock m;",
        },
    ]
}

/// Finds a corpus entry by name.
#[must_use]
pub fn by_name(name: &str) -> Option<Litmus> {
    corpus().into_iter().find(|l| l.name == name)
}

/// Parses an original/transformed corpus pair into a **shared**
/// namespace, so that the same source identifier denotes the same
/// location, monitor and register in both programs (required before
/// comparing tracesets or behaviours across the pair).
///
/// # Panics
///
/// Panics when either name is missing from the corpus (corpus names are
/// validated by the test suite).
///
/// # Example
///
/// ```
/// use transafety_litmus::parse_pair;
/// let (orig, tran) = parse_pair("fig2-original", "fig2-transformed");
/// assert_eq!(orig.symbols.loc("x"), tran.symbols.loc("x"));
/// ```
#[must_use]
pub fn parse_pair(original: &str, transformed: &str) -> (SourceProgram, SourceProgram) {
    let o = by_name(original)
        .unwrap_or_else(|| panic!("unknown corpus entry {original}"))
        .parse();
    let t_entry =
        by_name(transformed).unwrap_or_else(|| panic!("unknown corpus entry {transformed}"));
    let t = parse_program_with_symbols(t_entry.source, o.symbols.clone())
        .unwrap_or_else(|e| panic!("corpus program {transformed} failed to parse: {e}"));
    (o, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn every_corpus_program_parses() {
        for l in corpus() {
            let p = l.parse();
            assert!(p.program.thread_count() >= 1, "{}", l.name);
        }
    }

    #[test]
    fn names_are_unique() {
        let names: Vec<&str> = corpus().iter().map(|l| l.name).collect();
        let set: BTreeSet<&str> = names.iter().copied().collect();
        assert_eq!(set.len(), names.len());
    }

    #[test]
    fn paper_programs_are_tagged() {
        let tagged = corpus().iter().filter(|l| l.paper_ref.is_some()).count();
        assert!(tagged >= 10, "all paper figures present");
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("sb").is_some());
        assert!(by_name("nope").is_none());
    }
}
