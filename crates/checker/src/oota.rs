//! The out-of-thin-air guarantee (Theorem 5 and Lemmas 2, 3, 6), as an
//! exhaustive bounded check.

use std::fmt;

use transafety_lang::{extract_traceset, Program};
use transafety_syntactic::{transform_closure, RuleSet};
use transafety_traces::Value;

use crate::Analysis;

/// The verdict of the out-of-thin-air check over a bounded composition
/// closure of syntactic transformations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OotaVerdict {
    /// The hypothesis of Theorem 5 does not apply: the program mentions
    /// the constant.
    MentionsConstant,
    /// No program in the closure has an origin for the value — by
    /// Lemma 3, no execution of any of them can read, write or output it.
    Safe {
        /// How many transformed programs were checked.
        closure_size: usize,
    },
    /// A transformed program whose traceset has an origin for the value
    /// — this would falsify Theorem 5.
    OriginFound {
        /// The offending transformed program.
        program: Box<Program>,
    },
    /// Extraction bounds were hit; no verdict.
    Inconclusive,
}

impl fmt::Display for OotaVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OotaVerdict::MentionsConstant => f.write_str("program mentions the constant"),
            OotaVerdict::Safe { closure_size } => {
                write!(
                    f,
                    "no thin-air origin across {closure_size} transformed programs"
                )
            }
            OotaVerdict::OriginFound { .. } => f.write_str("VIOLATION: origin found"),
            OotaVerdict::Inconclusive => f.write_str("inconclusive"),
        }
    }
}

/// Lemma 6, executably: if the program contains no statement `r := c`
/// then no trace of `[P]` is an origin for `c`. Returns the origin
/// check's result on the bounded traceset.
#[must_use]
pub fn traceset_has_origin(program: &Program, c: Value, opts: &Analysis) -> Option<bool> {
    let e = extract_traceset(program, &opts.domain, &opts.extract);
    (!e.truncated).then(|| e.traceset.has_origin_for(c))
}

/// Theorem 5, executably: for every composition of up to `depth`
/// syntactic eliminations/reorderings of `program`, no trace can
/// originate the non-default constant `c`, hence (Lemma 3) no execution
/// can read, write or output it.
///
/// The value `c` should not be mentioned by the program and must not be
/// the default value `0` — otherwise the theorem's hypothesis fails and
/// [`OotaVerdict::MentionsConstant`] is returned.
#[must_use]
pub fn no_thin_air(program: &Program, c: Value, depth: usize, opts: &Analysis) -> OotaVerdict {
    if c.is_default() || program.mentions_constant(c) {
        return OotaVerdict::MentionsConstant;
    }
    let closure = transform_closure(program, RuleSet::All, depth);
    let closure_size = closure.len();
    // Each transformed program is checked independently, so the closure
    // scan fans out over the worker pool; the verdict scan below runs in
    // closure order, so the reported program matches the sequential one.
    let origins = transafety_interleaving::par::parallel_map(opts.jobs, &closure, |q| {
        traceset_has_origin(q, c, opts)
    });
    for (q, origin) in closure.into_iter().zip(origins) {
        match origin {
            None => return OotaVerdict::Inconclusive,
            Some(true) => {
                return OotaVerdict::OriginFound {
                    program: Box::new(q),
                }
            }
            Some(false) => {}
        }
    }
    OotaVerdict::Safe { closure_size }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transafety_lang::parse_program;
    use transafety_traces::Domain;

    fn p(src: &str) -> Program {
        parse_program(src).unwrap().program
    }

    fn opts_with(max: u32) -> Analysis {
        Analysis::with_domain(Domain::zero_to(max))
    }

    #[test]
    fn paper_oota_example() {
        // §5: r2:=y; x:=r2 || r1:=x; y:=r1; print r2 — wait, the paper's
        // program prints r2 in thread 0:
        //   T0: r2:=y; x:=r2; print r2   T1: r1:=x; y:=r1
        // No transformation may output 42.
        let program = p("r2 := y; x := r2; print r2; || r1 := x; y := r1;");
        // domain includes 42 so a thin-air 42 would be representable
        let opts = Analysis::with_domain(Domain::from_values([Value::new(1), Value::new(42)]));
        let verdict = no_thin_air(&program, Value::new(42), 3, &opts);
        assert!(matches!(verdict, OotaVerdict::Safe { .. }), "{verdict}");
    }

    #[test]
    fn mentioned_constants_are_excluded() {
        let program = p("r1 := 42; x := r1;");
        assert_eq!(
            no_thin_air(&program, Value::new(42), 1, &opts_with(1)),
            OotaVerdict::MentionsConstant
        );
        // zero is a default value: always excluded
        assert_eq!(
            no_thin_air(&program, Value::ZERO, 1, &opts_with(1)),
            OotaVerdict::MentionsConstant
        );
    }

    #[test]
    fn origins_are_detected_when_constant_present() {
        let program = p("r1 := 7; x := r1;");
        assert_eq!(
            traceset_has_origin(&program, Value::new(7), &opts_with(7)),
            Some(true)
        );
        assert_eq!(
            traceset_has_origin(&program, Value::new(5), &opts_with(7)),
            Some(false)
        );
    }

    #[test]
    fn reads_do_not_originate() {
        // the program can *read* 2 (domain), and then write it — but the
        // write is preceded by the read, so it is not an origin.
        let program = p("r1 := x; y := r1; print r1;");
        assert_eq!(
            traceset_has_origin(&program, Value::new(2), &opts_with(2)),
            Some(false)
        );
        let verdict = no_thin_air(&program, Value::new(2), 2, &opts_with(2));
        assert!(matches!(verdict, OotaVerdict::Safe { .. }));
    }
}
