//! One-shot classification of a program transformation into the paper's
//! safe classes — the entry point a compiler test-suite would embed.

use std::fmt;

use transafety_lang::{extract_traceset, Program};
use transafety_traces::{MemoryModelKind, Trace};
use transafety_transform::{find_elimination, EliminationKind};

use crate::correspondence::{
    check_elimination_correspondence, check_identity_correspondence,
    check_reordering_correspondence, Correspondence, SemanticClass,
};
use crate::guarantee::{behaviour_refinement, Refinement};
use crate::Analysis;

/// The verdict of [`classify_transformation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformationClass {
    /// `[P'] = [P]` — a trace-preserving transformation (§2.1); safe for
    /// every program.
    Identity,
    /// `[P']` is a semantic elimination of `[P]` (§4) — covered by
    /// Theorems 1/3.
    Elimination,
    /// `[P']` is a reordering of an elimination of `[P]` (§4, Lemma 5) —
    /// covered by Theorems 2/4.
    EliminationThenReordering,
    /// Outside the paper's safe classes, but behaviour-refining for this
    /// particular program (an SC-preserving compiler would accept it;
    /// the DRF contract gives it no blanket licence).
    ScRefiningOnly,
    /// Outside every class: it changes this program's SC behaviours.
    /// The offending trace (if the semantic searches produced one) and
    /// behaviour help debugging.
    Unsafe {
        /// A transformed-traceset member with no semantic witness.
        witness_trace: Option<Trace>,
    },
    /// Bounds were hit before a verdict.
    Inconclusive,
}

impl TransformationClass {
    /// Is the transformation in one of the paper's always-safe classes?
    #[must_use]
    pub fn is_paper_safe(&self) -> bool {
        matches!(
            self,
            TransformationClass::Identity
                | TransformationClass::Elimination
                | TransformationClass::EliminationThenReordering
        )
    }
}

impl fmt::Display for TransformationClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformationClass::Identity => f.write_str("trace-preserving (identity)"),
            TransformationClass::Elimination => f.write_str("semantic elimination"),
            TransformationClass::EliminationThenReordering => {
                f.write_str("reordering of an elimination")
            }
            TransformationClass::ScRefiningOnly => {
                f.write_str("outside the safe classes (SC-refining for this program only)")
            }
            TransformationClass::Unsafe { .. } => f.write_str("UNSAFE (changes SC behaviours)"),
            TransformationClass::Inconclusive => f.write_str("inconclusive"),
        }
    }
}

/// Classifies the transformation `original ⇒ transformed` into the
/// strongest class that holds: identity, elimination, elimination-then-
/// reordering, SC-refining-only, or unsafe.
///
/// # Example
///
/// ```
/// use transafety_checker::{classify_transformation, Analysis, TransformationClass};
/// use transafety_lang::{parse_program, parse_program_with_symbols};
///
/// let original = parse_program("r1 := x; r2 := x; print r2;")?;
/// let transformed = parse_program_with_symbols(
///     "r1 := x; r2 := r1; print r2;", original.symbols.clone())?;
/// let class = classify_transformation(
///     &transformed.program, &original.program, &Analysis::default());
/// assert_eq!(class, TransformationClass::Elimination);
/// assert!(class.is_paper_safe());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn classify_transformation(
    transformed: &Program,
    original: &Program,
    opts: &Analysis,
) -> TransformationClass {
    match check_identity_correspondence(transformed, original, opts) {
        Correspondence::Verified {
            class: SemanticClass::Identity,
        } => return TransformationClass::Identity,
        Correspondence::Inconclusive => return TransformationClass::Inconclusive,
        _ => {}
    }
    match check_elimination_correspondence(transformed, original, opts) {
        Correspondence::Verified { .. } => return TransformationClass::Elimination,
        Correspondence::Inconclusive => return TransformationClass::Inconclusive,
        Correspondence::Failed { .. } => {}
    }
    let witness = match check_reordering_correspondence(transformed, original, opts) {
        Correspondence::Verified { .. } => return TransformationClass::EliminationThenReordering,
        Correspondence::Inconclusive => return TransformationClass::Inconclusive,
        Correspondence::Failed { trace } => trace,
    };
    match behaviour_refinement(transformed, original, opts) {
        Refinement::Refines => TransformationClass::ScRefiningOnly,
        Refinement::NewBehaviour(_) => TransformationClass::Unsafe {
            witness_trace: Some(witness),
        },
        Refinement::Inconclusive => TransformationClass::Inconclusive,
    }
}

/// The model-safety refinement of a [`TransformationClass`] verdict:
/// whether the safety proof behind the SC classification extends to the
/// memory model the analysis is configured for.
///
/// The paper's theorems are stated against SC semantics; §8 shows which
/// transformations stay valid on the buffered machines (TSO/PSO) by
/// exhibiting them inside the model's own transformation fragment. A
/// transformation can therefore be *paper-safe* under SC yet *flagged*
/// under TSO — e.g. an overwritten-write elimination, whose §8 coverage
/// argument does not go through.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelClassification {
    /// The SC classification (unchanged from
    /// [`classify_transformation`]).
    pub class: TransformationClass,
    /// The model the safety question was asked for.
    pub model: MemoryModelKind,
    /// Does the safety argument extend to `model`? Always equals
    /// [`is_paper_safe`](TransformationClass::is_paper_safe) when
    /// `model` is SC; under TSO/PSO it can be `false` for a paper-safe
    /// class.
    pub safe_under_model: bool,
    /// Elimination kinds used by the witness whose proofs do not extend
    /// to `model` (each listed kind justified some eliminated position
    /// that no model-covered kind also justified). Empty when
    /// `safe_under_model`, and for non-elimination flags (a reordering
    /// class under a relaxed model is flagged as a whole).
    pub flagged_kinds: Vec<EliminationKind>,
}

impl fmt::Display for ModelClassification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} — ", self.class)?;
        if self.safe_under_model {
            write!(f, "safe under {}", self.model)
        } else {
            write!(f, "FLAGGED under {}", self.model)?;
            for (n, k) in self.flagged_kinds.iter().enumerate() {
                f.write_str(if n == 0 { ": " } else { ", " })?;
                write!(f, "{k}")?;
            }
            Ok(())
        }
    }
}

/// [`classify_transformation`], refined by the memory model in
/// `opts.model`: classifies under SC first, then decides whether the
/// safety proof carries over to the configured model.
///
/// * Identity (trace-preserving) transformations are safe under every
///   model — they are in every §8 fragment by construction.
/// * Eliminations are re-witnessed per transformed trace and each
///   eliminated position must be justified by a kind whose proof
///   extends to the model
///   ([`EliminationKind::safe_under`]); otherwise the uncovered kinds
///   are reported in
///   [`flagged_kinds`](ModelClassification::flagged_kinds).
/// * Elimination-then-reordering is conservatively flagged under
///   TSO/PSO: the semantic reordering search does not recover *which*
///   reordering was used, so no per-rule subsumption argument
///   (`RuleName::subsumed_under`) can be made.
/// * Classes outside the paper's safe set are never model-safe.
///
/// # Example
///
/// ```
/// use transafety_checker::{classify_transformation_under, Analysis, TransformationClass};
/// use transafety_lang::{parse_program, parse_program_with_symbols};
/// use transafety_traces::MemoryModelKind;
///
/// let original = parse_program("x := 2; x := 1; print 1;")?;
/// let transformed = parse_program_with_symbols(
///     "x := 1; print 1;", original.symbols.clone())?;
/// let under_tso = classify_transformation_under(
///     &transformed.program,
///     &original.program,
///     &Analysis::default().model(MemoryModelKind::Tso),
/// );
/// // Safe under SC (overwritten-write elimination, Theorem 1) …
/// assert_eq!(under_tso.class, TransformationClass::Elimination);
/// assert!(under_tso.class.is_paper_safe());
/// // … but the §8 TSO coverage argument does not include it.
/// assert!(!under_tso.safe_under_model);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn classify_transformation_under(
    transformed: &Program,
    original: &Program,
    opts: &Analysis,
) -> ModelClassification {
    let class = classify_transformation(transformed, original, opts);
    let (safe_under_model, flagged_kinds) = match (&class, opts.model) {
        // Under SC the classification *is* the safety verdict.
        (c, MemoryModelKind::Sc) => (c.is_paper_safe(), Vec::new()),
        (TransformationClass::Identity, _) => (true, Vec::new()),
        (TransformationClass::Elimination, model) => {
            elimination_kinds_uncovered(transformed, original, opts, model)
        }
        (TransformationClass::EliminationThenReordering, _) => (false, Vec::new()),
        _ => (false, Vec::new()),
    };
    ModelClassification {
        class,
        model: opts.model,
        safe_under_model,
        flagged_kinds,
    }
}

/// Re-runs the elimination witness search per transformed trace and
/// collects the kinds of eliminated positions not covered by any
/// model-safe kind. Returns `(all positions covered, uncovered kinds)`.
fn elimination_kinds_uncovered(
    transformed: &Program,
    original: &Program,
    opts: &Analysis,
    model: MemoryModelKind,
) -> (bool, Vec<EliminationKind>) {
    let t = extract_traceset(transformed, &opts.domain, &opts.extract);
    let o = extract_traceset(original, &opts.domain, &opts.extract);
    if t.truncated || o.truncated {
        return (false, Vec::new());
    }
    let mut flagged: Vec<EliminationKind> = Vec::new();
    let mut covered = true;
    for trace in t.traceset.traces() {
        let Some(w) = find_elimination(&trace, &o.traceset, &opts.domain, &opts.elimination) else {
            // The classification already established elimination-hood;
            // a vanished witness means bounds interfered — stay
            // conservative.
            return (false, Vec::new());
        };
        for (_, kinds) in &w.eliminated {
            if kinds.iter().any(|k| k.safe_under(model)) {
                continue;
            }
            covered = false;
            for k in kinds {
                if !flagged.contains(k) {
                    flagged.push(*k);
                }
            }
        }
    }
    if covered {
        (true, Vec::new())
    } else {
        (false, flagged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transafety_lang::{parse_program, parse_program_with_symbols};
    use transafety_traces::Domain;

    fn pair(o: &str, t: &str) -> (Program, Program) {
        let original = parse_program(o).unwrap();
        let transformed = parse_program_with_symbols(t, original.symbols.clone()).unwrap();
        (original.program, transformed.program)
    }

    fn opts() -> Analysis {
        Analysis::with_domain(Domain::zero_to(1))
    }

    #[test]
    fn identity_class() {
        // swapping a register move across an unrelated load is
        // trace-preserving
        let (o, t) = pair("r1 := 1; r2 := x; print r2;", "r2 := x; r1 := 1; print r2;");
        assert_eq!(
            classify_transformation(&t, &o, &opts()),
            TransformationClass::Identity
        );
    }

    #[test]
    fn elimination_class() {
        let (o, t) = pair(
            "r1 := x; r2 := x; print r2;",
            "r1 := x; r2 := r1; print r2;",
        );
        assert_eq!(
            classify_transformation(&t, &o, &opts()),
            TransformationClass::Elimination
        );
    }

    #[test]
    fn reordering_class() {
        let (o, t) = pair("r1 := y; x := r0; print r1;", "x := r0; r1 := y; print r1;");
        assert_eq!(
            classify_transformation(&t, &o, &opts()),
            TransformationClass::EliminationThenReordering
        );
    }

    #[test]
    fn read_introduction_is_sc_refining_only() {
        // Fig. 3's (a) → (b): invisible under SC, outside the classes.
        let (o, t) = pair(
            "lock m; x := 1; print y; unlock m; || lock m; y := 1; print x; unlock m;",
            "r1 := y; lock m; x := 1; print y; unlock m; \
             || r2 := x; lock m; y := 1; print x; unlock m;",
        );
        let c = classify_transformation(&t, &o, &opts());
        assert_eq!(c, TransformationClass::ScRefiningOnly);
        assert!(!c.is_paper_safe());
    }

    #[test]
    fn behaviour_changing_is_unsafe() {
        let (o, t) = pair("print 1;", "print 2;");
        let c = classify_transformation(&t, &o, &opts());
        assert!(matches!(c, TransformationClass::Unsafe { .. }));
        assert!(c.to_string().contains("UNSAFE"));
    }

    #[test]
    fn overwritten_write_is_sc_safe_but_flagged_under_tso() {
        // x:=2; x:=1 → x:=1 — a kind-5 elimination, covered by
        // Theorem 1 under SC but outside the §8 TSO fragment.
        let (o, t) = pair("x := 2; x := 1; print 1;", "x := 1; print 1;");
        let sc = classify_transformation_under(&t, &o, &opts());
        assert_eq!(sc.class, TransformationClass::Elimination);
        assert!(sc.safe_under_model);
        assert!(sc.flagged_kinds.is_empty());
        for model in [MemoryModelKind::Tso, MemoryModelKind::Pso] {
            let c = classify_transformation_under(&t, &o, &opts().model(model));
            assert_eq!(c.class, TransformationClass::Elimination);
            assert!(c.class.is_paper_safe(), "safe under SC …");
            assert!(!c.safe_under_model, "… yet flagged under {model}");
            assert!(c.flagged_kinds.contains(&EliminationKind::OverwrittenWrite));
            assert!(c.to_string().contains("FLAGGED"));
        }
    }

    #[test]
    fn forwarding_elimination_stays_safe_under_tso() {
        // r2:=x after r1:=x — a read-after-read elimination; §8 keeps
        // read eliminations in both buffered fragments.
        let (o, t) = pair(
            "r1 := x; r2 := x; print r2;",
            "r1 := x; r2 := r1; print r2;",
        );
        for model in [MemoryModelKind::Tso, MemoryModelKind::Pso] {
            let c = classify_transformation_under(&t, &o, &opts().model(model));
            assert_eq!(c.class, TransformationClass::Elimination);
            assert!(c.safe_under_model, "read elimination covered by §8");
            assert!(c.flagged_kinds.is_empty());
            assert!(c.to_string().contains("safe under"));
        }
    }

    #[test]
    fn identity_is_safe_under_every_model() {
        let (o, t) = pair("r1 := 1; r2 := x; print r2;", "r2 := x; r1 := 1; print r2;");
        for model in transafety_traces::MemoryModelKind::ALL {
            let c = classify_transformation_under(&t, &o, &opts().model(model));
            assert_eq!(c.class, TransformationClass::Identity);
            assert!(c.safe_under_model);
        }
    }

    #[test]
    fn reordering_is_conservatively_flagged_under_relaxed_models() {
        let (o, t) = pair("r1 := y; x := r0; print r1;", "x := r0; r1 := y; print r1;");
        let c = classify_transformation_under(&t, &o, &opts().model(MemoryModelKind::Tso));
        assert_eq!(c.class, TransformationClass::EliminationThenReordering);
        assert!(!c.safe_under_model);
        assert!(c.flagged_kinds.is_empty());
    }

    #[test]
    fn unsafe_stays_unsafe_under_every_model() {
        let (o, t) = pair("print 1;", "print 2;");
        for model in transafety_traces::MemoryModelKind::ALL {
            let c = classify_transformation_under(&t, &o, &opts().model(model));
            assert!(!c.safe_under_model);
        }
    }
}
