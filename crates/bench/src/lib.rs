//! Shared helpers for the transafety benchmark harness.
//!
//! The benches regenerate the paper's figure/table claims while
//! measuring the checker's performance (the evaluation substrate of this
//! reproduction — see `EXPERIMENTS.md`): `figures` covers E1–E7,
//! `theorems` covers E8–E10, `tso` covers E11 and `scaling` covers E12.

#![forbid(unsafe_code)]

use transafety::lang::Program;
use transafety::litmus::by_name;

/// Parses a corpus program by name (panics on unknown names — benches
/// only use validated corpus entries).
#[must_use]
pub fn corpus_program(name: &str) -> Program {
    by_name(name).unwrap_or_else(|| panic!("unknown corpus entry {name}")).parse().program
}
