//! Transformations that are **not** in the paper's safe classes.
//!
//! Fig. 3 of the paper demonstrates that *irrelevant read introduction*
//! — inserting `r := x` whose value is never used — breaks the DRF
//! guarantee once combined with otherwise-safe redundant read
//! elimination, even on sequentially consistent hardware. To reproduce
//! that experiment (E4 in `DESIGN.md`) the unsafe rewrite must be
//! expressible; it lives in this clearly separated module and is *never*
//! produced by [`all_rewrites`](crate::all_rewrites).

use transafety_lang::{Program, Reg, Stmt};
use transafety_traces::Loc;

/// Inserts the irrelevant read `reg := loc` before statement `index` of
/// thread `thread` (top level). Returns `None` if the indices are out of
/// range.
///
/// This is the Fig. 3 step (a) → (b). It is **unsafe** in general: the
/// paper shows a data-race-free program whose behaviours grow after this
/// introduction is combined with safe eliminations.
///
/// # Example
///
/// ```
/// use transafety_lang::{parse_program, Reg};
/// use transafety_syntactic::introduce_irrelevant_read;
/// let p = parse_program("lock m; x := 1; print y; unlock m;")?.program;
/// let x = p.shared_locs().into_iter().next().unwrap();
/// let q = introduce_irrelevant_read(&p, 0, 0, x, Reg::new(99)).unwrap();
/// assert_eq!(q.thread(0).unwrap().len(), p.thread(0).unwrap().len() + 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn introduce_irrelevant_read(
    program: &Program,
    thread: usize,
    index: usize,
    loc: Loc,
    reg: Reg,
) -> Option<Program> {
    let body = program.thread(thread)?;
    if index > body.len() {
        return None;
    }
    let mut threads = program.threads().to_vec();
    threads[thread].insert(index, Stmt::Load { dst: reg, loc });
    Some(Program::new(threads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use transafety_lang::parse_program;

    #[test]
    fn inserts_at_position() {
        let p = parse_program("print r0;").unwrap().program;
        let x = Loc::normal(7);
        let q = introduce_irrelevant_read(&p, 0, 1, x, Reg::new(5)).unwrap();
        assert!(matches!(q.thread(0).unwrap()[1], Stmt::Load { .. }));
    }

    #[test]
    fn out_of_range_is_none() {
        let p = parse_program("print r0;").unwrap().program;
        assert!(introduce_irrelevant_read(&p, 5, 0, Loc::normal(0), Reg::new(0)).is_none());
        assert!(introduce_irrelevant_read(&p, 0, 9, Loc::normal(0), Reg::new(0)).is_none());
    }
}
