//! Shared configuration for the theorem-level checkers.

use transafety_lang::{ExploreOptions, ExtractOptions};
use transafety_traces::Domain;
use transafety_transform::EliminationOptions;

/// Bounds and domains used by every checker entry point.
///
/// # Example
///
/// ```
/// use transafety_checker::CheckOptions;
/// let opts = CheckOptions::default();
/// assert!(opts.domain.len() >= 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckOptions {
    /// The finite read-value domain for traceset extraction and
    /// wildcard-instance enumeration.
    pub domain: Domain,
    /// Bounds for traceset extraction.
    pub extract: ExtractOptions,
    /// Bounds for direct program exploration.
    pub explore: ExploreOptions,
    /// Bounds for the semantic elimination witness search.
    pub elimination: EliminationOptions,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            domain: Domain::default(),
            extract: ExtractOptions::default(),
            explore: ExploreOptions::default(),
            elimination: EliminationOptions::default(),
        }
    }
}

impl CheckOptions {
    /// A configuration with the given read-value domain.
    #[must_use]
    pub fn with_domain(domain: Domain) -> Self {
        CheckOptions { domain, ..CheckOptions::default() }
    }
}
