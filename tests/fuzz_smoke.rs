//! Tier-1 smoke of the differential fuzzing subsystem through its
//! public API: a small soak must be clean (no refinement violations, no
//! escaped panics, every seeded known-unsafe case detected and shrunk
//! within the acceptance bound), and the whole run must be a pure
//! function of the master seed. `TRANSAFETY_FUZZ_SEEDS` scales the pair
//! count — CI's soak job cranks it far beyond this default.

mod support;

use support::seeds_or;
use transafety::fuzz::{known_unsafe_cases, replay, run_soak, OracleConfig, SoakConfig};
use transafety::Budget;

/// Deterministic soak configuration: a pure state cap, no wall clock,
/// so counters are bit-identical across runs and machines.
fn config(pairs: u64) -> SoakConfig {
    SoakConfig {
        pairs,
        jobs: 4,
        budget: Budget::unlimited().max_states(20_000),
        ..SoakConfig::default()
    }
}

#[test]
fn a_small_soak_is_clean() {
    let report = run_soak(&config(seeds_or(150)));
    assert!(
        report.violations.is_empty(),
        "refinement violations found: {:?}",
        report
            .violations
            .iter()
            .map(|w| (w.model, w.program.to_string(), w.pipeline.to_string()))
            .collect::<Vec<_>>()
    );
    assert_eq!(report.stats.panics, 0, "cases escaped the fault boundary");
    assert_eq!(
        report.stats.seeded_missed, 0,
        "the oracle lost a seeded known-unsafe divergence"
    );
    assert_eq!(report.stats.seeded_detected, 2);
    assert!(report.clean());
    // the soak actually did the work it claims
    assert_eq!(
        report.stats.pairs_checked,
        seeds_or(150) + known_unsafe_cases().len() as u64
    );
}

#[test]
fn soak_counters_are_a_pure_function_of_the_seed() {
    let cfg = config(40);
    let a = run_soak(&cfg);
    let b = run_soak(&cfg);
    assert_eq!(a.stats.refines, b.stats.refines);
    assert_eq!(a.stats.identity, b.stats.identity);
    assert_eq!(a.stats.inconclusive, b.stats.inconclusive);
    assert_eq!(a.stats.expected_divergences, b.stats.expected_divergences);
    assert_eq!(a.stats.violations, b.stats.violations);
}

#[test]
fn seeded_cases_shrink_within_the_acceptance_bound() {
    for case in known_unsafe_cases() {
        let oracle = OracleConfig {
            budget: Budget::unlimited().max_states(50_000),
            jobs: 1,
            ..OracleConfig::for_model(case.model)
        };
        let result = replay(&case, &oracle, 2_000);
        assert!(result.detected, "{}: divergence not detected", case.name);
        assert!(
            result.within_bounds(),
            "{}: minimised witness exceeds ≤6 statements / ≤2 passes",
            case.name
        );
    }
}
