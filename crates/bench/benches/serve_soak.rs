//! E18: serve-mode soak — sustained mixed traffic through the batch
//! service.
//!
//! Fires `SERVE_SOAK_REQUESTS` (default 100 000) mixed requests through
//! one in-process [`Server`] session: a pool of litmus-corpus and
//! generated programs cycled across all three memory models, salted
//! with deliberately degraded traffic (budget-tripping `max_states:1`
//! requests, malformed lines) and a deterministic fault plan (worker
//! panics and one cache corruption at fixed admission sequence
//! numbers). The verdict cache is enabled, so the steady state is
//! dominated by cache hits — the service-level fast path the ISSUE's
//! soak criterion targets.
//!
//! The bench asserts the isolation contract at scale — every request
//! answered exactly once, counters consistent, no `drf_proven` from
//! any degraded path — then prints a JSON report (throughput plus the
//! serve section of `drfcheck-stats-v2`) and writes it to
//! `BENCH_SERVE_SOAK.json` (path overridable via `BENCH_SERVE_SOAK_OUT`;
//! request count via `SERVE_SOAK_REQUESTS`). `--test` runs the smoke
//! mode: 2 000 requests, same assertions.

use std::io::Cursor;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use transafety::serve::{FaultPlan, ServeConfig, Server};
use transafety::Analysis;
use transafety_litmus::{corpus, random_program, GeneratorConfig};

/// Traffic mix per 10 requests: 7 cacheable checks, 1 model rotation
/// repeat, 1 budget-tripping probe, 1 malformed line.
const DEFAULT_REQUESTS: usize = 100_000;
const SMOKE_REQUESTS: usize = 2_000;

fn request_count() -> usize {
    if let Ok(v) = std::env::var("SERVE_SOAK_REQUESTS") {
        return v
            .parse()
            .unwrap_or_else(|_| panic!("SERVE_SOAK_REQUESTS: not a number: {v}"));
    }
    if std::env::args().any(|a| a == "--test") {
        SMOKE_REQUESTS
    } else {
        DEFAULT_REQUESTS
    }
}

/// The program pool: small, fast-to-check sources only — the soak
/// measures service overhead (admission, cache, response path), not
/// state-space exploration. Corpus entries are filtered by source
/// length as a cheap proxy for state-space size.
fn program_pool() -> Vec<String> {
    let mut pool: Vec<String> = corpus()
        .iter()
        .filter(|l| l.source.len() < 120)
        .map(|l| l.source.to_owned())
        .collect();
    let config = GeneratorConfig::default();
    pool.extend((0..8).map(|seed| random_program(seed, &config).to_string()));
    assert!(pool.len() >= 12, "pool unexpectedly small: {}", pool.len());
    pool
}

fn escape(src: &str) -> String {
    src.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', " ")
}

fn main() {
    let n = request_count();
    let pool = program_pool();
    let models = ["sc", "tso", "pso"];

    let mut input = String::with_capacity(n * 96);
    let mut malformed = 0usize;
    let mut budget_probes = 0usize;
    for i in 0..n {
        match i % 10 {
            // One malformed line per decade: the server must answer it
            // with an explicit parse error, never drop it.
            9 => {
                input.push_str(&format!("{{\"id\":\"bad{i}\",\"nonsense\":1}}\n"));
                malformed += 1;
            }
            // One budget-tripping probe per decade: degraded traffic
            // interleaved with healthy traffic, exercising the
            // no-degraded-proof discipline at volume. `por:false` keys
            // these away from the healthy traffic (the cache fingerprint
            // excludes budgets but includes POR), so every probe really
            // explores, trips, and stays uncached.
            8 => {
                let prog = &pool[i / 10 % pool.len()];
                input.push_str(&format!(
                    "{{\"id\":\"q{i}\",\"program\":\"{}\",\"max_states\":1,\"por\":false}}\n",
                    escape(prog)
                ));
                budget_probes += 1;
            }
            slot => {
                let prog = &pool[(i / 10 + slot) % pool.len()];
                let model = models[(i / 10 + slot) % models.len()];
                input.push_str(&format!(
                    "{{\"id\":\"q{i}\",\"program\":\"{}\",\"model\":\"{}\"}}\n",
                    escape(prog),
                    model
                ));
            }
        }
    }

    let cache_dir =
        std::env::temp_dir().join(format!("transafety-serve-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let config = ServeConfig {
        queue_depth: n.max(1),
        defaults: Analysis::new()
            .max_states(200_000)
            .timeout(std::time::Duration::from_secs(5)),
        cache_dir: Some(cache_dir.clone()),
        // A worker panic roughly every 1000 requests (retried
        // sequentially) and one cache corruption: the soak runs with
        // the fault machinery live, not just the happy path.
        faults: fault_plan(n),
        ..ServeConfig::default()
    };
    let server = Server::new(config).expect("server construction");
    let out: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::with_capacity(n * 160)));

    eprintln!(
        "serve-soak: firing {n} requests ({} programs, {} models)...",
        pool.len(),
        models.len()
    );
    let start = Instant::now();
    let summary = server.run(Cursor::new(input), &out);
    let elapsed = start.elapsed();

    let bytes = out.lock().unwrap().clone();
    let responses = String::from_utf8(bytes).expect("responses are utf-8");
    let lines: Vec<&str> = responses.lines().collect();

    // Isolation contract at scale: every admitted request answered
    // exactly once; counters add up; no degraded proof anywhere.
    let stats = &summary.stats;
    assert_eq!(lines.len(), n, "every request answered exactly once");
    assert_eq!(stats.requests, n as u64);
    assert_eq!(stats.parse_errors, malformed as u64);
    assert_eq!(
        stats.responses_ok
            + stats.responses_error
            + stats.responses_overloaded
            + stats.responses_cancelled
            + stats.parse_errors,
        n as u64,
        "response counters partition the traffic"
    );
    assert_eq!(
        stats.responses_overloaded, 0,
        "soak queue depth admits everything"
    );
    assert_eq!(stats.responses_cancelled, 0, "nothing drained mid-soak");
    assert!(
        stats.budget_trips >= budget_probes as u64,
        "budget probes tripped: {} trips < {budget_probes} probes",
        stats.budget_trips
    );
    assert!(
        stats.cache_hits > stats.cache_misses,
        "steady state is cache-hit dominated"
    );
    assert_eq!(
        stats.retries, stats.worker_panics,
        "every injected panic was retried once"
    );
    let expected_panics = (1 + (n.saturating_sub(9)) / 1000) as u64;
    assert_eq!(
        stats.worker_panics, expected_panics,
        "every planned panic actually fired (cache hits never reach the injection point)"
    );
    for line in &lines {
        assert!(
            !(line.contains("\"verdict\":\"drf_proven\"") && line.contains("truncated")),
            "degraded response claims a proof: {line}"
        );
    }

    let throughput = n as f64 / elapsed.as_secs_f64();
    let report = format!(
        "{{\"bench\":\"serve_soak\",\"requests\":{n},\"elapsed_secs\":{:.3},\
         \"throughput_rps\":{:.1},{}}}",
        elapsed.as_secs_f64(),
        throughput,
        summary
            .stats
            .to_json()
            .trim_start_matches('{')
            .trim_end_matches('}')
    );
    println!("{report}");
    eprintln!(
        "serve-soak: {n} requests in {:.2}s ({:.0} req/s), p50 {}µs p99 {}µs max {}µs, \
         {} hits / {} misses, {} panics retried",
        elapsed.as_secs_f64(),
        throughput,
        stats.latency_quantile_micros(0.50),
        stats.latency_quantile_micros(0.99),
        stats.latency_max_micros(),
        stats.cache_hits,
        stats.cache_misses,
        stats.worker_panics,
    );

    let out_path = std::env::var("BENCH_SERVE_SOAK_OUT")
        .unwrap_or_else(|_| "BENCH_SERVE_SOAK.json".to_owned());
    std::fs::write(&out_path, format!("{report}\n")).expect("write report");
    eprintln!("serve-soak: report written to {out_path}");
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// Panics at admission sequences 9, 1009, 2009, … plus one corruption
/// of a freshly published cache entry early on. The panic targets are
/// budget probes (line `i ≡ 8 mod 10` ⇒ 1-based seq `≡ 9 mod 10`): a
/// probe never hits the cache, so the injected panic is guaranteed to
/// reach the worker instead of being short-circuited by a cache hit.
fn fault_plan(n: usize) -> FaultPlan {
    let mut spec = String::from("corrupt@7");
    let mut seq = 9;
    while seq <= n {
        spec.push_str(&format!(",panic@{seq}"));
        seq += 1000;
    }
    FaultPlan::parse(&spec).expect("soak fault plan")
}
