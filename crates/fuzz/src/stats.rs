//! Fuzzing-run counters and the `fuzz` section of the
//! `drfcheck-stats-v2` JSON schema.

use std::time::Duration;

use transafety_serve::LatencyHistogram;

/// Counters for one fuzzing run (seeded cases plus the random soak).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuzzStats {
    /// (program, pipeline, model) cases checked.
    pub pairs_checked: u64,
    /// Cases where no pass changed the program.
    pub identity: u64,
    /// Cases where refinement was checked and held.
    pub refines: u64,
    /// Cases a per-case budget cut short before a verdict.
    pub inconclusive: u64,
    /// Expected divergences: racy original, transformation outside the
    /// model's fragment (the witnesses that justify the classifier's
    /// per-model flags).
    pub expected_divergences: u64,
    /// Violations: divergence where refinement was required — a
    /// soundness bug in the rules, machines or classifier.
    pub violations: u64,
    /// Worker panics caught at the case boundary.
    pub panics: u64,
    /// Seeded known-unsafe cases that were detected and minimised.
    pub seeded_detected: u64,
    /// Seeded known-unsafe cases that were *not* detected (must be 0).
    pub seeded_missed: u64,
    /// Accepted shrink steps across all minimisations.
    pub shrink_steps: u64,
    /// Oracle re-runs spent inside the minimiser.
    pub shrink_attempts: u64,
    /// Minimised witnesses produced (expected divergences + violations
    /// that went through the minimiser).
    pub witnesses_minimised: u64,
    /// Per-pair wall latency distribution in microseconds, one sample
    /// per checked case.
    pub latencies: LatencyHistogram,
}

impl FuzzStats {
    /// Records one completed case's latency.
    pub fn record_latency(&mut self, elapsed: Duration) {
        let micros = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        self.latencies.record(micros);
    }

    /// Merge another stats block into this one (used to fold per-worker
    /// stats into the run total).
    pub fn merge(&mut self, other: &FuzzStats) {
        self.pairs_checked += other.pairs_checked;
        self.identity += other.identity;
        self.refines += other.refines;
        self.inconclusive += other.inconclusive;
        self.expected_divergences += other.expected_divergences;
        self.violations += other.violations;
        self.panics += other.panics;
        self.seeded_detected += other.seeded_detected;
        self.seeded_missed += other.seeded_missed;
        self.shrink_steps += other.shrink_steps;
        self.shrink_attempts += other.shrink_attempts;
        self.witnesses_minimised += other.witnesses_minimised;
        self.latencies.merge(&other.latencies);
    }

    /// Serialises the section to one line of schema-stable JSON (the
    /// same `drfcheck-stats-v2` envelope the explore and serve sections
    /// use; key order fixed, integer values only).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push_str("{\"schema\":\"drfcheck-stats-v2\",\"section\":\"fuzz\",\"fuzz\":{");
        let mut first = true;
        for (key, value) in [
            ("pairs_checked", self.pairs_checked),
            ("identity", self.identity),
            ("refines", self.refines),
            ("inconclusive", self.inconclusive),
            ("expected_divergences", self.expected_divergences),
            ("violations", self.violations),
            ("panics", self.panics),
            ("seeded_detected", self.seeded_detected),
            ("seeded_missed", self.seeded_missed),
            ("shrink_steps", self.shrink_steps),
            ("shrink_attempts", self.shrink_attempts),
            ("witnesses_minimised", self.witnesses_minimised),
            ("latency_count", self.latencies.count()),
            ("latency_total_micros", self.latencies.total_micros()),
            ("latency_p50_micros", self.latencies.quantile_micros(0.50)),
            ("latency_p99_micros", self.latencies.quantile_micros(0.99)),
            ("latency_max_micros", self.latencies.max_micros()),
        ] {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!("\"{key}\":{value}"));
        }
        s.push_str("}}");
        s
    }

    /// Renders a human-readable multi-line summary (what
    /// `drfcheck fuzz --stats` prints on stderr).
    #[must_use]
    pub fn to_human(&self) -> String {
        format!(
            "--- fuzz stats ---\n\
             pairs: {} checked ({} identity, {} refine, {} inconclusive)\n\
             divergences: {} expected, {} VIOLATIONS, {} panics\n\
             seeded: {} detected, {} missed\n\
             shrinking: {} steps over {} oracle re-runs, {} witnesses minimised\n\
             latency (µs): p50 {}, p99 {}, max {} over {} cases",
            self.pairs_checked,
            self.identity,
            self.refines,
            self.inconclusive,
            self.expected_divergences,
            self.violations,
            self.panics,
            self.seeded_detected,
            self.seeded_missed,
            self.shrink_steps,
            self.shrink_attempts,
            self.witnesses_minimised,
            self.latencies.quantile_micros(0.50),
            self.latencies.quantile_micros(0.99),
            self.latencies.max_micros(),
            self.latencies.count(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_schema_stable() {
        let mut s = FuzzStats {
            pairs_checked: 3,
            ..FuzzStats::default()
        };
        s.record_latency(Duration::from_micros(42));
        let line = s.to_json();
        assert!(
            line.starts_with("{\"schema\":\"drfcheck-stats-v2\",\"section\":\"fuzz\",\"fuzz\":{")
        );
        assert!(line.contains("\"pairs_checked\":3"));
        assert!(line.contains("\"latency_count\":1"));
        assert!(line.ends_with("}}"));
    }

    #[test]
    fn merge_adds_counters_and_latencies() {
        let mut a = FuzzStats {
            pairs_checked: 2,
            ..FuzzStats::default()
        };
        a.record_latency(Duration::from_micros(10));
        let mut b = FuzzStats {
            pairs_checked: 5,
            violations: 1,
            ..FuzzStats::default()
        };
        b.record_latency(Duration::from_micros(20));
        a.merge(&b);
        assert_eq!(a.pairs_checked, 7);
        assert_eq!(a.violations, 1);
        assert_eq!(a.latencies.count(), 2);
        assert_eq!(a.latencies.total_micros(), 30);
    }
}
