//! Integration tests: the figure-level claims of the paper (experiments
//! E1–E7 of `DESIGN.md`), asserted end-to-end across the crates.

use transafety::checker::{behaviours, is_data_race_free, Analysis};
use transafety::interleaving::Behaviours;
use transafety::lang::{extract_traceset, ExtractOptions};
use transafety::litmus::{by_name, parse_pair};
use transafety::traces::{Domain, Value};
use transafety::transform::{
    is_elim_reordering_of, is_elimination_of, EliminationOptions, MatrixEntry,
};

fn v(n: u32) -> Value {
    Value::new(n)
}

fn behaviours_of(name: &str) -> Behaviours {
    let p = by_name(name).unwrap().parse().program;
    let b = behaviours(&p, &Analysis::new());
    assert!(b.complete, "{name} truncated");
    b.value
}

#[test]
fn e1_intro_example() {
    assert!(!behaviours_of("intro-original").contains(&vec![v(1)]));
    assert!(behaviours_of("intro-constant-propagated").contains(&vec![v(1)]));
    let opts = Analysis::new();
    assert!(!is_data_race_free(
        &by_name("intro-original").unwrap().parse().program,
        &opts
    ));
    assert!(is_data_race_free(
        &by_name("intro-volatile").unwrap().parse().program,
        &opts
    ));
}

#[test]
fn e2_fig1_elimination() {
    let one_zero = vec![v(1), v(0)];
    assert!(!behaviours_of("fig1-original").contains(&one_zero));
    assert!(behaviours_of("fig1-transformed").contains(&one_zero));
    let (o, t) = parse_pair("fig1-original", "fig1-transformed");
    let d = Domain::zero_to(2);
    let ex = ExtractOptions::default();
    let to = extract_traceset(&o.program, &d, &ex);
    let tt = extract_traceset(&t.program, &d, &ex);
    assert!(!to.truncated && !tt.truncated);
    is_elimination_of(
        &tt.traceset,
        &to.traceset,
        &d,
        &EliminationOptions::default(),
    )
    .expect("Fig. 1 is a semantic elimination");
}

#[test]
fn e3_fig2_reordering() {
    assert!(!behaviours_of("fig2-original").contains(&vec![v(1)]));
    assert!(behaviours_of("fig2-transformed").contains(&vec![v(1)]));
    let (o, t) = parse_pair("fig2-original", "fig2-transformed");
    let d = Domain::zero_to(1);
    let ex = ExtractOptions::default();
    let to = extract_traceset(&o.program, &d, &ex);
    let tt = extract_traceset(&t.program, &d, &ex);
    is_elim_reordering_of(
        &tt.traceset,
        &to.traceset,
        &d,
        &EliminationOptions::default(),
    )
    .expect("Fig. 2 is a reordering of an elimination");
    // …and NOT a plain elimination (the write moved before the read)
    assert!(is_elimination_of(
        &tt.traceset,
        &to.traceset,
        &d,
        &EliminationOptions::default()
    )
    .is_err());
}

#[test]
fn e4_fig3_read_introduction_breaks_drf_guarantee() {
    let two_zeros = vec![v(0), v(0)];
    let opts = Analysis::new();
    // (a): DRF, cannot print two zeros.
    assert!(is_data_race_free(
        &by_name("fig3-a").unwrap().parse().program,
        &opts
    ));
    assert!(!behaviours_of("fig3-a").contains(&two_zeros));
    // (c): prints two zeros even on SC hardware.
    assert!(behaviours_of("fig3-c").contains(&two_zeros));
    // The elimination step (b) → (c) is valid; the introduction (a) → (b)
    // is the transformation outside the safe classes.
    let d = Domain::zero_to(1);
    let ex = ExtractOptions::default();
    let opts_e = EliminationOptions::default();
    let (b, c) = parse_pair("fig3-b", "fig3-c");
    let tb = extract_traceset(&b.program, &d, &ex);
    let tc = extract_traceset(&c.program, &d, &ex);
    is_elimination_of(&tc.traceset, &tb.traceset, &d, &opts_e).expect("(b)→(c) valid");
    let (a, b2) = parse_pair("fig3-a", "fig3-b");
    let ta = extract_traceset(&a.program, &d, &ex);
    let tb2 = extract_traceset(&b2.program, &d, &ex);
    assert!(is_elimination_of(&tb2.traceset, &ta.traceset, &d, &opts_e).is_err());
}

#[test]
fn e4_fig3_behaviour_comparison_via_introduced_read() {
    // Reconstruct (b) from (a) with the unsafe rewrite and confirm the
    // composition (introduce + eliminate) yields (c)'s new behaviour.
    use transafety::lang::Reg;
    use transafety::syntactic::introduce_irrelevant_read;
    let a = by_name("fig3-a").unwrap().parse();
    let x = a.symbols.loc("x").unwrap();
    let y = a.symbols.loc("y").unwrap();
    let with_read_t0 = introduce_irrelevant_read(&a.program, 0, 0, y, Reg::new(501)).unwrap();
    let b = introduce_irrelevant_read(&with_read_t0, 1, 0, x, Reg::new(502)).unwrap();
    // (b) has the same behaviours as (a) on SC…
    let opts = Analysis::new();
    let ba = behaviours(&a.program, &opts).value;
    let bb = behaviours(&b, &opts).value;
    assert_eq!(ba, bb, "introduced irrelevant reads are SC-invisible");
    // …but (b) is racy where (a) was DRF: the introduction broke DRF.
    assert!(is_data_race_free(&a.program, &opts));
    assert!(!is_data_race_free(&b, &opts));
}

#[test]
fn e7_reorder_matrix_matches_paper() {
    use MatrixEntry::{Always as A, DifferentLocation as D, Never as N};
    let expected = [
        [D, D, A, N, A],
        [D, A, A, N, A],
        [N, N, N, N, N],
        [A, A, N, N, N],
        [A, A, N, N, N],
    ];
    assert_eq!(transafety::transform::reorder_matrix(), expected);
}

#[test]
fn fig5_transformed_is_elimination_of_original() {
    let (o, t) = parse_pair("fig5-volatile", "fig5-transformed");
    let d = Domain::zero_to(1);
    let ex = ExtractOptions::default();
    let to = extract_traceset(&o.program, &d, &ex);
    let tt = extract_traceset(&t.program, &d, &ex);
    is_elimination_of(
        &tt.traceset,
        &to.traceset,
        &d,
        &EliminationOptions::default(),
    )
    .expect("dropping the last release and the irrelevant read is an elimination");
}

#[test]
fn section4_worked_example_elimination() {
    // §4: the traceset of `x:=1; print 1; lock m; x:=1; unlock m` is an
    // elimination of the worked example's traceset.
    let o = by_name("section4-worked").unwrap().parse();
    let t = transafety::lang::parse_program_with_symbols(
        "x := 1; print 1; lock m; x := 1; unlock m;",
        o.symbols.clone(),
    )
    .unwrap();
    let d = Domain::zero_to(2);
    let ex = ExtractOptions::default();
    let to = extract_traceset(&o.program, &d, &ex);
    let tt = extract_traceset(&t.program, &d, &ex);
    assert!(!to.truncated && !tt.truncated);
    is_elimination_of(
        &tt.traceset,
        &to.traceset,
        &d,
        &EliminationOptions::default(),
    )
    .expect("the §4 worked example");
}

#[test]
fn corr_coherence_holds_under_sc() {
    // CoRR: after a single write of 1, reading 1 then 0 is impossible.
    let b = behaviours_of("corr");
    assert!(!b.contains(&vec![v(1), v(0)]));
    assert!(b.contains(&vec![v(0), v(1)]));
    assert!(b.contains(&vec![v(1), v(1)]));
}

#[test]
fn lb_forbidden_outcome() {
    // Load buffering: r1 = r2 = 1 is impossible under SC.
    assert!(!behaviours_of("lb").contains(&vec![v(1), v(1)]));
}
