//! The soak driver: sustained differential fuzzing over the PR 1
//! work-stealing pool.
//!
//! Each case is one task on [`transafety_interleaving::par::run_tasks`]:
//! derive a (program, pipeline, model) triple deterministically from
//! the master seed and the case index, run the
//! [oracle](crate::oracle::check_pair) under the per-case budget inside
//! a `catch_unwind` fault boundary, and fold the outcome into the run's
//! [`FuzzStats`].  Divergences are minimised on the spot (violations
//! always; expected divergences up to a per-run witness cap, so a racy
//! corpus cannot turn the soak into a shrinking marathon).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use transafety_interleaving::par::run_tasks;
use transafety_interleaving::Budget;
use transafety_lang::Program;
use transafety_litmus::{random_program, GeneratorConfig, Rng};
use transafety_traces::MemoryModelKind;

use crate::oracle::{check_pair, OracleConfig, Outcome};
use crate::pipeline::{Pipeline, PipelineConfig};
use crate::seeded::{known_unsafe_cases, replay};
use crate::shrink::minimise;
use crate::stats::FuzzStats;
use crate::witness::Witness;

/// Configuration for one fuzzing run.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Random (program, pipeline) cases to check (seeded cases run on
    /// top of this).
    pub pairs: u64,
    /// Master seed; the whole run is a pure function of it.
    pub seed: u64,
    /// Models cycled across cases.
    pub models: Vec<MemoryModelKind>,
    /// Worker threads (cases are independent; each case runs its
    /// analyses single-threaded).
    pub jobs: usize,
    /// Per-side, per-case analysis budget.
    pub budget: Budget,
    /// Partial-order reduction toggle.
    pub por: bool,
    /// Pipeline generation knobs.
    pub pipeline: PipelineConfig,
    /// Oracle re-runs the minimiser may spend per divergence.
    pub shrink_attempts: usize,
    /// Expected-divergence witnesses to minimise and retain (violations
    /// are always minimised and retained).
    pub max_witnesses: usize,
    /// Skip the built-in seeded known-unsafe cases.
    pub skip_seeded: bool,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            pairs: 1_000,
            seed: 0xD1FF,
            models: MemoryModelKind::ALL.to_vec(),
            jobs: transafety_interleaving::available_jobs(),
            budget: Budget::unlimited()
                .timeout(Duration::from_millis(100))
                .max_states(20_000),
            por: true,
            pipeline: PipelineConfig::default(),
            shrink_attempts: 400,
            max_witnesses: 8,
            skip_seeded: false,
        }
    }
}

/// The program-generator mix the soak draws from: the shared-corpus
/// shapes plus loop- and await-bearing programs.
#[must_use]
pub fn soak_generator_configs() -> Vec<GeneratorConfig> {
    vec![
        GeneratorConfig::default(),
        GeneratorConfig::drf(),
        GeneratorConfig::with_volatiles(),
        GeneratorConfig::with_loops(),
        GeneratorConfig::with_awaits(),
    ]
}

/// Deterministically derive case `index` of a run: the generator
/// config, program and pipeline are a pure function of
/// `(seed, index)`, so any case can be replayed in isolation.
#[must_use]
pub fn derive_case(seed: u64, index: u64, pipeline: &PipelineConfig) -> (Program, Pipeline) {
    let mut rng = Rng::seed_from_u64(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let configs = soak_generator_configs();
    let config = &configs[rng.gen_range_usize(0, configs.len())];
    let program = random_program(rng.next_u64(), config);
    let pipe = Pipeline::random(&mut rng, pipeline);
    (program, pipe)
}

/// The result of one fuzzing run.
#[derive(Debug)]
pub struct SoakReport {
    /// Aggregated counters (seeded + random cases).
    pub stats: FuzzStats,
    /// Minimised refinement violations (must be empty on a healthy
    /// repo; non-empty fails the run).
    pub violations: Vec<Witness>,
    /// Minimised expected-divergence witnesses, capped at
    /// [`SoakConfig::max_witnesses`].
    pub witnesses: Vec<Witness>,
}

impl SoakReport {
    /// `true` when no violation, no panic and no missed seeded case was
    /// observed.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.stats.panics == 0 && self.stats.seeded_missed == 0
    }
}

fn witness_from(minimised: &crate::shrink::Minimised, model: MemoryModelKind) -> Witness {
    let applied = minimised.pipeline.apply(&minimised.program);
    Witness {
        program: minimised.program.clone(),
        pipeline: minimised.pipeline.clone(),
        rules: applied.applied.iter().map(|p| p.rule).collect(),
        model,
        violation: minimised.outcome.is_violation(),
    }
}

/// Run the seeded known-unsafe cases followed by `config.pairs` random
/// cases over the work-stealing pool.
#[must_use]
pub fn run_soak(config: &SoakConfig) -> SoakReport {
    let mut stats = FuzzStats::default();
    let violations = Vec::new();
    let mut witnesses = Vec::new();

    if !config.skip_seeded {
        for case in known_unsafe_cases() {
            let oracle = OracleConfig {
                model: case.model,
                budget: config.budget,
                jobs: 1,
                por: config.por,
            };
            let result = replay(&case, &oracle, config.shrink_attempts);
            stats.pairs_checked += 1;
            if result.detected {
                stats.seeded_detected += 1;
                stats.expected_divergences += 1;
                if let Some(m) = &result.minimised {
                    stats.shrink_steps += m.steps as u64;
                    stats.shrink_attempts += m.attempts as u64;
                    stats.witnesses_minimised += 1;
                    witnesses.push(witness_from(m, case.model));
                }
            } else {
                stats.seeded_missed += 1;
            }
        }
    }

    let shared = Mutex::new((stats, violations, witnesses));
    let witness_slots = AtomicUsize::new(config.max_witnesses);
    let models = if config.models.is_empty() {
        MemoryModelKind::ALL.to_vec()
    } else {
        config.models.clone()
    };

    let indices: Vec<u64> = (0..config.pairs).collect();
    run_tasks(config.jobs.max(1), indices, |index, _ctx| {
        let model = models[(index % models.len() as u64) as usize];
        let oracle = OracleConfig {
            model,
            budget: config.budget,
            jobs: 1,
            por: config.por,
        };
        // The fault boundary: a panicking case must neither poison the
        // pool (early drain) nor take the run down — it is counted and
        // the soak moves on, exactly like the serve worker boundary.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let (program, pipeline) = derive_case(config.seed, index, &config.pipeline);
            let report = check_pair(&program, &pipeline, &oracle);
            let minimised = match &report.outcome {
                Outcome::Violation(_) => Some(minimise(
                    &program,
                    &pipeline,
                    &oracle,
                    |r| r.outcome.is_violation(),
                    config.shrink_attempts,
                )),
                Outcome::ExpectedDivergence(_) => {
                    // claim a witness slot before paying for shrinking
                    let claimed = witness_slots
                        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1))
                        .is_ok();
                    claimed.then(|| {
                        minimise(
                            &program,
                            &pipeline,
                            &oracle,
                            |r| r.outcome.is_divergence(),
                            config.shrink_attempts,
                        )
                    })
                }
                _ => None,
            };
            (report, minimised)
        }));

        let mut guard = shared.lock().unwrap_or_else(|e| e.into_inner());
        let (stats, violations, witnesses) = &mut *guard;
        stats.pairs_checked += 1;
        match outcome {
            Err(_) => stats.panics += 1,
            Ok((report, minimised)) => {
                stats.record_latency(report.elapsed);
                match &report.outcome {
                    Outcome::Identity => stats.identity += 1,
                    Outcome::Refines => stats.refines += 1,
                    Outcome::Inconclusive => stats.inconclusive += 1,
                    Outcome::ExpectedDivergence(_) => stats.expected_divergences += 1,
                    Outcome::Violation(_) => stats.violations += 1,
                }
                if let Some(m) = minimised {
                    stats.shrink_steps += m.steps as u64;
                    stats.shrink_attempts += m.attempts as u64;
                    stats.witnesses_minimised += 1;
                    let w = witness_from(&m, model);
                    if w.violation {
                        violations.push(w);
                    } else {
                        witnesses.push(w);
                    }
                }
            }
        }
    });

    let (stats, violations, witnesses) = shared.into_inner().unwrap_or_else(|e| e.into_inner());
    SoakReport {
        stats,
        violations,
        witnesses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_case_is_deterministic() {
        let pcfg = PipelineConfig::default();
        for index in [0u64, 1, 17, 4096] {
            let (p1, pipe1) = derive_case(42, index, &pcfg);
            let (p2, pipe2) = derive_case(42, index, &pcfg);
            assert_eq!(p1, p2);
            assert_eq!(pipe1, pipe2);
        }
        let (a, _) = derive_case(42, 0, &pcfg);
        let (b, _) = derive_case(43, 0, &pcfg);
        assert_ne!(a, b, "different seeds must give different programs");
    }

    #[test]
    fn small_soak_is_clean_and_deterministic() {
        let config = SoakConfig {
            pairs: 60,
            jobs: 2,
            max_witnesses: 2,
            // no wall-clock component: counters must be bit-identical
            // across runs, and only state caps truncate reproducibly
            budget: Budget::unlimited().max_states(20_000),
            ..SoakConfig::default()
        };
        let a = run_soak(&config);
        assert!(a.clean(), "violations: {:?}", a.violations);
        assert_eq!(a.stats.pairs_checked, 60 + 2); // + seeded cases
        assert_eq!(a.stats.seeded_detected, 2);
        // counters (not latencies) are schedule-independent
        let b = run_soak(&config);
        assert_eq!(a.stats.refines, b.stats.refines);
        assert_eq!(a.stats.identity, b.stats.identity);
        assert_eq!(a.stats.expected_divergences, b.stats.expected_divergences);
        assert_eq!(a.stats.violations, b.stats.violations);
    }
}
