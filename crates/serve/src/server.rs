//! The serve loop: admission control, the worker pool, fault-isolated
//! request processing and graceful drain.
//!
//! One [`Server`] owns one serve session. Requests arrive as JSON
//! lines (from stdin via [`Server::run`], or from any number of Unix
//! socket clients via [`Server::run_unix_listener`]), pass through a
//! **bounded admission queue**, and are processed by a fixed pool of
//! worker threads, each running the ordinary [`Analysis`] pipeline —
//! with the work-stealing exploration pool, budgets, metrics and panic
//! quarantine of the in-process engine — plus the service-level
//! robustness machinery:
//!
//! * **backpressure, not collapse** — when the queue is full the
//!   *oldest* queued request is shed with an explicit `overloaded`
//!   response (never a silent drop): under overload the server prefers
//!   serving recent requests over stale ones whose clients have
//!   probably timed out already;
//! * **fault isolation** — each request runs under `catch_unwind`; a
//!   panicking request gets **one** sequential (`jobs = 1`) retry, and
//!   if that panics too it degrades to an `error` response while every
//!   sibling request proceeds untouched;
//! * **bounded degradation** — per-request budgets trip into
//!   `verdict:"unknown"` responses with the truncation reason; no
//!   degraded path can emit `drf_proven` (the same three-valued
//!   discipline the in-process engine enforces);
//! * **graceful drain** — cancelling the [`drain
//!   token`](Server::drain_token) (wired to SIGINT/SIGTERM by the CLI)
//!   stops admission, cancels in-flight analyses cooperatively (they
//!   flush as `unknown`), answers still-queued requests with
//!   `cancelled`, and lets the session end cleanly. Plain EOF instead
//!   drains by *finishing* everything queued.

use std::collections::VecDeque;
use std::io::{BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use transafety_checker::{Analysis, AnalysisReport, Completeness, Verdict};
use transafety_interleaving::{available_jobs, BudgetBound, CancelToken, TruncationReason};
use transafety_lang::parse_program;

use crate::cache::{CacheEntry, CacheKey, CacheLookup, VerdictCache};
use crate::faults::FaultPlan;
use crate::proto::{json_escape, parse_request, Request};
use crate::stats::ServeStats;

/// How long admission and socket-accept loops sleep between polls of
/// the drain token when no work is arriving.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Configuration for one serve session.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Concurrent request executors (each may itself run a parallel
    /// exploration per [`ServeConfig::defaults`]`.jobs`). Clamped to at
    /// least 1.
    pub workers: usize,
    /// Admission queue bound: with this many requests already queued, a
    /// new arrival sheds the oldest queued request. Clamped to ≥ 1.
    pub queue_depth: usize,
    /// Per-request defaults (model, budget, jobs, POR…); individual
    /// requests override field by field.
    pub defaults: Analysis,
    /// Verdict cache directory; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Deterministic fault injection (empty = production behaviour).
    pub faults: FaultPlan,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: available_jobs(),
            queue_depth: 256,
            defaults: Analysis::new(),
            cache_dir: None,
            faults: FaultPlan::default(),
        }
    }
}

/// What a finished session reports back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSummary {
    /// The session's service-level counters and latency samples.
    pub stats: ServeStats,
    /// Wall time of the whole session.
    pub elapsed: Duration,
}

/// A response sink shared by all requests of one client connection.
type Sink = Arc<Mutex<dyn Write + Send>>;

/// One admitted request waiting for (or undergoing) processing.
struct Job {
    /// 1-based admission sequence number (what fault-plan directives
    /// address; shed requests consume a number too).
    seq: u64,
    /// Correlation id echoed in the response.
    id: String,
    req: Request,
    sink: Sink,
    admitted: Instant,
}

/// One serve session. Create with [`Server::new`], then call exactly
/// one of the `run*` entry points; the [`ServeSummary`] carries the
/// final stats.
pub struct Server {
    config: ServeConfig,
    cache: Option<VerdictCache>,
    stats: Mutex<ServeStats>,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    /// `true` while new requests may still be admitted.
    accepting: AtomicBool,
    /// Admission sequence counter.
    seq: AtomicU64,
    drain: CancelToken,
}

/// Locks a mutex, surviving poisoning: the serve loop must keep
/// answering requests even after a worker panicked somewhere
/// unexpected (the counters a panicking thread may have half-updated
/// are diagnostics, not verdicts).
fn lock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Server {
    /// Builds a server, opening (and creating if needed) the verdict
    /// cache directory when one is configured.
    pub fn new(config: ServeConfig) -> std::io::Result<Self> {
        let cache = match &config.cache_dir {
            Some(dir) => Some(VerdictCache::open(dir.clone())?),
            None => None,
        };
        Ok(Server {
            config,
            cache,
            stats: Mutex::new(ServeStats::default()),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            accepting: AtomicBool::new(true),
            seq: AtomicU64::new(0),
            drain: CancelToken::new(),
        })
    }

    /// The session's drain token. Cancelling it (from a signal handler,
    /// a supervisor thread, a test) starts the graceful drain: stop
    /// admitting, cancel in-flight analyses, answer queued requests
    /// with `cancelled`, finish the session.
    #[must_use]
    pub fn drain_token(&self) -> CancelToken {
        self.drain.clone()
    }

    /// A live snapshot of the session's counters.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        lock(&self.stats).clone()
    }

    /// Runs a batch session: requests are read line-by-line from
    /// `reader`, responses are written to `writer` (shared by
    /// reference so callers can keep inspecting it — pass
    /// `Arc::new(Mutex::new(std::io::stdout()))` for the CLI, an
    /// `Arc<Mutex<Vec<u8>>>` in tests). Returns when the input reaches
    /// EOF and all admitted requests are answered, or when the drain
    /// token fires.
    ///
    /// The reader runs on a detached thread (stdin cannot be read with
    /// a timeout); after a drain it may stay blocked on a final
    /// `read_line` until the process exits, which is harmless.
    pub fn run<R, W>(&self, reader: R, writer: &Arc<Mutex<W>>) -> ServeSummary
    where
        R: BufRead + Send + 'static,
        W: Write + Send + 'static,
    {
        let start = Instant::now();
        let sink: Sink = Arc::clone(writer) as Sink;
        let (tx, rx) = mpsc::sync_channel::<String>(64);
        std::thread::spawn(move || {
            // Hand-rolled line loop rather than `lines()`: a signal
            // delivered mid-`read` surfaces as `Interrupted`, which must
            // be retried (keeping any partial line in the buffer), not
            // treated as EOF — otherwise a SIGINT drain looks like a
            // plain end-of-input and skips cancelling queued requests.
            let mut reader = reader;
            let mut line = String::new();
            loop {
                match reader.read_line(&mut line) {
                    Ok(0) => break,
                    Ok(_) => {
                        let msg = line.trim_end_matches(['\n', '\r']).to_owned();
                        line.clear();
                        if tx.send(msg).is_err() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
        });
        std::thread::scope(|scope| {
            for _ in 0..self.config.workers.max(1) {
                scope.spawn(|| self.worker_loop());
            }
            loop {
                if self.drain.is_cancelled() {
                    break;
                }
                match rx.recv_timeout(POLL_INTERVAL) {
                    Ok(line) => self.admit(&line, &sink),
                    Err(mpsc::RecvTimeoutError::Timeout) => continue,
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
            self.close_admission();
        });
        ServeSummary {
            stats: self.stats(),
            elapsed: start.elapsed(),
        }
    }

    /// Runs a socket session: accepts any number of clients on
    /// `listener`, each speaking the same JSON-lines protocol on its
    /// connection; responses go back on the connection that asked.
    /// All clients share one admission queue, worker pool, cache and
    /// stats — the multi-tenant shape of the ROADMAP's "heavy traffic"
    /// goal. Returns when the drain token fires.
    pub fn run_unix_listener(
        &self,
        listener: std::os::unix::net::UnixListener,
    ) -> std::io::Result<ServeSummary> {
        let start = Instant::now();
        listener.set_nonblocking(true)?;
        std::thread::scope(|scope| -> std::io::Result<()> {
            for _ in 0..self.config.workers.max(1) {
                scope.spawn(|| self.worker_loop());
            }
            loop {
                if self.drain.is_cancelled() {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(false)?;
                        stream.set_read_timeout(Some(POLL_INTERVAL))?;
                        let sink: Sink = Arc::new(Mutex::new(stream.try_clone()?));
                        scope.spawn(move || self.connection_loop(stream, &sink));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL_INTERVAL);
                    }
                    Err(e) => {
                        self.close_admission();
                        return Err(e);
                    }
                }
            }
            self.close_admission();
            Ok(())
        })?;
        Ok(ServeSummary {
            stats: self.stats(),
            elapsed: start.elapsed(),
        })
    }

    /// Reads one client connection until EOF or drain. The read
    /// timeout makes the loop re-check the drain token periodically;
    /// `read_line` keeps partial lines in its buffer across timeouts,
    /// so slow writers are reassembled correctly.
    fn connection_loop(&self, stream: std::os::unix::net::UnixStream, sink: &Sink) {
        let mut reader = std::io::BufReader::new(stream);
        let mut line = String::new();
        loop {
            if self.drain.is_cancelled() || !self.accepting.load(Ordering::Acquire) {
                return;
            }
            match reader.read_line(&mut line) {
                Ok(0) => return,
                Ok(_) => {
                    self.admit(line.trim_end_matches(['\n', '\r']), sink);
                    line.clear();
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(_) => return,
            }
        }
    }

    /// Parses and admits one request line, shedding the oldest queued
    /// request if the queue is at its bound. Blank lines are ignored.
    fn admit(&self, line: &str, sink: &Sink) {
        if line.trim().is_empty() {
            return;
        }
        lock(&self.stats).requests += 1;
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let req = match parse_request(line) {
            Ok(req) => req,
            Err(e) => {
                lock(&self.stats).parse_errors += 1;
                let id = e.id.unwrap_or_else(|| seq.to_string());
                self.write_line(
                    sink,
                    &format!(
                        "{{\"id\":\"{}\",\"status\":\"error\",\"error\":\"{}\"}}",
                        json_escape(&id),
                        json_escape(&e.message)
                    ),
                );
                return;
            }
        };
        let id = req.id.clone().unwrap_or_else(|| seq.to_string());
        let job = Job {
            seq,
            id,
            req,
            sink: Arc::clone(sink),
            admitted: Instant::now(),
        };
        let shed = {
            let mut q = lock(&self.queue);
            let shed = if q.len() >= self.config.queue_depth.max(1) {
                q.pop_front()
            } else {
                None
            };
            q.push_back(job);
            self.available.notify_one();
            shed
        };
        if let Some(old) = shed {
            self.respond_overloaded(&old);
        }
    }

    /// Ends admission. On a drain (token cancelled) the still-queued
    /// requests are answered with `cancelled`; on plain EOF they stay
    /// queued for the workers to finish. Either way the workers are
    /// woken so idle ones can exit.
    fn close_admission(&self) {
        self.accepting.store(false, Ordering::Release);
        if self.drain.is_cancelled() {
            let drained: Vec<Job> = lock(&self.queue).drain(..).collect();
            for job in drained {
                self.respond_cancelled(&job);
            }
        }
        self.available.notify_all();
    }

    /// One worker: pop, process, repeat; exit when admission is closed
    /// and the queue is empty.
    fn worker_loop(&self) {
        loop {
            let job = {
                let mut q = lock(&self.queue);
                loop {
                    if let Some(job) = q.pop_front() {
                        break Some(job);
                    }
                    if !self.accepting.load(Ordering::Acquire) {
                        break None;
                    }
                    let (guard, _timeout) = self
                        .available
                        .wait_timeout(q, POLL_INTERVAL)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    q = guard;
                }
            };
            match job {
                // Re-check the drain token on every pop: `close_admission`
                // races the signal bridge, so a job can still be queued
                // when the token fires. Any job popped after the drain
                // started gets an explicit `cancelled` response instead
                // of burning worker time. (A plain-EOF close never
                // cancels the token, so end-of-input still finishes the
                // whole queue.)
                Some(job) if self.drain.is_cancelled() => {
                    self.respond_cancelled(&job);
                }
                Some(job) => self.process(&job),
                None => return,
            }
        }
    }

    /// The per-request Analysis configuration: server defaults with the
    /// request's overrides applied field by field.
    fn request_analysis(&self, req: &Request) -> Analysis {
        let mut a = self.config.defaults.clone();
        if let Some(m) = req.model {
            a = a.model(m);
        }
        if let Some(ms) = req.timeout_ms {
            a = a.timeout(Duration::from_millis(ms));
        }
        if let Some(n) = req.max_states {
            a = a.max_states(usize::try_from(n).unwrap_or(usize::MAX));
        }
        if let Some(n) = req.max_interleavings {
            a = a.max_interleavings(usize::try_from(n).unwrap_or(usize::MAX));
        }
        if let Some(n) = req.max_actions {
            a = a.max_actions(usize::try_from(n).unwrap_or(usize::MAX));
        }
        if let Some(j) = req.jobs {
            a = a.jobs(usize::try_from(j).unwrap_or(1));
        }
        if let Some(p) = req.por {
            a = a.por(p);
        }
        a
    }

    /// The semantic-options fingerprint that, with the normalised
    /// program, addresses the verdict cache. Everything that can change
    /// a complete verdict is in here; things that provably cannot
    /// (worker count, metrics) are not.
    fn fingerprint(analysis: &Analysis) -> String {
        let domain: Vec<String> = analysis
            .domain
            .values()
            .iter()
            .map(ToString::to_string)
            .collect();
        format!(
            "model={};domain={};max_actions={};max_tau={};por={}",
            analysis.model.as_str(),
            domain.join(","),
            analysis.explore.max_actions,
            analysis.explore.max_tau,
            analysis.explore.por,
        )
    }

    /// Processes one admitted request end to end: fault hooks, cache
    /// probe, governed analysis with panic quarantine and one
    /// sequential retry, cache publication, response.
    fn process(&self, job: &Job) {
        let analysis = self.request_analysis(&job.req);
        if let Err(e) = analysis.budget.validate() {
            self.respond_error(job, &format!("budget: {e}"));
            return;
        }
        let program = match parse_program(&job.req.program) {
            Ok(p) => p.program,
            Err(e) => {
                self.respond_error(job, &format!("program: {e}"));
                return;
            }
        };
        if let Some(ms) = self.config.faults.slow_ms_on(job.seq) {
            lock(&self.stats).faults_injected += 1;
            std::thread::sleep(Duration::from_millis(ms));
        }
        let fingerprint = Self::fingerprint(&analysis);
        let normalised = crate::cache::normalise(&program);
        let canonical = normalised.to_string();
        let key = CacheKey::new(&normalised, &fingerprint);
        if let Some(cache) = &self.cache {
            match cache.load(key, &canonical, &fingerprint) {
                CacheLookup::Hit(entry) => {
                    lock(&self.stats).cache_hits += 1;
                    self.respond_cached(job, &analysis, &entry);
                    return;
                }
                CacheLookup::Quarantined => {
                    let mut s = lock(&self.stats);
                    s.cache_quarantined += 1;
                    s.cache_misses += 1;
                }
                CacheLookup::Miss => lock(&self.stats).cache_misses += 1,
            }
        }
        let mut retried = false;
        let report = loop {
            let attempt = u32::from(retried);
            let run = if retried {
                // Sequential fallback recompute: one worker, reference
                // driver, same budget discipline.
                analysis.clone().jobs(1)
            } else {
                analysis.clone()
            };
            let inject_panic = self.config.faults.panic_on(job.seq, attempt);
            if inject_panic {
                lock(&self.stats).faults_injected += 1;
            }
            let drain = self.drain.clone();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                assert!(!inject_panic, "injected worker panic (fault plan)");
                run.run_with_cancel(&program, drain)
            }));
            match outcome {
                Ok(report) => break Some(report),
                Err(_) => {
                    lock(&self.stats).worker_panics += 1;
                    if retried {
                        break None;
                    }
                    lock(&self.stats).retries += 1;
                    retried = true;
                }
            }
        };
        let Some(report) = report else {
            self.respond_error(
                job,
                "worker panicked on both the parallel run and the sequential \
                 retry; request quarantined without a verdict",
            );
            return;
        };
        if report.completeness.is_complete() && report.faults == 0 {
            if let Some(cache) = &self.cache {
                let entry = CacheEntry {
                    program: canonical,
                    fingerprint,
                    verdict: verdict_str(report.verdict).to_string(),
                    behaviours: report.behaviours.value.len() as u64,
                    behaviours_complete: report.behaviours.complete,
                    reachable_states: report.reachable_states as u64,
                };
                if let Ok(path) = cache.store(key, &entry) {
                    lock(&self.stats).cache_writes += 1;
                    if self.config.faults.corrupt_on(job.seq) {
                        lock(&self.stats).faults_injected += 1;
                        corrupt_file(&path);
                    }
                }
            }
        }
        self.respond_report(job, &report, retried);
    }

    fn respond_report(&self, job: &Job, report: &AnalysisReport, retried: bool) {
        // The three-valued discipline, re-checked at the service
        // boundary: a proof may only ever leave the process on a
        // complete, fault-free run.
        debug_assert!(
            report.verdict != Verdict::DrfProven
                || (report.completeness.is_complete() && report.faults == 0),
            "degraded run must not claim a proof"
        );
        let completeness = match report.completeness {
            Completeness::Complete => "complete".to_string(),
            Completeness::Truncated { reason } => format!("truncated:{}", reason_str(reason)),
        };
        {
            let mut s = lock(&self.stats);
            if !report.completeness.is_complete() {
                s.budget_trips += 1;
            }
            s.responses_ok += 1;
            s.record_latency(job.admitted.elapsed());
        }
        let line = format!(
            "{{\"id\":\"{}\",\"status\":\"ok\",\"cmd\":\"{}\",\"model\":\"{}\",\
             \"verdict\":\"{}\",\"racy\":{},\"behaviours\":{},\"behaviours_complete\":{},\
             \"reachable_states\":{},\"completeness\":\"{}\",\"cached\":false,\
             \"retried\":{},\"engine_faults\":{},\"elapsed_micros\":{}}}",
            json_escape(&job.id),
            job.req.cmd.as_str(),
            report.model.as_str(),
            verdict_str(report.verdict),
            report.race.is_some(),
            report.behaviours.value.len(),
            report.behaviours.complete,
            report.reachable_states,
            completeness,
            retried,
            report.faults,
            micros(job.admitted.elapsed()),
        );
        self.write_line(&job.sink, &line);
    }

    fn respond_cached(&self, job: &Job, analysis: &Analysis, entry: &CacheEntry) {
        {
            let mut s = lock(&self.stats);
            s.responses_ok += 1;
            s.record_latency(job.admitted.elapsed());
        }
        let line = format!(
            "{{\"id\":\"{}\",\"status\":\"ok\",\"cmd\":\"{}\",\"model\":\"{}\",\
             \"verdict\":\"{}\",\"racy\":{},\"behaviours\":{},\"behaviours_complete\":{},\
             \"reachable_states\":{},\"completeness\":\"complete\",\"cached\":true,\
             \"retried\":false,\"engine_faults\":0,\"elapsed_micros\":{}}}",
            json_escape(&job.id),
            job.req.cmd.as_str(),
            analysis.model.as_str(),
            json_escape(&entry.verdict),
            entry.verdict == "racy",
            entry.behaviours,
            entry.behaviours_complete,
            entry.reachable_states,
            micros(job.admitted.elapsed()),
        );
        self.write_line(&job.sink, &line);
    }

    fn respond_error(&self, job: &Job, message: &str) {
        {
            let mut s = lock(&self.stats);
            s.responses_error += 1;
            s.record_latency(job.admitted.elapsed());
        }
        self.write_line(
            &job.sink,
            &format!(
                "{{\"id\":\"{}\",\"status\":\"error\",\"error\":\"{}\"}}",
                json_escape(&job.id),
                json_escape(message)
            ),
        );
    }

    fn respond_overloaded(&self, job: &Job) {
        lock(&self.stats).responses_overloaded += 1;
        self.write_line(
            &job.sink,
            &format!(
                "{{\"id\":\"{}\",\"status\":\"overloaded\",\"error\":\"shed by admission \
                 control: queue full (depth {}), oldest request dropped first\"}}",
                json_escape(&job.id),
                self.config.queue_depth.max(1)
            ),
        );
    }

    fn respond_cancelled(&self, job: &Job) {
        lock(&self.stats).responses_cancelled += 1;
        self.write_line(
            &job.sink,
            &format!(
                "{{\"id\":\"{}\",\"status\":\"cancelled\",\"error\":\"server draining; \
                 request was never scheduled\"}}",
                json_escape(&job.id)
            ),
        );
    }

    /// Writes one response line and flushes it (clients block on
    /// complete lines; a buffered half-response is indistinguishable
    /// from a hang). Write errors are swallowed: a client that hung up
    /// forfeits its responses, the server must keep serving others.
    fn write_line(&self, sink: &Sink, line: &str) {
        let mut w = lock(sink);
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }
}

/// The wire spelling of a verdict.
fn verdict_str(v: Verdict) -> &'static str {
    match v {
        Verdict::Racy => "racy",
        Verdict::DrfProven => "drf_proven",
        Verdict::Unknown => "unknown",
    }
}

/// The wire spelling of a truncation reason.
fn reason_str(reason: TruncationReason) -> &'static str {
    match reason {
        TruncationReason::BudgetExceeded(BudgetBound::WallClock) => "wall_clock",
        TruncationReason::BudgetExceeded(BudgetBound::States) => "states",
        TruncationReason::BudgetExceeded(BudgetBound::Interleavings) => "interleavings",
        TruncationReason::BudgetExceeded(BudgetBound::Actions) => "actions",
        TruncationReason::Cancelled => "cancelled",
        TruncationReason::WorkerPanic => "worker_panic",
    }
}

fn micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Deterministically damages a published cache entry in place (the
/// `corrupt@N` fault directive): flips bits near the end of the file —
/// inside the checksummed payload — so the next probe must take the
/// quarantine path.
fn corrupt_file(path: &std::path::Path) {
    if let Ok(mut bytes) = std::fs::read(path) {
        let n = bytes.len();
        if n >= 4 {
            bytes[n - 3] ^= 0xff;
            let _ = std::fs::write(path, bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn run_batch(config: ServeConfig, input: &str) -> (Vec<String>, ServeSummary) {
        let server = Server::new(config).unwrap();
        let out = Arc::new(Mutex::new(Vec::<u8>::new()));
        let summary = server.run(Cursor::new(input.to_string()), &out);
        let bytes = lock(&out).clone();
        let lines = String::from_utf8(bytes)
            .unwrap()
            .lines()
            .map(str::to_owned)
            .collect();
        (lines, summary)
    }

    #[test]
    fn batch_of_three_requests_round_trips() {
        let input = concat!(
            "{\"id\":\"a\",\"program\":\"x := 1; || r0 := x; print r0;\"}\n",
            "\n",
            "{\"id\":\"b\",\"cmd\":\"races\",\"program\":\"volatile v; v := 1; || r0 := v; print r0;\"}\n",
            "{\"id\":\"c\",\"program\":\"syntax error\"}\n",
        );
        let (lines, summary) = run_batch(ServeConfig::default(), input);
        assert_eq!(lines.len(), 3, "{lines:?}");
        let a = lines.iter().find(|l| l.contains("\"id\":\"a\"")).unwrap();
        assert!(
            a.contains("\"verdict\":\"racy\"") && a.contains("\"racy\":true"),
            "{a}"
        );
        let b = lines.iter().find(|l| l.contains("\"id\":\"b\"")).unwrap();
        assert!(
            b.contains("\"verdict\":\"drf_proven\"") && b.contains("\"cmd\":\"races\""),
            "{b}"
        );
        let c = lines.iter().find(|l| l.contains("\"id\":\"c\"")).unwrap();
        assert!(c.contains("\"status\":\"error\""), "{c}");
        assert_eq!(summary.stats.requests, 3);
        assert_eq!(summary.stats.responses_ok, 2);
        assert_eq!(summary.stats.responses_error, 1);
        assert_eq!(summary.stats.latency_count(), 3);
    }

    #[test]
    fn per_request_budget_trips_to_unknown() {
        let input = "{\"id\":\"t\",\"program\":\"x := 1; || r0 := x; r1 := x; print r0;\",\"max_states\":1}\n";
        let (lines, summary) = run_batch(ServeConfig::default(), input);
        assert_eq!(lines.len(), 1);
        assert!(
            lines[0].contains("\"completeness\":\"truncated:states\""),
            "{}",
            lines[0]
        );
        assert!(!lines[0].contains("drf_proven"), "{}", lines[0]);
        assert_eq!(summary.stats.budget_trips, 1);
    }

    #[test]
    fn drain_token_cancels_queued_work() {
        let server = Server::new(ServeConfig::default()).unwrap();
        server.drain_token().cancel();
        let out = Arc::new(Mutex::new(Vec::<u8>::new()));
        let summary = server.run(
            Cursor::new("{\"id\":\"x\",\"program\":\"x := 1;\"}\n".to_string()),
            &out,
        );
        // Pre-cancelled drain: the admission loop exits before reading
        // anything; no hangs, no partially-served session.
        assert_eq!(summary.stats.responses_ok, 0);
    }
}
