//! The semantic reordering transformation (§4): reordering functions,
//! de-permutations of prefixes, and the witness search.

use std::fmt;

use transafety_traces::{Trace, Traceset};

use crate::reorderable::reorderable;

/// A witness that a trace de-permutes into the original traceset: the
/// reordering function `f` mapping indices of the transformed trace to
/// indices of the original trace.
///
/// # Example
///
/// The Fig. 4 walkthrough: `f = {0↦0, 1↦2, 2↦1, 3↦3}` de-permutes
/// `t' = [S(0), W[x=1], R[y=1], X(1)]` back to
/// `[S(0), R[y=1], W[x=1], X(1)]`.
///
/// ```
/// use transafety_traces::{Action, Loc, ThreadId, Trace, Value};
/// use transafety_transform::{de_permute, ReorderingFn};
/// let (x, y) = (Loc::normal(0), Loc::normal(1));
/// let t_prime = Trace::from_actions([
///     Action::start(ThreadId::new(0)),
///     Action::write(x, Value::new(1)),
///     Action::read(y, Value::new(1)),
///     Action::external(Value::new(1)),
/// ]);
/// let f = ReorderingFn::new(vec![0, 2, 1, 3]).unwrap();
/// assert!(f.is_reordering_function_for(&t_prime));
/// let original = de_permute(&t_prime, &f);
/// assert_eq!(original[1], Action::read(y, Value::new(1)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReorderingFn {
    map: Vec<usize>,
}

/// Error returned by [`ReorderingFn::new`] when the map is not a
/// permutation of `{0, …, n-1}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotAPermutation;

impl fmt::Display for NotAPermutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("the index map is not a permutation of 0..n")
    }
}

impl std::error::Error for NotAPermutation {}

impl ReorderingFn {
    /// Creates a reordering function from `f(i) = map[i]`.
    ///
    /// # Errors
    ///
    /// Returns [`NotAPermutation`] if `map` is not a bijection on
    /// `{0, …, map.len()-1}`.
    pub fn new(map: Vec<usize>) -> Result<Self, NotAPermutation> {
        let mut seen = vec![false; map.len()];
        for &v in &map {
            if v >= map.len() || seen[v] {
                return Err(NotAPermutation);
            }
            seen[v] = true;
        }
        Ok(ReorderingFn { map })
    }

    /// The identity function on `{0, …, n-1}`.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        ReorderingFn {
            map: (0..n).collect(),
        }
    }

    /// `f(i)`.
    #[must_use]
    pub fn apply(&self, i: usize) -> usize {
        self.map[i]
    }

    /// The domain size.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` for the empty function.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The underlying index map.
    #[must_use]
    pub fn as_slice(&self) -> &[usize] {
        &self.map
    }

    /// Is this a *reordering function* for the (transformed) trace `t`
    /// (§4)? For all `i < j`, `f(j) < f(i)` implies `t_j` is reorderable
    /// with `t_i`.
    #[must_use]
    pub fn is_reordering_function_for(&self, t: &Trace) -> bool {
        if self.map.len() != t.len() {
            return false;
        }
        for i in 0..t.len() {
            for j in i + 1..t.len() {
                if self.map[j] < self.map[i] && !reorderable(&t[j], &t[i]) {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Display for ReorderingFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{i}↦{v}")?;
        }
        write!(f, "}}")
    }
}

/// The de-permutation of the length-`n` prefix of `t` under `f` (§4):
/// the first `n` elements of `t`, arranged in increasing order of their
/// `f`-images.
///
/// `de_permute_prefix(t, f, |t|)` is the full de-permutation `f↓(t)`.
#[must_use]
pub fn de_permute_prefix(t: &Trace, f: &ReorderingFn, n: usize) -> Trace {
    let n = n.min(t.len());
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by_key(|&i| f.apply(i));
    idx.into_iter().map(|i| t[i]).collect()
}

/// The full de-permutation `f↓(t)`.
#[must_use]
pub fn de_permute(t: &Trace, f: &ReorderingFn) -> Trace {
    de_permute_prefix(t, f, t.len())
}

/// Does `f` *de-permute* `t` into the set recognised by `member` (§4)?
/// `f` must be a reordering function for `t` and every prefix
/// de-permutation must be a member.
///
/// `member` abstracts the target set: plain traceset membership for the
/// pure reordering transformation, or "is an elimination of a wildcard
/// trace belonging to T" for the combined transformation of Lemma 5.
#[must_use]
pub fn de_permutes_with<F: FnMut(&Trace) -> bool>(
    t: &Trace,
    f: &ReorderingFn,
    mut member: F,
) -> bool {
    f.is_reordering_function_for(t) && (0..=t.len()).all(|n| member(&de_permute_prefix(t, f, n)))
}

/// Searches for a function de-permuting `t` into the set recognised by
/// `member`. Complete (backtracking over all permutations, pruned by the
/// reorderability constraint and by prefix membership).
#[must_use]
pub fn find_reordering_with<F: FnMut(&Trace) -> bool>(
    t: &Trace,
    mut member: F,
) -> Option<ReorderingFn> {
    if !member(&Trace::new()) {
        return None;
    }
    let n = t.len();
    let mut assignment: Vec<usize> = Vec::with_capacity(n);
    let mut used = vec![false; n];
    fn dfs<F: FnMut(&Trace) -> bool>(
        t: &Trace,
        n: usize,
        assignment: &mut Vec<usize>,
        used: &mut Vec<bool>,
        member: &mut F,
    ) -> bool {
        let k = assignment.len();
        if k == n {
            return true;
        }
        'target: for target in 0..n {
            if used[target] {
                continue;
            }
            // reorderability constraint against already-assigned indices
            for (i, &fi) in assignment.iter().enumerate() {
                if target < fi && !reorderable(&t[k], &t[i]) {
                    continue 'target;
                }
            }
            assignment.push(target);
            used[target] = true;
            // prefix membership: de-permute the first k+1 elements
            let mut idx: Vec<usize> = (0..=k).collect();
            idx.sort_by_key(|&i| assignment[i]);
            let prefix: Trace = idx.iter().map(|&i| t[i]).collect();
            if member(&prefix) && dfs(t, n, assignment, used, member) {
                return true;
            }
            used[target] = false;
            assignment.pop();
        }
        false
    }
    if dfs(t, n, &mut assignment, &mut used, &mut member) {
        Some(ReorderingFn { map: assignment })
    } else {
        None
    }
}

/// Searches for a function de-permuting `t` into the traceset `original`.
#[must_use]
pub fn find_reordering(t: &Trace, original: &Traceset) -> Option<ReorderingFn> {
    find_reordering_with(t, |p| original.contains(p))
}

/// The failure report of [`is_reordering_of`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotAReordering {
    /// The transformed-traceset member with no de-permuting function.
    pub trace: Trace,
}

impl fmt::Display for NotAReordering {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace {} has no function de-permuting it into the original",
            self.trace
        )
    }
}

impl std::error::Error for NotAReordering {}

/// Decides whether `transformed` is a reordering of `original` (§4):
/// every member trace of `transformed` must de-permute into `original`.
///
/// # Errors
///
/// Returns [`NotAReordering`] carrying the first member trace with no
/// witness.
pub fn is_reordering_of(transformed: &Traceset, original: &Traceset) -> Result<(), NotAReordering> {
    for t in transformed.traces() {
        if find_reordering(&t, original).is_none() {
            return Err(NotAReordering { trace: t });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use transafety_traces::{Action, Domain, Loc, Monitor, ThreadId, Value};

    fn tid(i: u32) -> ThreadId {
        ThreadId::new(i)
    }
    fn x() -> Loc {
        Loc::normal(0)
    }
    fn y() -> Loc {
        Loc::normal(1)
    }
    fn v(n: u32) -> Value {
        Value::new(n)
    }

    fn fig4_t_prime() -> Trace {
        Trace::from_actions([
            Action::start(tid(0)),
            Action::write(x(), v(1)),
            Action::read(y(), v(1)),
            Action::external(v(1)),
        ])
    }

    fn fig4_f() -> ReorderingFn {
        ReorderingFn::new(vec![0, 2, 1, 3]).unwrap()
    }

    #[test]
    fn fig4_de_permutations_by_length() {
        // Fig. 4 of the paper: de-permutations of t' for n = 0..4.
        let t = fig4_t_prime();
        let f = fig4_f();
        assert!(f.is_reordering_function_for(&t));
        let expect = |actions: Vec<Action>| Trace::from_actions(actions);
        assert_eq!(de_permute_prefix(&t, &f, 0), Trace::new());
        assert_eq!(
            de_permute_prefix(&t, &f, 1),
            expect(vec![Action::start(tid(0))])
        );
        assert_eq!(
            de_permute_prefix(&t, &f, 2),
            expect(vec![Action::start(tid(0)), Action::write(x(), v(1))])
        );
        assert_eq!(
            de_permute_prefix(&t, &f, 3),
            expect(vec![
                Action::start(tid(0)),
                Action::read(y(), v(1)),
                Action::write(x(), v(1)),
            ])
        );
        assert_eq!(
            de_permute(&t, &f),
            expect(vec![
                Action::start(tid(0)),
                Action::read(y(), v(1)),
                Action::write(x(), v(1)),
                Action::external(v(1)),
            ])
        );
    }

    #[test]
    fn fig4_function_is_not_a_reordering_without_elimination() {
        // §4: T' is NOT a plain reordering of T because [S(0), W[x=1]]
        // (the n = 2 de-permutation) is not in T. It becomes one after
        // adding the eliminated trace (tested in combined.rs).
        let d = Domain::zero_to(1);
        let mut original = transafety_traces::Traceset::new();
        for val in d.iter() {
            original
                .insert(Trace::from_actions([
                    Action::start(tid(0)),
                    Action::read(y(), val),
                    Action::write(x(), v(1)),
                    Action::external(val),
                ]))
                .unwrap();
        }
        let t = fig4_t_prime();
        assert!(find_reordering(&t, &original).is_none());
        // with T* = T ∪ {[S(0), W[x=1]]} it works:
        let mut t_star = original.clone();
        t_star
            .insert(Trace::from_actions([
                Action::start(tid(0)),
                Action::write(x(), v(1)),
            ]))
            .unwrap();
        let f = find_reordering(&t, &t_star).expect("de-permutes into T*");
        assert!(de_permutes_with(&t, &f, |p| t_star.contains(p)));
        assert_eq!(f, fig4_f());
    }

    #[test]
    fn reordering_function_validation() {
        let t = fig4_t_prime();
        assert!(
            ReorderingFn::new(vec![0, 0, 1, 2]).is_err(),
            "not injective"
        );
        assert!(ReorderingFn::new(vec![0, 1, 2, 9]).is_err(), "out of range");
        let id = ReorderingFn::identity(4);
        assert!(id.is_reordering_function_for(&t));
        // swapping the external with the start is not permitted
        let bad = ReorderingFn::new(vec![3, 1, 2, 0]).unwrap();
        assert!(!bad.is_reordering_function_for(&t));
        // length mismatch
        assert!(!ReorderingFn::identity(2).is_reordering_function_for(&t));
    }

    #[test]
    fn conflicting_accesses_cannot_swap() {
        let t = Trace::from_actions([
            Action::start(tid(0)),
            Action::write(x(), v(1)),
            Action::read(x(), v(1)),
        ]);
        // f swapping the write and read of x
        let f = ReorderingFn::new(vec![0, 2, 1]).unwrap();
        assert!(!f.is_reordering_function_for(&t));
    }

    #[test]
    fn roach_motel_reordering_function() {
        let m = Monitor::new(0);
        // transformed: lock m; x:=1  (write moved into the lock region)
        let t = Trace::from_actions([
            Action::start(tid(0)),
            Action::lock(m),
            Action::write(x(), v(1)),
        ]);
        // original: x:=1; lock m
        let f = ReorderingFn::new(vec![0, 2, 1]).unwrap();
        assert!(
            f.is_reordering_function_for(&t),
            "W[x] reorderable with later acquire"
        );
        let original_trace = de_permute(&t, &f);
        assert_eq!(
            original_trace,
            Trace::from_actions([
                Action::start(tid(0)),
                Action::write(x(), v(1)),
                Action::lock(m),
            ])
        );
        // the opposite move (hoisting out of the lock region) has no
        // reordering function
        let t_out = Trace::from_actions([
            Action::start(tid(0)),
            Action::write(x(), v(1)),
            Action::lock(m),
        ]);
        let f_out = ReorderingFn::new(vec![0, 2, 1]).unwrap();
        assert!(!f_out.is_reordering_function_for(&t_out));
    }

    #[test]
    fn is_reordering_of_full_tracesets() {
        // Fig. 2: thread-1 traceset {[S(1), W[x=1], R[y=v], X(v)]} is a
        // reordering of T* (original + eliminated trace), thread-wise.
        let d = Domain::zero_to(1);
        let mut t_star = transafety_traces::Traceset::new();
        let mut transformed = transafety_traces::Traceset::new();
        for val in d.iter() {
            t_star
                .insert(Trace::from_actions([
                    Action::start(tid(1)),
                    Action::read(y(), val),
                    Action::write(x(), v(1)),
                    Action::external(val),
                ]))
                .unwrap();
            transformed
                .insert(Trace::from_actions([
                    Action::start(tid(1)),
                    Action::write(x(), v(1)),
                    Action::read(y(), val),
                    Action::external(val),
                ]))
                .unwrap();
        }
        t_star
            .insert(Trace::from_actions([
                Action::start(tid(1)),
                Action::write(x(), v(1)),
            ]))
            .unwrap();
        is_reordering_of(&transformed, &t_star).expect("Fig. 2 reordering");
        // and the identity always works
        is_reordering_of(&t_star, &t_star).expect("identity reordering");
    }

    #[test]
    fn non_reordering_rejected_with_witness_trace() {
        let mut original = transafety_traces::Traceset::new();
        original
            .insert(Trace::from_actions([
                Action::start(tid(0)),
                Action::external(v(1)),
            ]))
            .unwrap();
        let mut transformed = transafety_traces::Traceset::new();
        transformed
            .insert(Trace::from_actions([
                Action::start(tid(0)),
                Action::external(v(2)),
            ]))
            .unwrap();
        let err = is_reordering_of(&transformed, &original).unwrap_err();
        assert_eq!(err.trace.len(), 2);
        assert!(err.to_string().contains("de-permuting"));
    }

    #[test]
    fn display_of_reordering_fn() {
        assert_eq!(fig4_f().to_string(), "{0↦0, 1↦2, 2↦1, 3↦3}");
    }
}
