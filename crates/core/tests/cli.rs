//! End-to-end tests of the `drfcheck` binary.

use std::process::Command;
use std::time::{Duration, Instant};

fn drfcheck(args: &[&str]) -> (String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_drfcheck"))
        .args(args)
        .output()
        .expect("drfcheck runs");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    (stdout, out.status.success())
}

fn drfcheck_full(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_drfcheck"))
        .args(args)
        .output()
        .expect("drfcheck runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

/// A DRF (all accesses volatile) program whose reachable state space is
/// exponential in the thread count — no budgetless race search can
/// finish it in reasonable time.
fn exponential_program_file() -> std::path::PathBuf {
    let thread = "v := 1; r0 := v; v := r0; r1 := v; print r1;";
    let src = format!("volatile v;\n{}", [thread; 8].join("\n|| "));
    let path =
        std::env::temp_dir().join(format!("drfcheck-exponential-{}.tsl", std::process::id()));
    std::fs::write(&path, src).expect("temp program is writable");
    path
}

#[test]
fn races_on_corpus_programs() {
    let (out, ok) = drfcheck(&["races", "sb"]);
    assert!(!ok, "sb is racy: non-zero exit");
    assert!(out.contains("data race between"), "{out}");
    let (out, ok) = drfcheck(&["races", "sb-volatile"]);
    assert!(ok);
    assert!(out.contains("data race free"));
}

#[test]
fn classify_pairs() {
    let (out, ok) = drfcheck(&["classify", "fig1-original", "fig1-transformed"]);
    assert!(ok, "{out}");
    assert!(out.contains("elimination"), "{out}");
    let (out, ok) = drfcheck(&["classify", "fig3-a", "fig3-b"]);
    assert!(!ok, "read introduction is outside the safe classes");
    assert!(out.contains("outside the safe classes"), "{out}");
}

#[test]
fn behaviours_lists_prefix_closed_set() {
    let (out, ok) = drfcheck(&["behaviours", "fig2-original"]);
    assert!(ok);
    assert!(
        out.lines().any(|l| l == "[]"),
        "empty behaviour always present: {out}"
    );
    assert!(out.lines().any(|l| l == "[0]"));
    assert!(
        !out.lines().any(|l| l == "[1]"),
        "fig2 original cannot print 1"
    );
}

#[test]
fn oota_and_tso_and_dot() {
    let (out, ok) = drfcheck(&["oota", "oota", "42"]);
    assert!(ok, "{out}");
    assert!(out.contains("no thin-air origin"), "{out}");
    let (out, ok) = drfcheck(&["tso", "sb"]);
    assert!(ok, "{out}");
    assert!(out.contains("relaxed"), "{out}");
    let (out, ok) = drfcheck(&["dot", "sb"]);
    assert!(ok);
    assert!(out.starts_with("digraph"));
}

#[test]
fn usage_on_bad_arguments() {
    let out = Command::new(env!("CARGO_BIN_EXE_drfcheck"))
        .arg("frobnicate")
        .output()
        .expect("drfcheck runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage"));
    // The exit-code contract is part of the help text.
    for line in ["exit codes", "--timeout", "--max-states"] {
        assert!(stderr.contains(line), "help must document {line}: {stderr}");
    }
}

#[test]
fn check_reports_three_valued_verdicts() {
    let (out, _, code) = drfcheck_full(&["check", "sb"]);
    assert_eq!(code, Some(1), "racy program exits 1: {out}");
    assert!(out.contains("verdict: racy"), "{out}");
    assert!(out.contains("completeness: complete"), "{out}");
    let (out, _, code) = drfcheck_full(&["check", "sb-volatile"]);
    assert_eq!(code, Some(0), "{out}");
    assert!(out.contains("verdict: data race free (proven)"), "{out}");
}

#[test]
fn no_por_flag_agrees_with_default() {
    for prog in ["sb", "sb-volatile"] {
        let (reduced, _, code_reduced) = drfcheck_full(&["check", prog]);
        let (full, _, code_full) = drfcheck_full(&["--no-por", "check", prog]);
        assert_eq!(code_reduced, code_full, "{prog}");
        let verdict = |out: &str| {
            out.lines()
                .find(|l| l.starts_with("verdict:"))
                .map(str::to_owned)
        };
        assert_eq!(verdict(&reduced), verdict(&full), "{prog}");
        assert!(verdict(&reduced).is_some(), "{prog}: {reduced}");
    }
}

#[test]
fn timeout_on_exponential_program_exits_4_promptly() {
    let path = exponential_program_file();
    let started = Instant::now();
    let (out, err, code) = drfcheck_full(&["--timeout", "1", "races", path.to_str().unwrap()]);
    let elapsed = started.elapsed();
    let _ = std::fs::remove_file(&path);
    assert_eq!(code, Some(4), "stdout: {out}\nstderr: {err}");
    assert!(out.contains("unknown"), "{out}");
    assert!(err.contains("truncated"), "{err}");
    assert!(err.contains("states explored"), "{err}");
    assert!(
        elapsed < Duration::from_secs(4),
        "deadline must be enforced promptly, took {elapsed:?}"
    );
}

#[test]
fn state_cap_exits_3_with_partial_report() {
    let path = exponential_program_file();
    let (out, err, code) = drfcheck_full(&["--max-states", "64", "races", path.to_str().unwrap()]);
    let _ = std::fs::remove_file(&path);
    assert_eq!(code, Some(3), "stdout: {out}\nstderr: {err}");
    assert!(out.contains("unknown"), "{out}");
    assert!(err.contains("state cap"), "{err}");
}

#[test]
fn injected_worker_panic_recovers_and_exits_5() {
    // mp-volatile is DRF, so a clean run prints the verdict and exits
    // 0; with the test hook armed one parallel worker panics, the pool
    // quarantines it, and the sequential fallback still completes the
    // analysis — same verdict, exit 5, process alive.
    let out = Command::new(env!("CARGO_BIN_EXE_drfcheck"))
        .args(["--jobs", "4", "races", "mp-volatile"])
        .env("TRANSAFETY_INJECT_WORKER_PANIC", "1")
        .output()
        .expect("drfcheck runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(5),
        "stdout: {stdout}\nstderr: {stderr}"
    );
    assert!(stdout.contains("data race free"), "{stdout}");
    assert!(stderr.contains("quarantined"), "{stderr}");
}

#[test]
#[cfg(unix)]
fn sigint_flushes_partial_report_and_exits_4() {
    let path = exponential_program_file();
    let child = Command::new(env!("CARGO_BIN_EXE_drfcheck"))
        .args(["--jobs", "2", "races", path.to_str().unwrap()])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("drfcheck spawns");
    std::thread::sleep(Duration::from_millis(300));
    let kill = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(kill.success());
    let out = child.wait_with_output().expect("drfcheck exits");
    let _ = std::fs::remove_file(&path);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(4),
        "stdout: {stdout}\nstderr: {stderr}"
    );
    assert!(stdout.contains("unknown"), "{stdout}");
    assert!(stderr.contains("cancelled"), "{stderr}");
}

#[test]
fn litmus_lists_corpus() {
    let (out, ok) = drfcheck(&["litmus"]);
    assert!(ok);
    assert!(out.lines().count() >= 30);
    assert!(out.contains("fig2-original"));
}
