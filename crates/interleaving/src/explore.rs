//! Exhaustive exploration of the sequentially consistent executions of a
//! finite traceset.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use transafety_traces::{Action, Loc, Monitor, Traceset, Value};

use crate::budget::BudgetGuard;
use crate::{par, Event, IndexedTraceset, Interleaving};

/// The behaviours of a program: a prefix-closed set of sequences of
/// external-action values (§1/§5 of the paper observe programs through
/// their external actions).
pub type Behaviours = BTreeSet<Vec<Value>>;

/// Caps on exploration size, used by the execution-enumerating entry
/// points to stay total on adversarial inputs.
///
/// # Example
///
/// ```
/// use transafety_interleaving::ExploreLimits;
/// let limits = ExploreLimits::default();
/// assert!(limits.max_interleavings > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreLimits {
    /// Maximum number of maximal executions to materialise.
    pub max_interleavings: usize,
}

impl Default for ExploreLimits {
    fn default() -> Self {
        ExploreLimits {
            max_interleavings: 1_000_000,
        }
    }
}

/// A data race found by the explorer: a concrete execution ending in two
/// adjacent conflicting actions of different threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceWitness {
    /// The racy execution; the race is between its last two events.
    pub execution: Interleaving,
}

impl RaceWitness {
    /// The index of the first event of the racing pair.
    #[must_use]
    pub fn index(&self) -> usize {
        self.execution.len() - 2
    }

    /// The two racing events.
    #[must_use]
    pub fn pair(&self) -> (Event, Event) {
        let n = self.execution.len();
        (self.execution[n - 2], self.execution[n - 1])
    }
}

impl std::fmt::Display for RaceWitness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (a, b) = self.pair();
        write!(f, "data race between {a} and {b} in {}", self.execution)
    }
}

/// Exhaustive explorer of the sequentially consistent executions of a
/// [`Traceset`] (§3).
///
/// All entry points are *exact* for the (finite) traceset:
///
/// * [`behaviours`](Explorer::behaviours) — the set of behaviours of all
///   executions, computed by memoised dynamic programming over explorer
///   states (never materialises the exponentially many interleavings);
/// * [`race_witness`](Explorer::race_witness) /
///   [`is_data_race_free`](Explorer::is_data_race_free) — the §3
///   adjacent-conflict data-race condition, by memoised search;
/// * [`maximal_executions`](Explorer::maximal_executions) — the raw
///   enumeration (exponential; intended for the paper's litmus-sized
///   programs and for cross-validating the clever entry points);
/// * [`count_maximal_executions`](Explorer::count_maximal_executions) —
///   counting by dynamic programming.
///
/// # Partial-order reduction
///
/// The behaviour and race entry points apply a happens-before
/// commutativity partial-order reduction (ample-set style) by default:
/// when every possible next action of some thread is *invisible* — it
/// neither synchronises nor conflicts with any action another thread
/// can ever perform, per the paper's §3 conflict and happens-before
/// definitions — only that thread is expanded, pruning the
/// Mazurkiewicz-equivalent interleavings of commuting moves. The
/// reduction preserves the behaviour set and the existence of §3
/// adjacent-conflict races exactly (see `docs/paper-mapping.md`);
/// [`por`](Explorer::por)`(false)` restores the unreduced engine. The
/// counting and enumeration entry points
/// ([`maximal_executions`](Explorer::maximal_executions),
/// [`count_maximal_executions`](Explorer::count_maximal_executions),
/// [`count_reachable_states`](Explorer::count_reachable_states)) are
/// defined over the *full* interleaving set and always ignore the
/// reduction.
///
/// # Example
///
/// ```
/// use transafety_traces::{Action, Loc, ThreadId, Trace, Traceset, Value};
/// use transafety_interleaving::Explorer;
/// let x = Loc::normal(0);
/// let mut t = Traceset::new();
/// t.insert(Trace::from_actions([
///     Action::start(ThreadId::new(0)),
///     Action::write(x, Value::new(1)),
/// ]))?;
/// t.insert(Trace::from_actions([
///     Action::start(ThreadId::new(1)),
///     Action::read(x, Value::new(1)),
/// ]))?;
/// let explorer = Explorer::new(&t);
/// assert!(!explorer.is_data_race_free()); // unsynchronised W/R on x
/// # Ok::<(), transafety_traces::TraceError>(())
/// ```
#[derive(Debug)]
pub struct Explorer {
    trie: IndexedTraceset,
    por: bool,
    footprint: Footprint,
}

/// The static per-location access footprint of a traceset: which thread
/// indices ever read or write each location, over *all* traces. The
/// partial-order reduction derives independence from it: an access to a
/// location no other thread touches commutes with every move of every
/// other thread.
#[derive(Debug, Default)]
struct Footprint {
    /// Thread indices that ever write each location.
    writers: BTreeMap<Loc, BTreeSet<usize>>,
    /// Thread indices that ever read or write each location.
    accessors: BTreeMap<Loc, BTreeSet<usize>>,
}

impl Footprint {
    fn of(trie: &IndexedTraceset) -> Footprint {
        let mut fp = Footprint::default();
        // Traces start with their thread's Start action, so the subtrie
        // under each root edge holds exactly one thread's actions.
        for (root_action, subtree) in trie.edges(IndexedTraceset::ROOT) {
            let Action::Start(tid) = root_action else {
                continue;
            };
            let Some(k) = trie.threads().iter().position(|t| t == tid) else {
                continue;
            };
            let mut stack = vec![subtree];
            while let Some(node) = stack.pop() {
                for (a, next) in trie.edges(node) {
                    match *a {
                        Action::Read { loc, .. } => {
                            fp.accessors.entry(loc).or_default().insert(k);
                        }
                        Action::Write { loc, .. } => {
                            fp.accessors.entry(loc).or_default().insert(k);
                            fp.writers.entry(loc).or_default().insert(k);
                        }
                        _ => {}
                    }
                    stack.push(next);
                }
            }
        }
        fp
    }
}

/// The explorer's notion of machine state: per-thread trie node, shared
/// memory contents and the lock state.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct State {
    cursors: Vec<usize>,
    memory: BTreeMap<Loc, Value>,
    locks: BTreeMap<Monitor, (usize, u32)>,
}

/// A single enabled move: thread index, the action, and the successor
/// trie node for that thread.
#[derive(Debug, Clone, Copy)]
struct Move {
    thread: usize,
    action: Action,
    next_node: usize,
}

/// Memo key of the race search: the explorer state plus the previous
/// normal access as `(thread, location, was_write)`.
type RaceKey = (State, Option<(usize, Loc, bool)>);

impl Explorer {
    /// Creates an explorer for the given traceset (with partial-order
    /// reduction enabled; see [`por`](Explorer::por)).
    #[must_use]
    pub fn new(t: &Traceset) -> Self {
        let trie = IndexedTraceset::new(t);
        let footprint = Footprint::of(&trie);
        Explorer {
            trie,
            por: true,
            footprint,
        }
    }

    /// Enables or disables the happens-before partial-order reduction
    /// for the behaviour and race entry points (default: enabled). Both
    /// settings compute the same behaviours and the same racy/DRF
    /// verdict; disabling only matters for cross-validating the
    /// reduction or measuring the full state space.
    #[must_use]
    pub fn por(mut self, enabled: bool) -> Self {
        self.por = enabled;
        self
    }

    fn initial_state(&self) -> State {
        State {
            cursors: vec![IndexedTraceset::ROOT; self.trie.threads().len()],
            memory: BTreeMap::new(),
            locks: BTreeMap::new(),
        }
    }

    /// Enabled moves at `state`, in deterministic order.
    fn moves(&self, state: &State) -> Vec<Move> {
        let mut out = Vec::new();
        for (k, &node) in state.cursors.iter().enumerate() {
            for (a, next) in self.trie.edges(node) {
                let enabled = match *a {
                    Action::Start(entry) => {
                        node == IndexedTraceset::ROOT && entry == self.trie.threads()[k]
                    }
                    Action::Read { loc, value } => {
                        state.memory.get(&loc).copied().unwrap_or(Value::ZERO) == value
                    }
                    Action::Write { .. } | Action::External(_) => true,
                    Action::Lock(m) => match state.locks.get(&m) {
                        None => true,
                        Some(&(holder, _)) => holder == k,
                    },
                    Action::Unlock(m) => {
                        matches!(state.locks.get(&m), Some(&(holder, depth)) if holder == k && depth > 0)
                    }
                };
                if enabled {
                    out.push(Move {
                        thread: k,
                        action: *a,
                        next_node: next,
                    });
                }
            }
        }
        out
    }

    /// Is `a`, performed by thread `k`, *invisible*: guaranteed to
    /// neither synchronise nor conflict (§3) with any action any other
    /// thread can ever perform, and externally unobservable?
    ///
    /// Invisible actions commute with every other-thread move, their
    /// enabledness is stable under other-thread moves, and they can
    /// never be an endpoint of a data race — the three facts the
    /// ample-set reduction in [`por_moves`](Explorer::por_moves) rests
    /// on.
    fn invisible(&self, k: usize, a: &Action) -> bool {
        match *a {
            // Thread starts only advance the starting thread's cursor.
            Action::Start(_) => true,
            // A non-volatile read of a location no other thread ever
            // writes: the value it sees cannot change under it, and it
            // conflicts with nothing.
            Action::Read { loc, .. } => {
                !loc.is_volatile()
                    && self
                        .footprint
                        .writers
                        .get(&loc)
                        .is_none_or(|ws| ws.iter().all(|&w| w == k))
            }
            // A non-volatile write to a location no other thread ever
            // touches: invisible to every other thread's reads.
            Action::Write { loc, .. } => {
                !loc.is_volatile()
                    && self
                        .footprint
                        .accessors
                        .get(&loc)
                        .is_none_or(|ts| ts.iter().all(|&t| t == k))
            }
            // Lock/Unlock synchronise; External is observable behaviour.
            Action::Lock(_) | Action::Unlock(_) | Action::External(_) => false,
        }
    }

    /// The reduced move set at `state`: the ample set of the
    /// happens-before partial-order reduction, or all enabled moves
    /// when no reduction applies (or POR is disabled).
    ///
    /// Selection rule: the lowest-indexed thread whose *every* trie
    /// edge at its current node — enabled or not — is
    /// [`invisible`](Explorer::invisible) and that has at least one
    /// enabled move becomes the ample thread; only its moves are
    /// explored. Checking all edges (not just enabled ones) matters: a
    /// disabled read edge of a shared location could become enabled
    /// after another thread's write, so only a thread whose entire
    /// next-step alternative set commutes with the rest of the program
    /// may be prioritised. The choice is a pure function of the state,
    /// so memoisation and parallel graph deduplication stay exact.
    ///
    /// Every explorer move strictly advances a trie cursor, so the
    /// state graph is a DAG and the classic ample-set cycle proviso
    /// holds vacuously; soundness is argued in `docs/paper-mapping.md`.
    fn por_moves(&self, state: &State) -> Vec<Move> {
        let moves = self.moves(state);
        if !self.por {
            return moves;
        }
        for (k, &node) in state.cursors.iter().enumerate() {
            let mut edges = self.trie.edges(node).peekable();
            if edges.peek().is_none() {
                continue; // thread finished
            }
            if !edges.all(|(a, _)| self.invisible(k, a)) {
                continue;
            }
            let ample: Vec<Move> = moves.iter().filter(|mv| mv.thread == k).copied().collect();
            if !ample.is_empty() {
                return ample;
            }
        }
        moves
    }

    /// Applies a move to a state.
    fn apply(&self, state: &State, mv: &Move) -> State {
        let mut next = state.clone();
        next.cursors[mv.thread] = mv.next_node;
        match mv.action {
            Action::Write { loc, value } => {
                next.memory.insert(loc, value);
            }
            Action::Lock(m) => {
                let entry = next.locks.entry(m).or_insert((mv.thread, 0));
                entry.1 += 1;
            }
            Action::Unlock(m) => {
                if let Some(entry) = next.locks.get_mut(&m) {
                    entry.1 -= 1;
                    if entry.1 == 0 {
                        next.locks.remove(&m);
                    }
                }
            }
            _ => {}
        }
        next
    }

    /// The set of behaviours of all executions of the traceset.
    ///
    /// Computed by memoised dynamic programming: the suffix-behaviour set
    /// of a state is the union over enabled moves. Because executions are
    /// prefix closed, the empty behaviour is always a member.
    #[must_use]
    pub fn behaviours(&self) -> Behaviours {
        self.behaviours_governed(&BudgetGuard::unlimited())
    }

    /// [`behaviours`](Explorer::behaviours) under a budget: the memoised
    /// recursion checks `guard` cooperatively at every state visit; once
    /// the guard trips, unexplored suffixes contribute only the empty
    /// behaviour (the result is an under-approximation and the guard's
    /// trip reason records why).
    #[must_use]
    pub fn behaviours_governed(&self, guard: &BudgetGuard) -> Behaviours {
        let mut memo: HashMap<State, Arc<Behaviours>> = HashMap::new();
        let result = self.suffixes(self.initial_state(), &mut memo, guard);
        (*result).clone()
    }

    /// The set of behaviours, computed on `jobs` worker threads by the
    /// work-stealing parallel driver (see [`par`]): the reachable
    /// state graph is built by parallel deduplicated expansion, then
    /// the suffix-behaviour dynamic program is evaluated bottom-up in
    /// parallel. Bit-identical to [`behaviours`](Explorer::behaviours)
    /// for every traceset; `jobs <= 1` runs the sequential reference
    /// implementation.
    #[must_use]
    pub fn behaviours_par(&self, jobs: usize) -> Behaviours {
        self.behaviours_par_governed(jobs, &BudgetGuard::unlimited())
    }

    /// [`behaviours_par`](Explorer::behaviours_par) under a budget.
    /// A quarantined worker panic degrades to the sequential engine
    /// (recorded on the guard as a recovered fault).
    #[must_use]
    pub fn behaviours_par_governed(&self, jobs: usize, guard: &BudgetGuard) -> Behaviours {
        if jobs <= 1 {
            return self.behaviours_governed(guard);
        }
        let result = self
            .state_graph(jobs, guard, true)
            .and_then(|graph| par::behaviours_of(&graph, jobs));
        match result {
            Ok(b) => b,
            Err(_) => {
                guard.record_fault();
                self.behaviours_governed(guard)
            }
        }
    }

    /// Builds the explicit reachable state graph on `jobs` workers.
    /// `reduced` applies the partial-order reduction (valid for the
    /// behaviour DP; the execution-count DP is defined over the full
    /// interleaving set and must pass `false`).
    fn state_graph(
        &self,
        jobs: usize,
        guard: &BudgetGuard,
        reduced: bool,
    ) -> Result<par::StateGraph<State>, crate::budget::EngineFault> {
        par::build_state_graph(jobs, self.initial_state(), guard, |state| {
            let moves = if reduced {
                self.por_moves(state)
            } else {
                self.moves(state)
            };
            par::Expansion {
                moves: moves
                    .into_iter()
                    .map(|mv| (mv.action, self.apply(state, &mv)))
                    .collect(),
                truncated: false,
            }
        })
    }

    fn suffixes(
        &self,
        state: State,
        memo: &mut HashMap<State, Arc<Behaviours>>,
        guard: &BudgetGuard,
    ) -> Arc<Behaviours> {
        if let Some(r) = memo.get(&state) {
            return Arc::clone(r);
        }
        let mut set: Behaviours = BTreeSet::new();
        set.insert(Vec::new());
        if guard.should_stop() {
            // Partial result: not memoised, so an (impossible) later
            // revisit cannot launder it as the state's exact value.
            return Arc::new(set);
        }
        guard.note_state();
        for mv in self.por_moves(&state) {
            let tail = self.suffixes(self.apply(&state, &mv), memo, guard);
            match mv.action {
                Action::External(v) => {
                    for suffix in tail.iter() {
                        let mut b = Vec::with_capacity(suffix.len() + 1);
                        b.push(v);
                        b.extend_from_slice(suffix);
                        set.insert(b);
                    }
                }
                _ => set.extend(tail.iter().cloned()),
            }
        }
        let rc = Arc::new(set);
        memo.insert(state, Arc::clone(&rc));
        rc
    }

    /// Searches for a data race (§3: two adjacent conflicting actions of
    /// different threads in some execution). Returns a concrete witness
    /// execution, or `None` if the traceset is data race free.
    #[must_use]
    pub fn race_witness(&self) -> Option<RaceWitness> {
        self.race_witness_governed(&BudgetGuard::unlimited())
    }

    /// [`race_witness`](Explorer::race_witness) under a budget: the
    /// search checks `guard` at every state visit, so `None` from a
    /// tripped guard means "no race found within budget" (the guard's
    /// trip reason distinguishes that from a proof).
    #[must_use]
    pub fn race_witness_governed(&self, guard: &BudgetGuard) -> Option<RaceWitness> {
        // Key: (state, previous normal access as (thread, loc, was_write)).
        let mut visited: HashSet<RaceKey> = HashSet::new();
        let mut path: Vec<Event> = Vec::new();
        self.race_dfs(self.initial_state(), None, &mut visited, &mut path, guard)
            .then(|| RaceWitness {
                execution: Interleaving::from_events(path),
            })
    }

    fn race_dfs(
        &self,
        state: State,
        prev: Option<(usize, Loc, bool)>,
        visited: &mut HashSet<RaceKey>,
        path: &mut Vec<Event>,
        guard: &BudgetGuard,
    ) -> bool {
        if guard.should_stop() || !visited.insert((state.clone(), prev)) {
            return false;
        }
        guard.note_state();
        for mv in self.por_moves(&state) {
            let thread_id = self.trie.threads()[mv.thread];
            // Race check against the immediately preceding event.
            if let Some((pk, pl, pw)) = prev {
                if pk != mv.thread && mv.action.is_access_to(pl) && !pl.is_volatile() {
                    let racing = pw || mv.action.is_write();
                    if racing {
                        path.push(Event::new(thread_id, mv.action));
                        return true;
                    }
                }
            }
            let next_prev = match mv.action {
                Action::Read { loc, .. } if !loc.is_volatile() => Some((mv.thread, loc, false)),
                Action::Write { loc, .. } if !loc.is_volatile() => Some((mv.thread, loc, true)),
                _ => None,
            };
            path.push(Event::new(thread_id, mv.action));
            if self.race_dfs(self.apply(&state, &mv), next_prev, visited, path, guard) {
                return true;
            }
            path.pop();
        }
        false
    }

    /// Is the traceset data race free (§3)?
    #[must_use]
    pub fn is_data_race_free(&self) -> bool {
        self.race_witness().is_none()
    }

    /// The parallel form of [`race_witness`](Explorer::race_witness):
    /// the exhaustive reachability search for an adjacent conflicting
    /// pair runs on `jobs` workers with early exit. The racy/DRF
    /// verdict is identical to the sequential search; when a race
    /// exists, the canonical sequential witness is reconstructed so
    /// the returned execution is deterministic too.
    #[must_use]
    pub fn race_witness_par(&self, jobs: usize) -> Option<RaceWitness> {
        self.race_witness_par_governed(jobs, &BudgetGuard::unlimited())
    }

    /// [`race_witness_par`](Explorer::race_witness_par) under a budget.
    /// A quarantined worker panic degrades to the sequential search
    /// (recorded on the guard as a recovered fault).
    #[must_use]
    pub fn race_witness_par_governed(
        &self,
        jobs: usize,
        guard: &BudgetGuard,
    ) -> Option<RaceWitness> {
        if jobs <= 1 {
            return self.race_witness_governed(guard);
        }
        type Prev = Option<(usize, Loc, bool)>;
        let racy = par::parallel_reach(
            jobs,
            (self.initial_state(), None as Prev),
            guard,
            |(state, prev)| {
                let mut found = false;
                let mut successors = Vec::new();
                for mv in self.por_moves(state) {
                    if let Some((pk, pl, pw)) = *prev {
                        if pk != mv.thread
                            && mv.action.is_access_to(pl)
                            && !pl.is_volatile()
                            && (pw || mv.action.is_write())
                        {
                            found = true;
                            break;
                        }
                    }
                    let next_prev = match mv.action {
                        Action::Read { loc, .. } if !loc.is_volatile() => {
                            Some((mv.thread, loc, false))
                        }
                        Action::Write { loc, .. } if !loc.is_volatile() => {
                            Some((mv.thread, loc, true))
                        }
                        _ => None,
                    };
                    successors.push((self.apply(state, &mv), next_prev));
                }
                par::SearchStep { successors, found }
            },
        );
        let racy = match racy {
            Ok(r) => r,
            Err(_) => {
                guard.record_fault();
                return self.race_witness_governed(guard);
            }
        };
        // The parallel search only decides existence; the witness path
        // is rebuilt sequentially so parallel and sequential drivers
        // report the same execution (racy programs yield one quickly).
        // Reconstruction runs ungoverned: the race provably exists, so
        // the DFS terminates at it even if the budget tripped meanwhile.
        if racy {
            let w = self.race_witness();
            debug_assert!(w.is_some(), "parallel search found a race the DFS did not");
            w
        } else {
            None
        }
    }

    /// Is the traceset data race free, decided on `jobs` workers?
    #[must_use]
    pub fn is_data_race_free_par(&self, jobs: usize) -> bool {
        self.race_witness_par(jobs).is_none()
    }

    /// Enumerates all maximal executions, stopping at
    /// `limits.max_interleavings`. Exponential; intended for litmus-sized
    /// programs.
    #[must_use]
    pub fn maximal_executions(&self, limits: ExploreLimits) -> Vec<Interleaving> {
        self.maximal_executions_checked(limits).0
    }

    /// Like [`maximal_executions`](Explorer::maximal_executions), but
    /// also reports whether the `max_interleavings` cap cut the
    /// enumeration short (`true` = at least one maximal execution was
    /// *not* materialised). Callers that must not silently truncate —
    /// the `drfcheck` CLI, for instance — use this form.
    #[must_use]
    pub fn maximal_executions_checked(&self, limits: ExploreLimits) -> (Vec<Interleaving>, bool) {
        self.maximal_executions_governed(limits, &BudgetGuard::unlimited())
    }

    /// [`maximal_executions_checked`](Explorer::maximal_executions_checked)
    /// under a budget: the enumeration also stops when `guard` trips (a
    /// deadline or external cancellation), and a cap hit is recorded on
    /// the guard as an interleaving-bound truncation. The `bool` is
    /// `true` whenever at least one maximal execution was dropped, for
    /// either reason.
    #[must_use]
    pub fn maximal_executions_governed(
        &self,
        limits: ExploreLimits,
        guard: &BudgetGuard,
    ) -> (Vec<Interleaving>, bool) {
        let mut out = Vec::new();
        let mut path = Vec::new();
        let mut capped = false;
        self.enumerate(
            self.initial_state(),
            &mut path,
            &mut out,
            limits.max_interleavings,
            &mut capped,
            guard,
        );
        (out, capped)
    }

    #[allow(clippy::too_many_arguments)]
    fn enumerate(
        &self,
        state: State,
        path: &mut Vec<Event>,
        out: &mut Vec<Interleaving>,
        cap: usize,
        capped: &mut bool,
        guard: &BudgetGuard,
    ) {
        if out.len() >= cap {
            // Every pending branch extends to at least one maximal
            // execution, so entering here means results were dropped.
            *capped = true;
            guard.trip_interleaving_cap();
            return;
        }
        if guard.should_stop() {
            *capped = true;
            return;
        }
        guard.note_state();
        let moves = self.moves(&state);
        if moves.is_empty() {
            out.push(Interleaving::from_events(path.iter().copied()));
            return;
        }
        for mv in moves {
            path.push(Event::new(self.trie.threads()[mv.thread], mv.action));
            self.enumerate(self.apply(&state, &mv), path, out, cap, capped, guard);
            path.pop();
        }
    }

    /// Counts the maximal executions by dynamic programming (no
    /// materialisation). Counts the *full* interleaving set — the
    /// partial-order reduction never applies here. Saturates at
    /// `u128::MAX`; use
    /// [`count_maximal_executions_checked`](Explorer::count_maximal_executions_checked)
    /// to observe saturation.
    #[must_use]
    pub fn count_maximal_executions(&self) -> u128 {
        self.count_maximal_executions_checked().0
    }

    /// Like [`count_maximal_executions`](Explorer::count_maximal_executions),
    /// but also reports whether the count overflowed `u128` and was
    /// clamped to `u128::MAX` (possible on adversarial generated
    /// programs; the flag keeps the clamp from reading as an exact
    /// count).
    #[must_use]
    pub fn count_maximal_executions_checked(&self) -> (u128, bool) {
        let mut memo: HashMap<State, u128> = HashMap::new();
        let mut saturated = false;
        let c = self.count(self.initial_state(), &mut memo, &mut saturated);
        (c, saturated)
    }

    /// The execution count, computed on `jobs` workers (identical to
    /// [`count_maximal_executions`](Explorer::count_maximal_executions)).
    #[must_use]
    pub fn count_maximal_executions_par(&self, jobs: usize) -> u128 {
        self.count_maximal_executions_par_checked(jobs).0
    }

    /// The checked execution count on `jobs` workers; the `bool` flags
    /// saturation at `u128::MAX`, exactly as in
    /// [`count_maximal_executions_checked`](Explorer::count_maximal_executions_checked).
    #[must_use]
    pub fn count_maximal_executions_par_checked(&self, jobs: usize) -> (u128, bool) {
        if jobs <= 1 {
            return self.count_maximal_executions_checked();
        }
        let guard = BudgetGuard::unlimited();
        match self
            .state_graph(jobs, &guard, false)
            .and_then(|graph| par::count_leaves_checked(&graph, jobs))
        {
            Ok(c) => c,
            // Quarantined worker panic: degrade to the sequential
            // reference computation.
            Err(_) => self.count_maximal_executions_checked(),
        }
    }

    fn count(&self, state: State, memo: &mut HashMap<State, u128>, saturated: &mut bool) -> u128 {
        if let Some(&c) = memo.get(&state) {
            return c;
        }
        let moves = self.moves(&state);
        let c = if moves.is_empty() {
            1
        } else {
            let mut acc: u128 = 0;
            for mv in &moves {
                let tail = self.count(self.apply(&state, mv), memo, saturated);
                acc = acc.checked_add(tail).unwrap_or_else(|| {
                    *saturated = true;
                    u128::MAX
                });
            }
            acc
        };
        memo.insert(state, c);
        c
    }

    /// Is the traceset data race free under the *alternative* §3
    /// definition: in every execution, all conflicting access pairs are
    /// ordered by happens-before?
    ///
    /// The paper states the two definitions are equivalent; this method
    /// exists so the equivalence is checkable (see the integration
    /// suite) and costs a full enumeration of maximal executions —
    /// prefer [`is_data_race_free`](Explorer::is_data_race_free) (the
    /// adjacent-conflict search) for real use.
    #[must_use]
    pub fn is_data_race_free_hb(&self, limits: ExploreLimits) -> bool {
        self.maximal_executions(limits)
            .iter()
            .all(|i| i.hb_unordered_conflicts().is_empty())
    }

    /// The number of distinct explorer states reachable from the initial
    /// state (a size measure used by the scaling experiments). Always a
    /// census of the *full* transition system, regardless of the
    /// partial-order-reduction setting.
    #[must_use]
    pub fn count_reachable_states(&self) -> usize {
        let mut seen: HashSet<State> = HashSet::new();
        let mut stack = vec![self.initial_state()];
        while let Some(s) = stack.pop() {
            if !seen.insert(s.clone()) {
                continue;
            }
            for mv in self.moves(&s) {
                stack.push(self.apply(&s, &mv));
            }
        }
        seen.len()
    }

    /// The reachable-state count, computed on `jobs` workers.
    #[must_use]
    pub fn count_reachable_states_par(&self, jobs: usize) -> usize {
        if jobs <= 1 {
            return self.count_reachable_states();
        }
        let result = par::parallel_state_count(
            jobs,
            self.initial_state(),
            &BudgetGuard::unlimited(),
            |state| {
                self.moves(state)
                    .iter()
                    .map(|mv| self.apply(state, mv))
                    .collect()
            },
        );
        // Quarantined worker panic: degrade to the sequential census.
        result.unwrap_or_else(|_| self.count_reachable_states())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transafety_traces::{Domain, ThreadId, Trace};

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }
    fn v(n: u32) -> Value {
        Value::new(n)
    }

    /// Fig. 2 original: T0 = r2:=x; y:=r2 — T1 = r1:=y; x:=1; print r1.
    fn fig2_original() -> Traceset {
        let (x, y) = (Loc::normal(0), Loc::normal(1));
        let d = Domain::zero_to(1);
        let mut ts = Traceset::new();
        for val in d.iter() {
            ts.insert(Trace::from_actions([
                Action::start(t(0)),
                Action::read(x, val),
                Action::write(y, val),
            ]))
            .unwrap();
            ts.insert(Trace::from_actions([
                Action::start(t(1)),
                Action::read(y, val),
                Action::write(x, v(1)),
                Action::external(val),
            ]))
            .unwrap();
        }
        ts
    }

    /// Fig. 2 transformed: T1 becomes x:=1; r1:=y; print r1.
    fn fig2_transformed() -> Traceset {
        let (x, y) = (Loc::normal(0), Loc::normal(1));
        let d = Domain::zero_to(1);
        let mut ts = Traceset::new();
        for val in d.iter() {
            ts.insert(Trace::from_actions([
                Action::start(t(0)),
                Action::read(x, val),
                Action::write(y, val),
            ]))
            .unwrap();
            ts.insert(Trace::from_actions([
                Action::start(t(1)),
                Action::write(x, v(1)),
                Action::read(y, val),
                Action::external(val),
            ]))
            .unwrap();
        }
        ts
    }

    #[test]
    fn fig2_original_cannot_print_one() {
        let b = Explorer::new(&fig2_original()).behaviours();
        assert!(b.contains(&vec![]));
        assert!(b.contains(&vec![v(0)]));
        assert!(
            !b.contains(&vec![v(1)]),
            "§2.1: the original cannot print 1"
        );
    }

    #[test]
    fn fig2_transformed_can_print_one() {
        let b = Explorer::new(&fig2_transformed()).behaviours();
        assert!(
            b.contains(&vec![v(1)]),
            "§2.1: the transformed program can print 1"
        );
    }

    #[test]
    fn fig2_is_racy() {
        let w = Explorer::new(&fig2_original())
            .race_witness()
            .expect("x and y are racy");
        let (a, b) = w.pair();
        assert!(a.action().conflicts_with(&b.action()));
        assert_ne!(a.thread(), b.thread());
        // the witness execution really is an execution of the traceset
        assert!(w.execution.is_interleaving_of(&fig2_original()));
        assert!(w.execution.is_sequentially_consistent());
    }

    #[test]
    fn lock_protected_program_is_drf() {
        let x = Loc::normal(0);
        let m = Monitor::new(0);
        let mut ts = Traceset::new();
        for th in [t(0), t(1)] {
            for val in Domain::zero_to(1).iter() {
                ts.insert(Trace::from_actions([
                    Action::start(th),
                    Action::lock(m),
                    Action::read(x, val),
                    Action::write(x, v(1)),
                    Action::unlock(m),
                ]))
                .unwrap();
            }
        }
        assert!(Explorer::new(&ts).is_data_race_free());
    }

    #[test]
    fn volatile_program_is_drf() {
        let vl = Loc::volatile(0);
        let mut ts = Traceset::new();
        for val in Domain::zero_to(1).iter() {
            ts.insert(Trace::from_actions([
                Action::start(t(0)),
                Action::write(vl, v(1)),
            ]))
            .unwrap();
            ts.insert(Trace::from_actions([
                Action::start(t(1)),
                Action::read(vl, val),
                Action::external(val),
            ]))
            .unwrap();
        }
        let e = Explorer::new(&ts);
        assert!(e.is_data_race_free());
        let b = e.behaviours();
        assert!(b.contains(&vec![v(0)]) && b.contains(&vec![v(1)]));
    }

    #[test]
    fn maximal_executions_cross_validate_behaviours() {
        let ts = fig2_original();
        let ex = Explorer::new(&ts);
        let all = ex.maximal_executions(ExploreLimits::default());
        assert_eq!(all.len() as u128, ex.count_maximal_executions());
        // behaviours from raw enumeration (with prefix closure) match DP
        let mut raw: Behaviours = BTreeSet::new();
        for i in &all {
            let b = i.behaviour();
            for n in 0..=b.len() {
                raw.insert(b[..n].to_vec());
            }
            assert!(i.is_sequentially_consistent());
            assert!(i.is_interleaving_of(&ts));
        }
        assert_eq!(raw, ex.behaviours());
    }

    #[test]
    fn locks_exclude_interleavings() {
        // Two threads, each: lock m; x:=1; r:=x; unlock m. Under mutual
        // exclusion every read must see 1 from its own thread.
        let x = Loc::normal(0);
        let m = Monitor::new(0);
        let mut ts = Traceset::new();
        for th in [t(0), t(1)] {
            for val in Domain::zero_to(1).iter() {
                ts.insert(Trace::from_actions([
                    Action::start(th),
                    Action::lock(m),
                    Action::write(x, v(1)),
                    Action::read(x, val),
                    Action::external(val),
                    Action::unlock(m),
                ]))
                .unwrap();
            }
        }
        let b = Explorer::new(&ts).behaviours();
        assert!(b.contains(&vec![v(1), v(1)]));
        assert!(
            !b.contains(&vec![v(0)]),
            "read under the lock must see the write"
        );
    }

    #[test]
    fn reentrant_locking_is_supported_by_state_machine() {
        let m = Monitor::new(0);
        let mut ts = Traceset::new();
        ts.insert(Trace::from_actions([
            Action::start(t(0)),
            Action::lock(m),
            Action::lock(m),
            Action::unlock(m),
            Action::unlock(m),
            Action::external(v(1)),
        ]))
        .unwrap();
        let b = Explorer::new(&ts).behaviours();
        assert!(b.contains(&vec![v(1)]));
    }

    #[test]
    fn execution_count_small_example() {
        // Two independent single-action threads after their starts:
        // S(0);X(1) and S(1);X(2) — executions = interleavings of 4 events
        // with per-thread order fixed: C(4,2) = 6.
        let mut ts = Traceset::new();
        ts.insert(Trace::from_actions([
            Action::start(t(0)),
            Action::external(v(1)),
        ]))
        .unwrap();
        ts.insert(Trace::from_actions([
            Action::start(t(1)),
            Action::external(v(2)),
        ]))
        .unwrap();
        let ex = Explorer::new(&ts);
        assert_eq!(ex.count_maximal_executions(), 6);
        assert_eq!(ex.maximal_executions(ExploreLimits::default()).len(), 6);
        let b = ex.behaviours();
        assert!(b.contains(&vec![v(1), v(2)]));
        assert!(b.contains(&vec![v(2), v(1)]));
    }

    #[test]
    fn hb_definition_agrees_with_adjacent_definition() {
        assert!(!Explorer::new(&fig2_original()).is_data_race_free_hb(ExploreLimits::default()));
        let vl = Loc::volatile(0);
        let mut ts = Traceset::new();
        ts.insert(Trace::from_actions([
            Action::start(t(0)),
            Action::write(vl, v(1)),
        ]))
        .unwrap();
        for val in Domain::zero_to(1).iter() {
            ts.insert(Trace::from_actions([
                Action::start(t(1)),
                Action::read(vl, val),
            ]))
            .unwrap();
        }
        let e = Explorer::new(&ts);
        assert!(e.is_data_race_free());
        assert!(e.is_data_race_free_hb(ExploreLimits::default()));
    }

    #[test]
    fn execution_cap_is_respected() {
        let ts = fig2_original();
        let ex = Explorer::new(&ts);
        let capped = ex.maximal_executions(ExploreLimits {
            max_interleavings: 3,
        });
        assert_eq!(capped.len(), 3);
    }

    #[test]
    fn race_witness_reports_index_and_pair() {
        let w = Explorer::new(&fig2_original()).race_witness().unwrap();
        assert_eq!(w.index(), w.execution.len() - 2);
        let s = w.to_string();
        assert!(s.contains("data race between"), "{s}");
    }

    #[test]
    fn reachable_state_count_is_positive() {
        let ts = fig2_original();
        assert!(Explorer::new(&ts).count_reachable_states() > 1);
    }

    /// Two threads whose bodies are entirely thread-private writes plus
    /// one shared, lock-protected store: heavy commutativity, so the
    /// reduction should visit far fewer states.
    fn private_work_traceset() -> Traceset {
        let m = Monitor::new(0);
        let shared = Loc::normal(100);
        let mut ts = Traceset::new();
        for (k, th) in [t(0), t(1)].into_iter().enumerate() {
            let a = Loc::normal(k as u32 * 10);
            let b = Loc::normal(k as u32 * 10 + 1);
            ts.insert(Trace::from_actions([
                Action::start(th),
                Action::write(a, v(1)),
                Action::write(b, v(2)),
                Action::read(a, v(1)),
                Action::write(a, v(3)),
                Action::lock(m),
                Action::write(shared, v(k as u32)),
                Action::unlock(m),
            ]))
            .unwrap();
        }
        ts
    }

    #[test]
    fn por_agrees_with_full_engine_on_small_corpus() {
        for ts in [fig2_original(), fig2_transformed(), private_work_traceset()] {
            let reduced = Explorer::new(&ts);
            let full = Explorer::new(&ts).por(false);
            assert_eq!(reduced.behaviours(), full.behaviours());
            assert_eq!(
                reduced.race_witness().is_some(),
                full.race_witness().is_some()
            );
            for jobs in [1, 4] {
                assert_eq!(reduced.behaviours_par(jobs), full.behaviours());
                assert_eq!(
                    reduced.race_witness_par(jobs).is_some(),
                    full.race_witness().is_some()
                );
            }
        }
    }

    #[test]
    fn por_explores_fewer_states_on_independent_work() {
        use crate::budget::{Budget, CancelToken};
        let ts = private_work_traceset();
        let states_of = |por: bool| {
            let guard = BudgetGuard::new(&Budget::unlimited(), CancelToken::new());
            let _ = Explorer::new(&ts).por(por).behaviours_governed(&guard);
            guard.states()
        };
        let (reduced, full) = (states_of(true), states_of(false));
        assert!(
            reduced * 2 <= full,
            "POR explored {reduced} states vs {full} unreduced — expected \
             at least a 2x reduction on thread-private work"
        );
    }

    #[test]
    fn por_does_not_change_counts_or_census() {
        let ts = private_work_traceset();
        let reduced = Explorer::new(&ts);
        let full = Explorer::new(&ts).por(false);
        assert_eq!(
            reduced.count_maximal_executions(),
            full.count_maximal_executions()
        );
        assert_eq!(
            reduced.count_maximal_executions_par(4),
            full.count_maximal_executions()
        );
        assert_eq!(
            reduced.count_reachable_states(),
            full.count_reachable_states()
        );
        assert_eq!(
            reduced.maximal_executions(ExploreLimits::default()).len(),
            full.maximal_executions(ExploreLimits::default()).len()
        );
    }

    #[test]
    fn counts_do_not_report_saturation_on_small_programs() {
        let ex = Explorer::new(&fig2_original());
        let (c, saturated) = ex.count_maximal_executions_checked();
        assert!(c > 0 && !saturated);
        let (cp, saturated_par) = ex.count_maximal_executions_par_checked(4);
        assert_eq!((cp, saturated_par), (c, false));
    }
}
