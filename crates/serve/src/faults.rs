//! Deterministic fault injection for the serve pipeline.
//!
//! Every degradation path of the server — worker panic quarantine, the
//! bounded sequential retry, cache-corruption quarantine, deadline
//! blowouts, load shedding — must be *exercised*, not merely argued
//! about. A [`FaultPlan`] is a comma-separated list of directives,
//! supplied via `drfcheck serve --fault-plan` or the `DRFCHECK_FAULTS`
//! environment variable, that makes the Nth admitted request fail in a
//! chosen way at a chosen point, deterministically:
//!
//! | directive        | effect |
//! |------------------|--------|
//! | `panic@N`        | the worker processing request `N` panics on its first attempt (the retry runs clean) |
//! | `panic@N:both`   | both the first attempt **and** the sequential retry panic (the request degrades to an error response) |
//! | `corrupt@N`      | the cache entry written by request `N` is corrupted on disk right after publication |
//! | `slow@N:MS`      | request `N`'s processing stalls `MS` milliseconds before the analysis runs (simulates slow I/O; combine with a small `timeout_ms` for a deadline blowout) |
//!
//! `N` is the 1-based admission sequence number; `*` matches every
//! request (chaos mode for soak runs). Injected faults traverse the
//! exact production code paths — an injected panic is caught by the
//! same `catch_unwind` that guards against real ones — so a green
//! fault-injection suite is evidence about the real degradation
//! machinery, not about a parallel test-only implementation.

use std::fmt;

/// Which requests a directive applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Target {
    /// One specific admission sequence number (1-based).
    Seq(u64),
    /// Every request.
    All,
}

impl Target {
    fn matches(self, seq: u64) -> bool {
        match self {
            Target::Seq(n) => n == seq,
            Target::All => true,
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        if s == "*" {
            Ok(Target::All)
        } else {
            s.parse::<u64>()
                .map(Target::Seq)
                .map_err(|_| format!("bad request number {s:?} (expected an integer or '*')"))
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Panic { both_attempts: bool },
    Corrupt,
    Slow { ms: u64 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Directive {
    kind: Kind,
    target: Target,
}

/// A parsed set of fault directives. The empty plan (the default) is
/// inert and costs a handful of branches per request.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    directives: Vec<Directive>,
}

impl FaultPlan {
    /// Parses a comma-separated directive list. The empty string is the
    /// empty plan.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut directives = Vec::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (name, arg) = part
                .split_once('@')
                .ok_or_else(|| format!("bad fault directive {part:?} (expected kind@target)"))?;
            let directive = match name {
                "panic" => {
                    let (target, both) = match arg.split_once(':') {
                        None => (arg, false),
                        Some((t, "both")) => (t, true),
                        Some((_, other)) => {
                            return Err(format!(
                                "bad panic modifier {other:?} (only ':both' is known)"
                            ))
                        }
                    };
                    Directive {
                        kind: Kind::Panic {
                            both_attempts: both,
                        },
                        target: Target::parse(target)?,
                    }
                }
                "corrupt" => Directive {
                    kind: Kind::Corrupt,
                    target: Target::parse(arg)?,
                },
                "slow" => {
                    let (target, ms) = arg
                        .split_once(':')
                        .ok_or_else(|| format!("slow@{arg}: expected slow@N:MILLIS"))?;
                    Directive {
                        kind: Kind::Slow {
                            ms: ms
                                .parse()
                                .map_err(|_| format!("bad slow duration {ms:?}"))?,
                        },
                        target: Target::parse(target)?,
                    }
                }
                other => {
                    return Err(format!(
                        "unknown fault kind {other:?} (known: panic, corrupt, slow)"
                    ))
                }
            };
            directives.push(directive);
        }
        Ok(FaultPlan { directives })
    }

    /// Is this the inert empty plan?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.directives.is_empty()
    }

    /// Should the worker processing `seq` panic on `attempt` (0 = first
    /// run, 1 = the sequential retry)?
    #[must_use]
    pub fn panic_on(&self, seq: u64, attempt: u32) -> bool {
        self.directives.iter().any(|d| match d.kind {
            Kind::Panic { both_attempts } => {
                d.target.matches(seq) && (attempt == 0 || both_attempts)
            }
            _ => false,
        })
    }

    /// Should the cache entry written by `seq` be corrupted?
    #[must_use]
    pub fn corrupt_on(&self, seq: u64) -> bool {
        self.directives
            .iter()
            .any(|d| d.kind == Kind::Corrupt && d.target.matches(seq))
    }

    /// Stall duration injected before `seq`'s analysis, if any.
    #[must_use]
    pub fn slow_ms_on(&self, seq: u64) -> Option<u64> {
        self.directives.iter().find_map(|d| match d.kind {
            Kind::Slow { ms } if d.target.matches(seq) => Some(ms),
            _ => None,
        })
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for d in &self.directives {
            if !first {
                f.write_str(",")?;
            }
            first = false;
            let target = match d.target {
                Target::Seq(n) => n.to_string(),
                Target::All => "*".to_string(),
            };
            match d.kind {
                Kind::Panic {
                    both_attempts: false,
                } => write!(f, "panic@{target}")?,
                Kind::Panic {
                    both_attempts: true,
                } => write!(f, "panic@{target}:both")?,
                Kind::Corrupt => write!(f, "corrupt@{target}")?,
                Kind::Slow { ms } => write!(f, "slow@{target}:{ms}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_matches() {
        let plan = FaultPlan::parse("panic@3, corrupt@2, slow@5:250, panic@7:both").unwrap();
        assert!(plan.panic_on(3, 0));
        assert!(!plan.panic_on(3, 1), "plain panic spares the retry");
        assert!(plan.panic_on(7, 0) && plan.panic_on(7, 1));
        assert!(plan.corrupt_on(2) && !plan.corrupt_on(3));
        assert_eq!(plan.slow_ms_on(5), Some(250));
        assert_eq!(plan.slow_ms_on(4), None);
        assert_eq!(
            plan.to_string(),
            "panic@3,corrupt@2,slow@5:250,panic@7:both"
        );
    }

    #[test]
    fn wildcard_matches_everything() {
        let plan = FaultPlan::parse("slow@*:10").unwrap();
        assert_eq!(plan.slow_ms_on(1), Some(10));
        assert_eq!(plan.slow_ms_on(99_999), Some(10));
    }

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::parse("").unwrap();
        assert!(plan.is_empty());
        assert!(!plan.panic_on(1, 0));
        assert_eq!(FaultPlan::parse("  ,  ").unwrap(), FaultPlan::default());
    }

    #[test]
    fn bad_specs_are_rejected() {
        for bad in [
            "panic",
            "panic@x",
            "slow@1",
            "slow@1:ms",
            "explode@1",
            "panic@1:twice",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad} should not parse");
        }
    }
}
