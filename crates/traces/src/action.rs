//! Memory actions (§3 of the paper).

use std::fmt;

use crate::{Loc, Monitor, ThreadId, Value};

/// A memory action of a single thread.
///
/// The six action kinds of §3:
///
/// * `R[l=v]` — a read from location `l` of value `v`;
/// * `W[l=v]` — a write of value `v` to location `l`;
/// * `L[m]` — a lock of monitor `m`;
/// * `U[m]` — an unlock of monitor `m`;
/// * `X(v)` — an external (I/O) action with value `v`;
/// * `S(e)` — a thread-start action with entry point `e`.
///
/// The derived classifications of the paper are provided as predicates:
/// [acquire](Action::is_acquire) (lock or volatile read),
/// [release](Action::is_release) (unlock or volatile write),
/// [synchronisation](Action::is_sync) (acquire or release), and
/// [conflict](Action::conflicts_with) (two accesses to the same
/// non-volatile location, at least one a write).
///
/// # Example
///
/// ```
/// use transafety_traces::{Action, Loc, Value};
/// let v = Loc::volatile(0);
/// let read = Action::read(v, Value::ZERO);
/// let write = Action::write(v, Value::new(1));
/// assert!(read.is_acquire());
/// assert!(write.is_release());
/// // Volatile accesses never conflict (races on volatiles do not count).
/// assert!(!read.conflicts_with(&write));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Action {
    /// `R[l=v]`: a read from `loc` observing `value`.
    Read {
        /// The location read from.
        loc: Loc,
        /// The value observed.
        value: Value,
    },
    /// `W[l=v]`: a write of `value` to `loc`.
    Write {
        /// The location written to.
        loc: Loc,
        /// The value written.
        value: Value,
    },
    /// `L[m]`: a lock of monitor `m`.
    Lock(Monitor),
    /// `U[m]`: an unlock of monitor `m`.
    Unlock(Monitor),
    /// `X(v)`: an externally observable input/output action.
    External(Value),
    /// `S(e)`: a thread start with entry point `e` (always the first action
    /// of a thread's trace).
    Start(ThreadId),
}

impl Action {
    /// Creates a read action `R[loc=value]`.
    #[must_use]
    pub const fn read(loc: Loc, value: Value) -> Self {
        Action::Read { loc, value }
    }

    /// Creates a write action `W[loc=value]`.
    #[must_use]
    pub const fn write(loc: Loc, value: Value) -> Self {
        Action::Write { loc, value }
    }

    /// Creates a lock action `L[m]`.
    #[must_use]
    pub const fn lock(m: Monitor) -> Self {
        Action::Lock(m)
    }

    /// Creates an unlock action `U[m]`.
    #[must_use]
    pub const fn unlock(m: Monitor) -> Self {
        Action::Unlock(m)
    }

    /// Creates an external action `X(value)`.
    #[must_use]
    pub const fn external(value: Value) -> Self {
        Action::External(value)
    }

    /// Creates a thread start action `S(thread)`.
    #[must_use]
    pub const fn start(thread: ThreadId) -> Self {
        Action::Start(thread)
    }

    /// The location accessed, for reads and writes.
    #[must_use]
    pub const fn loc(&self) -> Option<Loc> {
        match self {
            Action::Read { loc, .. } | Action::Write { loc, .. } => Some(*loc),
            _ => None,
        }
    }

    /// The value carried by the action, for reads, writes and external
    /// actions.
    #[must_use]
    pub const fn value(&self) -> Option<Value> {
        match self {
            Action::Read { value, .. } | Action::Write { value, .. } | Action::External(value) => {
                Some(*value)
            }
            _ => None,
        }
    }

    /// The monitor, for lock and unlock actions.
    #[must_use]
    pub const fn monitor(&self) -> Option<Monitor> {
        match self {
            Action::Lock(m) | Action::Unlock(m) => Some(*m),
            _ => None,
        }
    }

    /// Returns `true` for read actions.
    #[must_use]
    pub const fn is_read(&self) -> bool {
        matches!(self, Action::Read { .. })
    }

    /// Returns `true` for write actions.
    #[must_use]
    pub const fn is_write(&self) -> bool {
        matches!(self, Action::Write { .. })
    }

    /// Returns `true` for memory accesses (reads and writes).
    #[must_use]
    pub const fn is_access(&self) -> bool {
        self.is_read() || self.is_write()
    }

    /// Returns `true` for memory accesses to the given location.
    #[must_use]
    pub fn is_access_to(&self, l: Loc) -> bool {
        self.loc() == Some(l)
    }

    /// Returns `true` for *normal* memory accesses: accesses to a
    /// non-volatile location.
    #[must_use]
    pub fn is_normal_access(&self) -> bool {
        matches!(self.loc(), Some(l) if !l.is_volatile())
    }

    /// Returns `true` for volatile memory accesses.
    #[must_use]
    pub fn is_volatile_access(&self) -> bool {
        matches!(self.loc(), Some(l) if l.is_volatile())
    }

    /// Returns `true` for acquire actions: a lock or a volatile read.
    #[must_use]
    pub fn is_acquire(&self) -> bool {
        match self {
            Action::Lock(_) => true,
            Action::Read { loc, .. } => loc.is_volatile(),
            _ => false,
        }
    }

    /// Returns `true` for release actions: an unlock or a volatile write.
    #[must_use]
    pub fn is_release(&self) -> bool {
        match self {
            Action::Unlock(_) => true,
            Action::Write { loc, .. } => loc.is_volatile(),
            _ => false,
        }
    }

    /// Returns `true` for synchronisation actions (acquire or release).
    #[must_use]
    pub fn is_sync(&self) -> bool {
        self.is_acquire() || self.is_release()
    }

    /// Returns `true` for external actions.
    #[must_use]
    pub const fn is_external(&self) -> bool {
        matches!(self, Action::External(_))
    }

    /// Returns `true` for thread start actions.
    #[must_use]
    pub const fn is_start(&self) -> bool {
        matches!(self, Action::Start(_))
    }

    /// Two actions *conflict* if they access the same non-volatile location
    /// and at least one of them is a write (§3, "Data Race Freedom").
    #[must_use]
    pub fn conflicts_with(&self, other: &Action) -> bool {
        match (self.loc(), other.loc()) {
            (Some(a), Some(b)) => {
                a == b && !a.is_volatile() && (self.is_write() || other.is_write())
            }
            _ => false,
        }
    }

    /// Returns `true` if `self`, `other` form a *release–acquire pair*: an
    /// unlock followed by a lock of the same monitor, or a volatile write
    /// followed by a volatile read of the same location (§3,
    /// "Orders on Actions").
    #[must_use]
    pub fn is_release_acquire_pair(&self, other: &Action) -> bool {
        match (self, other) {
            (Action::Unlock(m1), Action::Lock(m2)) => m1 == m2,
            (Action::Write { loc: l1, .. }, Action::Read { loc: l2, .. }) => {
                l1 == l2 && l1.is_volatile()
            }
            _ => false,
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Read { loc, value } => write!(f, "R[{loc}={value}]"),
            Action::Write { loc, value } => write!(f, "W[{loc}={value}]"),
            Action::Lock(m) => write!(f, "L[{m}]"),
            Action::Unlock(m) => write!(f, "U[{m}]"),
            Action::External(v) => write!(f, "X({v})"),
            Action::Start(t) => write!(f, "S({})", t.index()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Loc {
        Loc::normal(0)
    }
    fn v() -> Loc {
        Loc::volatile(1)
    }

    #[test]
    fn classification_of_normal_accesses() {
        let r = Action::read(x(), Value::ZERO);
        let w = Action::write(x(), Value::new(1));
        assert!(r.is_read() && r.is_access() && r.is_normal_access());
        assert!(w.is_write() && w.is_access() && w.is_normal_access());
        assert!(!r.is_acquire() && !r.is_release() && !r.is_sync());
        assert!(!w.is_acquire() && !w.is_release() && !w.is_sync());
    }

    #[test]
    fn volatile_reads_acquire_and_writes_release() {
        let r = Action::read(v(), Value::ZERO);
        let w = Action::write(v(), Value::ZERO);
        assert!(r.is_acquire() && !r.is_release() && r.is_sync());
        assert!(w.is_release() && !w.is_acquire() && w.is_sync());
        assert!(r.is_volatile_access() && !r.is_normal_access());
    }

    #[test]
    fn locks_acquire_unlocks_release() {
        let m = Monitor::new(0);
        assert!(Action::lock(m).is_acquire());
        assert!(Action::unlock(m).is_release());
        assert!(!Action::lock(m).is_access());
    }

    #[test]
    fn conflicts_require_same_normal_location_and_a_write() {
        let r = Action::read(x(), Value::ZERO);
        let w = Action::write(x(), Value::new(1));
        let w2 = Action::write(Loc::normal(9), Value::new(1));
        assert!(r.conflicts_with(&w));
        assert!(w.conflicts_with(&r));
        assert!(w.conflicts_with(&w));
        assert!(!r.conflicts_with(&r), "two reads never conflict");
        assert!(!w.conflicts_with(&w2), "different locations");
        // volatile accesses never conflict
        let vr = Action::read(v(), Value::ZERO);
        let vw = Action::write(v(), Value::ZERO);
        assert!(!vr.conflicts_with(&vw));
        assert!(!vw.conflicts_with(&vw));
    }

    #[test]
    fn release_acquire_pairs() {
        let m = Monitor::new(3);
        assert!(Action::unlock(m).is_release_acquire_pair(&Action::lock(m)));
        assert!(!Action::lock(m).is_release_acquire_pair(&Action::unlock(m)));
        assert!(!Action::unlock(m).is_release_acquire_pair(&Action::lock(Monitor::new(4))));
        let vw = Action::write(v(), Value::new(1));
        let vr = Action::read(v(), Value::new(1));
        assert!(vw.is_release_acquire_pair(&vr));
        // value mismatch is irrelevant: the pair is by location
        let vr0 = Action::read(v(), Value::ZERO);
        assert!(vw.is_release_acquire_pair(&vr0));
        // normal accesses never pair
        let nw = Action::write(x(), Value::new(1));
        let nr = Action::read(x(), Value::new(1));
        assert!(!nw.is_release_acquire_pair(&nr));
    }

    #[test]
    fn accessors() {
        let a = Action::read(x(), Value::new(2));
        assert_eq!(a.loc(), Some(x()));
        assert_eq!(a.value(), Some(Value::new(2)));
        assert_eq!(a.monitor(), None);
        assert_eq!(
            Action::lock(Monitor::new(1)).monitor(),
            Some(Monitor::new(1))
        );
        assert_eq!(Action::external(Value::new(5)).value(), Some(Value::new(5)));
        assert_eq!(Action::start(ThreadId::new(0)).value(), None);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Action::read(x(), Value::new(1)).to_string(), "R[l0=1]");
        assert_eq!(Action::write(v(), Value::ZERO).to_string(), "W[v1=0]");
        assert_eq!(Action::lock(Monitor::new(0)).to_string(), "L[m0]");
        assert_eq!(Action::unlock(Monitor::new(0)).to_string(), "U[m0]");
        assert_eq!(Action::external(Value::new(1)).to_string(), "X(1)");
        assert_eq!(Action::start(ThreadId::new(1)).to_string(), "S(1)");
    }
}
