//! Invariants of the exploration observability layer, over the litmus
//! corpus and hundreds of generated programs:
//!
//! - metrics are an *observer*: verdicts, behaviours, witnesses and
//!   state counts are bit-identical with the collector on or off;
//! - `states_visited == states_interned` on complete runs (every
//!   governed phase admits exactly one dedup key per visited state),
//!   and `states_visited <= states_interned` always (keys can be
//!   admitted before a budget trip stops the visit);
//! - the partial-order reduction never *increases* `states_visited`;
//! - parallel runs agree with sequential runs on the totals;
//! - a `Truncated` report carries a non-zero trip counter matching the
//!   reported truncation cause.

mod support;

use std::time::Duration;

use support::{capped_budget, configs_with_loops as configs, default_por, seeds};
use transafety::checker::Analysis;
use transafety::interleaving::ExploreStats;
use transafety::lang::Program;
use transafety::litmus::{corpus, random_program};
use transafety::traces::MemoryModelKind;
use transafety::{
    AnalysisReport, Budget, BudgetBound, CancelToken, Completeness, TruncationReason, Verdict,
};

fn run(
    program: &Program,
    por: bool,
    jobs: usize,
    budget: &Budget,
    metrics: bool,
) -> AnalysisReport {
    Analysis::new()
        .jobs(jobs)
        .por(por)
        .budget(*budget)
        .metrics(metrics)
        .run(program)
}

/// The per-run counter invariants every collected report must satisfy.
fn assert_well_formed(report: &AnalysisReport, what: &str) {
    let s = &report.stats;
    assert!(s.enabled, "{what}: collector was requested but not live");
    assert!(
        s.states_visited <= s.states_interned,
        "{what}: visited {} > interned {}",
        s.states_visited,
        s.states_interned
    );
    if report.completeness.is_complete() {
        assert_eq!(
            s.states_visited, s.states_interned,
            "{what}: complete run must intern exactly the visited states"
        );
    }
    assert!(
        s.intern_keys <= s.intern_probes,
        "{what}: more interner keys than probes"
    );
    assert!(
        s.intern_keys <= s.intern_slots,
        "{what}: interner load factor above 1"
    );
    let lf = s.load_factor();
    assert!(
        lf.is_finite() && (0.0..=1.0).contains(&lf),
        "{what}: load factor {lf} out of range"
    );
    if let Completeness::Truncated { reason } = report.completeness {
        let (counter, name) = match reason {
            TruncationReason::BudgetExceeded(BudgetBound::WallClock) => {
                (s.trip_wall_clock, "trip_wall_clock")
            }
            TruncationReason::BudgetExceeded(BudgetBound::States) => (s.trip_states, "trip_states"),
            TruncationReason::BudgetExceeded(BudgetBound::Interleavings) => {
                (s.trip_interleavings, "trip_interleavings")
            }
            TruncationReason::BudgetExceeded(BudgetBound::Actions) => {
                (s.trip_actions, "trip_actions")
            }
            TruncationReason::Cancelled => (s.trip_cancelled, "trip_cancelled"),
            TruncationReason::WorkerPanic => (s.trip_worker_panic, "trip_worker_panic"),
        };
        assert!(counter > 0, "{what}: truncated by {reason} but {name} == 0");
    }
}

/// The observer property: everything the analysis *reports* is
/// untouched by the collector.
fn assert_observer(with: &AnalysisReport, without: &AnalysisReport, what: &str) {
    assert_eq!(with.verdict, without.verdict, "{what}: verdict");
    assert_eq!(with.behaviours, without.behaviours, "{what}: behaviours");
    assert_eq!(with.race, without.race, "{what}: race witness");
    assert_eq!(
        with.reachable_states, without.reachable_states,
        "{what}: reachable states"
    );
    assert_eq!(
        with.completeness, without.completeness,
        "{what}: completeness"
    );
    assert_eq!(
        without.stats,
        ExploreStats::default(),
        "{what}: metrics-off run leaked a live collector"
    );
}

#[test]
fn metrics_are_inert_observers_on_the_corpus() {
    let budget = Budget::unlimited();
    for litmus in corpus() {
        let program = litmus.parse().program;
        for jobs in [1, 4] {
            let what = format!("litmus {} jobs={jobs}", litmus.name);
            let with = run(&program, default_por(), jobs, &budget, true);
            let without = run(&program, default_por(), jobs, &budget, false);
            assert_well_formed(&with, &what);
            assert_observer(&with, &without, &what);
        }
    }
}

#[test]
fn visited_equals_interned_on_generated_programs() {
    let configs = configs();
    let budget = capped_budget();
    for seed in 0..seeds() {
        let config = &configs[usize::try_from(seed).unwrap() % configs.len()];
        let program = random_program(seed, config);
        for jobs in [1, 4] {
            let what = format!("seed {seed} jobs={jobs}");
            let report = run(&program, default_por(), jobs, &budget, true);
            assert_well_formed(&report, &what);
        }
    }
}

#[test]
fn por_never_increases_visited_states() {
    let configs = configs();
    let budget = capped_budget();
    for seed in 0..seeds() {
        let config = &configs[usize::try_from(seed).unwrap() % configs.len()];
        let program = random_program(seed, config);
        let what = format!("seed {seed}");
        let reduced = run(&program, true, 1, &budget, true);
        let full = run(&program, false, 1, &budget, true);
        assert_well_formed(&reduced, &format!("{what} [por]"));
        assert_well_formed(&full, &format!("{what} [no-por]"));
        if reduced.completeness.is_complete() && full.completeness.is_complete() {
            assert!(
                reduced.stats.states_visited <= full.stats.states_visited,
                "{what}: POR visited more states ({} > {})",
                reduced.stats.states_visited,
                full.stats.states_visited
            );
            // The reduction only ever prunes sibling moves.
            assert!(
                reduced.stats.moves_generated <= full.stats.moves_generated,
                "{what}: POR generated more moves"
            );
        }
        // POR accounting is exhaustive: every expansion is classified
        // as ample or full, and the full engine never reports one.
        assert_eq!(
            full.stats.por_ample_hits, 0,
            "{what}: unreduced run reported an ample hit"
        );
    }
}

#[test]
fn dpor_counters_are_consistent() {
    let configs = configs();
    let budget = capped_budget();
    for seed in 0..seeds() {
        let config = &configs[usize::try_from(seed).unwrap() % configs.len()];
        let program = random_program(seed, config);
        // Cycle the three models across the seed range.
        let model = MemoryModelKind::ALL[usize::try_from(seed).unwrap() % 3];
        let what = format!("seed {seed} model={model}");
        let reduced = Analysis::new()
            .model(model)
            .por(true)
            .budget(budget)
            .metrics(true)
            .run(&program);
        let full = Analysis::new()
            .model(model)
            .por(false)
            .budget(budget)
            .metrics(true)
            .run(&program);
        assert_well_formed(&reduced, &format!("{what} [por]"));
        assert_well_formed(&full, &format!("{what} [no-por]"));
        // The dynamic reduction never inflates the visit count.
        if reduced.completeness.is_complete() && full.completeness.is_complete() {
            assert!(
                reduced.stats.states_visited <= full.stats.states_visited,
                "{what}: DPOR visited more states ({} > {})",
                reduced.stats.states_visited,
                full.stats.states_visited
            );
        }
        // With POR off every dpor counter is silent.
        for (counter, name) in [
            (full.stats.por_ample_hits, "por_ample_hits"),
            (full.stats.dpor_proviso_blocks, "dpor_proviso_blocks"),
            (full.stats.dpor_flush_ample_hits, "dpor_flush_ample_hits"),
            (full.stats.dpor_prev_carries, "dpor_prev_carries"),
        ] {
            assert_eq!(counter, 0, "{what}: unreduced run reported {name}");
        }
        // Flush-ample hits are a buffered-model phenomenon: SC has no
        // flush moves to single out.
        if model == MemoryModelKind::Sc {
            assert_eq!(
                reduced.stats.dpor_flush_ample_hits, 0,
                "{what}: SC reported a flush-ample hit"
            );
        }
        // Every flush-ample hit is also an ample hit, and every
        // proviso block is also a full expansion — the dpor counters
        // refine the por counters, never exceed them.
        assert!(
            reduced.stats.dpor_flush_ample_hits <= reduced.stats.por_ample_hits,
            "{what}: more flush-ample hits than ample hits"
        );
        assert!(
            reduced.stats.dpor_proviso_blocks <= reduced.stats.por_full_expansions,
            "{what}: more proviso blocks than full expansions"
        );
    }
}

#[test]
fn await_counters_are_consistent() {
    // The await-collapse counters: silent when the reduction is off,
    // live on spinning programs when it is on, and only ever counting
    // reads the collapse actually examined (every collapsed move is a
    // generated move that was dropped, so collapsed <= moves_generated).
    let spin = transafety::litmus::by_name("mp-spin")
        .expect("mp-spin litmus exists")
        .parse()
        .program;
    let budget = capped_budget();
    for model in MemoryModelKind::ALL {
        for jobs in [1, 4] {
            let what = format!("mp-spin model={model} jobs={jobs}");
            let on = Analysis::new()
                .model(model)
                .jobs(jobs)
                .awaits(true)
                .budget(budget)
                .metrics(true)
                .run(&spin);
            let off = Analysis::new()
                .model(model)
                .jobs(jobs)
                .awaits(false)
                .budget(budget)
                .metrics(true)
                .run(&spin);
            assert_well_formed(&on, &format!("{what} [awaits]"));
            assert_well_formed(&off, &format!("{what} [no-awaits]"));
            // With the reduction off both counters are silent.
            assert_eq!(
                off.stats.await_collapsed, 0,
                "{what}: unreduced run reported a collapse"
            );
            assert_eq!(
                off.stats.await_wakeups, 0,
                "{what}: unreduced run reported a wakeup"
            );
            // With it on, the spin loop must actually exercise both
            // sides of the collapse: failed re-reads dropped, and the
            // watched read that advances the spinner kept.
            assert!(
                on.stats.await_collapsed > 0,
                "{what}: spin program collapsed nothing"
            );
            assert!(
                on.stats.await_wakeups > 0,
                "{what}: spin program recorded no wakeup"
            );
            assert!(
                on.stats.await_collapsed <= on.stats.moves_generated,
                "{what}: collapsed more moves than were generated"
            );
            // The collapse makes the spin exploration exact where the
            // bounded engine trips its action fuel.
            assert!(
                on.completeness.is_complete(),
                "{what}: await-aware run truncated"
            );
            assert_eq!(on.stats.trip_actions, 0, "{what}: collapse tripped fuel");
            assert!(
                off.stats.trip_actions > 0,
                "{what}: bounded run never tripped"
            );
        }
    }
}

#[test]
fn await_counters_are_silent_on_await_free_programs() {
    // No recognised await loop anywhere in the default generator
    // output: the collapse must never fire, on any backend.
    let configs = configs();
    let budget = capped_budget();
    for seed in 0..60u64 {
        let config = &configs[usize::try_from(seed).unwrap() % configs.len()];
        let program = random_program(seed, config);
        let model = MemoryModelKind::ALL[usize::try_from(seed).unwrap() % 3];
        let what = format!("seed {seed} model={model}");
        let report = Analysis::new()
            .model(model)
            .budget(budget)
            .metrics(true)
            .run(&program);
        assert_well_formed(&report, &what);
        assert_eq!(
            report.stats.await_collapsed, 0,
            "{what}: collapse fired without an await loop"
        );
        assert_eq!(
            report.stats.await_wakeups, 0,
            "{what}: wakeup recorded without an await loop"
        );
    }
}

#[test]
fn parallel_totals_agree_with_sequential() {
    let configs = configs();
    let budget = capped_budget();
    for seed in 0..seeds() {
        let config = &configs[usize::try_from(seed).unwrap() % configs.len()];
        let program = random_program(seed, config);
        let what = format!("seed {seed}");
        let seq = run(&program, default_por(), 1, &budget, true);
        let par = run(&program, default_por(), 4, &budget, true);
        assert_eq!(
            seq.race.is_some(),
            par.race.is_some(),
            "{what}: race presence is schedule-dependent"
        );
        // Totals are only comparable when both runs completed and no
        // early exit fired: a racy program's parallel search cancels
        // its siblings the moment any worker finds a race, so the
        // explored prefix is schedule-dependent by design.
        if seq.verdict == Verdict::DrfProven && par.verdict == Verdict::DrfProven {
            assert_eq!(
                seq.stats.states_visited, par.stats.states_visited,
                "{what}: visited totals diverge across worker counts"
            );
            assert_eq!(
                seq.stats.states_interned, par.stats.states_interned,
                "{what}: interned totals diverge across worker counts"
            );
        }
    }
}

#[test]
fn truncated_runs_report_their_trip_cause() {
    let program = transafety::lang::parse_program(
        "x := 1; x := 2; || r0 := x; r1 := x; print r0; || r2 := x; x := r2;",
    )
    .expect("fixture parses")
    .program;

    let capped = Analysis::new().max_states(1).metrics(true).run(&program);
    assert_eq!(
        capped.completeness,
        Completeness::Truncated {
            reason: TruncationReason::BudgetExceeded(BudgetBound::States)
        }
    );
    assert_well_formed(&capped, "state-capped");
    assert!(capped.stats.trip_states > 0);

    let timed_out = Analysis::new()
        .timeout(Duration::ZERO)
        .metrics(true)
        .run(&program);
    assert_eq!(
        timed_out.completeness,
        Completeness::Truncated {
            reason: TruncationReason::BudgetExceeded(BudgetBound::WallClock)
        }
    );
    assert_well_formed(&timed_out, "timed-out");
    assert!(timed_out.stats.trip_wall_clock > 0);

    let token = CancelToken::new();
    token.cancel();
    let cancelled = Analysis::new()
        .metrics(true)
        .run_with_cancel(&program, token);
    assert_eq!(
        cancelled.completeness,
        Completeness::Truncated {
            reason: TruncationReason::Cancelled
        }
    );
    assert_well_formed(&cancelled, "cancelled");
    assert!(cancelled.stats.trip_cancelled > 0);
}

#[test]
fn disabled_metrics_cost_nothing_and_record_nothing() {
    let program = corpus()
        .iter()
        .find(|l| l.name == "sb")
        .expect("store-buffering litmus exists")
        .parse()
        .program;
    let report = Analysis::new().run(&program);
    assert!(!report.stats.enabled);
    assert_eq!(report.stats, ExploreStats::default());
    assert_eq!(report.stats.trips_total(), 0);
    assert!(report.stats.events.is_empty());
}
