//! A Sun/x86-style TSO machine for the §6 language, and the executable
//! form of the paper's §8 claim that TSO is *explained by* the paper's
//! transformations (write→read reordering plus forwarding elimination).
//!
//! # Example
//!
//! ```
//! use transafety_lang::{parse_program, ExploreOptions};
//! use transafety_tso::explain_tso;
//!
//! // the store-buffering litmus test
//! let p = parse_program(
//!     "x := 1; r1 := y; print r1; || y := 1; r2 := x; print r2;")?.program;
//! let e = explain_tso(&p, 3, &ExploreOptions::default());
//! assert!(e.relaxed && e.explained);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod explain;
mod machine;
mod model;
mod pso;

pub use explain::{explain_tso, tso_fragment, TsoExplanation};
pub use machine::TsoState;
pub use model::{PsoModel, TsoModel};
pub use pso::{explain_pso, pso_fragment, PsoExplanation, PsoState};
