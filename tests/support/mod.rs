//! Shared corpus, budget and environment helpers for the integration
//! suites that sweep the generated-program corpus.
//!
//! The agreement/invariant suites (`por_agreement`, `model_agreement`,
//! `metrics_invariants`, `properties`, `fuzz_regressions`) all iterate
//! the same seed range over the same generator mixes under the same
//! capped budget; this module is the single definition of that corpus
//! so the suites cannot drift apart.
//!
//! Environment knobs (both honoured by CI):
//! - `TRANSAFETY_FUZZ_SEEDS=N` overrides every suite's seed count —
//!   crank it up for a deep local soak, down for a quick smoke;
//! - `TRANSAFETY_NO_POR=1` pushes the corpus through the unreduced
//!   engine wherever a suite uses the default POR setting.

#![allow(dead_code)]

use std::time::Duration;

use transafety::litmus::GeneratorConfig;
use transafety::Budget;

/// Worker counts every suite cross-checks: the sequential reference
/// driver and a parallel pool.
pub const JOBS: [usize; 2] = [1, 4];

/// The default generated-program seed count of the big sweeps.
pub const DEFAULT_SEEDS: u64 = 200;

/// Seed count with the `TRANSAFETY_FUZZ_SEEDS` override applied.
pub fn seeds() -> u64 {
    seeds_or(DEFAULT_SEEDS)
}

/// Seed count for a suite whose default differs from the big sweeps
/// (e.g. the heavier property checks); the `TRANSAFETY_FUZZ_SEEDS`
/// override still wins so one knob scales the whole test tier.
pub fn seeds_or(default: u64) -> u64 {
    match std::env::var("TRANSAFETY_FUZZ_SEEDS") {
        Ok(v) if !v.is_empty() => v
            .parse()
            .unwrap_or_else(|_| panic!("TRANSAFETY_FUZZ_SEEDS: not a number: {v}")),
        _ => default,
    }
}

/// The loop-free generator mix every sweep shares: the default shape,
/// the lock-disciplined shape, volatiles, and a wider 3×5 shape.
pub fn configs() -> Vec<GeneratorConfig> {
    vec![
        GeneratorConfig::default(),
        GeneratorConfig::drf(),
        GeneratorConfig::with_volatiles(),
        GeneratorConfig {
            threads: 3,
            stmts_per_thread: 5,
            ..GeneratorConfig::default()
        },
    ]
}

/// [`configs`] plus the loop-bearing shape (the metrics sweep).
pub fn configs_with_loops() -> Vec<GeneratorConfig> {
    let mut out = configs();
    out.push(GeneratorConfig::with_loops());
    out
}

/// [`configs_with_loops`] plus a loop-heavy volatile shape (the POR
/// agreement sweep).
pub fn configs_full() -> Vec<GeneratorConfig> {
    let mut out = configs_with_loops();
    out.push(GeneratorConfig {
        loop_prob: 0.4,
        ..GeneratorConfig::with_volatiles()
    });
    out
}

/// Generous enough that small programs complete, bounded enough that an
/// adversarial generated program cannot hang the suite.
pub fn capped_budget() -> Budget {
    Budget::unlimited()
        .max_states(200_000)
        .timeout(Duration::from_secs(5))
}

/// The suite's default POR setting; set `TRANSAFETY_NO_POR=1` to push
/// the whole corpus through the unreduced engine (the CI observability
/// job runs both variants). POR-comparison tests drive both settings
/// explicitly regardless.
pub fn default_por() -> bool {
    std::env::var_os("TRANSAFETY_NO_POR").is_none_or(|v| v.is_empty())
}
