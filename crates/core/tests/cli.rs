//! End-to-end tests of the `drfcheck` binary.

use std::process::Command;

fn drfcheck(args: &[&str]) -> (String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_drfcheck"))
        .args(args)
        .output()
        .expect("drfcheck runs");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    (stdout, out.status.success())
}

#[test]
fn races_on_corpus_programs() {
    let (out, ok) = drfcheck(&["races", "sb"]);
    assert!(!ok, "sb is racy: non-zero exit");
    assert!(out.contains("data race between"), "{out}");
    let (out, ok) = drfcheck(&["races", "sb-volatile"]);
    assert!(ok);
    assert!(out.contains("data race free"));
}

#[test]
fn classify_pairs() {
    let (out, ok) = drfcheck(&["classify", "fig1-original", "fig1-transformed"]);
    assert!(ok, "{out}");
    assert!(out.contains("elimination"), "{out}");
    let (out, ok) = drfcheck(&["classify", "fig3-a", "fig3-b"]);
    assert!(!ok, "read introduction is outside the safe classes");
    assert!(out.contains("outside the safe classes"), "{out}");
}

#[test]
fn behaviours_lists_prefix_closed_set() {
    let (out, ok) = drfcheck(&["behaviours", "fig2-original"]);
    assert!(ok);
    assert!(
        out.lines().any(|l| l == "[]"),
        "empty behaviour always present: {out}"
    );
    assert!(out.lines().any(|l| l == "[0]"));
    assert!(
        !out.lines().any(|l| l == "[1]"),
        "fig2 original cannot print 1"
    );
}

#[test]
fn oota_and_tso_and_dot() {
    let (out, ok) = drfcheck(&["oota", "oota", "42"]);
    assert!(ok, "{out}");
    assert!(out.contains("no thin-air origin"), "{out}");
    let (out, ok) = drfcheck(&["tso", "sb"]);
    assert!(ok, "{out}");
    assert!(out.contains("relaxed"), "{out}");
    let (out, ok) = drfcheck(&["dot", "sb"]);
    assert!(ok);
    assert!(out.starts_with("digraph"));
}

#[test]
fn usage_on_bad_arguments() {
    let out = Command::new(env!("CARGO_BIN_EXE_drfcheck"))
        .arg("frobnicate")
        .output()
        .expect("drfcheck runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn litmus_lists_corpus() {
    let (out, ok) = drfcheck(&["litmus"]);
    assert!(ok);
    assert!(out.lines().count() >= 30);
    assert!(out.contains("fig2-original"));
}
