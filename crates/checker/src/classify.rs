//! One-shot classification of a program transformation into the paper's
//! safe classes — the entry point a compiler test-suite would embed.

use std::fmt;

use transafety_lang::Program;
use transafety_traces::Trace;

use crate::correspondence::{
    check_elimination_correspondence, check_identity_correspondence,
    check_reordering_correspondence, Correspondence, SemanticClass,
};
use crate::guarantee::{behaviour_refinement, Refinement};
use crate::Analysis;

/// The verdict of [`classify_transformation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformationClass {
    /// `[P'] = [P]` — a trace-preserving transformation (§2.1); safe for
    /// every program.
    Identity,
    /// `[P']` is a semantic elimination of `[P]` (§4) — covered by
    /// Theorems 1/3.
    Elimination,
    /// `[P']` is a reordering of an elimination of `[P]` (§4, Lemma 5) —
    /// covered by Theorems 2/4.
    EliminationThenReordering,
    /// Outside the paper's safe classes, but behaviour-refining for this
    /// particular program (an SC-preserving compiler would accept it;
    /// the DRF contract gives it no blanket licence).
    ScRefiningOnly,
    /// Outside every class: it changes this program's SC behaviours.
    /// The offending trace (if the semantic searches produced one) and
    /// behaviour help debugging.
    Unsafe {
        /// A transformed-traceset member with no semantic witness.
        witness_trace: Option<Trace>,
    },
    /// Bounds were hit before a verdict.
    Inconclusive,
}

impl TransformationClass {
    /// Is the transformation in one of the paper's always-safe classes?
    #[must_use]
    pub fn is_paper_safe(&self) -> bool {
        matches!(
            self,
            TransformationClass::Identity
                | TransformationClass::Elimination
                | TransformationClass::EliminationThenReordering
        )
    }
}

impl fmt::Display for TransformationClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformationClass::Identity => f.write_str("trace-preserving (identity)"),
            TransformationClass::Elimination => f.write_str("semantic elimination"),
            TransformationClass::EliminationThenReordering => {
                f.write_str("reordering of an elimination")
            }
            TransformationClass::ScRefiningOnly => {
                f.write_str("outside the safe classes (SC-refining for this program only)")
            }
            TransformationClass::Unsafe { .. } => f.write_str("UNSAFE (changes SC behaviours)"),
            TransformationClass::Inconclusive => f.write_str("inconclusive"),
        }
    }
}

/// Classifies the transformation `original ⇒ transformed` into the
/// strongest class that holds: identity, elimination, elimination-then-
/// reordering, SC-refining-only, or unsafe.
///
/// # Example
///
/// ```
/// use transafety_checker::{classify_transformation, Analysis, TransformationClass};
/// use transafety_lang::{parse_program, parse_program_with_symbols};
///
/// let original = parse_program("r1 := x; r2 := x; print r2;")?;
/// let transformed = parse_program_with_symbols(
///     "r1 := x; r2 := r1; print r2;", original.symbols.clone())?;
/// let class = classify_transformation(
///     &transformed.program, &original.program, &Analysis::default());
/// assert_eq!(class, TransformationClass::Elimination);
/// assert!(class.is_paper_safe());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn classify_transformation(
    transformed: &Program,
    original: &Program,
    opts: &Analysis,
) -> TransformationClass {
    match check_identity_correspondence(transformed, original, opts) {
        Correspondence::Verified {
            class: SemanticClass::Identity,
        } => return TransformationClass::Identity,
        Correspondence::Inconclusive => return TransformationClass::Inconclusive,
        _ => {}
    }
    match check_elimination_correspondence(transformed, original, opts) {
        Correspondence::Verified { .. } => return TransformationClass::Elimination,
        Correspondence::Inconclusive => return TransformationClass::Inconclusive,
        Correspondence::Failed { .. } => {}
    }
    let witness = match check_reordering_correspondence(transformed, original, opts) {
        Correspondence::Verified { .. } => return TransformationClass::EliminationThenReordering,
        Correspondence::Inconclusive => return TransformationClass::Inconclusive,
        Correspondence::Failed { trace } => trace,
    };
    match behaviour_refinement(transformed, original, opts) {
        Refinement::Refines => TransformationClass::ScRefiningOnly,
        Refinement::NewBehaviour(_) => TransformationClass::Unsafe {
            witness_trace: Some(witness),
        },
        Refinement::Inconclusive => TransformationClass::Inconclusive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transafety_lang::{parse_program, parse_program_with_symbols};
    use transafety_traces::Domain;

    fn pair(o: &str, t: &str) -> (Program, Program) {
        let original = parse_program(o).unwrap();
        let transformed = parse_program_with_symbols(t, original.symbols.clone()).unwrap();
        (original.program, transformed.program)
    }

    fn opts() -> Analysis {
        Analysis::with_domain(Domain::zero_to(1))
    }

    #[test]
    fn identity_class() {
        // swapping a register move across an unrelated load is
        // trace-preserving
        let (o, t) = pair("r1 := 1; r2 := x; print r2;", "r2 := x; r1 := 1; print r2;");
        assert_eq!(
            classify_transformation(&t, &o, &opts()),
            TransformationClass::Identity
        );
    }

    #[test]
    fn elimination_class() {
        let (o, t) = pair(
            "r1 := x; r2 := x; print r2;",
            "r1 := x; r2 := r1; print r2;",
        );
        assert_eq!(
            classify_transformation(&t, &o, &opts()),
            TransformationClass::Elimination
        );
    }

    #[test]
    fn reordering_class() {
        let (o, t) = pair("r1 := y; x := r0; print r1;", "x := r0; r1 := y; print r1;");
        assert_eq!(
            classify_transformation(&t, &o, &opts()),
            TransformationClass::EliminationThenReordering
        );
    }

    #[test]
    fn read_introduction_is_sc_refining_only() {
        // Fig. 3's (a) → (b): invisible under SC, outside the classes.
        let (o, t) = pair(
            "lock m; x := 1; print y; unlock m; || lock m; y := 1; print x; unlock m;",
            "r1 := y; lock m; x := 1; print y; unlock m; \
             || r2 := x; lock m; y := 1; print x; unlock m;",
        );
        let c = classify_transformation(&t, &o, &opts());
        assert_eq!(c, TransformationClass::ScRefiningOnly);
        assert!(!c.is_paper_safe());
    }

    #[test]
    fn behaviour_changing_is_unsafe() {
        let (o, t) = pair("print 1;", "print 2;");
        let c = classify_transformation(&t, &o, &opts());
        assert!(matches!(c, TransformationClass::Unsafe { .. }));
        assert!(c.to_string().contains("UNSAFE"));
    }
}
