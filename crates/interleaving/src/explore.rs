//! Exhaustive exploration of the sequentially consistent executions of a
//! finite traceset.
//!
//! # State representation
//!
//! The explorer canonicalises every machine state into a compact
//! word-buffer encoding (see [`StateSpace`]): per-thread trie cursors,
//! dense memory indexed by pre-computed location ids, and an inline lock
//! table, all packed into one `Box<[u32]>`. States are interned into a
//! [`StateInterner`] which hands out dense `u32` ids; every memo and
//! visited structure keys on ids, and hashing uses the cheap
//! [`intern::FxHasher`](crate::intern::FxHasher) over the word buffer.
//! The encoding is bijective with the uncompressed `BTreeMap`
//! representation on reachable states (checked by
//! [`audit_intern`](Explorer::audit_intern) and the property suite), so
//! verdicts, behaviours and state counts are bit-identical to the
//! pre-interning engine — which is retained as the `*_reference` entry
//! points for differential testing and benchmarking.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use transafety_traces::{Action, Loc, Monitor, Traceset, Value};

use crate::budget::BudgetGuard;
use crate::intern::{FxHashSet, IdMap, InternAudit, ScratchPool, StateInterner};
use crate::metrics::{Counter, CounterTally, ExpansionKind, Phase};
use crate::{par, Event, IndexedTraceset, Interleaving};

/// The behaviours of a program: a prefix-closed set of sequences of
/// external-action values (§1/§5 of the paper observe programs through
/// their external actions).
pub type Behaviours = BTreeSet<Vec<Value>>;

/// Caps on exploration size, used by the execution-enumerating entry
/// points to stay total on adversarial inputs.
///
/// # Example
///
/// ```
/// use transafety_interleaving::ExploreLimits;
/// let limits = ExploreLimits::default();
/// assert!(limits.max_interleavings > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreLimits {
    /// Maximum number of maximal executions to materialise.
    pub max_interleavings: usize,
}

impl Default for ExploreLimits {
    fn default() -> Self {
        ExploreLimits {
            max_interleavings: 1_000_000,
        }
    }
}

/// A data race found by the explorer: a concrete execution ending in two
/// adjacent conflicting actions of different threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceWitness {
    /// The racy execution; the race is between its last two events.
    pub execution: Interleaving,
}

impl RaceWitness {
    /// The index of the first event of the racing pair.
    #[must_use]
    pub fn index(&self) -> usize {
        self.execution.len() - 2
    }

    /// The two racing events.
    #[must_use]
    pub fn pair(&self) -> (Event, Event) {
        let n = self.execution.len();
        (self.execution[n - 2], self.execution[n - 1])
    }
}

impl std::fmt::Display for RaceWitness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (a, b) = self.pair();
        write!(f, "data race between {a} and {b} in {}", self.execution)
    }
}

/// Exhaustive explorer of the sequentially consistent executions of a
/// [`Traceset`] (§3).
///
/// All entry points are *exact* for the (finite) traceset:
///
/// * [`behaviours`](Explorer::behaviours) — the set of behaviours of all
///   executions, computed by memoised dynamic programming over explorer
///   states (never materialises the exponentially many interleavings);
/// * [`race_witness`](Explorer::race_witness) /
///   [`is_data_race_free`](Explorer::is_data_race_free) — the §3
///   adjacent-conflict data-race condition, by memoised search;
/// * [`maximal_executions`](Explorer::maximal_executions) — the raw
///   enumeration (exponential; intended for the paper's litmus-sized
///   programs and for cross-validating the clever entry points);
/// * [`count_maximal_executions`](Explorer::count_maximal_executions) —
///   counting by dynamic programming.
///
/// # Partial-order reduction
///
/// The behaviour and race entry points apply a **dynamic** happens-before
/// commutativity partial-order reduction (ample-set style) by default:
/// when every possible next action of some thread is *invisible* — it
/// neither synchronises nor conflicts with any action another thread
/// can **still** perform from the current state on, judged against
/// per-trie-node *suffix* footprints rather than whole-program static
/// ones — only that thread is expanded, pruning the
/// Mazurkiewicz-equivalent interleavings of commuting moves. Because
/// footprints shrink as cursors advance, a location that was contended
/// early in the run becomes private once its last foreign access is
/// behind every other thread, and the reduction keeps firing where a
/// static footprint would block it forever. The race search pairs this
/// with a *check-before-carry* discipline: ample moves are race-checked
/// against the last recorded access (an invisible move can still
/// conflict with a *past* access) and then carry the tracker through
/// unchanged. The reduction preserves the behaviour set and the
/// existence of §3 adjacent-conflict races exactly (see
/// `docs/paper-mapping.md`);
/// [`por`](Explorer::por)`(false)` restores the unreduced engine. The
/// counting and enumeration entry points
/// ([`maximal_executions`](Explorer::maximal_executions),
/// [`count_maximal_executions`](Explorer::count_maximal_executions),
/// [`count_reachable_states`](Explorer::count_reachable_states)) are
/// defined over the *full* interleaving set and always ignore the
/// reduction.
///
/// # Example
///
/// ```
/// use transafety_traces::{Action, Loc, ThreadId, Trace, Traceset, Value};
/// use transafety_interleaving::Explorer;
/// let x = Loc::normal(0);
/// let mut t = Traceset::new();
/// t.insert(Trace::from_actions([
///     Action::start(ThreadId::new(0)),
///     Action::write(x, Value::new(1)),
/// ]))?;
/// t.insert(Trace::from_actions([
///     Action::start(ThreadId::new(1)),
///     Action::read(x, Value::new(1)),
/// ]))?;
/// let explorer = Explorer::new(&t);
/// assert!(!explorer.is_data_race_free()); // unsynchronised W/R on x
/// # Ok::<(), transafety_traces::TraceError>(())
/// ```
#[derive(Debug)]
pub struct Explorer {
    trie: IndexedTraceset,
    por: bool,
    footprint: Footprint,
    space: StateSpace,
}

/// The *suffix* footprint of one trie node: what the owning thread may
/// still do on any path below the node. The **dynamic** partial-order
/// reduction derives independence from the footprints of the *other*
/// threads' current nodes — an access to a location no other thread can
/// ever touch *again* commutes with every future move of every other
/// thread, even if that location was contended earlier in the run.
#[derive(Debug, Default, Clone)]
struct NodeFootprint {
    /// Locations some path below the node still writes.
    writes: BTreeSet<Loc>,
    /// Locations some path below the node still reads or writes.
    accesses: BTreeSet<Loc>,
    /// Monitors some path below the node still locks or unlocks.
    monitors: BTreeSet<Monitor>,
    /// Does some path below the node still emit an external action?
    externals: bool,
}

impl NodeFootprint {
    fn absorb(&mut self, other: &NodeFootprint) {
        self.writes.extend(other.writes.iter().copied());
        self.accesses.extend(other.accesses.iter().copied());
        self.monitors.extend(other.monitors.iter().copied());
        self.externals |= other.externals;
    }
}

/// Per-node suffix footprints for the whole trie, computed bottom-up at
/// construction (the trie is a tree, so one post-order pass suffices).
#[derive(Debug, Default)]
struct Footprint {
    /// Indexed by trie node id.
    nodes: Vec<NodeFootprint>,
    /// Per thread index: the footprint of the subtree under the
    /// thread's root `Start` edge. A thread whose cursor is still at
    /// `ROOT` has its whole trace ahead of it, and `nodes[ROOT]` would
    /// wrongly aggregate every thread's subtree.
    roots: Vec<NodeFootprint>,
}

impl Footprint {
    fn of(trie: &IndexedTraceset) -> Footprint {
        let mut nodes = vec![NodeFootprint::default(); trie.node_count()];
        // Pre-order push, reverse for post-order: children before
        // parents (each node has one parent in a trie).
        let mut order = Vec::with_capacity(trie.node_count());
        let mut stack = vec![IndexedTraceset::ROOT];
        while let Some(n) = stack.pop() {
            order.push(n);
            for (_, next) in trie.edges(n) {
                stack.push(next);
            }
        }
        for &n in order.iter().rev() {
            let mut fp = NodeFootprint::default();
            for (a, next) in trie.edges(n) {
                match *a {
                    Action::Read { loc, .. } => {
                        fp.accesses.insert(loc);
                    }
                    Action::Write { loc, .. } => {
                        fp.accesses.insert(loc);
                        fp.writes.insert(loc);
                    }
                    Action::Lock(m) | Action::Unlock(m) => {
                        fp.monitors.insert(m);
                    }
                    Action::External(_) => fp.externals = true,
                    Action::Start(_) => {}
                }
                fp.absorb(&nodes[next]);
            }
            nodes[n] = fp;
        }
        let roots = trie
            .threads()
            .iter()
            .map(|tid| {
                trie.edges(IndexedTraceset::ROOT)
                    .find_map(|(a, next)| match *a {
                        Action::Start(entry) if entry == *tid => Some(nodes[next].clone()),
                        _ => None,
                    })
                    .unwrap_or_default()
            })
            .collect();
        Footprint { nodes, roots }
    }

    /// The future footprint of thread `k` whose cursor sits at `node`.
    fn future(&self, k: usize, node: usize) -> &NodeFootprint {
        if node == IndexedTraceset::ROOT {
            &self.roots[k]
        } else {
            &self.nodes[node]
        }
    }
}

/// The pre-computed dense index space of a traceset: the sorted
/// location and monitor universes, fixing the layout of the compact
/// state word buffer:
///
/// ```text
/// [ cursor_0 .. cursor_{T-1} | mem_0 .. mem_{L-1} | (holder+1, depth) x M ]
/// ```
///
/// Cursors are trie node ids; memory holds one raw [`Value`] word per
/// location (absent-means-zero, exactly the read-default rule); each
/// monitor gets a `holder + 1` word (`0` = free) and a nesting-depth
/// word. The all-zero buffer is the initial state.
#[derive(Debug)]
struct StateSpace {
    threads: usize,
    /// Sorted location universe; a location's dense id is its index.
    locs: Vec<Loc>,
    /// Sorted monitor universe.
    monitors: Vec<Monitor>,
}

impl StateSpace {
    fn of(trie: &IndexedTraceset) -> StateSpace {
        let mut locs = BTreeSet::new();
        let mut monitors = BTreeSet::new();
        for node in 0..trie.node_count() {
            for (a, _) in trie.edges(node) {
                match *a {
                    Action::Read { loc, .. } | Action::Write { loc, .. } => {
                        locs.insert(loc);
                    }
                    Action::Lock(m) | Action::Unlock(m) => {
                        monitors.insert(m);
                    }
                    _ => {}
                }
            }
        }
        assert!(
            u32::try_from(trie.node_count()).is_ok(),
            "trie too large for packed cursors"
        );
        StateSpace {
            threads: trie.threads().len(),
            locs: locs.into_iter().collect(),
            monitors: monitors.into_iter().collect(),
        }
    }

    fn words(&self) -> usize {
        self.threads + self.locs.len() + 2 * self.monitors.len()
    }

    /// The word index of a location's memory cell.
    fn loc_slot(&self, loc: Loc) -> usize {
        self.threads
            + self
                .locs
                .binary_search(&loc)
                .expect("location in the traceset universe")
    }

    /// The word index of a monitor's holder word (depth is the next
    /// word).
    fn monitor_slot(&self, m: Monitor) -> usize {
        self.threads
            + self.locs.len()
            + 2 * self
                .monitors
                .binary_search(&m)
                .expect("monitor in the traceset universe")
    }

    fn mem(&self, state: &State, loc: Loc) -> Value {
        Value::new(state.words[self.loc_slot(loc)])
    }
}

/// The explorer's machine state in the compact word-buffer encoding
/// (layout fixed by [`StateSpace`]); equality is a word-wise compare and
/// hashing runs [`FxHasher`](crate::intern::FxHasher) over the words.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    words: Box<[u32]>,
}

/// The uncompressed reference representation of a machine state, kept
/// for the pre-interning reference engine and the encode/decode audits.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct RefState {
    cursors: Vec<usize>,
    memory: BTreeMap<Loc, Value>,
    locks: BTreeMap<Monitor, (usize, u32)>,
}

/// A single enabled move: thread index, the action, and the successor
/// trie node for that thread.
#[derive(Debug, Clone, Copy)]
struct Move {
    thread: usize,
    action: Action,
    next_node: usize,
}

/// The previous normal access of the race search, as
/// `(thread, location, was_write)`.
type Prev = Option<(usize, Loc, bool)>;

/// On a race detected through a *carried* `prev`, the events pushed
/// after `prev`'s (interposed ample moves) sit between the racing pair.
/// Commute them out of the way: the racing thread's interposed moves
/// slide before the earlier access (they are independent of it — an
/// interposed move conflicting with the tracked access would itself
/// have been reported as the race), every other thread's slide after
/// the pair and are dropped as unexecuted trailing work (executions are
/// prefix-closed). The caller then pushes the racing event, leaving the
/// §3 adjacent conflicting pair as the last two events of a valid
/// execution. `prev_at` is the path length right after the tracked
/// access's event was pushed; a no-op when nothing was interposed.
fn reorder_carried_witness(
    path: &mut Vec<Event>,
    prev_at: usize,
    racing: transafety_traces::ThreadId,
) {
    if path.len() <= prev_at {
        return; // nothing interposed: the pair is already adjacent
    }
    let mut tail: Vec<Event> = path.drain(prev_at - 1..).collect();
    let earlier = tail.remove(0);
    path.extend(tail.into_iter().filter(|e| e.thread() == racing));
    path.push(earlier);
}

impl Explorer {
    /// Creates an explorer for the given traceset (with partial-order
    /// reduction enabled; see [`por`](Explorer::por)).
    #[must_use]
    pub fn new(t: &Traceset) -> Self {
        let trie = IndexedTraceset::new(t);
        let footprint = Footprint::of(&trie);
        let space = StateSpace::of(&trie);
        Explorer {
            trie,
            por: true,
            footprint,
            space,
        }
    }

    /// Enables or disables the happens-before partial-order reduction
    /// for the behaviour and race entry points (default: enabled). Both
    /// settings compute the same behaviours and the same racy/DRF
    /// verdict; disabling only matters for cross-validating the
    /// reduction or measuring the full state space.
    #[must_use]
    pub fn por(mut self, enabled: bool) -> Self {
        self.por = enabled;
        self
    }

    /// The all-zero word buffer: every cursor at `ROOT` (node 0), every
    /// memory cell at the default zero, every lock free.
    fn initial_state(&self) -> State {
        State {
            words: vec![0u32; self.space.words()].into_boxed_slice(),
        }
    }

    /// Enabled moves at `state`, in deterministic order, appended to the
    /// caller's (cleared) scratch buffer.
    fn moves_into(&self, state: &State, out: &mut Vec<Move>) {
        out.clear();
        for k in 0..self.space.threads {
            let node = state.words[k] as usize;
            for (a, next) in self.trie.edges(node) {
                let enabled = match *a {
                    Action::Start(entry) => {
                        node == IndexedTraceset::ROOT && entry == self.trie.threads()[k]
                    }
                    Action::Read { loc, value } => self.space.mem(state, loc) == value,
                    Action::Write { .. } | Action::External(_) => true,
                    Action::Lock(m) => {
                        let holder = state.words[self.space.monitor_slot(m)];
                        holder == 0 || holder as usize == k + 1
                    }
                    Action::Unlock(m) => {
                        let s = self.space.monitor_slot(m);
                        state.words[s] as usize == k + 1 && state.words[s + 1] > 0
                    }
                };
                if enabled {
                    out.push(Move {
                        thread: k,
                        action: *a,
                        next_node: next,
                    });
                }
            }
        }
    }

    /// Allocating form of [`moves_into`](Explorer::moves_into), for the
    /// parallel drivers (which cannot share a scratch pool).
    fn moves_vec(&self, state: &State) -> Vec<Move> {
        let mut out = Vec::new();
        self.moves_into(state, &mut out);
        out
    }

    /// Is `a`, performed by thread `k`, **dynamically invisible**:
    /// guaranteed to neither synchronise nor conflict (§3) with any
    /// action any *other* thread can still perform from this state on,
    /// and unobservable relative to the other threads' remaining
    /// behaviour?
    ///
    /// Invisible actions commute with every other-thread future move,
    /// their enabledness is stable under other-thread moves, and they
    /// can never be the *earlier* endpoint of a data race going forward
    /// — the facts the ample-set reduction in
    /// [`por_moves_into`](Explorer::por_moves_into) rests on. (They
    /// *can* race with a past access of another thread, which is why
    /// the race search checks every ample move against its last-access
    /// tracker before carrying it through — see
    /// [`race_dfs`](Explorer::race_dfs).)
    ///
    /// `cursor(j)` is thread `j`'s current trie node; the judgment is a
    /// pure function of the state's cursors, so memoisation and
    /// parallel graph deduplication stay exact.
    fn invisible_with<F: Fn(usize) -> usize>(&self, cursor: F, k: usize, a: &Action) -> bool {
        let others = |pred: &dyn Fn(&NodeFootprint) -> bool| {
            (0..self.space.threads).all(|j| j == k || !pred(self.footprint.future(j, cursor(j))))
        };
        match *a {
            // Thread starts only advance the starting thread's cursor.
            Action::Start(_) => true,
            // A non-volatile read of a location no other thread will
            // ever write again: the value it sees cannot change under
            // it, and it conflicts with nothing ahead.
            Action::Read { loc, .. } => {
                !loc.is_volatile() && others(&|fp| fp.writes.contains(&loc))
            }
            // A non-volatile write to a location no other thread will
            // ever touch again: invisible to every future read.
            Action::Write { loc, .. } => {
                !loc.is_volatile() && others(&|fp| fp.accesses.contains(&loc))
            }
            // Lock/Unlock of a monitor no other thread will ever use
            // again: the acquisition can neither block nor order
            // anything ahead.
            Action::Lock(m) | Action::Unlock(m) => others(&|fp| fp.monitors.contains(&m)),
            // An external is observable, but its position relative to
            // *silent* moves is not: if no other thread will ever emit
            // an external again, the output order is fixed by program
            // order alone.
            Action::External(_) => others(&|fp| fp.externals),
        }
    }

    /// [`invisible_with`](Explorer::invisible_with) over a compact
    /// state's cursor words.
    fn invisible(&self, state: &State, k: usize, a: &Action) -> bool {
        self.invisible_with(|j| state.words[j] as usize, k, a)
    }

    /// The reduced move set at `state`, written into the caller's
    /// scratch buffer: the ample set of the dynamic happens-before
    /// partial-order reduction, or all enabled moves when no reduction
    /// applies (or POR is disabled).
    ///
    /// Selection rule: the lowest-indexed thread whose *every* trie
    /// edge at its current node — enabled or not — is dynamically
    /// [`invisible`](Explorer::invisible) against the other threads'
    /// *remaining* suffix footprints, and that has at least one enabled
    /// move, becomes the ample thread; only its moves are explored.
    /// Checking all edges (not just enabled ones) matters: a disabled
    /// read edge of a still-shared location could become enabled after
    /// another thread's write, so only a thread whose entire next-step
    /// alternative set commutes with the rest of the run may be
    /// prioritised. The choice is a pure function of the state, so
    /// memoisation and parallel graph deduplication stay exact.
    ///
    /// Every explorer move strictly advances a trie cursor, so the
    /// state graph is a DAG and the classic ample-set cycle proviso
    /// holds vacuously; soundness is argued in `docs/paper-mapping.md`.
    /// The returned [`ExpansionKind`] feeds the observability layer
    /// (ample hits vs. full expansions).
    fn por_moves_into(&self, state: &State, out: &mut Vec<Move>) -> ExpansionKind {
        self.moves_into(state, out);
        if !self.por {
            return ExpansionKind::Full;
        }
        for k in 0..self.space.threads {
            let node = state.words[k] as usize;
            let mut edges = self.trie.edges(node).peekable();
            if edges.peek().is_none() {
                continue; // thread finished
            }
            if !edges.all(|(a, _)| self.invisible(state, k, a)) {
                continue;
            }
            if out.iter().any(|mv| mv.thread == k) {
                out.retain(|mv| mv.thread == k);
                return ExpansionKind::Ample;
            }
        }
        ExpansionKind::Full
    }

    /// Allocating form of [`por_moves_into`](Explorer::por_moves_into),
    /// for the parallel drivers.
    fn por_moves_vec(&self, state: &State) -> (Vec<Move>, ExpansionKind) {
        let mut out = Vec::new();
        let kind = self.por_moves_into(state, &mut out);
        (out, kind)
    }

    /// Applies a move: clone the parent's word buffer and patch the
    /// affected words in place (no tree rebuilds, no per-entry
    /// allocation).
    fn apply(&self, state: &State, mv: &Move) -> State {
        let mut words = state.words.clone();
        words[mv.thread] = u32::try_from(mv.next_node).expect("packed cursor");
        match mv.action {
            Action::Write { loc, value } => {
                words[self.space.loc_slot(loc)] = value.get();
            }
            Action::Lock(m) => {
                let s = self.space.monitor_slot(m);
                if words[s] == 0 {
                    words[s] = mv.thread as u32 + 1;
                }
                words[s + 1] += 1;
            }
            Action::Unlock(m) => {
                let s = self.space.monitor_slot(m);
                words[s + 1] -= 1;
                if words[s + 1] == 0 {
                    words[s] = 0;
                }
            }
            _ => {}
        }
        State { words }
    }

    /// The set of behaviours of all executions of the traceset.
    ///
    /// Computed by memoised dynamic programming: the suffix-behaviour set
    /// of a state is the union over enabled moves. Because executions are
    /// prefix closed, the empty behaviour is always a member.
    #[must_use]
    pub fn behaviours(&self) -> Behaviours {
        self.behaviours_governed(&BudgetGuard::unlimited())
    }

    /// [`behaviours`](Explorer::behaviours) under a budget: the memoised
    /// recursion checks `guard` cooperatively at every state visit; once
    /// the guard trips, unexplored suffixes contribute only the empty
    /// behaviour (the result is an under-approximation and the guard's
    /// trip reason records why).
    #[must_use]
    pub fn behaviours_governed(&self, guard: &BudgetGuard) -> Behaviours {
        let metrics = guard.metrics();
        let _span = metrics.span(Phase::BehaviourEval);
        let tally = CounterTally::new(metrics);
        let mut interner: StateInterner<State> = StateInterner::new();
        let mut memo: IdMap<Arc<Behaviours>> = IdMap::new();
        let mut scratch: ScratchPool<Move> = ScratchPool::new();
        let init = self.initial_state();
        let (id, _) = interner.intern_ref(&init);
        let result = self.suffixes(
            init,
            id,
            &mut interner,
            &mut memo,
            &mut scratch,
            guard,
            &tally,
        );
        drop(tally);
        if metrics.is_enabled() {
            let stats = interner.probe_stats();
            metrics.record_intern(stats);
            // The interner is the phase's dedup structure: one key per
            // distinct state admitted (dedup *hits* are counted at the
            // memo-hit site in `suffixes`, not here, so revisit edges
            // are not double-counted).
            metrics.add(Counter::StatesInterned, stats.keys);
        }
        (*result).clone()
    }

    /// The set of behaviours, computed on `jobs` worker threads by the
    /// work-stealing parallel driver (see [`par`]): the reachable
    /// state graph is built by parallel deduplicated expansion, then
    /// the suffix-behaviour dynamic program is evaluated bottom-up in
    /// parallel. Bit-identical to [`behaviours`](Explorer::behaviours)
    /// for every traceset; `jobs <= 1` runs the sequential reference
    /// implementation.
    #[must_use]
    pub fn behaviours_par(&self, jobs: usize) -> Behaviours {
        self.behaviours_par_governed(jobs, &BudgetGuard::unlimited())
    }

    /// [`behaviours_par`](Explorer::behaviours_par) under a budget.
    /// A quarantined worker panic degrades to the sequential engine
    /// (recorded on the guard as a recovered fault).
    #[must_use]
    pub fn behaviours_par_governed(&self, jobs: usize, guard: &BudgetGuard) -> Behaviours {
        if jobs <= 1 {
            return self.behaviours_governed(guard);
        }
        let result = {
            let _span = guard.metrics().span(Phase::BehaviourEval);
            self.state_graph(jobs, guard, true)
                .and_then(|graph| par::behaviours_of(&graph, jobs, guard.metrics()))
        };
        match result {
            Ok(b) => b,
            Err(_) => {
                guard.record_fault();
                self.behaviours_governed(guard)
            }
        }
    }

    /// Builds the explicit reachable state graph on `jobs` workers.
    /// `reduced` applies the partial-order reduction (valid for the
    /// behaviour DP; the execution-count DP is defined over the full
    /// interleaving set and must pass `false`).
    fn state_graph(
        &self,
        jobs: usize,
        guard: &BudgetGuard,
        reduced: bool,
    ) -> Result<par::StateGraph<State>, crate::budget::EngineFault> {
        par::build_state_graph(jobs, self.initial_state(), guard, |state| {
            let (moves, kind) = if reduced {
                self.por_moves_vec(state)
            } else {
                (self.moves_vec(state), ExpansionKind::Full)
            };
            guard.metrics().record_expansion(moves.len(), kind);
            par::Expansion {
                moves: moves
                    .into_iter()
                    .map(|mv| (Some(mv.action), self.apply(state, &mv)))
                    .collect(),
                truncated: false,
            }
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn suffixes(
        &self,
        state: State,
        id: u32,
        interner: &mut StateInterner<State>,
        memo: &mut IdMap<Arc<Behaviours>>,
        scratch: &mut ScratchPool<Move>,
        guard: &BudgetGuard,
        tally: &CounterTally<'_>,
    ) -> Arc<Behaviours> {
        if let Some(r) = memo.get(id) {
            tally.bump(Counter::StatesDeduped);
            return Arc::clone(r);
        }
        let mut set: Behaviours = BTreeSet::new();
        set.insert(Vec::new());
        if guard.should_stop() {
            // Partial result: not memoised, so an (impossible) later
            // revisit cannot launder it as the state's exact value.
            return Arc::new(set);
        }
        guard.note_state_tallied(tally);
        let mut buf = scratch.take();
        let kind = self.por_moves_into(&state, &mut buf);
        tally.expansion(buf.len(), kind);
        for &mv in buf.iter() {
            let succ = self.apply(&state, &mv);
            let (succ_id, _) = interner.intern_ref(&succ);
            let tail = self.suffixes(succ, succ_id, interner, memo, scratch, guard, tally);
            match mv.action {
                Action::External(v) => {
                    for suffix in tail.iter() {
                        let mut b = Vec::with_capacity(suffix.len() + 1);
                        b.push(v);
                        b.extend_from_slice(suffix);
                        set.insert(b);
                    }
                }
                _ => set.extend(tail.iter().cloned()),
            }
        }
        scratch.put(buf);
        let rc = Arc::new(set);
        memo.insert(id, Arc::clone(&rc));
        rc
    }

    /// Searches for a data race (§3: two adjacent conflicting actions of
    /// different threads in some execution). Returns a concrete witness
    /// execution, or `None` if the traceset is data race free.
    #[must_use]
    pub fn race_witness(&self) -> Option<RaceWitness> {
        self.race_witness_governed(&BudgetGuard::unlimited())
    }

    /// [`race_witness`](Explorer::race_witness) under a budget: the
    /// search checks `guard` at every state visit, so `None` from a
    /// tripped guard means "no race found within budget" (the guard's
    /// trip reason distinguishes that from a proof).
    #[must_use]
    pub fn race_witness_governed(&self, guard: &BudgetGuard) -> Option<RaceWitness> {
        let metrics = guard.metrics();
        let _span = metrics.span(Phase::RaceSearch);
        // Visited key: interned state id plus the previous normal access.
        let mut interner: StateInterner<State> = StateInterner::new();
        let mut visited: FxHashSet<(u32, Prev)> = FxHashSet::default();
        let mut scratch: ScratchPool<Move> = ScratchPool::new();
        let mut path: Vec<Event> = Vec::new();
        let tally = CounterTally::new(metrics);
        let racy = self.race_dfs(
            self.initial_state(),
            None,
            0,
            &mut interner,
            &mut visited,
            &mut path,
            &mut scratch,
            guard,
            &tally,
        );
        drop(tally);
        if metrics.is_enabled() {
            metrics.record_intern(interner.probe_stats());
            // The (state, previous-access) visited set is this phase's
            // dedup structure; the interner only compresses its keys.
            metrics.add(Counter::StatesInterned, visited.len() as u64);
        }
        racy.then(|| RaceWitness {
            execution: Interleaving::from_events(path),
        })
    }

    /// DFS of the reduced transition system for an adjacent conflicting
    /// pair. `prev` is the last *recorded* normal access and `prev_at`
    /// the path length right after its event was pushed.
    ///
    /// Check-before-carry: when the expansion at a state was ample, the
    /// ample moves are still race-checked against `prev` — a
    /// dynamically-invisible move can conflict with a *past* access of
    /// another thread — and, when no race fires, `prev` is carried
    /// through them **unchanged**. Overwriting it would mask an
    /// earlier-access/later-access pair straddling the ample run (the
    /// interposed invisible moves commute around the pair, so the race
    /// is genuine; [`reorder_carried_witness`] rebuilds the adjacent
    /// witness on detection).
    #[allow(clippy::too_many_arguments)]
    fn race_dfs(
        &self,
        state: State,
        prev: Prev,
        prev_at: usize,
        interner: &mut StateInterner<State>,
        visited: &mut FxHashSet<(u32, Prev)>,
        path: &mut Vec<Event>,
        scratch: &mut ScratchPool<Move>,
        guard: &BudgetGuard,
        tally: &CounterTally<'_>,
    ) -> bool {
        if guard.should_stop() {
            return false;
        }
        // Reference-first probe: the state is cloned into the arena only
        // when it is genuinely new.
        let (id, _) = interner.intern_ref(&state);
        if !visited.insert((id, prev)) {
            tally.bump(Counter::StatesDeduped);
            return false;
        }
        guard.note_state_tallied(tally);
        let mut buf = scratch.take();
        let kind = self.por_moves_into(&state, &mut buf);
        tally.expansion(buf.len(), kind);
        for &mv in buf.iter() {
            let thread_id = self.trie.threads()[mv.thread];
            // Race check against the last recorded access.
            if let Some((pk, pl, pw)) = prev {
                if pk != mv.thread && mv.action.is_access_to(pl) && !pl.is_volatile() {
                    let racing = pw || mv.action.is_write();
                    if racing {
                        reorder_carried_witness(path, prev_at, thread_id);
                        path.push(Event::new(thread_id, mv.action));
                        return true;
                    }
                }
            }
            let (next_prev, next_at) = if kind.is_ample() {
                if prev.is_some() {
                    tally.prev_carry();
                }
                (prev, prev_at)
            } else {
                match mv.action {
                    Action::Read { loc, .. } if !loc.is_volatile() => {
                        (Some((mv.thread, loc, false)), path.len() + 1)
                    }
                    Action::Write { loc, .. } if !loc.is_volatile() => {
                        (Some((mv.thread, loc, true)), path.len() + 1)
                    }
                    _ => (None, 0),
                }
            };
            path.push(Event::new(thread_id, mv.action));
            let succ = self.apply(&state, &mv);
            if self.race_dfs(
                succ, next_prev, next_at, interner, visited, path, scratch, guard, tally,
            ) {
                return true;
            }
            path.pop();
        }
        scratch.put(buf);
        false
    }

    /// Is the traceset data race free (§3)?
    #[must_use]
    pub fn is_data_race_free(&self) -> bool {
        self.race_witness().is_none()
    }

    /// The parallel form of [`race_witness`](Explorer::race_witness):
    /// the exhaustive reachability search for an adjacent conflicting
    /// pair runs on `jobs` workers with early exit. The racy/DRF
    /// verdict is identical to the sequential search; when a race
    /// exists, the canonical sequential witness is reconstructed so
    /// the returned execution is deterministic too.
    #[must_use]
    pub fn race_witness_par(&self, jobs: usize) -> Option<RaceWitness> {
        self.race_witness_par_governed(jobs, &BudgetGuard::unlimited())
    }

    /// [`race_witness_par`](Explorer::race_witness_par) under a budget.
    /// A quarantined worker panic degrades to the sequential search
    /// (recorded on the guard as a recovered fault).
    #[must_use]
    pub fn race_witness_par_governed(
        &self,
        jobs: usize,
        guard: &BudgetGuard,
    ) -> Option<RaceWitness> {
        if jobs <= 1 {
            return self.race_witness_governed(guard);
        }
        let span = guard.metrics().span(Phase::RaceSearch);
        let racy = par::parallel_reach(
            jobs,
            (self.initial_state(), None as Prev),
            guard,
            |(state, prev)| {
                let mut found = false;
                let mut successors = Vec::new();
                let (moves, kind) = self.por_moves_vec(state);
                guard.metrics().record_expansion(moves.len(), kind);
                for mv in moves {
                    if let Some((pk, pl, pw)) = *prev {
                        if pk != mv.thread
                            && mv.action.is_access_to(pl)
                            && !pl.is_volatile()
                            && (pw || mv.action.is_write())
                        {
                            found = true;
                            break;
                        }
                    }
                    // Check-before-carry, exactly as in the sequential
                    // `race_dfs`: an ample move is race-checked above
                    // but never overwrites the last-access tracker.
                    let next_prev = if kind.is_ample() {
                        if prev.is_some() {
                            guard.metrics().record_prev_carry();
                        }
                        *prev
                    } else {
                        match mv.action {
                            Action::Read { loc, .. } if !loc.is_volatile() => {
                                Some((mv.thread, loc, false))
                            }
                            Action::Write { loc, .. } if !loc.is_volatile() => {
                                Some((mv.thread, loc, true))
                            }
                            _ => None,
                        }
                    };
                    successors.push((self.apply(state, &mv), next_prev));
                }
                par::SearchStep { successors, found }
            },
        );
        drop(span);
        let racy = match racy {
            Ok(r) => r,
            Err(_) => {
                guard.record_fault();
                return self.race_witness_governed(guard);
            }
        };
        // The parallel search only decides existence; the witness path
        // is rebuilt sequentially so parallel and sequential drivers
        // report the same execution (racy programs yield one quickly).
        // Reconstruction runs ungoverned: the race provably exists, so
        // the DFS terminates at it even if the budget tripped meanwhile.
        if racy {
            let w = self.race_witness();
            debug_assert!(w.is_some(), "parallel search found a race the DFS did not");
            w
        } else {
            None
        }
    }

    /// Is the traceset data race free, decided on `jobs` workers?
    #[must_use]
    pub fn is_data_race_free_par(&self, jobs: usize) -> bool {
        self.race_witness_par(jobs).is_none()
    }

    /// Enumerates all maximal executions, stopping at
    /// `limits.max_interleavings`. Exponential; intended for litmus-sized
    /// programs.
    #[must_use]
    pub fn maximal_executions(&self, limits: ExploreLimits) -> Vec<Interleaving> {
        self.maximal_executions_checked(limits).0
    }

    /// Like [`maximal_executions`](Explorer::maximal_executions), but
    /// also reports whether the `max_interleavings` cap cut the
    /// enumeration short (`true` = at least one maximal execution was
    /// *not* materialised). Callers that must not silently truncate —
    /// the `drfcheck` CLI, for instance — use this form.
    #[must_use]
    pub fn maximal_executions_checked(&self, limits: ExploreLimits) -> (Vec<Interleaving>, bool) {
        self.maximal_executions_governed(limits, &BudgetGuard::unlimited())
    }

    /// [`maximal_executions_checked`](Explorer::maximal_executions_checked)
    /// under a budget: the enumeration also stops when `guard` trips (a
    /// deadline or external cancellation), and a cap hit is recorded on
    /// the guard as an interleaving-bound truncation. The `bool` is
    /// `true` whenever at least one maximal execution was dropped, for
    /// either reason.
    #[must_use]
    pub fn maximal_executions_governed(
        &self,
        limits: ExploreLimits,
        guard: &BudgetGuard,
    ) -> (Vec<Interleaving>, bool) {
        let mut out = Vec::new();
        let mut path = Vec::new();
        let mut scratch: ScratchPool<Move> = ScratchPool::new();
        let mut capped = false;
        let tally = CounterTally::new(guard.metrics());
        self.enumerate(
            self.initial_state(),
            &mut path,
            &mut out,
            limits.max_interleavings,
            &mut capped,
            &mut scratch,
            guard,
            &tally,
        );
        (out, capped)
    }

    #[allow(clippy::too_many_arguments)]
    fn enumerate(
        &self,
        state: State,
        path: &mut Vec<Event>,
        out: &mut Vec<Interleaving>,
        cap: usize,
        capped: &mut bool,
        scratch: &mut ScratchPool<Move>,
        guard: &BudgetGuard,
        tally: &CounterTally<'_>,
    ) {
        if out.len() >= cap {
            // Every pending branch extends to at least one maximal
            // execution, so entering here means results were dropped.
            *capped = true;
            guard.trip_interleaving_cap();
            return;
        }
        if guard.should_stop() {
            *capped = true;
            return;
        }
        guard.note_state_tallied(tally);
        let mut buf = scratch.take();
        self.moves_into(&state, &mut buf);
        tally.expansion(buf.len(), ExpansionKind::Full);
        if buf.is_empty() {
            out.push(Interleaving::from_events(path.iter().copied()));
            scratch.put(buf);
            return;
        }
        for &mv in buf.iter() {
            path.push(Event::new(self.trie.threads()[mv.thread], mv.action));
            let succ = self.apply(&state, &mv);
            self.enumerate(succ, path, out, cap, capped, scratch, guard, tally);
            path.pop();
        }
        scratch.put(buf);
    }

    /// Counts the maximal executions by dynamic programming (no
    /// materialisation). Counts the *full* interleaving set — the
    /// partial-order reduction never applies here. Saturates at
    /// `u128::MAX`; use
    /// [`count_maximal_executions_checked`](Explorer::count_maximal_executions_checked)
    /// to observe saturation.
    #[must_use]
    pub fn count_maximal_executions(&self) -> u128 {
        self.count_maximal_executions_checked().0
    }

    /// Like [`count_maximal_executions`](Explorer::count_maximal_executions),
    /// but also reports whether the count overflowed `u128` and was
    /// clamped to `u128::MAX` (possible on adversarial generated
    /// programs; the flag keeps the clamp from reading as an exact
    /// count).
    #[must_use]
    pub fn count_maximal_executions_checked(&self) -> (u128, bool) {
        let mut interner: StateInterner<State> = StateInterner::new();
        let mut memo: IdMap<u128> = IdMap::new();
        let mut scratch: ScratchPool<Move> = ScratchPool::new();
        let mut saturated = false;
        let init = self.initial_state();
        let (id, _) = interner.intern_ref(&init);
        let c = self.count(
            init,
            id,
            &mut interner,
            &mut memo,
            &mut scratch,
            &mut saturated,
        );
        (c, saturated)
    }

    /// The execution count, computed on `jobs` workers (identical to
    /// [`count_maximal_executions`](Explorer::count_maximal_executions)).
    #[must_use]
    pub fn count_maximal_executions_par(&self, jobs: usize) -> u128 {
        self.count_maximal_executions_par_checked(jobs).0
    }

    /// The checked execution count on `jobs` workers; the `bool` flags
    /// saturation at `u128::MAX`, exactly as in
    /// [`count_maximal_executions_checked`](Explorer::count_maximal_executions_checked).
    #[must_use]
    pub fn count_maximal_executions_par_checked(&self, jobs: usize) -> (u128, bool) {
        if jobs <= 1 {
            return self.count_maximal_executions_checked();
        }
        let guard = BudgetGuard::unlimited();
        match self
            .state_graph(jobs, &guard, false)
            .and_then(|graph| par::count_leaves_checked(&graph, jobs, guard.metrics()))
        {
            Ok(c) => c,
            // Quarantined worker panic: degrade to the sequential
            // reference computation.
            Err(_) => self.count_maximal_executions_checked(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn count(
        &self,
        state: State,
        id: u32,
        interner: &mut StateInterner<State>,
        memo: &mut IdMap<u128>,
        scratch: &mut ScratchPool<Move>,
        saturated: &mut bool,
    ) -> u128 {
        if let Some(&c) = memo.get(id) {
            return c;
        }
        let mut buf = scratch.take();
        self.moves_into(&state, &mut buf);
        let c = if buf.is_empty() {
            1
        } else {
            let mut acc: u128 = 0;
            for &mv in buf.iter() {
                let succ = self.apply(&state, &mv);
                let (succ_id, _) = interner.intern_ref(&succ);
                let tail = self.count(succ, succ_id, interner, memo, scratch, saturated);
                acc = acc.checked_add(tail).unwrap_or_else(|| {
                    *saturated = true;
                    u128::MAX
                });
            }
            acc
        };
        scratch.put(buf);
        memo.insert(id, c);
        c
    }

    /// Is the traceset data race free under the *alternative* §3
    /// definition: in every execution, all conflicting access pairs are
    /// ordered by happens-before?
    ///
    /// The paper states the two definitions are equivalent; this method
    /// exists so the equivalence is checkable (see the integration
    /// suite) and costs a full enumeration of maximal executions —
    /// prefer [`is_data_race_free`](Explorer::is_data_race_free) (the
    /// adjacent-conflict search) for real use.
    #[must_use]
    pub fn is_data_race_free_hb(&self, limits: ExploreLimits) -> bool {
        self.maximal_executions(limits)
            .iter()
            .all(|i| i.hb_unordered_conflicts().is_empty())
    }

    /// The number of distinct explorer states reachable from the initial
    /// state (a size measure used by the scaling experiments). Always a
    /// census of the *full* transition system, regardless of the
    /// partial-order-reduction setting.
    #[must_use]
    pub fn count_reachable_states(&self) -> usize {
        // The interner *is* the visited set: dedup by id, count by arena
        // length, expand by borrowing the arena copy back out.
        let mut interner: StateInterner<State> = StateInterner::new();
        let mut scratch: ScratchPool<Move> = ScratchPool::new();
        let (root, _) = interner.intern(self.initial_state());
        let mut stack = vec![root];
        let mut buf = scratch.take();
        while let Some(id) = stack.pop() {
            let state = interner.get(id).clone();
            self.moves_into(&state, &mut buf);
            for mv in buf.iter() {
                let succ = self.apply(&state, mv);
                let (sid, fresh) = interner.intern(succ);
                if fresh {
                    stack.push(sid);
                }
            }
        }
        interner.len()
    }

    /// The reachable-state count, computed on `jobs` workers.
    #[must_use]
    pub fn count_reachable_states_par(&self, jobs: usize) -> usize {
        if jobs <= 1 {
            return self.count_reachable_states();
        }
        let result = par::parallel_state_count(
            jobs,
            self.initial_state(),
            &BudgetGuard::unlimited(),
            |state| {
                self.moves_vec(state)
                    .iter()
                    .map(|mv| self.apply(state, mv))
                    .collect()
            },
        );
        // Quarantined worker panic: degrade to the sequential census.
        result.unwrap_or_else(|_| self.count_reachable_states())
    }

    // -----------------------------------------------------------------
    // Pre-interning reference engine and the encode/decode audit
    // -----------------------------------------------------------------

    /// [`behaviours`](Explorer::behaviours) on the **pre-interning
    /// reference engine**: the uncompressed `BTreeMap` state
    /// representation with SipHash-keyed memo tables, exactly as the
    /// engine worked before the compact encoding landed. Kept for
    /// differential testing and the E17 before/after benchmark; the
    /// production entry points never use it.
    #[must_use]
    pub fn behaviours_reference_governed(&self, guard: &BudgetGuard) -> Behaviours {
        let mut memo: HashMap<RefState, Arc<Behaviours>> = HashMap::new();
        let result = self.ref_suffixes(self.ref_initial_state(), &mut memo, guard);
        (*result).clone()
    }

    /// [`race_witness`](Explorer::race_witness) on the pre-interning
    /// reference engine (see
    /// [`behaviours_reference_governed`](Explorer::behaviours_reference_governed)).
    #[must_use]
    pub fn race_witness_reference_governed(&self, guard: &BudgetGuard) -> Option<RaceWitness> {
        let mut visited: HashSet<(RefState, Prev)> = HashSet::new();
        let mut path: Vec<Event> = Vec::new();
        self.ref_race_dfs(
            self.ref_initial_state(),
            None,
            0,
            &mut visited,
            &mut path,
            guard,
        )
        .then(|| RaceWitness {
            execution: Interleaving::from_events(path),
        })
    }

    fn ref_initial_state(&self) -> RefState {
        RefState {
            cursors: vec![IndexedTraceset::ROOT; self.space.threads],
            memory: BTreeMap::new(),
            locks: BTreeMap::new(),
        }
    }

    fn ref_moves(&self, state: &RefState) -> Vec<Move> {
        let mut out = Vec::new();
        for (k, &node) in state.cursors.iter().enumerate() {
            for (a, next) in self.trie.edges(node) {
                let enabled = match *a {
                    Action::Start(entry) => {
                        node == IndexedTraceset::ROOT && entry == self.trie.threads()[k]
                    }
                    Action::Read { loc, value } => {
                        state.memory.get(&loc).copied().unwrap_or(Value::ZERO) == value
                    }
                    Action::Write { .. } | Action::External(_) => true,
                    Action::Lock(m) => match state.locks.get(&m) {
                        None => true,
                        Some(&(holder, _)) => holder == k,
                    },
                    Action::Unlock(m) => {
                        matches!(state.locks.get(&m), Some(&(holder, depth)) if holder == k && depth > 0)
                    }
                };
                if enabled {
                    out.push(Move {
                        thread: k,
                        action: *a,
                        next_node: next,
                    });
                }
            }
        }
        out
    }

    /// The reference engine's mirror of
    /// [`por_moves_into`](Explorer::por_moves_into): identical dynamic
    /// selection over the uncompressed state, plus the ample flag for
    /// the reference race search's check-before-carry.
    fn ref_por_moves(&self, state: &RefState) -> (Vec<Move>, bool) {
        let moves = self.ref_moves(state);
        if !self.por {
            return (moves, false);
        }
        for (k, &node) in state.cursors.iter().enumerate() {
            let mut edges = self.trie.edges(node).peekable();
            if edges.peek().is_none() {
                continue;
            }
            if !edges.all(|(a, _)| self.invisible_with(|j| state.cursors[j], k, a)) {
                continue;
            }
            let ample: Vec<Move> = moves.iter().filter(|mv| mv.thread == k).copied().collect();
            if !ample.is_empty() {
                return (ample, true);
            }
        }
        (moves, false)
    }

    fn ref_apply(&self, state: &RefState, mv: &Move) -> RefState {
        let mut next = state.clone();
        next.cursors[mv.thread] = mv.next_node;
        match mv.action {
            Action::Write { loc, value } => {
                next.memory.insert(loc, value);
            }
            Action::Lock(m) => {
                let entry = next.locks.entry(m).or_insert((mv.thread, 0));
                entry.1 += 1;
            }
            Action::Unlock(m) => {
                if let Some(entry) = next.locks.get_mut(&m) {
                    entry.1 -= 1;
                    if entry.1 == 0 {
                        next.locks.remove(&m);
                    }
                }
            }
            _ => {}
        }
        next
    }

    fn ref_suffixes(
        &self,
        state: RefState,
        memo: &mut HashMap<RefState, Arc<Behaviours>>,
        guard: &BudgetGuard,
    ) -> Arc<Behaviours> {
        if let Some(r) = memo.get(&state) {
            return Arc::clone(r);
        }
        let mut set: Behaviours = BTreeSet::new();
        set.insert(Vec::new());
        if guard.should_stop() {
            return Arc::new(set);
        }
        guard.note_state();
        for mv in self.ref_por_moves(&state).0 {
            let tail = self.ref_suffixes(self.ref_apply(&state, &mv), memo, guard);
            match mv.action {
                Action::External(v) => {
                    for suffix in tail.iter() {
                        let mut b = Vec::with_capacity(suffix.len() + 1);
                        b.push(v);
                        b.extend_from_slice(suffix);
                        set.insert(b);
                    }
                }
                _ => set.extend(tail.iter().cloned()),
            }
        }
        let rc = Arc::new(set);
        memo.insert(state, Arc::clone(&rc));
        rc
    }

    fn ref_race_dfs(
        &self,
        state: RefState,
        prev: Prev,
        prev_at: usize,
        visited: &mut HashSet<(RefState, Prev)>,
        path: &mut Vec<Event>,
        guard: &BudgetGuard,
    ) -> bool {
        if guard.should_stop() || !visited.insert((state.clone(), prev)) {
            return false;
        }
        guard.note_state();
        let (moves, ample) = self.ref_por_moves(&state);
        for mv in moves {
            let thread_id = self.trie.threads()[mv.thread];
            if let Some((pk, pl, pw)) = prev {
                if pk != mv.thread && mv.action.is_access_to(pl) && !pl.is_volatile() {
                    let racing = pw || mv.action.is_write();
                    if racing {
                        reorder_carried_witness(path, prev_at, thread_id);
                        path.push(Event::new(thread_id, mv.action));
                        return true;
                    }
                }
            }
            // Check-before-carry (mirrors `race_dfs`).
            let (next_prev, next_at) = if ample {
                (prev, prev_at)
            } else {
                match mv.action {
                    Action::Read { loc, .. } if !loc.is_volatile() => {
                        (Some((mv.thread, loc, false)), path.len() + 1)
                    }
                    Action::Write { loc, .. } if !loc.is_volatile() => {
                        (Some((mv.thread, loc, true)), path.len() + 1)
                    }
                    _ => (None, 0),
                }
            };
            path.push(Event::new(thread_id, mv.action));
            if self.ref_race_dfs(
                self.ref_apply(&state, &mv),
                next_prev,
                next_at,
                visited,
                path,
                guard,
            ) {
                return true;
            }
            path.pop();
        }
        false
    }

    /// Encodes a reference state into the compact word buffer.
    fn encode_ref(&self, state: &RefState) -> State {
        let mut words = vec![0u32; self.space.words()].into_boxed_slice();
        for (k, &node) in state.cursors.iter().enumerate() {
            words[k] = u32::try_from(node).expect("packed cursor");
        }
        for (&loc, &v) in &state.memory {
            words[self.space.loc_slot(loc)] = v.get();
        }
        for (&m, &(holder, depth)) in &state.locks {
            let s = self.space.monitor_slot(m);
            words[s] = holder as u32 + 1;
            words[s + 1] = depth;
        }
        State { words }
    }

    /// Decodes a compact state back into the reference representation,
    /// using the trie parent map to recover which locations have been
    /// written (the trie is a tree, so a cursor determines its thread's
    /// entire action history — presence in the reference memory map is a
    /// function of the cursors).
    fn decode(&self, state: &State, parent: &[Option<(usize, Action)>]) -> RefState {
        let mut memory = BTreeMap::new();
        let mut cursors = Vec::with_capacity(self.space.threads);
        for k in 0..self.space.threads {
            let mut node = state.words[k] as usize;
            cursors.push(node);
            while let Some((p, a)) = parent[node] {
                if let Action::Write { loc, .. } = a {
                    memory.insert(loc, self.space.mem(state, loc));
                }
                node = p;
            }
        }
        let mut locks = BTreeMap::new();
        for &m in &self.space.monitors {
            let s = self.space.monitor_slot(m);
            if state.words[s] != 0 {
                locks.insert(m, (state.words[s] as usize - 1, state.words[s + 1]));
            }
        }
        RefState {
            cursors,
            memory,
            locks,
        }
    }

    /// The trie parent map: `parent[node] = (parent node, edge action)`.
    fn parent_map(&self) -> Vec<Option<(usize, Action)>> {
        let mut parent = vec![None; self.trie.node_count()];
        for node in 0..self.trie.node_count() {
            for (a, next) in self.trie.edges(node) {
                parent[next] = Some((node, *a));
            }
        }
        parent
    }

    /// Self-audit of the compact encoding: walks the full (unreduced)
    /// reachable state space in lockstep on the compact and reference
    /// representations, checking that encode→decode round-trips on every
    /// state and that interned-id equality coincides with structural
    /// reference-state equality. `max_states` caps the walk (flagged in
    /// [`InternAudit::capped`]). Test support for the property suite.
    #[doc(hidden)]
    #[must_use]
    pub fn audit_intern(&self, max_states: usize) -> InternAudit {
        let parent = self.parent_map();
        let mut interner: StateInterner<State> = StateInterner::new();
        let mut rmap: HashMap<RefState, u32> = HashMap::new();
        let mut stack: Vec<(State, RefState)> =
            vec![(self.initial_state(), self.ref_initial_state())];
        let mut audit = InternAudit {
            states: 0,
            roundtrips: true,
            bijective: true,
            capped: false,
        };
        while let Some((cs, rs)) = stack.pop() {
            let (cid, fresh) = interner.intern_ref(&cs);
            let ref_fresh = !rmap.contains_key(&rs);
            if fresh != ref_fresh {
                // One side thinks the state is new and the other does
                // not: the encoding conflated or split states.
                audit.bijective = false;
            }
            if !ref_fresh {
                if rmap[&rs] != cid {
                    audit.bijective = false;
                }
                continue;
            }
            rmap.insert(rs.clone(), cid);
            if !fresh {
                continue;
            }
            audit.states += 1;
            if self.encode_ref(&rs) != cs || self.decode(&cs, &parent) != rs {
                audit.roundtrips = false;
            }
            if audit.states >= max_states {
                audit.capped = true;
                break;
            }
            let cmoves = self.moves_vec(&cs);
            let rmoves = self.ref_moves(&rs);
            let agree = cmoves.len() == rmoves.len()
                && cmoves.iter().zip(&rmoves).all(|(a, b)| {
                    a.thread == b.thread && a.action == b.action && a.next_node == b.next_node
                });
            if !agree {
                audit.bijective = false;
                continue;
            }
            for mv in cmoves {
                stack.push((self.apply(&cs, &mv), self.ref_apply(&rs, &mv)));
            }
        }
        audit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transafety_traces::{Domain, ThreadId, Trace};

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }
    fn v(n: u32) -> Value {
        Value::new(n)
    }

    /// Fig. 2 original: T0 = r2:=x; y:=r2 — T1 = r1:=y; x:=1; print r1.
    fn fig2_original() -> Traceset {
        let (x, y) = (Loc::normal(0), Loc::normal(1));
        let d = Domain::zero_to(1);
        let mut ts = Traceset::new();
        for val in d.iter() {
            ts.insert(Trace::from_actions([
                Action::start(t(0)),
                Action::read(x, val),
                Action::write(y, val),
            ]))
            .unwrap();
            ts.insert(Trace::from_actions([
                Action::start(t(1)),
                Action::read(y, val),
                Action::write(x, v(1)),
                Action::external(val),
            ]))
            .unwrap();
        }
        ts
    }

    /// Fig. 2 transformed: T1 becomes x:=1; r1:=y; print r1.
    fn fig2_transformed() -> Traceset {
        let (x, y) = (Loc::normal(0), Loc::normal(1));
        let d = Domain::zero_to(1);
        let mut ts = Traceset::new();
        for val in d.iter() {
            ts.insert(Trace::from_actions([
                Action::start(t(0)),
                Action::read(x, val),
                Action::write(y, val),
            ]))
            .unwrap();
            ts.insert(Trace::from_actions([
                Action::start(t(1)),
                Action::write(x, v(1)),
                Action::read(y, val),
                Action::external(val),
            ]))
            .unwrap();
        }
        ts
    }

    #[test]
    fn fig2_original_cannot_print_one() {
        let b = Explorer::new(&fig2_original()).behaviours();
        assert!(b.contains(&vec![]));
        assert!(b.contains(&vec![v(0)]));
        assert!(
            !b.contains(&vec![v(1)]),
            "§2.1: the original cannot print 1"
        );
    }

    #[test]
    fn fig2_transformed_can_print_one() {
        let b = Explorer::new(&fig2_transformed()).behaviours();
        assert!(
            b.contains(&vec![v(1)]),
            "§2.1: the transformed program can print 1"
        );
    }

    #[test]
    fn fig2_is_racy() {
        let w = Explorer::new(&fig2_original())
            .race_witness()
            .expect("x and y are racy");
        let (a, b) = w.pair();
        assert!(a.action().conflicts_with(&b.action()));
        assert_ne!(a.thread(), b.thread());
        // the witness execution really is an execution of the traceset
        assert!(w.execution.is_interleaving_of(&fig2_original()));
        assert!(w.execution.is_sequentially_consistent());
    }

    #[test]
    fn lock_protected_program_is_drf() {
        let x = Loc::normal(0);
        let m = Monitor::new(0);
        let mut ts = Traceset::new();
        for th in [t(0), t(1)] {
            for val in Domain::zero_to(1).iter() {
                ts.insert(Trace::from_actions([
                    Action::start(th),
                    Action::lock(m),
                    Action::read(x, val),
                    Action::write(x, v(1)),
                    Action::unlock(m),
                ]))
                .unwrap();
            }
        }
        assert!(Explorer::new(&ts).is_data_race_free());
    }

    #[test]
    fn volatile_program_is_drf() {
        let vl = Loc::volatile(0);
        let mut ts = Traceset::new();
        for val in Domain::zero_to(1).iter() {
            ts.insert(Trace::from_actions([
                Action::start(t(0)),
                Action::write(vl, v(1)),
            ]))
            .unwrap();
            ts.insert(Trace::from_actions([
                Action::start(t(1)),
                Action::read(vl, val),
                Action::external(val),
            ]))
            .unwrap();
        }
        let e = Explorer::new(&ts);
        assert!(e.is_data_race_free());
        let b = e.behaviours();
        assert!(b.contains(&vec![v(0)]) && b.contains(&vec![v(1)]));
    }

    #[test]
    fn maximal_executions_cross_validate_behaviours() {
        let ts = fig2_original();
        let ex = Explorer::new(&ts);
        let all = ex.maximal_executions(ExploreLimits::default());
        assert_eq!(all.len() as u128, ex.count_maximal_executions());
        // behaviours from raw enumeration (with prefix closure) match DP
        let mut raw: Behaviours = BTreeSet::new();
        for i in &all {
            let b = i.behaviour();
            for n in 0..=b.len() {
                raw.insert(b[..n].to_vec());
            }
            assert!(i.is_sequentially_consistent());
            assert!(i.is_interleaving_of(&ts));
        }
        assert_eq!(raw, ex.behaviours());
    }

    #[test]
    fn locks_exclude_interleavings() {
        // Two threads, each: lock m; x:=1; r:=x; unlock m. Under mutual
        // exclusion every read must see 1 from its own thread.
        let x = Loc::normal(0);
        let m = Monitor::new(0);
        let mut ts = Traceset::new();
        for th in [t(0), t(1)] {
            for val in Domain::zero_to(1).iter() {
                ts.insert(Trace::from_actions([
                    Action::start(th),
                    Action::lock(m),
                    Action::write(x, v(1)),
                    Action::read(x, val),
                    Action::external(val),
                    Action::unlock(m),
                ]))
                .unwrap();
            }
        }
        let b = Explorer::new(&ts).behaviours();
        assert!(b.contains(&vec![v(1), v(1)]));
        assert!(
            !b.contains(&vec![v(0)]),
            "read under the lock must see the write"
        );
    }

    #[test]
    fn reentrant_locking_is_supported_by_state_machine() {
        let m = Monitor::new(0);
        let mut ts = Traceset::new();
        ts.insert(Trace::from_actions([
            Action::start(t(0)),
            Action::lock(m),
            Action::lock(m),
            Action::unlock(m),
            Action::unlock(m),
            Action::external(v(1)),
        ]))
        .unwrap();
        let b = Explorer::new(&ts).behaviours();
        assert!(b.contains(&vec![v(1)]));
    }

    #[test]
    fn execution_count_small_example() {
        // Two independent single-action threads after their starts:
        // S(0);X(1) and S(1);X(2) — executions = interleavings of 4 events
        // with per-thread order fixed: C(4,2) = 6.
        let mut ts = Traceset::new();
        ts.insert(Trace::from_actions([
            Action::start(t(0)),
            Action::external(v(1)),
        ]))
        .unwrap();
        ts.insert(Trace::from_actions([
            Action::start(t(1)),
            Action::external(v(2)),
        ]))
        .unwrap();
        let ex = Explorer::new(&ts);
        assert_eq!(ex.count_maximal_executions(), 6);
        assert_eq!(ex.maximal_executions(ExploreLimits::default()).len(), 6);
        let b = ex.behaviours();
        assert!(b.contains(&vec![v(1), v(2)]));
        assert!(b.contains(&vec![v(2), v(1)]));
    }

    #[test]
    fn hb_definition_agrees_with_adjacent_definition() {
        assert!(!Explorer::new(&fig2_original()).is_data_race_free_hb(ExploreLimits::default()));
        let vl = Loc::volatile(0);
        let mut ts = Traceset::new();
        ts.insert(Trace::from_actions([
            Action::start(t(0)),
            Action::write(vl, v(1)),
        ]))
        .unwrap();
        for val in Domain::zero_to(1).iter() {
            ts.insert(Trace::from_actions([
                Action::start(t(1)),
                Action::read(vl, val),
            ]))
            .unwrap();
        }
        let e = Explorer::new(&ts);
        assert!(e.is_data_race_free());
        assert!(e.is_data_race_free_hb(ExploreLimits::default()));
    }

    #[test]
    fn execution_cap_is_respected() {
        let ts = fig2_original();
        let ex = Explorer::new(&ts);
        let capped = ex.maximal_executions(ExploreLimits {
            max_interleavings: 3,
        });
        assert_eq!(capped.len(), 3);
    }

    #[test]
    fn race_witness_reports_index_and_pair() {
        let w = Explorer::new(&fig2_original()).race_witness().unwrap();
        assert_eq!(w.index(), w.execution.len() - 2);
        let s = w.to_string();
        assert!(s.contains("data race between"), "{s}");
    }

    #[test]
    fn reachable_state_count_is_positive() {
        let ts = fig2_original();
        assert!(Explorer::new(&ts).count_reachable_states() > 1);
    }

    /// Two threads whose bodies are entirely thread-private writes plus
    /// one shared, lock-protected store: heavy commutativity, so the
    /// reduction should visit far fewer states.
    fn private_work_traceset() -> Traceset {
        let m = Monitor::new(0);
        let shared = Loc::normal(100);
        let mut ts = Traceset::new();
        for (k, th) in [t(0), t(1)].into_iter().enumerate() {
            let a = Loc::normal(k as u32 * 10);
            let b = Loc::normal(k as u32 * 10 + 1);
            ts.insert(Trace::from_actions([
                Action::start(th),
                Action::write(a, v(1)),
                Action::write(b, v(2)),
                Action::read(a, v(1)),
                Action::write(a, v(3)),
                Action::lock(m),
                Action::write(shared, v(k as u32)),
                Action::unlock(m),
            ]))
            .unwrap();
        }
        ts
    }

    #[test]
    fn por_agrees_with_full_engine_on_small_corpus() {
        for ts in [fig2_original(), fig2_transformed(), private_work_traceset()] {
            let reduced = Explorer::new(&ts);
            let full = Explorer::new(&ts).por(false);
            assert_eq!(reduced.behaviours(), full.behaviours());
            assert_eq!(
                reduced.race_witness().is_some(),
                full.race_witness().is_some()
            );
            for jobs in [1, 4] {
                assert_eq!(reduced.behaviours_par(jobs), full.behaviours());
                assert_eq!(
                    reduced.race_witness_par(jobs).is_some(),
                    full.race_witness().is_some()
                );
            }
        }
    }

    /// Regression: a race whose two accesses straddle a run of
    /// ample-reduced private work. T0 writes `x` then retires into
    /// private writes; T1 reads `x` then retires into private writes.
    /// Whichever access goes first, the accessing thread's remainder is
    /// dynamically invisible and gets selected as the ample set — so a
    /// race search that *overwrites* its last-access tracker with the
    /// ample moves masks the pair on every reduced path and wrongly
    /// proves DRF. Check-before-carry keeps the tracker alive through
    /// the ample run.
    fn straddling_race_traceset() -> Traceset {
        let x = Loc::normal(0);
        let a = Loc::normal(1);
        let b = Loc::normal(2);
        let mut ts = Traceset::new();
        ts.insert(Trace::from_actions([
            Action::start(t(0)),
            Action::write(x, v(1)),
            Action::write(a, v(1)),
        ]))
        .unwrap();
        for val in Domain::zero_to(1).iter() {
            ts.insert(Trace::from_actions([
                Action::start(t(1)),
                Action::read(x, val),
                Action::write(b, v(1)),
            ]))
            .unwrap();
        }
        ts
    }

    #[test]
    fn race_straddling_ample_private_work_is_found() {
        let ts = straddling_race_traceset();
        let full = Explorer::new(&ts).por(false);
        assert!(full.race_witness().is_some(), "x is racy unreduced");
        let reduced = Explorer::new(&ts);
        let w = reduced
            .race_witness()
            .expect("the reduced search must find the straddling race");
        // The witness stays a well-formed adjacent-pair execution even
        // when the pair was detected through a carried tracker.
        let (a, b) = w.pair();
        assert!(a.action().conflicts_with(&b.action()), "{w}");
        assert_ne!(a.thread(), b.thread());
        assert!(w.execution.is_interleaving_of(&ts));
        assert!(w.execution.is_sequentially_consistent());
        for jobs in [1, 4] {
            assert!(reduced.race_witness_par(jobs).is_some());
        }
    }

    /// Dynamic invisibility keeps reducing after contention retires.
    /// T0 = write p, then 6× write q; T1 = write q, then 6× write p:
    /// every location is touched by both threads, so a *static*
    /// whole-trace footprint never finds anything invisible and the old
    /// reduction degenerated to full expansion everywhere. The suffix
    /// footprints see that once both heads have executed, neither tail
    /// can ever be observed by the other thread again, and collapse the
    /// tails' interleaving grid into one chain.
    #[test]
    fn dynamic_footprints_reduce_after_contention_retires() {
        use crate::budget::{Budget, CancelToken};
        let p = Loc::normal(0);
        let q = Loc::normal(1);
        let mut ts = Traceset::new();
        let mut t0 = vec![Action::start(t(0)), Action::write(p, v(1))];
        t0.extend(std::iter::repeat_n(Action::write(q, v(2)), 6));
        ts.insert(Trace::from_actions(t0)).unwrap();
        let mut t1 = vec![Action::start(t(1)), Action::write(q, v(1))];
        t1.extend(std::iter::repeat_n(Action::write(p, v(2)), 6));
        ts.insert(Trace::from_actions(t1)).unwrap();
        let states_of = |por: bool| {
            let guard = BudgetGuard::new(&Budget::unlimited(), CancelToken::new());
            let _ = Explorer::new(&ts).por(por).behaviours_governed(&guard);
            guard.states()
        };
        let (reduced, full) = (states_of(true), states_of(false));
        assert!(
            reduced < full,
            "dynamic POR explored {reduced} vs {full} unreduced states — the \
             retired-contention tails must collapse"
        );
        assert_eq!(
            Explorer::new(&ts).behaviours(),
            Explorer::new(&ts).por(false).behaviours()
        );
        // Both locations stay racy (unsynchronised cross-thread writes),
        // and the reduced search must agree.
        assert_eq!(
            Explorer::new(&ts).race_witness().is_some(),
            Explorer::new(&ts).por(false).race_witness().is_some()
        );
    }

    #[test]
    fn por_explores_fewer_states_on_independent_work() {
        use crate::budget::{Budget, CancelToken};
        let ts = private_work_traceset();
        let states_of = |por: bool| {
            let guard = BudgetGuard::new(&Budget::unlimited(), CancelToken::new());
            let _ = Explorer::new(&ts).por(por).behaviours_governed(&guard);
            guard.states()
        };
        let (reduced, full) = (states_of(true), states_of(false));
        assert!(
            reduced * 2 <= full,
            "POR explored {reduced} states vs {full} unreduced — expected \
             at least a 2x reduction on thread-private work"
        );
    }

    #[test]
    fn por_does_not_change_counts_or_census() {
        let ts = private_work_traceset();
        let reduced = Explorer::new(&ts);
        let full = Explorer::new(&ts).por(false);
        assert_eq!(
            reduced.count_maximal_executions(),
            full.count_maximal_executions()
        );
        assert_eq!(
            reduced.count_maximal_executions_par(4),
            full.count_maximal_executions()
        );
        assert_eq!(
            reduced.count_reachable_states(),
            full.count_reachable_states()
        );
        assert_eq!(
            reduced.maximal_executions(ExploreLimits::default()).len(),
            full.maximal_executions(ExploreLimits::default()).len()
        );
    }

    #[test]
    fn counts_do_not_report_saturation_on_small_programs() {
        let ex = Explorer::new(&fig2_original());
        let (c, saturated) = ex.count_maximal_executions_checked();
        assert!(c > 0 && !saturated);
        let (cp, saturated_par) = ex.count_maximal_executions_par_checked(4);
        assert_eq!((cp, saturated_par), (c, false));
    }

    /// Two threads of 67 private single-value writes each: the state
    /// space is a small 69x69 cursor grid, but the interleaving count is
    /// C(136, 68) > u128::MAX — so the id-keyed count memo must clamp
    /// and flag, exactly as the map-keyed memo did before interning.
    fn overflow_traceset() -> Traceset {
        let mut ts = Traceset::new();
        for (k, th) in [t(0), t(1)].into_iter().enumerate() {
            let loc = Loc::normal(k as u32);
            let mut actions = vec![Action::start(th)];
            actions.extend(std::iter::repeat_n(Action::write(loc, v(1)), 67));
            ts.insert(Trace::from_actions(actions)).unwrap();
        }
        ts
    }

    #[test]
    fn count_saturation_flag_survives_id_keyed_memos() {
        let ex = Explorer::new(&overflow_traceset());
        let (c, saturated) = ex.count_maximal_executions_checked();
        assert_eq!(c, u128::MAX, "the count must clamp, not wrap");
        assert!(saturated, "saturation must be flagged");
        // and the parallel count (id-keyed graph + count_leaves_checked)
        // propagates the same flag
        let (cp, saturated_par) = ex.count_maximal_executions_par_checked(4);
        assert_eq!((cp, saturated_par), (u128::MAX, true));
    }

    #[test]
    fn compact_encoding_audits_clean_on_small_corpus() {
        for ts in [fig2_original(), fig2_transformed(), private_work_traceset()] {
            let audit = Explorer::new(&ts).audit_intern(100_000);
            assert!(audit.states > 1);
            assert!(audit.roundtrips, "encode/decode must round-trip");
            assert!(audit.bijective, "ids must match structural equality");
            assert!(!audit.capped);
        }
    }

    #[test]
    fn interned_engine_matches_reference_engine_exactly() {
        use crate::budget::{Budget, CancelToken};
        for ts in [fig2_original(), fig2_transformed(), private_work_traceset()] {
            for por in [true, false] {
                let ex = Explorer::new(&ts).por(por);
                let g_new = BudgetGuard::new(&Budget::unlimited(), CancelToken::new());
                let g_ref = BudgetGuard::new(&Budget::unlimited(), CancelToken::new());
                assert_eq!(
                    ex.behaviours_governed(&g_new),
                    ex.behaviours_reference_governed(&g_ref),
                    "behaviours must be bit-identical (por={por})"
                );
                assert_eq!(
                    g_new.states(),
                    g_ref.states(),
                    "the compact engine must visit exactly the same states (por={por})"
                );
                assert_eq!(
                    ex.race_witness_governed(&BudgetGuard::unlimited()),
                    ex.race_witness_reference_governed(&BudgetGuard::unlimited()),
                    "race witnesses must be identical (por={por})"
                );
            }
        }
    }
}
