//! Benchmarks regenerating the paper's figure-level results (E1–E7 of
//! `DESIGN.md`): each bench recomputes one figure's claim and asserts it
//! still holds, so `cargo bench` doubles as an experiment re-run.

use std::hint::black_box;
use transafety_bench::{criterion_group, criterion_main, Criterion};

use transafety::checker::{behaviours, Analysis};
use transafety::interleaving::{Event, Interleaving};
use transafety::lang::{extract_traceset, ExtractOptions};
use transafety::litmus::parse_pair;
use transafety::traces::{Action, Domain, ThreadId, Value};
use transafety::transform::{
    find_unelimination, is_elim_reordering_of, is_elimination_of, reorder_matrix,
    EliminationOptions,
};
use transafety_bench::corpus_program;

fn v(n: u32) -> Value {
    Value::new(n)
}

fn e1_intro(c: &mut Criterion) {
    let original = corpus_program("intro-original");
    let transformed = corpus_program("intro-constant-propagated");
    let opts = Analysis::new();
    c.bench_function("E1/intro_behaviour_check", |b| {
        b.iter(|| {
            let bo = behaviours(black_box(&original), &opts).value;
            let bt = behaviours(black_box(&transformed), &opts).value;
            assert!(!bo.contains(&vec![v(1)]) && bt.contains(&vec![v(1)]));
            (bo.len(), bt.len())
        })
    });
}

fn e2_fig1(c: &mut Criterion) {
    let (o, t) = parse_pair("fig1-original", "fig1-transformed");
    // domain {0,1} keeps a single bench iteration well under a second
    // while still exercising the full witness search
    let d = Domain::zero_to(1);
    let ex = ExtractOptions::default();
    let eo = EliminationOptions::default();
    c.bench_function("E2/fig1_elimination_check", |b| {
        b.iter(|| {
            let to = extract_traceset(black_box(&o.program), &d, &ex).traceset;
            let tt = extract_traceset(black_box(&t.program), &d, &ex).traceset;
            is_elimination_of(&tt, &to, &d, &eo).expect("Fig. 1");
        })
    });
}

fn e3_fig2(c: &mut Criterion) {
    let (o, t) = parse_pair("fig2-original", "fig2-transformed");
    let d = Domain::zero_to(1);
    let ex = ExtractOptions::default();
    let eo = EliminationOptions::default();
    c.bench_function("E3/fig2_elim_reordering_check", |b| {
        b.iter(|| {
            let to = extract_traceset(black_box(&o.program), &d, &ex).traceset;
            let tt = extract_traceset(black_box(&t.program), &d, &ex).traceset;
            is_elim_reordering_of(&tt, &to, &d, &eo).expect("Fig. 2");
        })
    });
}

fn e4_fig3(c: &mut Criterion) {
    let a = corpus_program("fig3-a");
    let cc = corpus_program("fig3-c");
    let opts = Analysis::new();
    c.bench_function("E4/fig3_two_zero_check", |b| {
        b.iter(|| {
            let ba = behaviours(black_box(&a), &opts).value;
            let bc = behaviours(black_box(&cc), &opts).value;
            let zz = vec![v(0), v(0)];
            assert!(!ba.contains(&zz) && bc.contains(&zz));
        })
    });
}

fn e6_fig5_unelimination(c: &mut Criterion) {
    let (o, _) = parse_pair("fig5-volatile", "fig5-transformed");
    let d = Domain::zero_to(1);
    let ex = ExtractOptions::default();
    let original = extract_traceset(&o.program, &d, &ex).traceset;
    let vol = o.symbols.loc("v").unwrap();
    let yloc = o.symbols.loc("y").unwrap();
    let i_prime = Interleaving::from_events([
        Event::new(ThreadId::new(0), Action::start(ThreadId::new(0))),
        Event::new(ThreadId::new(1), Action::start(ThreadId::new(1))),
        Event::new(ThreadId::new(0), Action::write(yloc, v(1))),
        Event::new(ThreadId::new(1), Action::read(vol, v(0))),
        Event::new(ThreadId::new(1), Action::external(v(0))),
    ]);
    let eo = EliminationOptions::default();
    c.bench_function("E6/fig5_unelimination", |b| {
        b.iter(|| {
            let w = find_unelimination(black_box(&i_prime), &original, &d, &eo).expect("Lemma 1");
            assert!(w.check(&i_prime));
            w.wild.len()
        })
    });
}

fn e7_matrix(c: &mut Criterion) {
    c.bench_function("E7/reorder_matrix", |b| {
        b.iter(|| {
            let m = reorder_matrix();
            black_box(m)
        })
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = e1_intro, e2_fig1, e3_fig2, e4_fig3, e6_fig5_unelimination, e7_matrix
}
criterion_main!(figures);
