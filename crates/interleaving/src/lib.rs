//! Interleavings, sequentially consistent executions and data-race
//! freedom (§3 of the paper).
//!
//! An [`Interleaving`] is a sequence of thread-identifier/action pairs
//! ([`Event`]s). An interleaving of a traceset must project to member
//! traces thread-wise and respect mutual exclusion; an interleaving is an
//! *execution* when every read sees the most recent write (sequential
//! consistency). The [`Explorer`] enumerates the executions of a finite
//! [`Traceset`](transafety_traces::Traceset) exhaustively, computes the
//! program's *behaviours* (prefix-closed sets of external-action value
//! sequences) and decides *data-race freedom*.
//!
//! The paper gives two equivalent definitions of a data race — two
//! adjacent conflicting actions from different threads, and conflicting
//! accesses unordered by [happens-before](HappensBefore) — both are
//! implemented ([`Interleaving::first_adjacent_race`],
//! [`Interleaving::hb_unordered_conflicts`]) and their equivalence is
//! checked in the integration suite.
//!
//! # Example
//!
//! Fig. 2 of the paper (original program): the program cannot print 1
//! because thread 1 reads `y` before it writes `x`.
//!
//! ```
//! use transafety_traces::{Action, Domain, Loc, ThreadId, Trace, Traceset, Value};
//! use transafety_interleaving::Explorer;
//!
//! let (x, y) = (Loc::normal(0), Loc::normal(1));
//! let d = Domain::zero_to(1);
//! let mut t = Traceset::new();
//! for v in d.iter() {
//!     // Thread 0: r2:=x; y:=r2
//!     t.insert(Trace::from_actions([
//!         Action::start(ThreadId::new(0)),
//!         Action::read(x, v),
//!         Action::write(y, v),
//!     ]))?;
//!     // Thread 1: r1:=y; x:=1; print r1
//!     t.insert(Trace::from_actions([
//!         Action::start(ThreadId::new(1)),
//!         Action::read(y, v),
//!         Action::write(x, Value::new(1)),
//!         Action::external(v),
//!     ]))?;
//! }
//! let behaviours = Explorer::new(&t).behaviours();
//! assert!(behaviours.contains(&vec![Value::new(0)]));
//! assert!(!behaviours.contains(&vec![Value::new(1)])); // cannot print 1
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod dot;
mod event;
mod explore;
mod happens_before;
mod indexed;
mod interleaving;
pub mod intern;
pub mod metrics;
pub mod par;
mod wild;

pub use budget::{
    Budget, BudgetBound, BudgetGuard, CancelToken, Completeness, EngineFault, TruncationReason,
};
pub use dot::hb_dot;
pub use event::Event;
pub use explore::{Behaviours, ExploreLimits, Explorer, RaceWitness};
pub use happens_before::HappensBefore;
pub use indexed::IndexedTraceset;
pub use interleaving::Interleaving;
pub use metrics::{ExploreMetrics, ExploreStats, TraceEvent};
pub use par::available_jobs;
pub use wild::{WildEvent, WildInterleaving};
