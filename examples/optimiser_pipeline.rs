//! A miniature verified optimising compiler: greedily applies the
//! paper's safe transformations to shrink a program's memory traffic,
//! validating every step against the semantic classes (Lemmas 4/5) and
//! the DRF guarantee (Theorems 3/4).
//!
//! Run with `cargo run --example optimiser_pipeline`.

use transafety::checker::{check_rewrite, drf_guarantee, Analysis, Correspondence};
use transafety::lang::{parse_program, Program, Stmt};
use transafety::syntactic::{all_rewrites, Rewrite};

/// Cost = number of shared-memory accesses (what an optimiser wants to
/// shrink) with reorderings as tie-break enablers.
fn cost(p: &Program) -> usize {
    fn stmt_cost(s: &Stmt) -> usize {
        match s {
            Stmt::Load { .. } | Stmt::Store { .. } => 1,
            Stmt::Block(b) => b.iter().map(stmt_cost).sum(),
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => stmt_cost(then_branch) + stmt_cost(else_branch),
            Stmt::While { body, .. } => stmt_cost(body),
            _ => 0,
        }
    }
    p.threads().iter().flatten().map(stmt_cost).sum()
}

/// One optimisation step: the elimination that reduces cost, or a
/// reordering/move that enables one later (breadth-1 lookahead).
fn pick_step(p: &Program) -> Option<Rewrite> {
    let rewrites = all_rewrites(p);
    // prefer genuine eliminations
    if let Some(rw) = rewrites.iter().find(|r| cost(&r.result) < cost(p)) {
        return Some(rw.clone());
    }
    // otherwise look one step ahead through a reordering
    rewrites.into_iter().find(|rw| {
        all_rewrites(&rw.result)
            .iter()
            .any(|next| cost(&next.result) < cost(p))
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A lock-disciplined worker whose body a compiler would love to
    // clean up: redundant loads, a dead store, and a store that can sink
    // into the critical section.
    let src = "
        r9 := scratch;
        lock m;
        r1 := shared;
        r2 := shared;     // redundant load (E-RAR)
        out := r1;
        out := r2;        // overwritten store (E-WBW)
        print r2;
        unlock m;
        ||
        lock m; shared := 1; unlock m;
    ";
    let original = parse_program(src)?.program;
    let opts = Analysis::new();
    println!(
        "original ({} memory accesses):\n{original}",
        cost(&original)
    );

    assert!(
        transafety::checker::is_data_race_free(&original, &opts),
        "the pipeline input is DRF, so every step is covered by the theorems"
    );

    let mut current = original.clone();
    let mut step = 0;
    while let Some(rw) = pick_step(&current) {
        step += 1;
        // verify the step semantically (Lemma 4/5) …
        let corr = check_rewrite(&current, &rw, &opts);
        assert!(
            matches!(corr, Correspondence::Verified { .. }),
            "step {step} ({rw}) failed its semantic class: {corr:?}"
        );
        // … and end-to-end against the ORIGINAL program (composition of
        // safe transformations is safe — §8 "arbitrary composition").
        let verdict = drf_guarantee(&rw.result, &original, &opts);
        assert!(
            verdict.is_consistent_with_paper(),
            "step {step} ({rw}) broke the DRF guarantee: {verdict}"
        );
        println!("step {step}: {rw} — verified ({verdict})");
        current = rw.result;
        if step > 16 {
            break;
        }
    }

    println!(
        "\noptimised ({} memory accesses):\n{current}",
        cost(&current)
    );
    assert!(
        cost(&current) < cost(&original),
        "the pipeline made progress"
    );

    // The observable behaviours are identical (not merely refined) here:
    let b0 = transafety::checker::behaviours(&original, &opts);
    let b1 = transafety::checker::behaviours(&current, &opts);
    assert_eq!(b0.value, b1.value);
    println!("behaviours unchanged across {step} verified steps. ✔");
    Ok(())
}
