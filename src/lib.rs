//! Workspace umbrella crate: see `transafety` for the library.
