//! Executable correspondence between syntactic and semantic
//! transformations (Lemmas 4 and 5 of the paper).
//!
//! Lemma 4: if `P ⇒e P'` then `[P']` is a semantic elimination of `[P]`.
//! Lemma 5: if `P ⇒r P'` then `[P']` is a reordering of an elimination
//! of `[P]`. This module decides both claims for concrete programs by
//! extracting bounded tracesets and running the witness searches of
//! `transafety-transform`.

use std::fmt;

use transafety_lang::{extract_traceset, Program};
use transafety_syntactic::{Rewrite, RuleName};
use transafety_traces::{Trace, Traceset};
use transafety_transform::{is_elim_reordering_of, is_elimination_of};

use crate::Analysis;

/// The outcome of checking one syntactic rewrite against its semantic
/// class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Correspondence {
    /// The transformed traceset is in the expected semantic class.
    Verified {
        /// Which semantic class was established.
        class: SemanticClass,
    },
    /// A member trace of the transformed traceset without a semantic
    /// witness — this would falsify Lemma 4/5 on this instance.
    Failed {
        /// The witness-less trace.
        trace: Trace,
    },
    /// Traceset extraction hit its bounds; no verdict.
    Inconclusive,
}

/// The semantic transformation class a rewrite was validated against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SemanticClass {
    /// `[P']` is an elimination of `[P]` (§4).
    Elimination,
    /// `[P']` is a reordering of an elimination of `[P]` (§4, Lemma 5).
    EliminationThenReordering,
    /// `[P'] = [P]` (trace-preserving transformation, §2.1).
    Identity,
}

impl fmt::Display for SemanticClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SemanticClass::Elimination => "semantic elimination",
            SemanticClass::EliminationThenReordering => "reordering of an elimination",
            SemanticClass::Identity => "traceset identity",
        };
        f.write_str(s)
    }
}

/// Extracts `[P]`, reporting `None` when truncated.
fn traceset_of(p: &Program, opts: &Analysis) -> Option<Traceset> {
    let e = extract_traceset(p, &opts.domain, &opts.extract);
    (!e.truncated).then_some(e.traceset)
}

/// Extracts `[transformed]` and `[original]`, on two workers when the
/// configuration allows it.
fn traceset_pair(
    transformed: &Program,
    original: &Program,
    opts: &Analysis,
) -> Option<(Traceset, Traceset)> {
    let mut pair = transafety_interleaving::par::parallel_map(
        opts.jobs.min(2),
        &[transformed, original],
        |p| traceset_of(p, opts),
    );
    let o = pair.pop().expect("two inputs")?;
    let t = pair.pop().expect("two inputs")?;
    Some((t, o))
}

/// Checks Lemma 4 for a concrete pair: `[transformed]` is a semantic
/// elimination of `[original]`.
#[must_use]
pub fn check_elimination_correspondence(
    transformed: &Program,
    original: &Program,
    opts: &Analysis,
) -> Correspondence {
    let Some((t, o)) = traceset_pair(transformed, original, opts) else {
        return Correspondence::Inconclusive;
    };
    match is_elimination_of(&t, &o, &opts.domain, &opts.elimination) {
        Ok(()) => Correspondence::Verified {
            class: SemanticClass::Elimination,
        },
        Err(e) => Correspondence::Failed { trace: e.trace },
    }
}

/// Checks Lemma 5 for a concrete pair: `[transformed]` is a reordering
/// of an elimination of `[original]`.
#[must_use]
pub fn check_reordering_correspondence(
    transformed: &Program,
    original: &Program,
    opts: &Analysis,
) -> Correspondence {
    let Some((t, o)) = traceset_pair(transformed, original, opts) else {
        return Correspondence::Inconclusive;
    };
    match is_elim_reordering_of(&t, &o, &opts.domain, &opts.elimination) {
        Ok(()) => Correspondence::Verified {
            class: SemanticClass::EliminationThenReordering,
        },
        Err(e) => Correspondence::Failed { trace: e.trace },
    }
}

/// Checks that a trace-preserving rewrite leaves the traceset unchanged.
#[must_use]
pub fn check_identity_correspondence(
    transformed: &Program,
    original: &Program,
    opts: &Analysis,
) -> Correspondence {
    let Some((t, o)) = traceset_pair(transformed, original, opts) else {
        return Correspondence::Inconclusive;
    };
    if t == o {
        Correspondence::Verified {
            class: SemanticClass::Identity,
        }
    } else {
        // report some trace present in one and not the other
        let witness = t
            .traces()
            .find(|tr| !o.contains(tr))
            .or_else(|| o.traces().find(|tr| !t.contains(tr)))
            .unwrap_or_default();
        Correspondence::Failed { trace: witness }
    }
}

/// Checks a [`Rewrite`] produced by the syntactic engine against the
/// semantic class its rule family promises (the per-instance executable
/// content of Lemmas 4 and 5).
#[must_use]
pub fn check_rewrite(original: &Program, rewrite: &Rewrite, opts: &Analysis) -> Correspondence {
    match classify(rewrite.rule) {
        SemanticClass::Elimination => {
            check_elimination_correspondence(&rewrite.result, original, opts)
        }
        SemanticClass::EliminationThenReordering => {
            check_reordering_correspondence(&rewrite.result, original, opts)
        }
        SemanticClass::Identity => check_identity_correspondence(&rewrite.result, original, opts),
    }
}

/// The semantic class promised by a syntactic rule (Lemma 4 for Fig. 10,
/// Lemma 5 for Fig. 11, §2.1 for trace-preserving moves).
#[must_use]
pub fn classify(rule: RuleName) -> SemanticClass {
    if rule.is_elimination() {
        SemanticClass::Elimination
    } else if rule.is_reordering() {
        SemanticClass::EliminationThenReordering
    } else {
        SemanticClass::Identity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transafety_lang::parse_program;
    use transafety_syntactic::{all_rewrites, elimination_rewrites, reordering_rewrites};
    use transafety_traces::Domain;

    fn p(src: &str) -> Program {
        parse_program(src).unwrap().program
    }

    fn opts() -> Analysis {
        Analysis::with_domain(Domain::zero_to(1))
    }

    #[test]
    fn lemma4_on_fig1_thread() {
        let original = p("r1 := y; print r1; r1 := x; r2 := x; print r2;");
        for rw in elimination_rewrites(&original) {
            let c = check_rewrite(&original, &rw, &opts());
            assert!(
                matches!(c, Correspondence::Verified { .. }),
                "Lemma 4 failed for {rw}: {c:?}"
            );
        }
    }

    #[test]
    fn lemma5_on_fig2_thread() {
        let original = p("r1 := y; x := r0; print r1;");
        let rws = reordering_rewrites(&original);
        assert!(!rws.is_empty());
        for rw in rws {
            let c = check_rewrite(&original, &rw, &opts());
            assert!(
                matches!(c, Correspondence::Verified { .. }),
                "Lemma 5 failed for {rw}: {c:?}"
            );
        }
    }

    #[test]
    fn identity_rules_preserve_tracesets() {
        let original = p("r1 := y; x := 1; print r1;");
        for rw in all_rewrites(&original) {
            if rw.rule.is_trace_preserving() {
                let c = check_rewrite(&original, &rw, &opts());
                assert_eq!(
                    c,
                    Correspondence::Verified {
                        class: SemanticClass::Identity
                    }
                );
            }
        }
    }

    #[test]
    fn bogus_pairs_fail() {
        let original = p("print 1;");
        let bogus = p("print 2;");
        let c = check_elimination_correspondence(&bogus, &original, &opts());
        assert!(matches!(c, Correspondence::Failed { .. }));
    }

    #[test]
    fn roach_motel_rewrites_verify() {
        let original = p("x := r0; lock m; r1 := x; unlock m; r2 := y;");
        let rws = reordering_rewrites(&original);
        assert!(rws.iter().any(|r| r.rule == RuleName::RWl));
        assert!(rws.iter().any(|r| r.rule == RuleName::RUr));
        for rw in rws {
            let c = check_rewrite(&original, &rw, &opts());
            assert!(
                matches!(c, Correspondence::Verified { .. }),
                "roach motel {rw}: {c:?}"
            );
        }
    }
}
