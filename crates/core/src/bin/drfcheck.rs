//! `drfcheck` — a command-line DRF-soundness validator for shared-memory
//! program transformations, built on the `transafety` library.
//!
//! ```console
//! $ drfcheck races program.tsl
//! $ drfcheck behaviours program.tsl
//! $ drfcheck --jobs 8 guarantee original.tsl transformed.tsl
//! $ drfcheck correspondence original.tsl transformed.tsl
//! $ drfcheck rewrites program.tsl
//! $ drfcheck oota program.tsl 42
//! $ drfcheck tso program.tsl
//! $ drfcheck --max-interleavings 10000 executions program.tsl
//! $ drfcheck litmus               # list the built-in corpus
//! ```
//!
//! `--jobs N` selects the worker count for the parallel exploration
//! engine (default: all available cores; `--jobs 1` forces the
//! sequential reference driver — results are identical either way).
//! `--max-interleavings N` caps execution enumeration; exceeding the cap
//! exits with code 3 after reporting the limit.
//!
//! Program files use the concrete syntax of the paper's §6 language (see
//! `transafety::lang::parse_program`); a corpus name (e.g. `sb`) can be
//! used anywhere a file path is expected.

use std::io::Write;
use std::process::ExitCode;

use transafety::checker::{
    behaviours, classify_transformation, drf_guarantee, no_thin_air, race_witness, Analysis,
    OotaVerdict, TransformationClass,
};
use transafety::lang::{parse_program_with_symbols, SourceProgram};
use transafety::litmus::by_name;
use transafety::traces::{Domain, Value};
use transafety::tso::explain_tso;

fn load(arg: &str) -> Result<SourceProgram, String> {
    load_with(arg, transafety::lang::SymbolTable::default())
}

fn load_with(arg: &str, symbols: transafety::lang::SymbolTable) -> Result<SourceProgram, String> {
    let source = if let Some(l) = by_name(arg) {
        l.source.to_string()
    } else {
        std::fs::read_to_string(arg).map_err(|e| format!("cannot read {arg}: {e}"))?
    };
    parse_program_with_symbols(&source, symbols).map_err(|e| format!("{arg}: {e}"))
}

/// Exit code when the interleaving-enumeration cap is exceeded.
const EXIT_LIMIT_EXCEEDED: u8 = 3;

fn usage() -> ExitCode {
    eprintln!(
        "usage: drfcheck [--jobs N] [--max-interleavings N] <command> [args]\n\
         commands:\n  \
           races <program>                      find a data race\n  \
           behaviours <program>                 print all SC behaviours\n  \
           executions <program>                 enumerate maximal SC executions\n  \
           guarantee <original> <transformed>   check the DRF guarantee\n  \
           classify <original> <transformed>    strongest safe class (Lemma 4/5)\n  \
           rewrites <program>                   list applicable safe rewrites\n  \
           oota <program> <value>               out-of-thin-air check\n  \
           tso <program>                        TSO behaviours + §8 explanation\n  \
           pso <program>                        PSO behaviours + explanation\n  \
           dot <program>                        Graphviz happens-before graph\n  \
           litmus                               list the built-in corpus\n\
         flags:\n  \
           --jobs N               worker threads (default: all cores; 1 = sequential)\n  \
           --max-interleavings N  cap on enumerated executions (exceeding exits 3)\n\
         <program> is a file path or a corpus name (try `drfcheck litmus`)."
    );
    ExitCode::from(2)
}

/// Splits global flags off the argument list into an [`Analysis`]
/// configuration; everything else is handed to the subcommands.
fn parse_flags(args: &[String]) -> Result<(Analysis, Vec<String>), String> {
    let mut opts = Analysis::new().auto_jobs();
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" | "-j" => {
                let v = it.next().ok_or("--jobs requires a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--jobs: not a number: {v}"))?;
                opts = opts.jobs(n);
            }
            "--max-interleavings" => {
                let v = it.next().ok_or("--max-interleavings requires a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--max-interleavings: not a number: {v}"))?;
                opts = opts.max_interleavings(n);
            }
            _ => rest.push(a.clone()),
        }
    }
    Ok((opts, rest))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = parse_flags(&args).and_then(|(opts, rest)| run(&rest, &opts));
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("drfcheck: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String], opts: &Analysis) -> Result<ExitCode, String> {
    match args.first().map(String::as_str) {
        Some("races") if args.len() == 2 => {
            let p = load(&args[1])?;
            match race_witness(&p.program, opts) {
                None => {
                    println!("data race free");
                    Ok(ExitCode::SUCCESS)
                }
                Some(w) => {
                    println!("{w}");
                    Ok(ExitCode::FAILURE)
                }
            }
        }
        Some("behaviours") if args.len() == 2 => {
            let p = load(&args[1])?;
            let b = behaviours(&p.program, opts);
            if !b.complete {
                println!("(bounded: exploration hit its limits)");
            }
            for beh in &b.value {
                let rendered: Vec<String> = beh.iter().map(ToString::to_string).collect();
                println!("[{}]", rendered.join(", "));
            }
            Ok(ExitCode::SUCCESS)
        }
        Some("executions") if args.len() == 2 => {
            let p = load(&args[1])?;
            let e = transafety::lang::extract_traceset(&p.program, &opts.domain, &opts.extract);
            let (execs, capped) = transafety::interleaving::Explorer::new(&e.traceset)
                .maximal_executions_checked(opts.limits());
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            for i in &execs {
                if writeln!(out, "{i}").is_err() {
                    // Downstream closed the pipe (e.g. `| head`); stop
                    // quietly instead of panicking on the next print.
                    return Ok(ExitCode::SUCCESS);
                }
            }
            if capped {
                eprintln!(
                    "drfcheck: interleaving limit exceeded: more than {} maximal \
                     executions (raise the cap with --max-interleavings)",
                    opts.max_interleavings
                );
                return Ok(ExitCode::from(EXIT_LIMIT_EXCEEDED));
            }
            Ok(ExitCode::SUCCESS)
        }
        Some("guarantee") if args.len() == 3 => {
            let original = load(&args[1])?;
            let transformed = load_with(&args[2], original.symbols.clone())?;
            let verdict = drf_guarantee(&transformed.program, &original.program, opts);
            println!("{verdict}");
            Ok(if verdict.is_consistent_with_paper() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        Some("classify") | Some("correspondence") if args.len() == 3 => {
            let original = load(&args[1])?;
            let transformed = load_with(&args[2], original.symbols.clone())?;
            let class = classify_transformation(&transformed.program, &original.program, opts);
            println!("{class}");
            if let TransformationClass::Unsafe {
                witness_trace: Some(t),
            } = &class
            {
                println!("no semantic witness for trace {t}");
            }
            Ok(if class.is_paper_safe() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        Some("rewrites") if args.len() == 2 => {
            let p = load(&args[1])?;
            for rw in transafety::syntactic::all_rewrites(&p.program) {
                let verdict = drf_guarantee(&rw.result, &p.program, opts);
                println!("{rw} — {verdict}");
            }
            Ok(ExitCode::SUCCESS)
        }
        Some("oota") if args.len() == 3 => {
            let p = load(&args[1])?;
            let value: u32 = args[2]
                .parse()
                .map_err(|_| format!("not a value: {}", args[2]))?;
            let value = Value::new(value);
            let domain = Domain::from_values(
                p.program
                    .constants()
                    .into_iter()
                    .chain([value, Value::new(1)]),
            );
            let o = opts.clone().domain(domain);
            let verdict = no_thin_air(&p.program, value, 3, &o);
            println!("{verdict}");
            Ok(match verdict {
                OotaVerdict::Safe { .. } | OotaVerdict::MentionsConstant => ExitCode::SUCCESS,
                _ => ExitCode::FAILURE,
            })
        }
        Some("tso") if args.len() == 2 => {
            let p = load(&args[1])?;
            let e = explain_tso(&p.program, 3, &opts.explore);
            println!(
                "SC behaviours: {} — TSO behaviours: {}{}",
                e.sc.len(),
                e.tso.len(),
                if e.relaxed { " (relaxed)" } else { "" }
            );
            println!(
                "explained by W→R reordering + forwarding elimination \
                 (closure of {} programs): {}",
                e.closure_size,
                if e.explained { "yes" } else { "NO" }
            );
            Ok(if e.explained {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        Some("pso") if args.len() == 2 => {
            let p = load(&args[1])?;
            let e = transafety::tso::explain_pso(&p.program, 3, &opts.explore);
            println!(
                "SC behaviours: {} — PSO behaviours: {}{}",
                e.sc.len(),
                e.pso.len(),
                if e.relaxed { " (relaxed)" } else { "" }
            );
            println!(
                "explained by the W→R + W→W reordering fragment \
                 (closure of {} programs): {}",
                e.closure_size,
                if e.explained { "yes" } else { "NO" }
            );
            Ok(if e.explained {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        Some("dot") if args.len() == 2 => {
            let p = load(&args[1])?;
            // render the racy execution if there is one, otherwise any
            // maximal execution of the (bounded) traceset
            if let Some(w) = race_witness(&p.program, opts) {
                print!("{}", transafety::interleaving::hb_dot(&w.execution));
                return Ok(ExitCode::SUCCESS);
            }
            let e = transafety::lang::extract_traceset(
                &p.program,
                &opts.domain,
                &transafety::lang::ExtractOptions::default(),
            );
            let execs = transafety::interleaving::Explorer::new(&e.traceset).maximal_executions(
                transafety::interleaving::ExploreLimits {
                    max_interleavings: 1,
                },
            );
            match execs.first() {
                Some(i) => print!("{}", transafety::interleaving::hb_dot(i)),
                None => println!("// no executions"),
            }
            Ok(ExitCode::SUCCESS)
        }
        Some("litmus") if args.len() == 1 => {
            for l in transafety::litmus::corpus() {
                println!(
                    "{:<26} {:<12} {}",
                    l.name,
                    l.paper_ref.unwrap_or("-"),
                    l.description
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        _ => Ok(usage()),
    }
}
