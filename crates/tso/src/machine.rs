//! An operational TSO machine (per-thread FIFO store buffers) for the
//! §6 language.
//!
//! §8 of the paper observes that the Sun TSO memory model (used by most
//! SPARC processors, and equivalent to x86-TSO) is *explained* by the
//! paper's transformations: every TSO behaviour of a program is a
//! sequentially consistent behaviour of a program obtained by
//! write→read reordering plus forwarding elimination. This module
//! provides the machine side of that claim: an exhaustive explorer of
//! TSO executions.
//!
//! The machine model is the standard operational presentation
//! (x86-TSO): writes enqueue into the writing thread's FIFO buffer;
//! buffers drain into shared memory nondeterministically; reads consult
//! the own buffer first (store-to-load forwarding); locks, unlocks and
//! volatile accesses act as fences (they require the thread's buffer to
//! have drained).

use std::collections::{BTreeMap, VecDeque};

use transafety_lang::{ExploreOptions, Program, Step, ThreadConfig};
use transafety_traces::{Action, Domain, Loc, Monitor, Value};

/// Exhaustive explorer of the TSO executions of a program.
///
/// # Example
///
/// The store-buffering litmus test (SB): under SC at least one thread
/// must see the other's write; under TSO both may read 0.
///
/// ```
/// use transafety_lang::{parse_program, ExploreOptions, ModelExplorer, ProgramExplorer};
/// use transafety_tso::TsoModel;
/// use transafety_traces::Value;
///
/// let src = "x := 1; r1 := y; print r1; || y := 1; r2 := x; print r2;";
/// let p = parse_program(src)?.program;
/// let opts = ExploreOptions::default();
/// let sc = ProgramExplorer::new(&p).behaviours(&opts).value;
/// let model = TsoModel::new(&p);
/// let tso = ModelExplorer::new(&model).behaviours(&opts).value;
/// let zero_zero = vec![Value::new(0), Value::new(0)];
/// assert!(!sc.contains(&zero_zero));
/// assert!(tso.contains(&zero_zero));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub(crate) struct TsoExplorer<'p> {
    program: &'p Program,
}

/// A TSO machine state: per-thread configurations, per-thread FIFO
/// store buffers, shared memory, and the monitor holder table.
///
/// Public only as the opaque
/// [`MemoryModel::State`](transafety_lang::MemoryModel) of the
/// [`TsoModel`](crate::TsoModel) backend; its contents are an internal
/// encoding.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TsoState {
    threads: Vec<Option<ThreadConfig>>,
    buffers: Vec<VecDeque<(Loc, Value)>>,
    memory: BTreeMap<Loc, Value>,
    holders: BTreeMap<Monitor, usize>,
}

impl TsoState {
    /// The configuration of thread `k` (`None` before its start move).
    pub(crate) fn cfg(&self, k: usize) -> Option<&ThreadConfig> {
        self.threads[k].as_ref()
    }

    /// Does thread `k` have a buffered store to `loc`?
    pub(crate) fn has_buffered(&self, k: usize, loc: Loc) -> bool {
        self.buffers[k].iter().any(|(l, _)| *l == loc)
    }

    /// The location thread `k`'s flush move would drain (its oldest
    /// buffered store), if any.
    pub(crate) fn flush_loc(&self, k: usize) -> Option<Loc> {
        self.buffers[k].front().map(|(l, _)| *l)
    }
}

#[derive(Debug, Clone)]
pub(crate) enum TsoMove {
    /// Thread `thread` starts.
    Start { thread: usize },
    /// Thread `thread` performs the action (already resolved against the
    /// buffer/memory) and becomes `next`.
    Act {
        thread: usize,
        action: Action,
        next: ThreadConfig,
    },
    /// The oldest buffered store of `thread` drains to memory.
    Flush { thread: usize },
}

impl<'p> TsoExplorer<'p> {
    /// Creates a TSO explorer for the program.
    #[must_use]
    pub(crate) fn new(program: &'p Program) -> Self {
        TsoExplorer { program }
    }

    pub(crate) fn initial(&self) -> TsoState {
        let n = self.program.thread_count();
        TsoState {
            threads: vec![None; n],
            buffers: vec![VecDeque::new(); n],
            memory: BTreeMap::new(),
            holders: BTreeMap::new(),
        }
    }

    /// The value thread `k` reads from `loc`: the youngest buffered store
    /// to `loc` in its own buffer, else shared memory.
    fn read_value(&self, state: &TsoState, k: usize, loc: Loc) -> Value {
        state.buffers[k]
            .iter()
            .rev()
            .find(|(l, _)| *l == loc)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| state.memory.get(&loc).copied().unwrap_or(Value::ZERO))
    }

    pub(crate) fn moves(
        &self,
        state: &TsoState,
        opts: &ExploreOptions,
        truncated: &mut bool,
    ) -> Vec<TsoMove> {
        let domain = Domain::zero_to(0);
        let mut out = Vec::new();
        for (k, buffer) in state.buffers.iter().enumerate() {
            if !buffer.is_empty() {
                out.push(TsoMove::Flush { thread: k });
            }
        }
        for (k, slot) in state.threads.iter().enumerate() {
            let Some(cfg) = slot else {
                out.push(TsoMove::Start { thread: k });
                continue;
            };
            let Some((_, step)) = cfg.tau_closure(&domain, opts.max_tau) else {
                *truncated = true;
                continue;
            };
            let Step::Emit(successors) = step else {
                continue;
            };
            let (first_action, _) = &successors[0];
            match *first_action {
                Action::Read { loc, .. } if !loc.is_volatile() => {
                    let v = self.read_value(state, k, loc);
                    let (a, next) = resolved_read(cfg, v, opts);
                    out.push(TsoMove::Act {
                        thread: k,
                        action: a,
                        next,
                    });
                }
                Action::Read { loc, .. } => {
                    // volatile read: fence — buffer must be empty
                    if state.buffers[k].is_empty() {
                        let v = state.memory.get(&loc).copied().unwrap_or(Value::ZERO);
                        let (a, next) = resolved_read(cfg, v, opts);
                        out.push(TsoMove::Act {
                            thread: k,
                            action: a,
                            next,
                        });
                    }
                }
                Action::Write { loc, .. } if loc.is_volatile() => {
                    // volatile write: fence — buffer must be empty
                    if state.buffers[k].is_empty() {
                        let (a, next) = successors.into_iter().next().expect("one");
                        out.push(TsoMove::Act {
                            thread: k,
                            action: a,
                            next,
                        });
                    }
                }
                Action::Write { .. } | Action::External(_) => {
                    let (a, next) = successors.into_iter().next().expect("one");
                    out.push(TsoMove::Act {
                        thread: k,
                        action: a,
                        next,
                    });
                }
                Action::Lock(m) => {
                    let free = match state.holders.get(&m) {
                        None => true,
                        Some(&h) => h == k,
                    };
                    if free && state.buffers[k].is_empty() {
                        let (a, next) = successors.into_iter().next().expect("one");
                        out.push(TsoMove::Act {
                            thread: k,
                            action: a,
                            next,
                        });
                    }
                }
                Action::Unlock(_) => {
                    if state.buffers[k].is_empty() {
                        let (a, next) = successors.into_iter().next().expect("one");
                        out.push(TsoMove::Act {
                            thread: k,
                            action: a,
                            next,
                        });
                    }
                }
                Action::Start(_) => unreachable!("start is not emitted by thread bodies"),
            }
        }
        out
    }

    pub(crate) fn apply(&self, state: &TsoState, mv: &TsoMove) -> TsoState {
        let mut next = state.clone();
        match mv {
            TsoMove::Start { thread } => {
                next.threads[*thread] = Some(ThreadConfig::new(
                    self.program.thread(*thread).expect("in range").to_vec(),
                ));
            }
            TsoMove::Flush { thread } => {
                if let Some((loc, v)) = next.buffers[*thread].pop_front() {
                    next.memory.insert(loc, v);
                }
            }
            TsoMove::Act {
                thread,
                action,
                next: cfg,
            } => {
                match *action {
                    Action::Write { loc, value } if !loc.is_volatile() => {
                        next.buffers[*thread].push_back((loc, value));
                    }
                    Action::Write { loc, value } => {
                        next.memory.insert(loc, value);
                    }
                    Action::Lock(m) => {
                        next.holders.insert(m, *thread);
                    }
                    Action::Unlock(m) if cfg.monitor_nesting(m) == 0 => {
                        next.holders.remove(&m);
                    }
                    _ => {}
                }
                next.threads[*thread] = Some(if cfg.is_done() {
                    ThreadConfig::new(vec![])
                } else {
                    cfg.clone()
                });
            }
        }
        next
    }
}

/// Resolves the pending read of `cfg` against the concrete value `v` by
/// re-stepping only the emitting statement.
fn resolved_read(cfg: &ThreadConfig, v: Value, opts: &ExploreOptions) -> (Action, ThreadConfig) {
    let at_emit = cfg
        .tau_closure(&Domain::zero_to(0), opts.max_tau)
        .expect("closure already succeeded")
        .0;
    let Step::Emit(succ) = at_emit.step(&Domain::from_values([v])) else {
        unreachable!("closure stopped at an emitting statement")
    };
    succ.into_iter()
        .find(|(a, _)| a.value() == Some(v))
        .expect("domain contains v")
}

/// Does the program contain a `while` loop? Loop-free programs admit
/// exact, fuel-free memoisation (every action consumes a statement and
/// every flush shrinks a buffer, so the state graph is a DAG).
pub(crate) fn program_has_loops(p: &Program) -> bool {
    fn stmt_has_loop(s: &transafety_lang::Stmt) -> bool {
        match s {
            transafety_lang::Stmt::While { .. } => true,
            transafety_lang::Stmt::Block(b) => b.iter().any(stmt_has_loop),
            transafety_lang::Stmt::If {
                then_branch,
                else_branch,
                ..
            } => stmt_has_loop(then_branch) || stmt_has_loop(else_branch),
            _ => false,
        }
    }
    p.threads().iter().flatten().any(stmt_has_loop)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TsoModel;
    use transafety_interleaving::Behaviours;
    use transafety_lang::{parse_program, ModelExplorer, ProgramExplorer};

    fn v(n: u32) -> Value {
        Value::new(n)
    }

    fn tso_behaviours(src: &str) -> Behaviours {
        let p = parse_program(src).unwrap().program;
        let model = TsoModel::new(&p);
        let b = ModelExplorer::new(&model).behaviours(&ExploreOptions::default());
        assert!(b.complete, "TSO exploration truncated");
        b.value
    }

    fn sc_behaviours(src: &str) -> Behaviours {
        let p = parse_program(src).unwrap().program;
        let b = ProgramExplorer::new(&p).behaviours(&ExploreOptions::default());
        assert!(b.complete);
        b.value
    }

    #[test]
    fn sb_allows_zero_zero_under_tso_only() {
        let src = "x := 1; r1 := y; print r1; || y := 1; r2 := x; print r2;";
        let zz = vec![v(0), v(0)];
        assert!(!sc_behaviours(src).contains(&zz));
        assert!(tso_behaviours(src).contains(&zz));
        // TSO is a superset of SC
        let sc = sc_behaviours(src);
        let tso = tso_behaviours(src);
        assert!(sc.is_subset(&tso));
    }

    #[test]
    fn store_to_load_forwarding() {
        // A thread always sees its own buffered store.
        let src = "x := 1; r1 := x; print r1;";
        let tso = tso_behaviours(src);
        assert!(tso.contains(&vec![v(1)]));
        assert!(!tso.contains(&vec![v(0)]));
    }

    #[test]
    fn message_passing_violated_without_fences() {
        // MP: T0: x:=1; flag:=1 — T1: r1:=flag; r2:=x; print r1; print r2.
        // TSO preserves store order, so flag=1 implies x=1 (no 1,0).
        let src = "x := 1; flag := 1; || r1 := flag; r2 := x; print r1; print r2;";
        let tso = tso_behaviours(src);
        assert!(tso.contains(&vec![v(1), v(1)]));
        assert!(!tso.contains(&vec![v(1), v(0)]), "TSO keeps store order");
    }

    #[test]
    fn volatile_writes_fence_sb() {
        // SB with volatile locations: the relaxed outcome disappears.
        let src = "volatile x, y; x := 1; r1 := y; print r1; || y := 1; r2 := x; print r2;";
        let tso = tso_behaviours(src);
        assert!(
            !tso.contains(&vec![v(0), v(0)]),
            "volatiles are fenced on TSO"
        );
        assert_eq!(tso, sc_behaviours(src), "fenced program: TSO = SC");
    }

    #[test]
    fn locks_fence_and_exclude() {
        let src = "lock m; x := 1; r1 := x; unlock m; print r1; \
                   || lock m; x := 2; r2 := x; unlock m; print r2;";
        let tso = tso_behaviours(src);
        let sc = sc_behaviours(src);
        assert_eq!(tso, sc, "lock-protected program: TSO = SC");
        assert!(!tso.contains(&vec![v(2), v(1)]) || tso.contains(&vec![v(1), v(2)]));
    }

    #[test]
    fn iriw_is_sc_on_tso() {
        // Independent reads of independent writes: TSO (unlike weaker
        // models) forbids the non-SC outcome 1,0,1,0.
        let src = "x := 1; || y := 1; \
                   || r1 := x; r2 := y; print r1; print r2; \
                   || r3 := y; r4 := x; print r3; print r4;";
        let tso = tso_behaviours(src);
        let sc = sc_behaviours(src);
        assert_eq!(tso, sc, "IRIW: TSO admits exactly the SC behaviours");
    }

    #[test]
    fn state_count_positive() {
        let p = parse_program("x := 1; || r1 := x;").unwrap().program;
        let model = TsoModel::new(&p);
        assert!(ModelExplorer::new(&model).count_reachable_states(&ExploreOptions::default()) > 3);
    }
}
