//! The `drfcheck serve` wire protocol: one JSON object per line, in and
//! out.
//!
//! Requests are flat JSON objects (no nesting — the protocol needs no
//! structure deeper than key/value, and rejecting depth keeps the
//! hand-rolled parser obviously total):
//!
//! ```json
//! {"id":"42","cmd":"check","program":"x := 1; || r0 := x; print r0;",
//!  "model":"tso","timeout_ms":5000,"max_states":1000000}
//! ```
//!
//! Responses mirror the request `id` and carry a `status` that is the
//! service's failure-semantics contract:
//!
//! * `"ok"` — the analysis ran (or was served from the verdict cache);
//!   `verdict` is one of `racy` / `drf_proven` / `unknown`, and
//!   `drf_proven` is only ever emitted by a **complete, fault-free**
//!   run — every degraded path reports `unknown` or an error.
//! * `"error"` — the request was malformed, or both the parallel run
//!   and its sequential retry were lost to worker panics. No verdict.
//! * `"overloaded"` — the request was shed by admission control before
//!   running (queue full, oldest request dropped first, never
//!   silently).
//! * `"cancelled"` — the server began draining (SIGINT/SIGTERM) before
//!   the request was scheduled.
//!
//! The parser is strict: unknown keys, nested values and non-integer
//! numbers are errors, so a typo'd option can never be silently
//! ignored and then reported as if it had been honoured.

use std::fmt;

use transafety_traces::MemoryModelKind;

/// A scalar JSON value of the flat request/entry objects.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A JSON string (escapes decoded).
    String(String),
    /// An integer (the protocol has no use for fractions).
    Int(i128),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl JsonValue {
    /// The value as a non-negative integer, if it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one flat JSON object — string/integer/boolean/null values
/// only — into its key/value pairs, in source order. Duplicate keys are
/// rejected (a request that says `"timeout_ms"` twice is ambiguous, not
/// last-writer-wins).
pub fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut pairs: Vec<(String, JsonValue)> = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key {key:?}"));
            }
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.value()?;
            pairs.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        p.pos,
                        other.map(char::from)
                    ))
                }
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input after object at byte {}", p.pos));
    }
    Ok(pairs)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!(
                "expected {:?} at byte {}, found {:?}",
                char::from(want),
                self.pos,
                other.map(char::from)
            )),
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.integer(),
            Some(b'{' | b'[') => Err(format!(
                "nested values are not part of the protocol (byte {})",
                self.pos
            )),
            other => Err(format!(
                "expected a value at byte {}, found {:?}",
                self.pos,
                other.map(char::from)
            )),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("malformed literal at byte {}", self.pos))
        }
    }

    fn integer(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(format!(
                "non-integer number at byte {start} (the protocol uses integers only)"
            ));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are utf-8");
        text.parse::<i128>()
            .map(JsonValue::Int)
            .map_err(|_| format!("number out of range at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = self
                            .bytes
                            .get(self.pos..self.pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "malformed \\u escape")?;
                        self.pos += 4;
                        // Surrogates are not worth supporting in a
                        // programs-and-options protocol; reject rather
                        // than mis-decode.
                        out.push(
                            char::from_u32(code)
                                .ok_or("\\u escape is not a scalar value (surrogate?)")?,
                        );
                    }
                    other => {
                        return Err(format!("unknown escape {:?}", other.map(char::from)));
                    }
                },
                Some(b) if b < 0x20 => return Err("raw control character in string".to_string()),
                Some(b) => {
                    // Recover multi-byte UTF-8 sequences: the input is a
                    // &str, so continuation bytes are guaranteed valid.
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .expect("input is a &str");
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }
}

/// Escapes a string for embedding in a JSON double-quoted literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The analysis commands a request can ask for. They all run the same
/// full pipeline (one [`Analysis::run`](transafety_checker::Analysis)
/// report answers all three), so the command only names the caller's
/// intent; every response carries the full result either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Cmd {
    /// Full report: verdict + behaviours + census.
    #[default]
    Check,
    /// Race search focus.
    Races,
    /// Behaviour enumeration focus.
    Behaviours,
}

impl Cmd {
    /// The wire name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Cmd::Check => "check",
            Cmd::Races => "races",
            Cmd::Behaviours => "behaviours",
        }
    }
}

impl std::str::FromStr for Cmd {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "check" => Ok(Cmd::Check),
            "races" => Ok(Cmd::Races),
            "behaviours" => Ok(Cmd::Behaviours),
            other => Err(format!(
                "unknown cmd {other:?} (expected check, races or behaviours)"
            )),
        }
    }
}

/// One parsed, validated service request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    /// Strings and integers are both accepted on the wire; defaults to
    /// the server's admission sequence number.
    pub id: Option<String>,
    /// What the client asked for.
    pub cmd: Cmd,
    /// The program source (§6 concrete syntax).
    pub program: String,
    /// Memory model to explore under (`None` = server default).
    pub model: Option<MemoryModelKind>,
    /// Per-request wall-clock budget in milliseconds. `Some(0)` is
    /// rejected at validation time (a zero deadline can never make
    /// progress — the same usage error `drfcheck --timeout 0` raises).
    pub timeout_ms: Option<u64>,
    /// Per-request explored-state cap.
    pub max_states: Option<u64>,
    /// Per-request interleaving-enumeration cap.
    pub max_interleavings: Option<u64>,
    /// Per-execution action fuel.
    pub max_actions: Option<u64>,
    /// Worker threads for this request's exploration.
    pub jobs: Option<u64>,
    /// Partial-order reduction toggle.
    pub por: Option<bool>,
}

/// A request that failed to parse or validate, with whatever id could
/// be recovered (so the error response still correlates).
#[derive(Debug, Clone, PartialEq)]
pub struct RequestError {
    /// The recovered correlation id, if any.
    pub id: Option<String>,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Parses and validates one request line.
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let pairs = parse_flat_object(line).map_err(|message| RequestError { id: None, message })?;
    let id = pairs.iter().find(|(k, _)| k == "id").map(|(_, v)| match v {
        JsonValue::String(s) => s.clone(),
        JsonValue::Int(i) => i.to_string(),
        JsonValue::Bool(b) => b.to_string(),
        JsonValue::Null => "null".to_string(),
    });
    let fail = |message: String| RequestError {
        id: id.clone(),
        message,
    };
    let mut req = Request {
        id: id.clone(),
        cmd: Cmd::Check,
        program: String::new(),
        model: None,
        timeout_ms: None,
        max_states: None,
        max_interleavings: None,
        max_actions: None,
        jobs: None,
        por: None,
    };
    let mut have_program = false;
    for (key, value) in &pairs {
        match key.as_str() {
            "id" => {}
            "cmd" => {
                let s = value
                    .as_str()
                    .ok_or_else(|| fail("cmd must be a string".to_string()))?;
                req.cmd = s.parse().map_err(fail)?;
            }
            "program" => {
                req.program = value
                    .as_str()
                    .ok_or_else(|| fail("program must be a string".to_string()))?
                    .to_string();
                have_program = true;
            }
            "model" => {
                let s = value
                    .as_str()
                    .ok_or_else(|| fail("model must be a string".to_string()))?;
                req.model = Some(s.parse().map_err(|e| fail(format!("model: {e}")))?);
            }
            "timeout_ms" => {
                req.timeout_ms = Some(
                    value
                        .as_u64()
                        .ok_or_else(|| fail("timeout_ms must be a non-negative integer".into()))?,
                );
            }
            "max_states" => {
                req.max_states = Some(
                    value
                        .as_u64()
                        .ok_or_else(|| fail("max_states must be a non-negative integer".into()))?,
                );
            }
            "max_interleavings" => {
                req.max_interleavings = Some(value.as_u64().ok_or_else(|| {
                    fail("max_interleavings must be a non-negative integer".into())
                })?);
            }
            "max_actions" => {
                req.max_actions =
                    Some(value.as_u64().ok_or_else(|| {
                        fail("max_actions must be a non-negative integer".into())
                    })?);
            }
            "jobs" => {
                req.jobs = Some(
                    value
                        .as_u64()
                        .ok_or_else(|| fail("jobs must be a non-negative integer".into()))?,
                );
            }
            "por" => {
                req.por = Some(
                    value
                        .as_bool()
                        .ok_or_else(|| fail("por must be a boolean".into()))?,
                );
            }
            other => {
                return Err(fail(format!(
                    "unknown key {other:?} (the protocol is strict so misspelled \
                     options are never silently ignored)"
                )))
            }
        }
    }
    if !have_program {
        return Err(fail("missing required key \"program\"".to_string()));
    }
    if req.timeout_ms == Some(0) {
        return Err(fail(
            "timeout_ms must be positive: a zero deadline trips before any work \
             happens (omit the key for no deadline)"
                .to_string(),
        ));
    }
    Ok(req)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_request() {
        let r = parse_request(
            r#"{"id":"a1","cmd":"races","program":"x := 1;","model":"tso",
               "timeout_ms":250,"max_states":100,"max_interleavings":7,
               "max_actions":16,"jobs":2,"por":false}"#,
        )
        .unwrap();
        assert_eq!(r.id.as_deref(), Some("a1"));
        assert_eq!(r.cmd, Cmd::Races);
        assert_eq!(r.model, Some(MemoryModelKind::Tso));
        assert_eq!(r.timeout_ms, Some(250));
        assert_eq!(r.max_states, Some(100));
        assert_eq!(r.max_interleavings, Some(7));
        assert_eq!(r.max_actions, Some(16));
        assert_eq!(r.jobs, Some(2));
        assert_eq!(r.por, Some(false));
    }

    #[test]
    fn integer_ids_are_echoed_as_strings() {
        let r = parse_request(r#"{"id":7,"program":"x := 1;"}"#).unwrap();
        assert_eq!(r.id.as_deref(), Some("7"));
    }

    #[test]
    fn string_escapes_round_trip() {
        let program = "x := 1;\n|| r0 := x;\tprint r0; // \"quoted\"";
        let line = format!(r#"{{"program":"{}"}}"#, json_escape(program));
        let r = parse_request(&line).unwrap();
        assert_eq!(r.program, program);
    }

    #[test]
    fn unknown_keys_are_rejected_with_the_id() {
        let e = parse_request(r#"{"id":"x","program":"p;","timeot_ms":5}"#).unwrap_err();
        assert_eq!(e.id.as_deref(), Some("x"));
        assert!(e.message.contains("timeot_ms"), "{e}");
    }

    #[test]
    fn zero_timeout_is_a_validation_error() {
        let e = parse_request(r#"{"program":"x := 1;","timeout_ms":0}"#).unwrap_err();
        assert!(e.message.contains("must be positive"), "{e}");
    }

    #[test]
    fn missing_program_nesting_and_floats_are_rejected() {
        assert!(parse_request(r#"{"id":"q"}"#)
            .unwrap_err()
            .message
            .contains("program"));
        assert!(parse_flat_object(r#"{"a":{"b":1}}"#)
            .unwrap_err()
            .contains("nested"));
        assert!(parse_flat_object(r#"{"a":1.5}"#)
            .unwrap_err()
            .contains("integer"));
        assert!(parse_flat_object(r#"{"a":1,"a":2}"#)
            .unwrap_err()
            .contains("duplicate"));
        assert!(parse_flat_object(r#"{"a":1} trailing"#)
            .unwrap_err()
            .contains("trailing"));
    }

    #[test]
    fn unicode_and_u_escapes_decode() {
        let pairs = parse_flat_object(r#"{"a":"π é"}"#).unwrap();
        assert_eq!(pairs[0].1.as_str(), Some("π é"));
    }

    #[test]
    fn json_escape_emits_control_escapes() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
