//! A tiny deterministic pseudo-random number generator (SplitMix64).
//!
//! The workload generator and the property-test suites only need a
//! fast, seedable, reproducible source of bits — not cryptographic
//! quality — so the repository carries its own generator instead of an
//! external dependency. The sequence for a given seed is stable across
//! platforms and releases: generated workloads are part of the test
//! contract.

/// A seedable SplitMix64 generator.
///
/// # Example
///
/// ```
/// use transafety_litmus::Rng;
/// let mut a = Rng::seed_from_u64(42);
/// let mut b = Rng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed; equal seeds give equal streams.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `lo..hi` (`hi` exclusive; requires `lo < hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        // Multiply-shift range reduction (Lemire); the tiny modulo bias
        // of the plain `% span` alternative would also be acceptable for
        // workload generation, but this is just as cheap.
        let span = hi - lo;
        lo + ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }

    /// A uniform `u32` in `lo..hi` (`hi` exclusive).
    pub fn gen_range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.gen_range(u64::from(lo), u64::from(hi)) as u32
    }

    /// A uniform `usize` in `lo..hi` (`hi` exclusive).
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range(lo as u64, hi as u64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // Compare against the top 53 bits for an unbiased Bernoulli draw.
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = Rng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3, 9);
            assert!((3..9).contains(&v));
        }
        // every value of a small range is eventually hit
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range_usize(0, 4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bernoulli_edge_cases() {
        let mut r = Rng::seed_from_u64(2);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let heads = (0..2000).filter(|_| r.gen_bool(0.5)).count();
        assert!(
            (700..1300).contains(&heads),
            "suspicious coin: {heads}/2000"
        );
    }
}
