//! A parser for the concrete syntax of the §6 language.
//!
//! The kernel grammar is Fig. 6 verbatim. The paper's examples also use
//! two pieces of surface sugar, which the parser desugars into the
//! kernel:
//!
//! * `l := i` (store of a constant) becomes `r := i; l := r` with a fresh
//!   register;
//! * a shared location used as a condition or print operand (e.g.
//!   `if (requestReady == 1) …`, the §1 example) becomes a load into a
//!   fresh register; in `while` conditions the load is repeated at the
//!   end of the body.
//!
//! Identifier conventions follow the paper: `r` followed by digits
//! (`r`, `r0`, `r1`, …) names a register, identifiers in `lock`/`unlock`
//! position name monitors, and all other names are shared locations
//! (so the §1 example's `requestReady` is shared). Locations are
//! non-volatile unless declared with `volatile x, y;` at the top of the
//! program. Threads are separated by `||`, and `//` starts a comment.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use transafety_traces::{Loc, Monitor, Value};

use crate::ast::{Cond, Operand, Program, Reg, Stmt};

/// A parse error with a (1-based) line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProgramError {
    /// The 1-based source line of the error.
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for ParseProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseProgramError {}

/// Name resolution produced by the parser: the mapping from source
/// identifiers to locations, monitors and registers.
///
/// # Example
///
/// ```
/// use transafety_lang::parse_program;
/// let src = "volatile v; x := 1; || r1 := v; print r1;";
/// let parsed = parse_program(src)?;
/// assert!(parsed.symbols.loc("v").unwrap().is_volatile());
/// assert!(!parsed.symbols.loc("x").unwrap().is_volatile());
/// # Ok::<(), transafety_lang::ParseProgramError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymbolTable {
    locs: BTreeMap<String, Loc>,
    monitors: BTreeMap<String, Monitor>,
    regs: BTreeMap<String, Reg>,
}

impl SymbolTable {
    /// Resolves a location name.
    #[must_use]
    pub fn loc(&self, name: &str) -> Option<Loc> {
        self.locs.get(name).copied()
    }

    /// Resolves a monitor name.
    #[must_use]
    pub fn monitor(&self, name: &str) -> Option<Monitor> {
        self.monitors.get(name).copied()
    }

    /// Resolves a register name.
    #[must_use]
    pub fn reg(&self, name: &str) -> Option<Reg> {
        self.regs.get(name).copied()
    }

    /// All declared location names, sorted.
    #[must_use]
    pub fn loc_names(&self) -> Vec<&str> {
        self.locs.keys().map(String::as_str).collect()
    }
}

/// A parsed program together with its symbol table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceProgram {
    /// The desugared kernel program.
    pub program: Program,
    /// The name resolution used while parsing.
    pub symbols: SymbolTable,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Number(u32),
    Assign, // :=
    Eq,     // ==
    Ne,     // !=
    Semi,
    LBrace,
    RBrace,
    LParen,
    RParen,
    Comma,
    Par, // ||
    KwVolatile,
    KwLock,
    KwUnlock,
    KwSkip,
    KwPrint,
    KwIf,
    KwElse,
    KwWhile,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Tok::Ident(s) => return write!(f, "identifier `{s}`"),
            Tok::Number(n) => return write!(f, "number `{n}`"),
            Tok::Assign => ":=",
            Tok::Eq => "==",
            Tok::Ne => "!=",
            Tok::Semi => ";",
            Tok::LBrace => "{",
            Tok::RBrace => "}",
            Tok::LParen => "(",
            Tok::RParen => ")",
            Tok::Comma => ",",
            Tok::Par => "||",
            Tok::KwVolatile => "volatile",
            Tok::KwLock => "lock",
            Tok::KwUnlock => "unlock",
            Tok::KwSkip => "skip",
            Tok::KwPrint => "print",
            Tok::KwIf => "if",
            Tok::KwElse => "else",
            Tok::KwWhile => "while",
        };
        write!(f, "`{s}`")
    }
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, ParseProgramError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&'/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            ';' => {
                out.push((Tok::Semi, line));
                i += 1;
            }
            '{' => {
                out.push((Tok::LBrace, line));
                i += 1;
            }
            '}' => {
                out.push((Tok::RBrace, line));
                i += 1;
            }
            '(' => {
                out.push((Tok::LParen, line));
                i += 1;
            }
            ')' => {
                out.push((Tok::RParen, line));
                i += 1;
            }
            ',' => {
                out.push((Tok::Comma, line));
                i += 1;
            }
            ':' if bytes.get(i + 1) == Some(&'=') => {
                out.push((Tok::Assign, line));
                i += 2;
            }
            '=' if bytes.get(i + 1) == Some(&'=') => {
                out.push((Tok::Eq, line));
                i += 2;
            }
            '!' if bytes.get(i + 1) == Some(&'=') => {
                out.push((Tok::Ne, line));
                i += 2;
            }
            '|' if bytes.get(i + 1) == Some(&'|') => {
                out.push((Tok::Par, line));
                i += 2;
            }
            c if c.is_ascii_digit() => {
                let mut n: u32 = 0;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    n = n
                        .checked_mul(10)
                        .and_then(|n| n.checked_add(bytes[i] as u32 - '0' as u32))
                        .ok_or_else(|| ParseProgramError {
                            line,
                            message: "number literal overflows u32".into(),
                        })?;
                    i += 1;
                }
                out.push((Tok::Number(n), line));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let word: String = bytes[start..i].iter().collect();
                let tok = match word.as_str() {
                    "volatile" => Tok::KwVolatile,
                    "lock" => Tok::KwLock,
                    "unlock" => Tok::KwUnlock,
                    "skip" => Tok::KwSkip,
                    "print" => Tok::KwPrint,
                    "if" => Tok::KwIf,
                    "else" => Tok::KwElse,
                    "while" => Tok::KwWhile,
                    _ => Tok::Ident(word),
                };
                out.push((tok, line));
            }
            other => {
                return Err(ParseProgramError {
                    line,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<(Tok, usize)>,
    pos: usize,
    symbols: SymbolTable,
    volatile_names: Vec<String>,
    next_loc: u32,
    next_vol: u32,
    next_reg: u32,
    next_monitor: u32,
    fresh_reg: u32,
}

/// Does `name` match `prefix` followed by digits (e.g. `l0`, `v3`, `m1`)?
fn digit_indexed(name: &str, prefix: char) -> Option<u32> {
    let rest = name.strip_prefix(prefix)?;
    if rest.is_empty() || !rest.chars().all(|c| c.is_ascii_digit()) {
        return None;
    }
    rest.parse().ok()
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or(1, |(_, l)| *l)
    }

    fn err(&self, message: impl Into<String>) -> ParseProgramError {
        ParseProgramError {
            line: self.line(),
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Tok) -> Result<(), ParseProgramError> {
        match self.peek() {
            Some(got) if got == t => {
                self.pos += 1;
                Ok(())
            }
            Some(got) => Err(self.err(format!("expected {t}, found {got}"))),
            None => Err(self.err(format!("expected {t}, found end of input"))),
        }
    }

    /// Registers are `r` followed by digits (`r`, `r0`, `r1`, …); this
    /// keeps location names like the §1 example's `requestReady` shared.
    fn is_register_name(name: &str) -> bool {
        name.starts_with('r') && name[1..].chars().all(|c| c.is_ascii_digit())
    }

    fn resolve_reg(&mut self, name: &str) -> Reg {
        if let Some(r) = self.symbols.regs.get(name) {
            return *r;
        }
        // `r<digits>` keeps its source index so pretty-printed programs
        // read like the input; the bare name `r` gets a reserved index.
        let r = match name[1..].parse::<u32>() {
            Ok(n) => Reg::new(n),
            Err(_) => Reg::new(900_000 + self.next_reg),
        };
        self.next_reg += 1;
        self.symbols.regs.insert(name.to_string(), r);
        r
    }

    fn resolve_loc(&mut self, name: &str) -> Loc {
        if let Some(l) = self.symbols.locs.get(name) {
            return *l;
        }
        let volatile = self.volatile_names.iter().any(|n| n == name);
        // `l<digits>` / `v<digits>` names keep their index, so printed
        // programs (which use that convention) reparse to the same
        // locations.
        let fixed = if volatile {
            digit_indexed(name, 'v')
        } else {
            digit_indexed(name, 'l')
        };
        let l = if volatile {
            let idx = fixed.unwrap_or_else(|| self.fresh_vol_index());
            self.next_vol = self.next_vol.max(idx + 1);
            Loc::volatile(idx)
        } else {
            let idx = fixed.unwrap_or_else(|| self.fresh_loc_index());
            self.next_loc = self.next_loc.max(idx + 1);
            Loc::normal(idx)
        };
        self.symbols.locs.insert(name.to_string(), l);
        l
    }

    /// The next counter-assigned normal index not already taken by a
    /// digit-named location.
    fn fresh_loc_index(&mut self) -> u32 {
        loop {
            let idx = self.next_loc;
            self.next_loc += 1;
            if !self
                .symbols
                .locs
                .values()
                .any(|l| !l.is_volatile() && l.index() == idx)
            {
                return idx;
            }
        }
    }

    fn fresh_vol_index(&mut self) -> u32 {
        loop {
            let idx = self.next_vol;
            self.next_vol += 1;
            if !self
                .symbols
                .locs
                .values()
                .any(|l| l.is_volatile() && l.index() == idx)
            {
                return idx;
            }
        }
    }

    fn resolve_monitor(&mut self, name: &str) -> Monitor {
        if let Some(m) = self.symbols.monitors.get(name) {
            return *m;
        }
        let idx = digit_indexed(name, 'm').unwrap_or_else(|| {
            let idx = self.next_monitor;
            self.next_monitor += 1;
            idx
        });
        self.next_monitor = self.next_monitor.max(idx + 1);
        let m = Monitor::new(idx);
        self.symbols.monitors.insert(name.to_string(), m);
        m
    }

    fn fresh_register(&mut self) -> Reg {
        let r = Reg::new(1_000_000 + self.fresh_reg);
        self.fresh_reg += 1;
        r
    }

    /// Parses an operand; shared locations desugar into a load into a
    /// fresh register, appended to `prelude`.
    fn parse_operand(&mut self, prelude: &mut Vec<Stmt>) -> Result<Operand, ParseProgramError> {
        match self.bump() {
            Some(Tok::Number(n)) => Ok(Operand::Const(Value::new(n))),
            Some(Tok::Ident(name)) => {
                if Self::is_register_name(&name) {
                    Ok(Operand::Reg(self.resolve_reg(&name)))
                } else {
                    let loc = self.resolve_loc(&name);
                    let r = self.fresh_register();
                    prelude.push(Stmt::Load { dst: r, loc });
                    Ok(Operand::Reg(r))
                }
            }
            Some(other) => Err(self.err(format!("expected an operand, found {other}"))),
            None => Err(self.err("expected an operand, found end of input")),
        }
    }

    fn parse_cond(&mut self, prelude: &mut Vec<Stmt>) -> Result<Cond, ParseProgramError> {
        let a = self.parse_operand(prelude)?;
        let op = self.bump();
        let b = self.parse_operand(prelude)?;
        match op {
            Some(Tok::Eq) => Ok(Cond::Eq(a, b)),
            Some(Tok::Ne) => Ok(Cond::Ne(a, b)),
            Some(other) => Err(self.err(format!("expected `==` or `!=`, found {other}"))),
            None => Err(self.err("expected `==` or `!=`, found end of input")),
        }
    }

    fn parse_stmt(&mut self) -> Result<Vec<Stmt>, ParseProgramError> {
        match self.peek().cloned() {
            Some(Tok::KwSkip) => {
                self.bump();
                self.expect(&Tok::Semi)?;
                Ok(vec![Stmt::Skip])
            }
            Some(Tok::KwLock) => {
                self.bump();
                let name = self.expect_ident()?;
                let m = self.resolve_monitor(&name);
                self.expect(&Tok::Semi)?;
                Ok(vec![Stmt::Lock(m)])
            }
            Some(Tok::KwUnlock) => {
                self.bump();
                let name = self.expect_ident()?;
                let m = self.resolve_monitor(&name);
                self.expect(&Tok::Semi)?;
                Ok(vec![Stmt::Unlock(m)])
            }
            Some(Tok::KwPrint) => {
                self.bump();
                let mut prelude = Vec::new();
                let op = self.parse_operand(&mut prelude)?;
                self.expect(&Tok::Semi)?;
                let reg = match op {
                    Operand::Reg(r) => r,
                    Operand::Const(v) => {
                        // `print 1;` — move the constant into a fresh register.
                        let r = self.fresh_register();
                        prelude.push(Stmt::Move {
                            dst: r,
                            src: Operand::Const(v),
                        });
                        r
                    }
                };
                prelude.push(Stmt::Print(reg));
                Ok(prelude)
            }
            Some(Tok::LBrace) => {
                self.bump();
                let mut body = Vec::new();
                while self.peek() != Some(&Tok::RBrace) {
                    if self.peek().is_none() {
                        return Err(self.err("unterminated block"));
                    }
                    body.extend(self.parse_stmt()?);
                }
                self.bump();
                Ok(vec![Stmt::Block(body)])
            }
            Some(Tok::KwIf) => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let mut prelude = Vec::new();
                let cond = self.parse_cond(&mut prelude)?;
                self.expect(&Tok::RParen)?;
                let then_branch = self.parse_branch()?;
                let else_branch = if self.peek() == Some(&Tok::KwElse) {
                    self.bump();
                    self.parse_branch()?
                } else {
                    Stmt::Skip
                };
                prelude.push(Stmt::If {
                    cond,
                    then_branch: Box::new(then_branch),
                    else_branch: Box::new(else_branch),
                });
                Ok(prelude)
            }
            Some(Tok::KwWhile) => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let mut prelude = Vec::new();
                let cond = self.parse_cond(&mut prelude)?;
                self.expect(&Tok::RParen)?;
                let body = self.parse_branch()?;
                // If the condition loaded shared locations, the loads must
                // be repeated at the end of each iteration.
                let body = if prelude.is_empty() {
                    body
                } else {
                    let mut b = vec![body];
                    b.extend(prelude.iter().cloned());
                    Stmt::Block(b)
                };
                prelude.push(Stmt::While {
                    cond,
                    body: Box::new(body),
                });
                Ok(prelude)
            }
            Some(Tok::Ident(name)) => {
                self.bump();
                self.expect(&Tok::Assign)?;
                if Self::is_register_name(&name) {
                    let dst = self.resolve_reg(&name);
                    match self.bump() {
                        Some(Tok::Number(n)) => {
                            self.expect(&Tok::Semi)?;
                            Ok(vec![Stmt::Move {
                                dst,
                                src: Operand::Const(Value::new(n)),
                            }])
                        }
                        Some(Tok::Ident(rhs)) => {
                            self.expect(&Tok::Semi)?;
                            if Self::is_register_name(&rhs) {
                                let src = self.resolve_reg(&rhs);
                                Ok(vec![Stmt::Move {
                                    dst,
                                    src: Operand::Reg(src),
                                }])
                            } else {
                                let loc = self.resolve_loc(&rhs);
                                Ok(vec![Stmt::Load { dst, loc }])
                            }
                        }
                        other => Err(self.err(format!(
                            "expected a register, constant or location after `:=`, found {}",
                            other.map_or_else(|| "end of input".to_string(), |t| t.to_string())
                        ))),
                    }
                } else {
                    let loc = self.resolve_loc(&name);
                    match self.bump() {
                        Some(Tok::Ident(rhs)) if Self::is_register_name(&rhs) => {
                            self.expect(&Tok::Semi)?;
                            let src = self.resolve_reg(&rhs);
                            Ok(vec![Stmt::Store { loc, src }])
                        }
                        Some(Tok::Number(n)) => {
                            // sugar: l := i  ⇒  r := i; l := r
                            self.expect(&Tok::Semi)?;
                            let r = self.fresh_register();
                            Ok(vec![
                                Stmt::Move {
                                    dst: r,
                                    src: Operand::Const(Value::new(n)),
                                },
                                Stmt::Store { loc, src: r },
                            ])
                        }
                        Some(Tok::Ident(rhs)) => Err(self.err(format!(
                            "`{name} := {rhs}`: memory-to-memory moves are not in the \
                             language; go through a register"
                        ))),
                        other => Err(self.err(format!(
                            "expected a register or constant after `:=`, found {}",
                            other.map_or_else(|| "end of input".to_string(), |t| t.to_string())
                        ))),
                    }
                }
            }
            Some(other) => Err(self.err(format!("expected a statement, found {other}"))),
            None => Err(self.err("expected a statement, found end of input")),
        }
    }

    /// Parses a single-statement branch body (wrapping multi-statement
    /// sequences requires braces, as in the paper's `{L}`).
    fn parse_branch(&mut self) -> Result<Stmt, ParseProgramError> {
        let stmts = self.parse_stmt()?;
        Ok(if stmts.len() == 1 {
            stmts.into_iter().next().expect("length checked")
        } else {
            Stmt::Block(stmts)
        })
    }

    fn expect_ident(&mut self) -> Result<String, ParseProgramError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            Some(other) => Err(self.err(format!("expected an identifier, found {other}"))),
            None => Err(self.err("expected an identifier, found end of input")),
        }
    }

    fn parse_program(&mut self) -> Result<Program, ParseProgramError> {
        // volatile declarations
        while self.peek() == Some(&Tok::KwVolatile) {
            self.bump();
            loop {
                let name = self.expect_ident()?;
                self.volatile_names.push(name);
                match self.peek() {
                    Some(Tok::Comma) => {
                        self.bump();
                    }
                    _ => break,
                }
            }
            self.expect(&Tok::Semi)?;
        }
        let mut threads: Vec<Vec<Stmt>> = Vec::new();
        let mut current: Vec<Stmt> = Vec::new();
        while let Some(t) = self.peek() {
            if *t == Tok::Par {
                self.bump();
                threads.push(std::mem::take(&mut current));
                continue;
            }
            current.extend(self.parse_stmt()?);
        }
        threads.push(current);
        Ok(Program::new(threads))
    }
}

/// Parses a program in the concrete syntax.
///
/// # Errors
///
/// Returns a [`ParseProgramError`] with a line number for lexical errors,
/// malformed statements, or statements outside the (desugared) Fig. 6
/// grammar.
///
/// # Example
///
/// The §1 introduction example:
///
/// ```
/// use transafety_lang::parse_program;
/// let src = r"
///     data := 1;
///     if (requestReady == 1) {
///         data := 2;
///         responseReady := 1;
///     }
/// ||
///     requestReady := 1;
///     if (responseReady == 1)
///         print data;
/// ";
/// let parsed = parse_program(src)?;
/// assert_eq!(parsed.program.thread_count(), 2);
/// # Ok::<(), transafety_lang::ParseProgramError>(())
/// ```
pub fn parse_program(src: &str) -> Result<SourceProgram, ParseProgramError> {
    parse_program_with_symbols(src, SymbolTable::default())
}

/// Parses a program, resolving names against (and extending) an existing
/// symbol table. Use this to parse an original/transformed program pair
/// into a **shared** namespace, so that `x` denotes the same location in
/// both — required before comparing their tracesets or behaviours.
///
/// # Errors
///
/// As [`parse_program`].
///
/// # Example
///
/// ```
/// use transafety_lang::{parse_program, parse_program_with_symbols};
/// let original = parse_program("y := 1; || r1 := x; print r1;")?;
/// let transformed =
///     parse_program_with_symbols("r1 := x; print r1; || y := 1;", original.symbols.clone())?;
/// assert_eq!(original.symbols.loc("x"), transformed.symbols.loc("x"));
/// # Ok::<(), transafety_lang::ParseProgramError>(())
/// ```
pub fn parse_program_with_symbols(
    src: &str,
    symbols: SymbolTable,
) -> Result<SourceProgram, ParseProgramError> {
    let tokens = lex(src)?;
    let next_loc = symbols
        .locs
        .values()
        .filter(|l| !l.is_volatile())
        .map(|l| l.index() + 1)
        .max()
        .unwrap_or(0);
    let next_vol = symbols
        .locs
        .values()
        .filter(|l| l.is_volatile())
        .map(|l| l.index() + 1)
        .max()
        .unwrap_or(0);
    let next_monitor = symbols
        .monitors
        .values()
        .map(|m| m.index() + 1)
        .max()
        .unwrap_or(0);
    let volatile_names = symbols
        .locs
        .iter()
        .filter(|(_, l)| l.is_volatile())
        .map(|(n, _)| n.clone())
        .collect();
    let mut p = Parser {
        tokens,
        pos: 0,
        symbols,
        volatile_names,
        next_loc,
        next_vol,
        next_reg: 0,
        next_monitor,
        fresh_reg: 0,
    };
    let program = p.parse_program()?;
    Ok(SourceProgram {
        program,
        symbols: p.symbols,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig2_original() {
        let src = "r2 := x; y := r2; || r1 := y; x := 1; print r1;";
        let sp = parse_program(src).unwrap();
        assert_eq!(sp.program.thread_count(), 2);
        let t0 = sp.program.thread(0).unwrap();
        assert!(matches!(t0[0], Stmt::Load { .. }));
        assert!(matches!(t0[1], Stmt::Store { .. }));
        // x := 1 desugars to move + store
        let t1 = sp.program.thread(1).unwrap();
        assert_eq!(t1.len(), 4);
        assert!(matches!(t1[1], Stmt::Move { .. }));
        assert!(matches!(t1[2], Stmt::Store { .. }));
    }

    #[test]
    fn volatile_declarations_apply() {
        let sp = parse_program("volatile v, w; v := r0; u := r0;").unwrap();
        assert!(sp.symbols.loc("v").unwrap().is_volatile());
        assert!(
            sp.symbols.loc("w").is_none(),
            "w never used, never interned"
        );
        assert!(!sp.symbols.loc("u").unwrap().is_volatile());
    }

    #[test]
    fn register_convention() {
        let sp = parse_program("r1 := r2; r := r17; requestReady := r1;").unwrap();
        // `r` and `r<digits>` are registers; `requestReady` is a location
        assert!(sp.symbols.reg("r").is_some());
        assert!(sp.symbols.reg("r17").is_some());
        assert!(sp.symbols.loc("requestReady").is_some());
        assert!(sp.symbols.reg("requestReady").is_none());
    }

    #[test]
    fn condition_on_location_desugars_to_load() {
        let sp = parse_program("if (flag == 1) print 1; else skip;").unwrap();
        let t0 = sp.program.thread(0).unwrap();
        assert!(matches!(t0[0], Stmt::Load { .. }), "prelude load inserted");
        assert!(matches!(t0[1], Stmt::If { .. }));
    }

    #[test]
    fn while_on_location_reloads_each_iteration() {
        let sp = parse_program("while (flag != 1) skip; print 1;").unwrap();
        let t0 = sp.program.thread(0).unwrap();
        assert!(matches!(t0[0], Stmt::Load { .. }));
        let Stmt::While { body, .. } = &t0[1] else {
            panic!("expected while")
        };
        let Stmt::Block(b) = &**body else {
            panic!("expected desugared block body")
        };
        assert!(
            matches!(b.last(), Some(Stmt::Load { .. })),
            "reload at end of body"
        );
    }

    #[test]
    fn else_is_optional() {
        let sp = parse_program("if (r0 == 0) skip;").unwrap();
        let t0 = sp.program.thread(0).unwrap();
        let Stmt::If { else_branch, .. } = &t0[0] else {
            panic!()
        };
        assert_eq!(**else_branch, Stmt::Skip);
    }

    #[test]
    fn rejects_memory_to_memory_moves() {
        let err = parse_program("x := y;").unwrap_err();
        assert!(err.message.contains("memory-to-memory"));
    }

    #[test]
    fn error_carries_line_numbers() {
        let err = parse_program("skip;\nskip;\n$;\n").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn lock_unlock_and_blocks() {
        let sp = parse_program("lock m; { x := r0; unlock m; } // done\n").unwrap();
        let t0 = sp.program.thread(0).unwrap();
        assert!(matches!(t0[0], Stmt::Lock(_)));
        assert!(matches!(t0[1], Stmt::Block(_)));
        assert!(sp.symbols.monitor("m").is_some());
    }

    #[test]
    fn empty_threads_are_allowed() {
        let sp = parse_program("||").unwrap();
        assert_eq!(sp.program.thread_count(), 2);
        assert!(sp.program.thread(0).unwrap().is_empty());
    }

    #[test]
    fn number_overflow_is_an_error() {
        let err = parse_program("r0 := 99999999999999999999;").unwrap_err();
        assert!(err.message.contains("overflow"));
    }
}
