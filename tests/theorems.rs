//! Integration tests: the theorem-level experiments (E8–E10 of
//! `DESIGN.md`) over the litmus corpus and random programs.

use transafety::checker::{
    check_rewrite, drf_guarantee, no_thin_air, Analysis, Correspondence, DrfVerdict, OotaVerdict,
};
use transafety::lang::Program;
use transafety::litmus::{corpus, random_program, GeneratorConfig};
use transafety::syntactic::{all_rewrites, transform_closure, RuleSet};
use transafety::traces::{Domain, Value};

fn small_enough(p: &Program) -> bool {
    p.threads().iter().flatten().count() <= 12
}

/// E8/E9 on the corpus: every single-step safe rewrite of every corpus
/// program satisfies the DRF guarantee. (The original's race status and
/// behaviours are computed once per program, not once per rewrite.)
#[test]
fn corpus_rewrites_satisfy_drf_guarantee() {
    use transafety::checker::{behaviours, race_witness};
    let opts = Analysis::new();
    let mut checked = 0;
    for l in corpus() {
        let p = l.parse().program;
        if !small_enough(&p) {
            continue;
        }
        let original_racy = race_witness(&p, &opts).is_some();
        let original_behaviours = behaviours(&p, &opts);
        for rw in all_rewrites(&p) {
            checked += 1;
            if original_racy {
                continue; // the guarantee is vacuous (Fig. 1/2 cases)
            }
            let transformed = behaviours(&rw.result, &opts);
            if !(original_behaviours.complete && transformed.complete) {
                continue; // loop-program fuel bound (mp-spin): no verdict
            }
            assert!(
                transformed.value.is_subset(&original_behaviours.value),
                "{}: {rw} added behaviour",
                l.name
            );
            assert!(
                race_witness(&rw.result, &opts).is_none(),
                "{}: {rw} introduced a race",
                l.name
            );
        }
    }
    assert!(
        checked > 20,
        "expected many rewrites across the corpus, got {checked}"
    );
}

/// E8/E9 semantic side on the corpus: each rewrite is in its promised
/// semantic class (Lemmas 4/5).
#[test]
fn corpus_rewrites_satisfy_semantic_correspondence() {
    let opts = Analysis::with_domain(Domain::zero_to(1));
    let mut checked = 0;
    for l in corpus() {
        let p = l.parse().program;
        // traceset extraction fans out over the domain: keep it small
        if p.threads().iter().flatten().count() > 9 {
            continue;
        }
        for rw in all_rewrites(&p) {
            match check_rewrite(&p, &rw, &opts) {
                Correspondence::Verified { .. } => checked += 1,
                Correspondence::Inconclusive => {}
                Correspondence::Failed { trace } => {
                    panic!("{}: {rw} failed Lemma 4/5 on trace {trace}", l.name)
                }
            }
        }
    }
    assert!(checked > 10, "expected verified rewrites, got {checked}");
}

/// E8/E9 on random programs: DRF guarantee for every one-step rewrite of
/// lock-disciplined (hence DRF) generated programs, where the strong
/// `Holds` verdict must come out.
#[test]
fn random_drf_programs_rewrites_hold() {
    let opts = Analysis::new();
    let config = GeneratorConfig::drf();
    let mut holds = 0;
    for seed in 0..20 {
        let p = random_program(seed, &config);
        for rw in all_rewrites(&p) {
            match drf_guarantee(&rw.result, &p, &opts) {
                DrfVerdict::Holds => holds += 1,
                DrfVerdict::OriginalRacy(w) => {
                    panic!("lock-disciplined program racy? seed {seed}: {w}")
                }
                DrfVerdict::Inconclusive => {}
                bad => panic!("seed {seed}: {rw} gave {bad}\nprogram:\n{p}"),
            }
        }
    }
    assert!(
        holds > 10,
        "expected rewrites on generated programs, got {holds}"
    );
}

/// E8/E9 on random *racy* programs: rewrites may add behaviours (the
/// guarantee is vacuous), but the checker must never crash and the
/// verdict must be either vacuous or hold.
#[test]
fn random_racy_programs_are_handled() {
    let opts = Analysis::new();
    let config = GeneratorConfig::default();
    let mut vacuous = 0;
    for seed in 0..20 {
        let p = random_program(seed, &config);
        for rw in all_rewrites(&p).into_iter().take(4) {
            match drf_guarantee(&rw.result, &p, &opts) {
                DrfVerdict::OriginalRacy(_) => vacuous += 1,
                DrfVerdict::Holds | DrfVerdict::Inconclusive => {}
                bad => panic!("seed {seed}: safe rewrite {rw} on a DRF program gave {bad}\n{p}"),
            }
        }
    }
    assert!(vacuous > 0, "expected some racy programs");
}

/// Composition: multi-step transformation chains keep the guarantee
/// (the paper's "arbitrary composition of the transformations is also
/// safe", §8).
#[test]
fn composed_transformations_keep_guarantee() {
    let opts = Analysis::new();
    let p = transafety::litmus::by_name("fig3-a")
        .unwrap()
        .parse()
        .program;
    for q in transform_closure(&p, RuleSet::All, 3) {
        let verdict = drf_guarantee(&q, &p, &opts);
        assert!(
            matches!(verdict, DrfVerdict::Holds),
            "closure member violated the guarantee: {verdict}\n{q}"
        );
    }
}

/// E10: Theorem 5 on the corpus — racy or not, no program can conjure an
/// unmentioned constant through any bounded composition of safe rules.
#[test]
fn corpus_oota_guarantee() {
    let magic = Value::new(42);
    let opts = Analysis::with_domain(Domain::from_values([Value::new(2), magic]));
    let mut safe = 0;
    for l in corpus() {
        let p = l.parse().program;
        if !small_enough(&p) || p.mentions_constant(magic) {
            continue;
        }
        match no_thin_air(&p, magic, 2, &opts) {
            OotaVerdict::Safe { .. } => safe += 1,
            OotaVerdict::Inconclusive | OotaVerdict::MentionsConstant => {}
            OotaVerdict::OriginFound { program } => {
                panic!("{}: thin-air origin in\n{program}", l.name)
            }
        }
    }
    assert!(safe >= 10, "expected OOTA-safe corpus programs, got {safe}");
}

/// The SC-only baseline (§1/§7): count safe rewrites it must reject.
#[test]
fn sc_only_baseline_rejects_some_safe_rewrites() {
    let opts = Analysis::new();
    let mut rejected = 0;
    let mut total = 0;
    for name in ["fig1-original", "fig2-original", "sb", "mp"] {
        let p = transafety::litmus::by_name(name).unwrap().parse().program;
        for rw in all_rewrites(&p) {
            total += 1;
            if !transafety::checker::sc_only_accepts(&rw.result, &p, &opts) {
                rejected += 1;
            }
        }
    }
    assert!(total > 0);
    assert!(
        rejected > 0,
        "the paper's motivation: an SC-preserving compiler must reject some \
         of these transformations ({rejected}/{total})"
    );
}
