//! Identifiers: shared-memory locations, monitors and threads.

use std::fmt;

/// A shared-memory location.
///
/// Following §2 of the paper, the set of volatile locations is a static
/// property of a program; we bake the volatility into the location
/// identity so that actions are self-describing. Two locations with the
/// same index but different volatility are *distinct* locations — language
/// front-ends (see `transafety-lang`) keep a symbol table so each variable
/// maps to a single consistent [`Loc`].
///
/// # Example
///
/// ```
/// use transafety_traces::Loc;
/// let x = Loc::normal(0);
/// let v = Loc::volatile(1);
/// assert!(!x.is_volatile());
/// assert!(v.is_volatile());
/// assert_ne!(Loc::normal(2), Loc::volatile(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Loc {
    index: u32,
    volatile: bool,
}

impl Loc {
    /// Creates a normal (non-volatile) location.
    #[must_use]
    pub const fn normal(index: u32) -> Self {
        Loc {
            index,
            volatile: false,
        }
    }

    /// Creates a volatile location (an *atomic* in C++0x terminology).
    ///
    /// Data races on volatile locations do not count as data races for the
    /// DRF guarantee; volatile reads are acquire actions and volatile
    /// writes are release actions.
    #[must_use]
    pub const fn volatile(index: u32) -> Self {
        Loc {
            index,
            volatile: true,
        }
    }

    /// Returns the numeric index of this location.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.index
    }

    /// Returns `true` if the location is volatile.
    #[must_use]
    pub const fn is_volatile(self) -> bool {
        self.volatile
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.volatile {
            write!(f, "v{}", self.index)
        } else {
            write!(f, "l{}", self.index)
        }
    }
}

/// A monitor (lock) name, as used by `lock m` / `unlock m`.
///
/// # Example
///
/// ```
/// use transafety_traces::Monitor;
/// assert_eq!(Monitor::new(0).to_string(), "m0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Monitor(u32);

impl Monitor {
    /// Creates a monitor with the given index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        Monitor(index)
    }

    /// Returns the numeric index of this monitor.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Monitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A thread identifier, which the paper also uses as a thread entry point
/// (threads are created statically; see §3 "Actions, Traces and
/// Interleavings").
///
/// # Example
///
/// ```
/// use transafety_traces::ThreadId;
/// assert_eq!(ThreadId::new(1).index(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(u32);

impl ThreadId {
    /// Creates a thread identifier.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        ThreadId(index)
    }

    /// Returns the numeric index of this thread.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volatility_distinguishes_locations() {
        assert_ne!(Loc::normal(0), Loc::volatile(0));
        assert_eq!(Loc::normal(0), Loc::normal(0));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Loc::normal(3).to_string(), "l3");
        assert_eq!(Loc::volatile(3).to_string(), "v3");
        assert_eq!(Monitor::new(2).to_string(), "m2");
        assert_eq!(ThreadId::new(1).to_string(), "t1");
    }

    #[test]
    fn ordering_is_total() {
        let mut locs = [Loc::volatile(1), Loc::normal(2), Loc::normal(1)];
        locs.sort();
        assert_eq!(locs[0], Loc::normal(1));
    }
}
