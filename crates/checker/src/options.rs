//! The unified analysis configuration — one builder-style type carrying
//! every knob of the checker pipeline: the read-value domain, the
//! extraction/exploration/elimination bounds, the interleaving cap and
//! the worker count for the parallel exploration engine.
//!
//! [`Analysis`] subsumes the older trio of option types
//! (`CheckOptions`, plus the engine-level
//! [`ExploreOptions`](transafety_lang::ExploreOptions) and
//! [`ExploreLimits`](transafety_interleaving::ExploreLimits), which it
//! projects via its `explore` field and [`Analysis::limits`]).
//! `CheckOptions` remains as a deprecated alias so existing code keeps
//! compiling.

use transafety_interleaving::{available_jobs, Behaviours, ExploreLimits, RaceWitness};
use transafety_lang::{Bounded, ExploreOptions, ExtractOptions, Program, ProgramExplorer};
use transafety_traces::Domain;
use transafety_transform::EliminationOptions;

/// Bounds, domains and parallelism used by every checker entry point.
///
/// Build one fluently and either pass it to the theorem checkers
/// ([`drf_guarantee`](crate::drf_guarantee), …) or call
/// [`run`](Analysis::run) for a one-shot whole-program report:
///
/// # Example
///
/// ```
/// use transafety_checker::Analysis;
/// use transafety_lang::parse_program;
/// use transafety_traces::Domain;
///
/// let program = parse_program("volatile v; v := 1; || r0 := v; print r0;")?.program;
/// let report = Analysis::new()
///     .jobs(2)
///     .max_interleavings(1_000_000)
///     .domain(Domain::zero_to(1))
///     .run(&program);
/// assert!(report.is_data_race_free());
/// assert!(report.behaviours.complete);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Analysis {
    /// The finite read-value domain for traceset extraction and
    /// wildcard-instance enumeration.
    pub domain: Domain,
    /// Bounds for traceset extraction.
    pub extract: ExtractOptions,
    /// Bounds for direct program exploration.
    pub explore: ExploreOptions,
    /// Bounds for the semantic elimination witness search.
    pub elimination: EliminationOptions,
    /// Worker threads for the parallel exploration engine. `1` (the
    /// default) selects the sequential reference driver; higher values
    /// fan exploration out over a work-stealing pool. Results are
    /// identical either way.
    pub jobs: usize,
    /// Cap on enumerated interleavings (the old `ExploreLimits` knob);
    /// exceeding it is reported as truncation, never silently.
    pub max_interleavings: usize,
}

impl Default for Analysis {
    fn default() -> Self {
        Analysis {
            domain: Domain::default(),
            extract: ExtractOptions::default(),
            explore: ExploreOptions::default(),
            elimination: EliminationOptions::default(),
            jobs: 1,
            max_interleavings: ExploreLimits::default().max_interleavings,
        }
    }
}

impl Analysis {
    /// A default configuration (sequential, default domain and bounds).
    #[must_use]
    pub fn new() -> Self {
        Analysis::default()
    }

    /// A configuration with the given read-value domain (the historical
    /// `CheckOptions::with_domain` constructor).
    #[must_use]
    pub fn with_domain(domain: Domain) -> Self {
        Analysis {
            domain,
            ..Analysis::default()
        }
    }

    /// Sets the read-value domain.
    #[must_use]
    pub fn domain(mut self, domain: Domain) -> Self {
        self.domain = domain;
        self
    }

    /// Sets the worker count (clamped to at least 1).
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Uses every available core (`std::thread::available_parallelism`).
    #[must_use]
    pub fn auto_jobs(self) -> Self {
        let jobs = available_jobs();
        self.jobs(jobs)
    }

    /// Sets the interleaving-enumeration cap.
    #[must_use]
    pub fn max_interleavings(mut self, max: usize) -> Self {
        self.max_interleavings = max;
        self
    }

    /// Sets the per-execution action bound for direct exploration.
    #[must_use]
    pub fn max_actions(mut self, max: usize) -> Self {
        self.explore.max_actions = max;
        self
    }

    /// Sets the silent-step bound between two actions of one thread.
    #[must_use]
    pub fn max_tau(mut self, max: usize) -> Self {
        self.explore.max_tau = max;
        self
    }

    /// The interleaving-level limits this configuration projects to
    /// (for calling [`Explorer`](transafety_interleaving::Explorer)
    /// directly).
    #[must_use]
    pub fn limits(&self) -> ExploreLimits {
        ExploreLimits {
            max_interleavings: self.max_interleavings,
        }
    }

    /// Runs the full single-program analysis — behaviours, race search
    /// and state census — on [`jobs`](Analysis::jobs) workers.
    #[must_use]
    pub fn run(&self, program: &Program) -> AnalysisReport {
        let ex = ProgramExplorer::new(program);
        AnalysisReport {
            behaviours: ex.behaviours_par(&self.explore, self.jobs),
            race: ex.race_witness_par(&self.explore, self.jobs),
            reachable_states: ex.count_reachable_states_par(&self.explore, self.jobs),
            jobs: self.jobs,
        }
    }
}

/// The result of [`Analysis::run`]: everything the checker can say
/// about one program under the configured bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisReport {
    /// The behaviours of the program's SC executions (with the
    /// completeness flag of the bounded exploration).
    pub behaviours: Bounded<Behaviours>,
    /// A data race witness, if the program races.
    pub race: Option<RaceWitness>,
    /// The number of distinct reachable program states.
    pub reachable_states: usize,
    /// The worker count the analysis ran with.
    pub jobs: usize,
}

impl AnalysisReport {
    /// Is the program data race free (§3)?
    #[must_use]
    pub fn is_data_race_free(&self) -> bool {
        self.race.is_none()
    }
}

/// The pre-0.2 name of [`Analysis`].
#[deprecated(note = "renamed to `Analysis`; use `Analysis::new()` and its builder methods")]
pub type CheckOptions = Analysis;

#[cfg(test)]
mod tests {
    use super::*;
    use transafety_lang::parse_program;
    use transafety_traces::Value;

    #[test]
    fn builder_round_trip() {
        let a = Analysis::new()
            .jobs(8)
            .max_interleavings(123)
            .max_actions(17)
            .max_tau(99)
            .domain(Domain::zero_to(3));
        assert_eq!(a.jobs, 8);
        assert_eq!(a.max_interleavings, 123);
        assert_eq!(a.limits().max_interleavings, 123);
        assert_eq!(a.explore.max_actions, 17);
        assert_eq!(a.explore.max_tau, 99);
        assert_eq!(a.domain.len(), 4);
    }

    #[test]
    fn jobs_clamped_to_one() {
        assert_eq!(Analysis::new().jobs(0).jobs, 1);
        assert!(Analysis::new().auto_jobs().jobs >= 1);
    }

    #[test]
    fn run_report_is_jobs_independent() {
        let program = parse_program("x := 1; || r0 := x; print r0;")
            .unwrap()
            .program;
        let seq = Analysis::new().run(&program);
        let par = Analysis::new().jobs(4).run(&program);
        assert_eq!(seq.behaviours, par.behaviours);
        assert_eq!(
            seq.race, par.race,
            "witness is canonical, not schedule-dependent"
        );
        assert_eq!(seq.reachable_states, par.reachable_states);
        assert!(!par.is_data_race_free());
        assert!(par.behaviours.value.contains(&vec![Value::new(1)]));
    }

    #[test]
    fn deprecated_alias_still_works() {
        #[allow(deprecated)]
        let opts: CheckOptions = CheckOptions::with_domain(Domain::zero_to(1));
        assert_eq!(opts.domain.len(), 2);
        assert_eq!(opts.jobs, 1);
    }
}
