//! E20: the await-aware stutter reduction on busy-wait programs.
//!
//! E19 measured spin loops and had to exclude them from its gate: a
//! spin iteration reloads its guard location, which is a visible read
//! the POR proviso keeps fully expanded, so the dynamic reduction
//! bought only ~1.2x there and every spin program still truncated at
//! the per-execution action bound with an `Unknown` verdict.
//!
//! The await reduction attacks the stutter directly: a failed re-read
//! of an await-watched location is an exact self-loop the behaviour
//! phase drops, the collapsed graph is acyclic, and the exploration
//! runs fuel-free — so the spin corpus now *completes* with real
//! `DrfProven`/`Racy` verdicts under SC, TSO and PSO alike. This bench
//! asserts both halves of that claim before timing anything:
//!
//! - at least 10x aggregate state reduction on the DRF spin corpus
//!   (`mp-spin`, `programs/spinlock_handoff.tsl`,
//!   `programs/seqlock_reader.tsl`) across all three models;
//! - completeness: the await-aware runs report zero `trip_actions`
//!   and conclusive verdicts where the bounded engine truncates;
//! - the race phase never collapses: the racy-spin probe (its flag is
//!   a plain location) must keep its witness with the reduction on.
//!
//! The measured table and live `await_*` counters are written to
//! `BENCH_E20.json` (path overridable via the `BENCH_E20_OUT`
//! environment variable).
//!
//! `cargo bench --bench await -- --test` runs the smoke mode: the same
//! assertions and JSON emission, skipping the criterion timing loops.
//! The gates run in both modes — state counts are deterministic, so CI
//! noise cannot flake them.

use std::hint::black_box;
use transafety_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};

use transafety::checker::Analysis;
use transafety::interleaving::{BudgetGuard, ExploreMetrics, ExploreStats};
use transafety::lang::{
    parse_program, ExploreOptions, MemoryModel, ModelExplorer, Program, ProgramExplorer, ScModel,
};
use transafety::traces::MemoryModelKind;
use transafety::tso::{PsoModel, TsoModel};
use transafety::{Budget, CancelToken, Verdict};

fn program(file: &str) -> Program {
    let path = format!("{}/../../programs/{file}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).expect("readable program file");
    parse_program(&src).expect("valid .tsl program").program
}

/// The gated workload: DRF busy-wait programs whose loops are all
/// recognised awaits. The >= 10x aggregate gate is asserted over
/// exactly these, under all three models.
fn spin_corpus() -> Vec<(String, Program)> {
    let mp = transafety::litmus::by_name("mp-spin").expect("corpus name");
    vec![
        ("mp-spin".to_string(), mp.parse().program),
        (
            "spinlock_handoff".to_string(),
            program("spinlock_handoff.tsl"),
        ),
        ("seqlock_reader".to_string(), program("seqlock_reader.tsl")),
    ]
}

/// The racy-spin probe: the spin flag is a *plain* location, so the
/// guard reads race with the publishing store. Measured for witness
/// survival, excluded from the ratio gate (the race phase never
/// collapses, so gating its states would measure the wrong thing).
const RACY_SPIN: &str = "x := 1; flag := 1; || while (flag != 1) skip; r2 := x; print r2;";

fn opts(awaits: bool) -> ExploreOptions {
    ExploreOptions {
        awaits,
        ..ExploreOptions::default()
    }
}

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

struct Row {
    name: String,
    model: &'static str,
    bounded: usize,
    collapsed: usize,
    bounded_complete: bool,
    collapsed_complete: bool,
}

impl Row {
    fn ratio(&self) -> f64 {
        self.bounded as f64 / self.collapsed.max(1) as f64
    }
}

/// Counts the states the behaviour search visits under one backend,
/// feeding the shared collector so the JSON report carries live
/// `await_*` counters.
fn governed_states<M: MemoryModel>(
    model: &M,
    awaits: bool,
    collector: &std::sync::Arc<ExploreMetrics>,
) -> (usize, bool) {
    let guard =
        BudgetGuard::with_metrics(&Budget::unlimited(), CancelToken::new(), collector.clone());
    let b = ModelExplorer::new(model).behaviours_governed(&opts(awaits), &guard);
    (guard.states(), b.complete)
}

/// One corpus entry under one model: behaviour-set equality between
/// the bounded and collapsed engines (the bounded set is a bounded
/// under-approximation, so equality is asserted as set equality of
/// what both saw — on this corpus they coincide), then the state
/// counts.
fn measure_model<M: MemoryModel>(
    name: &str,
    model_tag: &'static str,
    model: &M,
    collector: &std::sync::Arc<ExploreMetrics>,
) -> Row {
    let mx = ModelExplorer::new(model);
    let on = mx.behaviours(&opts(true));
    let off = mx.behaviours(&opts(false));
    assert_eq!(
        on.value, off.value,
        "{name} [{model_tag}]: the collapse changed the behaviour set"
    );
    assert!(
        on.complete,
        "{name} [{model_tag}]: await-aware behaviour search truncated"
    );
    let (bounded, bounded_complete) = governed_states(model, false, &ExploreMetrics::disabled());
    let (collapsed, collapsed_complete) = governed_states(model, true, collector);
    Row {
        name: name.to_string(),
        model: model_tag,
        bounded,
        collapsed,
        bounded_complete,
        collapsed_complete,
    }
}

fn measure(corpus: &[(String, Program)], collector: &std::sync::Arc<ExploreMetrics>) -> Vec<Row> {
    let mut rows = Vec::new();
    for (name, p) in corpus {
        let ex = ProgramExplorer::new(p);
        rows.push(measure_model(name, "sc", &ScModel::new(&ex), collector));
        rows.push(measure_model(name, "tso", &TsoModel::new(p), collector));
        rows.push(measure_model(name, "pso", &PsoModel::new(p), collector));
    }
    rows
}

/// Full-pipeline verdict check: the bounded engine reports `Unknown`
/// on every DRF spin program, the collapsed engine proves it — and
/// the racy-spin probe keeps its witness either way.
fn assert_verdicts(corpus: &[(String, Program)]) -> (bool, bool) {
    for (name, p) in corpus {
        for model in MemoryModelKind::ALL {
            let on = Analysis::new().model(model).awaits(true).run(p);
            let off = Analysis::new().model(model).awaits(false).run(p);
            assert_eq!(
                on.verdict,
                Verdict::DrfProven,
                "{name} [{model}]: await-aware analysis did not prove DRF"
            );
            assert_eq!(
                off.verdict,
                Verdict::Unknown,
                "{name} [{model}]: bounded analysis no longer truncates — \
                 retire this gate or the corpus entry"
            );
        }
    }
    let racy = parse_program(RACY_SPIN).expect("valid probe").program;
    let on = Analysis::new().awaits(true).run(&racy);
    let off = Analysis::new().awaits(false).run(&racy);
    assert_eq!(
        on.verdict,
        Verdict::Racy,
        "racy-spin: the collapse lost the race verdict"
    );
    assert!(
        on.race.is_some(),
        "racy-spin: Racy verdict without a witness"
    );
    (on.race.is_some(), off.race.is_some())
}

/// The collapse counters must be live on the measured corpus, and the
/// await-aware runs must never trip the action fuel (that is the
/// completeness claim in counter form).
fn assert_await_counters(stats: &ExploreStats) {
    assert!(stats.enabled, "measure pass ran with a dead collector");
    assert!(
        stats.await_collapsed > 0,
        "no collapsed re-reads: the await reduction never fired"
    );
    assert!(
        stats.await_wakeups > 0,
        "no wakeups: every watched read was dropped, including the advancing ones"
    );
    assert_eq!(
        stats.trip_actions, 0,
        "await-aware exploration tripped the action fuel {} time(s)",
        stats.trip_actions
    );
}

fn print_table(title: &str, rows: &[Row]) {
    println!(
        "\n{title}\n{:<20} {:>5} {:>10} {:>10} {:>9}  bounded-complete  collapsed-complete",
        "program", "model", "bounded", "collapsed", "ratio"
    );
    for r in rows {
        println!(
            "{:<20} {:>5} {:>10} {:>10} {:>8.2}x  {:<16}  {}",
            r.name,
            r.model,
            r.bounded,
            r.collapsed,
            r.ratio(),
            r.bounded_complete,
            r.collapsed_complete
        );
    }
}

/// Aggregate reduction: total bounded states over total collapsed
/// states, so the heavy entries dominate.
fn aggregate_ratio(rows: &[Row]) -> f64 {
    let bounded: usize = rows.iter().map(|r| r.bounded).sum();
    let collapsed: usize = rows.iter().map(|r| r.collapsed).sum();
    bounded as f64 / collapsed.max(1) as f64
}

/// Writes the measured reduction as a small hand-rolled JSON report
/// (the offline build has no serde).
fn write_report(
    rows: &[Row],
    gate: f64,
    smoke: bool,
    stats: &ExploreStats,
    witness_on: bool,
    witness_off: bool,
) {
    let path = std::env::var("BENCH_E20_OUT").unwrap_or_else(|_| "BENCH_E20.json".to_string());
    let mut out = String::from("{\n  \"experiment\": \"E20\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"aggregate_ratio\": {gate:.3},\n"));
    out.push_str("  \"ratio_gate\": 10.0,\n");
    out.push_str(&format!(
        "  \"racy_spin_witness\": {{\"awaits_on\": {witness_on}, \"awaits_off\": {witness_off}}},\n"
    ));
    out.push_str(&format!("  \"await_stats\": {},\n", stats.to_json()));
    out.push_str("  \"programs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"model\": \"{}\", \"bounded_states\": {}, \
             \"collapsed_states\": {}, \"ratio\": {:.3}, \"bounded_complete\": {}, \
             \"collapsed_complete\": {}}}{}\n",
            r.name,
            r.model,
            r.bounded,
            r.collapsed,
            r.ratio(),
            r.bounded_complete,
            r.collapsed_complete,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&path, out).expect("writable BENCH_E20.json path");
    println!("E20 report written to {path}");
}

fn await_reduction(c: &mut Criterion) {
    let corpus = spin_corpus();
    let collector = ExploreMetrics::collector();
    let rows = measure(&corpus, &collector);
    print_table(
        "E20/await_states_explored (behaviour search, sequential, gated)",
        &rows,
    );
    let gate = aggregate_ratio(&rows);
    println!("\nE20 aggregate reduction on the spin corpus: {gate:.2}x (gate: >= 10x)");
    for r in &rows {
        assert!(
            r.collapsed_complete,
            "{} [{}]: collapsed run truncated",
            r.name, r.model
        );
        assert!(
            !r.bounded_complete,
            "{} [{}]: bounded run completed — this entry no longer measures the collapse",
            r.name, r.model
        );
    }
    let stats = collector.snapshot();
    assert_await_counters(&stats);
    let (witness_on, witness_off) = assert_verdicts(&corpus);
    println!(
        "E20 counters: {} collapsed re-reads, {} wakeups, {} action-fuel trips; \
         racy-spin witness on/off: {witness_on}/{witness_off}",
        stats.await_collapsed, stats.await_wakeups, stats.trip_actions
    );
    assert!(
        gate >= 10.0,
        "the await reduction must shrink the spin corpus >= 10x, got {gate:.2}x"
    );
    write_report(&rows, gate, smoke_mode(), &stats, witness_on, witness_off);
    if smoke_mode() {
        return; // smoke mode: assertions + report only, no timing loops
    }
    let mut group = c.benchmark_group("E20/await/behaviours");
    for (name, p) in &corpus {
        for (tag, awaits) in [("bounded", false), ("collapsed", true)] {
            let o = opts(awaits);
            group.bench_with_input(BenchmarkId::new(tag, name), p, |b, p| {
                b.iter(|| {
                    ProgramExplorer::new(black_box(p))
                        .behaviours(&o)
                        .value
                        .len()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, await_reduction);
criterion_main!(benches);
