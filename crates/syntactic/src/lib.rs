//! The syntactic program transformations of §6.1 of the paper: the
//! Fig. 9 congruence template, the Fig. 10 elimination rules
//! (E-RAR, E-RAW, E-WAR, E-WBW, E-IR) and the Fig. 11 reordering rules
//! (R-RR, R-WW, R-WR, R-RW, R-WL, R-RL, R-UW, R-UR, R-XR, R-XW), plus
//! the deliberately *unsafe* read-introduction of Fig. 3 in a separate
//! module.
//!
//! Lemmas 4 and 5 of the paper relate these rewrites to the semantic
//! transformations of `transafety-transform`; the checker crate verifies
//! those correspondences executably on concrete programs.
//!
//! # Example
//!
//! ```
//! use transafety_lang::parse_program;
//! use transafety_syntactic::{reordering_rewrites, RuleName};
//!
//! // Fig. 2: r1:=y; x:=r0; print r1  —  the read and write may swap.
//! let p = parse_program("r1 := y; x := r0; print r1;")?.program;
//! let rewrites = reordering_rewrites(&p);
//! assert!(rewrites.iter().any(|r| r.rule == RuleName::RRw));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod rules;
mod unsafe_rules;

pub use engine::{
    all_rewrites, elimination_rewrites, reordering_rewrites, rewrites, transform_closure,
    transform_closure_filtered, Rewrite, RuleSet,
};
pub use rules::RuleName;
pub use unsafe_rules::introduce_irrelevant_read;
