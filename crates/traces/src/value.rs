//! Runtime values.

use std::fmt;

/// A runtime value: a natural number, as in the paper's §6 language.
///
/// Every shared-memory location and register holds a [`Value`]. The default
/// value (the zero-initialisation of all memory assumed throughout the
/// paper) is [`Value::ZERO`].
///
/// # Example
///
/// ```
/// use transafety_traces::Value;
/// assert_eq!(Value::default(), Value::ZERO);
/// assert_eq!(Value::new(3).get(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Value(u32);

impl Value {
    /// The default value of every location: zero.
    pub const ZERO: Value = Value(0);

    /// Creates a value from a natural number.
    #[must_use]
    pub const fn new(n: u32) -> Self {
        Value(n)
    }

    /// Returns the underlying natural number.
    #[must_use]
    pub const fn get(self) -> u32 {
        self.0
    }

    /// Returns `true` if this is the default (zero) value.
    ///
    /// The out-of-thin-air guarantee (§5 of the paper) only applies to
    /// values that are *not* default values, so checkers use this to skip
    /// zero.
    #[must_use]
    pub const fn is_default(self) -> bool {
        self.0 == 0
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Self {
        Value(n)
    }
}

impl From<Value> for u32 {
    fn from(v: Value) -> Self {
        v.0
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert!(Value::ZERO.is_default());
        assert!(Value::default().is_default());
        assert!(!Value::new(1).is_default());
    }

    #[test]
    fn conversions_roundtrip() {
        let v = Value::from(7u32);
        assert_eq!(u32::from(v), 7);
        assert_eq!(v.to_string(), "7");
    }

    #[test]
    fn ordering_follows_naturals() {
        assert!(Value::new(1) < Value::new(2));
        assert_eq!(Value::new(5), Value::new(5));
    }
}
