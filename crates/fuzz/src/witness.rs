//! Saving and replaying minimised counterexamples.
//!
//! A witness is stored as two sibling files: `<name>.tsl` holds the
//! minimised *original* program (pretty-printed, so it reparses with
//! the same volatility), and `<name>.pipeline` holds a small key-value
//! descriptor:
//!
//! ```text
//! model: tso
//! pipeline: elim:3
//! rules: E-WBW
//! outcome: expected-divergence
//! ```
//!
//! `pipeline:` is the concrete pick sequence the fuzzer minimised to.
//! `rules:` records which rules those picks resolved to at save time;
//! replay re-resolves the picks and falls back to searching for the
//! named rules if the engine's enumeration order has drifted, so
//! regression files survive refactors of the rewrite engine.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use transafety_lang::{parse_program, Program};
use transafety_syntactic::{rewrites, RuleName, RuleSet};
use transafety_traces::MemoryModelKind;

use crate::pipeline::{Pass, PassSet, Pipeline};

/// A self-contained, replayable counterexample.
#[derive(Debug, Clone)]
pub struct Witness {
    /// The (minimised) original program.
    pub program: Program,
    /// The (minimised) pipeline.
    pub pipeline: Pipeline,
    /// The rules the pipeline resolved to when the witness was found.
    pub rules: Vec<RuleName>,
    /// The model the divergence was observed under.
    pub model: MemoryModelKind,
    /// `true` if the divergence was a refinement *violation* (required
    /// refinement broken) rather than an expected racy-original one.
    pub violation: bool,
}

impl Witness {
    /// The descriptor file contents for this witness.
    #[must_use]
    pub fn descriptor(&self) -> String {
        let rules = self
            .rules
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(" ");
        format!(
            "model: {}\npipeline: {}\nrules: {}\noutcome: {}\n",
            self.model,
            self.pipeline,
            rules,
            if self.violation {
                "violation"
            } else {
                "expected-divergence"
            }
        )
    }

    /// Writes `<name>.tsl` and `<name>.pipeline` under `dir`.
    pub fn save(&self, dir: &Path, name: &str) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{name}.tsl")), self.program.to_string())?;
        fs::write(dir.join(format!("{name}.pipeline")), self.descriptor())
    }

    /// Re-derives a pipeline whose applied rules match the recorded
    /// ones: first tries the stored picks; if their application no
    /// longer resolves to the recorded rule sequence (the engine's
    /// enumeration drifted), searches for picks that do.
    #[must_use]
    pub fn effective_pipeline(&self) -> Pipeline {
        let applied = self.pipeline.apply(&self.program);
        let applied_rules: Vec<RuleName> = applied.applied.iter().map(|p| p.rule).collect();
        if self.rules.is_empty() || applied_rules == self.rules {
            return self.pipeline.clone();
        }
        pipeline_for_rules(&self.program, &self.rules).unwrap_or_else(|| self.pipeline.clone())
    }
}

/// Builds a pipeline that applies exactly the given rules, in order, by
/// searching the one-step rewrites at each stage for the first match.
/// Returns `None` if some rule never becomes applicable.
#[must_use]
pub fn pipeline_for_rules(program: &Program, rules: &[RuleName]) -> Option<Pipeline> {
    let mut current = program.clone();
    let mut passes = Vec::new();
    for rule in rules {
        let options = rewrites(&current, RuleSet::All);
        let idx = options.iter().position(|r| r.rule == *rule)?;
        passes.push(Pass {
            set: PassSet::Any,
            pick: u32::try_from(idx).ok()?,
        });
        current = options[idx].result.clone();
    }
    Some(Pipeline { passes })
}

/// Error loading a witness pair from disk.
#[derive(Debug)]
pub enum LoadError {
    /// Filesystem error.
    Io(io::Error),
    /// The `.tsl` program failed to parse.
    Program(String),
    /// The `.pipeline` descriptor is malformed.
    Descriptor(String),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io error: {e}"),
            LoadError::Program(e) => write!(f, "bad witness program: {e}"),
            LoadError::Descriptor(e) => write!(f, "bad witness descriptor: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

fn parse_rule(name: &str) -> Option<RuleName> {
    RuleName::ELIMINATIONS
        .iter()
        .chain(RuleName::REORDERINGS.iter())
        .chain(RuleName::TRACE_PRESERVING.iter())
        .copied()
        .find(|r| r.to_string() == name)
}

/// Loads the witness stored at `<stem>.tsl` / `<stem>.pipeline`.
pub fn load_witness(tsl_path: &Path) -> Result<Witness, LoadError> {
    let source = fs::read_to_string(tsl_path)?;
    let program = parse_program(&source)
        .map_err(|e| LoadError::Program(format!("{}: {e}", tsl_path.display())))?
        .program;
    let descriptor_path = tsl_path.with_extension("pipeline");
    let descriptor = fs::read_to_string(&descriptor_path)?;

    let mut model = None;
    let mut pipeline = None;
    let mut rules = Vec::new();
    let mut violation = false;
    for line in descriptor.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once(':')
            .ok_or_else(|| LoadError::Descriptor(format!("missing ':' in `{line}`")))?;
        let value = value.trim();
        match key.trim() {
            "model" => {
                model = Some(
                    value
                        .parse::<MemoryModelKind>()
                        .map_err(|e| LoadError::Descriptor(e.to_string()))?,
                );
            }
            "pipeline" => {
                pipeline = Some(
                    value
                        .parse::<Pipeline>()
                        .map_err(|e| LoadError::Descriptor(e.to_string()))?,
                );
            }
            "rules" => {
                for tok in value.split_whitespace() {
                    rules.push(
                        parse_rule(tok).ok_or_else(|| {
                            LoadError::Descriptor(format!("unknown rule `{tok}`"))
                        })?,
                    );
                }
            }
            "outcome" => {
                violation = match value {
                    "violation" => true,
                    "expected-divergence" => false,
                    other => {
                        return Err(LoadError::Descriptor(format!("unknown outcome `{other}`")))
                    }
                };
            }
            other => {
                return Err(LoadError::Descriptor(format!("unknown key `{other}`")));
            }
        }
    }

    Ok(Witness {
        program,
        pipeline: pipeline
            .ok_or_else(|| LoadError::Descriptor("missing `pipeline:` line".into()))?,
        rules,
        model: model.ok_or_else(|| LoadError::Descriptor("missing `model:` line".into()))?,
        violation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_load_roundtrip() {
        let program = parse_program(
            "r0 := 1; r1 := 1; r2 := 2; x := r0; y := r1; x := r2; \
             || r3 := y; r4 := x; if (r4 == 0) print r3;",
        )
        .unwrap()
        .program;
        let pipeline = pipeline_for_rules(&program, &[RuleName::EWbw]).expect("E-WBW applies");
        let w = Witness {
            program: program.clone(),
            pipeline,
            rules: vec![RuleName::EWbw],
            model: MemoryModelKind::Tso,
            violation: false,
        };
        let dir = std::env::temp_dir().join("transafety-fuzz-witness-test");
        w.save(&dir, "roundtrip").unwrap();
        let loaded = load_witness(&dir.join("roundtrip.tsl")).unwrap();
        assert_eq!(loaded.program, program);
        assert_eq!(loaded.model, MemoryModelKind::Tso);
        assert_eq!(loaded.rules, vec![RuleName::EWbw]);
        assert!(!loaded.violation);
        let applied = loaded.effective_pipeline().apply(&loaded.program);
        assert_eq!(
            applied.applied.iter().map(|p| p.rule).collect::<Vec<_>>(),
            vec![RuleName::EWbw]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn effective_pipeline_recovers_from_pick_drift() {
        let program = parse_program("r1 := x; r2 := x; print r2;")
            .unwrap()
            .program;
        // deliberately wrong pick: recorded rules win
        let w = Witness {
            program: program.clone(),
            pipeline: "any:999983".parse().unwrap(),
            rules: vec![RuleName::ERar],
            model: MemoryModelKind::Sc,
            violation: false,
        };
        let applied = w.effective_pipeline().apply(&program);
        assert_eq!(
            applied.applied.iter().map(|p| p.rule).collect::<Vec<_>>(),
            vec![RuleName::ERar]
        );
    }
}
