//! The DRF guarantee as a decision procedure (Theorems 1–4 instantiated
//! on concrete programs).

use std::fmt;

use transafety_interleaving::{Behaviours, RaceWitness};
use transafety_lang::{Program, ProgramExplorer};
use transafety_traces::Value;

use crate::Analysis;

/// The behaviours of a program under the configured bounds (the direct
/// state-space engine).
#[must_use]
pub fn behaviours(program: &Program, opts: &Analysis) -> transafety_lang::Bounded<Behaviours> {
    ProgramExplorer::new(program).behaviours_par(&opts.explore, opts.jobs)
}

/// Is the program data race free (§3)?
#[must_use]
pub fn is_data_race_free(program: &Program, opts: &Analysis) -> bool {
    ProgramExplorer::new(program).is_data_race_free_par(&opts.explore, opts.jobs)
}

/// A data race witness for the program, if any.
#[must_use]
pub fn race_witness(program: &Program, opts: &Analysis) -> Option<RaceWitness> {
    ProgramExplorer::new(program).race_witness_par(&opts.explore, opts.jobs)
}

/// Behaviours on an explorer the caller already built — the multi-step
/// checks below construct one explorer per program and reuse it, so the
/// interned configuration space is shared across the race search and the
/// behaviour computation instead of being rebuilt per query.
fn behaviours_on(
    ex: &ProgramExplorer<'_>,
    opts: &Analysis,
) -> transafety_lang::Bounded<Behaviours> {
    ex.behaviours_par(&opts.explore, opts.jobs)
}

/// Race witness on an explorer the caller already built.
fn race_witness_on(ex: &ProgramExplorer<'_>, opts: &Analysis) -> Option<RaceWitness> {
    ex.race_witness_par(&opts.explore, opts.jobs)
}

/// An execution of the program exhibiting exactly the given behaviour,
/// if one exists within the bounds — used to turn
/// [`Refinement::NewBehaviour`] reports into concrete schedules.
#[must_use]
pub fn execution_with_behaviour(
    program: &Program,
    behaviour: &[Value],
    opts: &Analysis,
) -> Option<transafety_interleaving::Interleaving> {
    ProgramExplorer::new(program).execution_with_behaviour(behaviour, &opts.explore)
}

/// The result of checking behaviour refinement between two programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Refinement {
    /// Every behaviour of the transformed program is a behaviour of the
    /// original.
    Refines,
    /// A behaviour of the transformed program that the original cannot
    /// produce.
    NewBehaviour(Vec<Value>),
    /// A bound was hit; the comparison is inconclusive.
    Inconclusive,
}

impl fmt::Display for Refinement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Refinement::Refines => f.write_str("behaviours refined"),
            Refinement::NewBehaviour(b) => {
                write!(f, "new behaviour ")?;
                write!(f, "[")?;
                for (i, v) in b.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Refinement::Inconclusive => f.write_str("inconclusive (bounds hit)"),
        }
    }
}

/// Does `transformed` behaviour-refine `original` (every behaviour of the
/// transformed program is one of the original's)? This is the conclusion
/// of Theorems 1–4 for DRF originals.
#[must_use]
pub fn behaviour_refinement(
    transformed: &Program,
    original: &Program,
    opts: &Analysis,
) -> Refinement {
    behaviour_refinement_on(
        &ProgramExplorer::new(transformed),
        &ProgramExplorer::new(original),
        opts,
    )
}

fn behaviour_refinement_on(
    ex_t: &ProgramExplorer<'_>,
    ex_o: &ProgramExplorer<'_>,
    opts: &Analysis,
) -> Refinement {
    let bt = behaviours_on(ex_t, opts);
    let bo = behaviours_on(ex_o, opts);
    if !bt.complete || !bo.complete {
        return Refinement::Inconclusive;
    }
    match bt.value.difference(&bo.value).next() {
        None => Refinement::Refines,
        Some(extra) => Refinement::NewBehaviour(extra.clone()),
    }
}

/// The verdict of the full DRF-guarantee check for a transformation
/// instance `original ⇒ transformed` (the executable form of
/// Theorems 3/4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DrfVerdict {
    /// The original program has a data race — the DRF guarantee promises
    /// nothing (the witness shows the race).
    OriginalRacy(Box<RaceWitness>),
    /// The original is DRF, the transformed program refines it, and the
    /// transformed program is DRF too — exactly what the theorems claim.
    Holds,
    /// The original is DRF but the transformed program exhibits a new
    /// behaviour — this would falsify the theorem for a safe rule (or
    /// exposes an unsafe transformation, as in Fig. 3).
    NewBehaviour(Vec<Value>),
    /// The original is DRF but the transformed program races — the
    /// transformation failed to preserve data race freedom.
    RaceIntroduced(Box<RaceWitness>),
    /// Bounds were hit; no verdict.
    Inconclusive,
}

impl DrfVerdict {
    /// Did the check confirm the theorem's claim (or establish it is
    /// vacuous because the original races)?
    #[must_use]
    pub fn is_consistent_with_paper(&self) -> bool {
        matches!(self, DrfVerdict::Holds | DrfVerdict::OriginalRacy(_))
    }
}

impl fmt::Display for DrfVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DrfVerdict::OriginalRacy(w) => write!(f, "original racy: {w}"),
            DrfVerdict::Holds => f.write_str("DRF guarantee holds"),
            DrfVerdict::NewBehaviour(b) => {
                write!(f, "VIOLATION: new behaviour {:?}", b)
            }
            DrfVerdict::RaceIntroduced(w) => write!(f, "VIOLATION: race introduced: {w}"),
            DrfVerdict::Inconclusive => f.write_str("inconclusive"),
        }
    }
}

/// Checks the DRF guarantee for one transformation instance: if the
/// original is data race free then the transformed program must refine
/// its behaviours and stay data race free (Theorems 1–4).
#[must_use]
pub fn drf_guarantee(transformed: &Program, original: &Program, opts: &Analysis) -> DrfVerdict {
    // One explorer per program for the whole check: the race search and
    // the behaviour computation share the interned configuration space.
    let ex_t = ProgramExplorer::new(transformed);
    let ex_o = ProgramExplorer::new(original);
    if let Some(w) = race_witness_on(&ex_o, opts) {
        return DrfVerdict::OriginalRacy(Box::new(w));
    }
    match behaviour_refinement_on(&ex_t, &ex_o, opts) {
        Refinement::Inconclusive => return DrfVerdict::Inconclusive,
        Refinement::NewBehaviour(b) => return DrfVerdict::NewBehaviour(b),
        Refinement::Refines => {}
    }
    match race_witness_on(&ex_t, opts) {
        Some(w) => DrfVerdict::RaceIntroduced(Box::new(w)),
        None => DrfVerdict::Holds,
    }
}

/// The *SC-only baseline* (`DESIGN.md` §2): a compiler that refuses any
/// transformation observably changing sequentially consistent behaviour
/// of the given program, racy or not. The paper's point (§1, §7) is that
/// this baseline must reject common optimisations that the DRF contract
/// accepts.
#[must_use]
pub fn sc_only_accepts(transformed: &Program, original: &Program, opts: &Analysis) -> bool {
    matches!(
        behaviour_refinement(transformed, original, opts),
        Refinement::Refines
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use transafety_lang::parse_program;

    fn p(src: &str) -> Program {
        parse_program(src).unwrap().program
    }

    #[test]
    fn fig1_original_and_transformed() {
        // Fig. 1: both racy; the transformation adds behaviour (1 then 0)
        // but the DRF guarantee is vacuous because the original races.
        let original =
            p("x := 2; y := 1; x := 1; || r1 := y; print r1; r1 := x; r2 := x; print r2;");
        let transformed = p("y := 1; x := 1; || r1 := y; print r1; r1 := x; r2 := r1; print r2;");
        let opts = Analysis::default();
        let verdict = drf_guarantee(&transformed, &original, &opts);
        assert!(matches!(verdict, DrfVerdict::OriginalRacy(_)));
        assert!(verdict.is_consistent_with_paper());
        // the SC-only baseline rejects this elimination
        assert!(!sc_only_accepts(&transformed, &original, &opts));
        // and indeed the new behaviour is [1, 0]
        let bt = behaviours(&transformed, &opts).value;
        let bo = behaviours(&original, &opts).value;
        let one_zero = vec![Value::new(1), Value::new(0)];
        assert!(bt.contains(&one_zero) && !bo.contains(&one_zero));
    }

    #[test]
    fn drf_guarantee_holds_for_locked_elimination() {
        // A DRF program and a redundant-read elimination inside the lock.
        let original =
            p("lock m; r1 := x; r2 := x; print r2; unlock m; || lock m; x := 1; unlock m;");
        let transformed =
            p("lock m; r1 := x; r2 := r1; print r2; unlock m; || lock m; x := 1; unlock m;");
        let verdict = drf_guarantee(&transformed, &original, &Analysis::default());
        assert_eq!(verdict, DrfVerdict::Holds);
    }

    #[test]
    fn detects_behaviour_violations() {
        let original = p("print 1;");
        let bogus = p("print 2;");
        let verdict = drf_guarantee(&bogus, &original, &Analysis::default());
        assert_eq!(verdict, DrfVerdict::NewBehaviour(vec![Value::new(2)]));
        assert!(!verdict.is_consistent_with_paper());
    }

    #[test]
    fn detects_introduced_races() {
        // original: thread 1 never touches x; transformed: it reads x.
        let original = p("x := 1; || skip; print 1;");
        let transformed = p("x := 1; || r9 := x; print 1;");
        let verdict = drf_guarantee(&transformed, &original, &Analysis::default());
        assert!(matches!(verdict, DrfVerdict::RaceIntroduced(_)));
    }

    #[test]
    fn refinement_display() {
        assert_eq!(Refinement::Refines.to_string(), "behaviours refined");
        let n = Refinement::NewBehaviour(vec![Value::new(1), Value::ZERO]);
        assert_eq!(n.to_string(), "new behaviour [1, 0]");
    }
}
