//! E17: the interned compact state representation.
//!
//! Runs the E16 workload family (the heaviest litmus entries plus every
//! shipped `programs/*.tsl`) through the production interned engine and
//! the retained pre-interning reference engine, both at `jobs = 1` (the
//! sequential DFS paths the optimisation targets). Before timing
//! anything it prints a states-per-second table, asserts that the two
//! engines produce bit-identical behaviour sets, visit counts and race
//! verdicts (a soundness regression fails the bench run itself), and
//! writes the measured throughput to `BENCH_E17.json` (path overridable
//! via the `BENCH_E17_OUT` environment variable).
//!
//! `cargo bench --bench e17 -- --test` runs the smoke mode: the same
//! differential assertions and JSON emission from single fast runs,
//! skipping the timing loops and the ≥2× speedup gate (CI machines are
//! noisy; the gate is for the curated full run).
//!
//! Both modes also exercise the observability layer: a calibrated
//! corpus pass with the collector enabled must stay within 3% of the
//! disabled-collector wall time, the interner probe/hit/collision
//! counters must show the interning actually paying off (every state
//! revisit is a cheap probe hit, load factor capped at 7/8), and the
//! full counter snapshot lands in the JSON report under `"stats"`.

use std::hint::black_box;
use std::time::{Duration, Instant};

use transafety_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};

use transafety::interleaving::{BudgetGuard, ExploreMetrics, ExploreStats};
use transafety::lang::{parse_program, ExploreOptions, Program, ProgramExplorer};
use transafety::{Budget, CancelToken};

/// The E16 workload family: heaviest litmus entries + `programs/*.tsl`.
fn corpus() -> Vec<(String, Program)> {
    let mut corpus: Vec<(String, Program)> = Vec::new();
    for name in ["iriw", "wrc", "dekker-core", "mp-spin"] {
        let l = transafety::litmus::by_name(name).expect("corpus name");
        corpus.push((name.to_string(), l.parse().program));
    }
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../programs");
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("programs/ directory exists")
        .map(|e| e.expect("readable directory entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "tsl"))
        .collect();
    entries.sort();
    for path in entries {
        let src = std::fs::read_to_string(&path).expect("readable program file");
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        corpus.push((
            name,
            parse_program(&src).expect("valid .tsl program").program,
        ));
    }
    corpus
}

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// One engine run: behaviour search + race search at `jobs = 1`,
/// returning the elapsed wall time and the states the searches visited.
fn run_engine(ex: &ProgramExplorer<'_>, opts: &ExploreOptions, interned: bool) -> RunStats {
    let guard = BudgetGuard::new(&Budget::unlimited(), CancelToken::new());
    let start = Instant::now();
    let (behaviours, witness) = if interned {
        (
            ex.behaviours_governed(opts, &guard),
            ex.race_witness_governed(opts, &guard),
        )
    } else {
        (
            ex.behaviours_reference_governed(opts, &guard),
            ex.race_witness_reference_governed(opts, &guard),
        )
    };
    RunStats {
        elapsed: start.elapsed(),
        states: guard.states(),
        behaviours,
        racy: witness.is_some(),
    }
}

struct RunStats {
    elapsed: Duration,
    states: usize,
    behaviours: transafety::lang::Bounded<transafety::interleaving::Behaviours>,
    racy: bool,
}

/// Best-of-N wall time for one engine (the differential outputs are
/// checked on every run).
fn best_of(ex: &ProgramExplorer<'_>, opts: &ExploreOptions, interned: bool, n: usize) -> RunStats {
    let mut best = run_engine(ex, opts, interned);
    for _ in 1..n {
        let next = run_engine(ex, opts, interned);
        assert_eq!(next.behaviours, best.behaviours, "non-deterministic engine");
        if next.elapsed < best.elapsed {
            best.elapsed = next.elapsed;
        }
    }
    best
}

/// One full corpus pass through the production engine with the given
/// collector riding on every guard, returning the aggregate wall time.
fn corpus_pass(
    corpus: &[(String, Program)],
    opts: &ExploreOptions,
    collector: &std::sync::Arc<ExploreMetrics>,
) -> Duration {
    let start = Instant::now();
    for (_, p) in corpus {
        let ex = ProgramExplorer::new(p);
        let guard =
            BudgetGuard::with_metrics(&Budget::unlimited(), CancelToken::new(), collector.clone());
        black_box(ex.behaviours_governed(opts, &guard));
        black_box(ex.race_witness_governed(opts, &guard));
    }
    start.elapsed()
}

/// Measures the wall-time cost of a live collector against the
/// disabled singleton. Overhead this small drowns in scheduler noise
/// on a loaded machine, so the measurement interleaves many short
/// calibrated off/on pass pairs and compares the minima: the min of a
/// large alternating population is robust to drift that would bias a
/// few long back-to-back timings. Returns `(overhead_fraction,
/// per-pass counter snapshot)`.
fn measure_metrics_overhead(corpus: &[(String, Program)], reps: usize) -> (f64, ExploreStats) {
    let opts = ExploreOptions::default();
    let probe = corpus_pass(corpus, &opts, &ExploreMetrics::disabled());
    let iters = usize::try_from(
        (Duration::from_millis(100).as_nanos() / probe.as_nanos().max(1)).clamp(1, 128),
    )
    .expect("clamped iteration count fits");
    let timed_pass = |collector: &std::sync::Arc<ExploreMetrics>| -> Duration {
        (0..iters)
            .map(|_| corpus_pass(corpus, &opts, collector))
            .min()
            .expect("at least one calibrated pass")
    };
    let mut best_off = Duration::MAX;
    let mut best_on = Duration::MAX;
    for _ in 0..reps {
        best_off = best_off.min(timed_pass(&ExploreMetrics::disabled()));
        best_on = best_on.min(timed_pass(&ExploreMetrics::collector()));
    }
    let overhead = best_on.as_secs_f64() / best_off.as_secs_f64().max(1e-9) - 1.0;
    // The report wants per-pass counters, not `reps * iters` passes
    // merged: one untimed instrumented pass with a fresh collector.
    let collector = ExploreMetrics::collector();
    corpus_pass(corpus, &opts, &collector);
    (overhead, collector.snapshot())
}

/// The interning-quality claim, read off the counters: the interner is
/// doing real dedup work (hits), stays under its 7/8 load-factor cap,
/// and chains stay short enough that probing is cheap on average.
fn assert_interning_quality(stats: &ExploreStats) {
    assert!(stats.enabled, "overhead pass ran with a dead collector");
    assert!(stats.intern_keys > 0, "corpus pass interned nothing");
    assert!(
        stats.intern_hits > 0,
        "no probe hits: the interner never deduplicated a revisit"
    );
    assert!(
        stats.intern_keys <= stats.intern_probes,
        "more keys than probes"
    );
    let lf = stats.load_factor();
    assert!(
        lf > 0.0 && lf <= 0.875,
        "load factor {lf} outside (0, 7/8]: growth policy regressed"
    );
    // Collision chains: with FxHash + the 7/8 growth cap, the average
    // probe should walk well under two extra slots on this corpus.
    assert!(
        stats.intern_collisions < 2 * stats.intern_probes,
        "collision chains dominate probing ({} collisions over {} probes)",
        stats.intern_collisions,
        stats.intern_probes
    );
}

/// Peak resident set of this process in kilobytes (`VmHWM`), if the
/// platform exposes it.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

struct Row {
    name: String,
    states: usize,
    interned_sps: f64,
    reference_sps: f64,
}

/// The optimisation's primary claim, checked and printed before any
/// timing: identical observables, more states per second. Returns the
/// per-program throughput rows for the JSON report.
fn throughput_table(corpus: &[(String, Program)], reps: usize) -> Vec<Row> {
    let opts = ExploreOptions::default();
    println!(
        "\nE17/interned_throughput (behaviours + race search, jobs=1)\n\
         {:<22} {:>9} {:>14} {:>14} {:>9}",
        "program", "states", "interned st/s", "reference st/s", "speedup"
    );
    let mut rows = Vec::new();
    for (name, p) in corpus {
        let ex = ProgramExplorer::new(p);
        let new = best_of(&ex, &opts, true, reps);
        let old = best_of(&ex, &opts, false, reps);
        assert_eq!(
            new.behaviours, old.behaviours,
            "{name}: interning changed the behaviour set"
        );
        assert_eq!(
            new.states, old.states,
            "{name}: interning changed the states-visited count"
        );
        assert_eq!(
            new.racy, old.racy,
            "{name}: interning changed the race verdict"
        );
        let sps = |r: &RunStats| r.states as f64 / r.elapsed.as_secs_f64().max(1e-9);
        let (new_sps, old_sps) = (sps(&new), sps(&old));
        println!(
            "{:<22} {:>9} {:>14.0} {:>14.0} {:>8.2}x",
            name,
            new.states,
            new_sps,
            old_sps,
            new_sps / old_sps
        );
        rows.push(Row {
            name: name.clone(),
            states: new.states,
            interned_sps: new_sps,
            reference_sps: old_sps,
        });
    }
    println!();
    rows
}

/// Writes the measured throughput as a small hand-rolled JSON report
/// (the offline build has no serde).
fn write_report(rows: &[Row], speedup: f64, smoke: bool, overhead: f64, stats: &ExploreStats) {
    let path = std::env::var("BENCH_E17_OUT").unwrap_or_else(|_| "BENCH_E17.json".to_string());
    let mut out = String::from("{\n  \"experiment\": \"E17\",\n  \"jobs\": 1,\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    if let Some(kb) = peak_rss_kb() {
        out.push_str(&format!("  \"peak_rss_kb\": {kb},\n"));
    }
    out.push_str(&format!(
        "  \"metrics_overhead_fraction\": {overhead:.4},\n  \"stats\": {},\n",
        stats.to_json()
    ));
    out.push_str(&format!(
        "  \"aggregate_speedup\": {speedup:.3},\n  \"programs\": [\n"
    ));
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"states\": {}, \"interned_states_per_sec\": {:.0}, \
             \"reference_states_per_sec\": {:.0}}}{}\n",
            r.name,
            r.states,
            r.interned_sps,
            r.reference_sps,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&path, out).expect("writable BENCH_E17.json path");
    println!("E17 report written to {path}");
}

/// Aggregate speedup over the corpus: total states per total second,
/// interned over reference (time-weighted, so the heavy entries — the
/// ones the optimisation is for — dominate).
fn aggregate_speedup(rows: &[Row]) -> f64 {
    let total =
        |f: fn(&Row) -> f64| -> f64 { rows.iter().map(|r| r.states as f64 / f(r)).sum::<f64>() };
    // seconds spent per engine = Σ states / (states/sec)
    total(|r| r.reference_sps) / total(|r| r.interned_sps).max(1e-9)
}

/// `BENCH_E17_ONLY=interned|reference`: run a single engine over the
/// corpus and report this process's peak RSS — because both engines
/// normally run in one process, a per-engine memory figure needs a
/// dedicated run (used for the EXPERIMENTS.md before/after numbers).
fn single_engine_rss(corpus: &[(String, Program)], which: &str) {
    let interned = match which {
        "interned" => true,
        "reference" => false,
        other => panic!("BENCH_E17_ONLY must be interned|reference, got {other}"),
    };
    let opts = ExploreOptions::default();
    let mut states = 0usize;
    for (_, p) in corpus {
        let ex = ProgramExplorer::new(p);
        states += run_engine(&ex, &opts, interned).states;
    }
    println!(
        "E17/{which}: {states} states, peak RSS {} kB",
        peak_rss_kb().map_or_else(|| "?".to_string(), |kb| kb.to_string())
    );
}

fn interned_vs_reference(c: &mut Criterion) {
    let corpus = corpus();
    if let Ok(which) = std::env::var("BENCH_E17_ONLY") {
        single_engine_rss(&corpus, &which);
        return;
    }
    let smoke = smoke_mode();
    let rows = throughput_table(&corpus, if smoke { 1 } else { 3 });
    let speedup = aggregate_speedup(&rows);
    println!("E17 aggregate speedup (jobs=1): {speedup:.2}x");
    let (overhead, stats) = measure_metrics_overhead(&corpus, if smoke { 15 } else { 25 });
    println!(
        "E17 metrics overhead: {:+.2}% wall time with a live collector \
         ({} probes, {} hits, {} collisions, load factor {:.3})",
        overhead * 100.0,
        stats.intern_probes,
        stats.intern_hits,
        stats.intern_collisions,
        stats.load_factor()
    );
    assert_interning_quality(&stats);
    assert!(
        overhead <= 0.03,
        "metrics collector costs {:.2}% wall time (bound: 3%)",
        overhead * 100.0
    );
    write_report(&rows, speedup, smoke, overhead, &stats);
    if smoke {
        return; // smoke mode: assertions + report only, no timing loops
    }
    assert!(
        speedup >= 2.0,
        "interned engine must be >= 2x the reference on the corpus DFS paths, got {speedup:.2}x"
    );
    let opts = ExploreOptions::default();
    let mut group = c.benchmark_group("E17/behaviours_jobs1");
    for (name, p) in &corpus {
        for (tag, interned) in [("interned", true), ("reference", false)] {
            group.bench_with_input(BenchmarkId::new(tag, name), p, |b, p| {
                let ex = ProgramExplorer::new(black_box(p));
                b.iter(|| run_engine(&ex, &opts, interned).behaviours.value.len())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, interned_vs_reference);
criterion_main!(benches);
