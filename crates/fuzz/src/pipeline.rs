//! Serialisable, shrinkable transformation pipelines.
//!
//! A [`Pipeline`] is a finite sequence of [`Pass`]es; each pass names a
//! rule family ([`PassSet`]) and a deterministic *pick* into the list of
//! one-step rewrites `transafety_syntactic::rewrites` offers at that
//! point (modulo the number of applicable rewrites, so a pipeline stays
//! applicable after the program underneath it shrinks).  The textual
//! form round-trips through [`Display`](std::fmt::Display) /
//! [`FromStr`](std::str::FromStr) — `elim:3 reorder:0 any:7` — which is
//! what the regression corpus under `tests/regressions/` stores.

use std::fmt;
use std::str::FromStr;

use transafety_lang::{Program, Stmt};
use transafety_litmus::Rng;
use transafety_syntactic::{rewrites, RuleName, RuleSet};

/// Which rule family a pass draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PassSet {
    /// Fig. 10 eliminations (plus trace-preserving moves).
    Eliminations,
    /// Fig. 11 reorderings (plus trace-preserving moves).
    Reorderings,
    /// Any safe rule.
    Any,
}

impl PassSet {
    /// The syntactic-engine rule set this family maps to.
    #[must_use]
    pub fn rule_set(self) -> RuleSet {
        match self {
            PassSet::Eliminations => RuleSet::Eliminations,
            PassSet::Reorderings => RuleSet::Reorderings,
            PassSet::Any => RuleSet::All,
        }
    }

    fn token(self) -> &'static str {
        match self {
            PassSet::Eliminations => "elim",
            PassSet::Reorderings => "reorder",
            PassSet::Any => "any",
        }
    }
}

/// One pass of a pipeline: a rule family and a deterministic pick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pass {
    /// The rule family the pass draws from.
    pub set: PassSet,
    /// Index into the applicable rewrites, taken modulo their count.
    pub pick: u32,
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.set.token(), self.pick)
    }
}

/// A serialisable sequence of transformation passes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Pipeline {
    /// The passes, applied left to right.
    pub passes: Vec<Pass>,
}

/// Knobs for random pipeline generation.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Maximum number of passes (inclusive); lengths are uniform in
    /// `1..=max_passes`.
    pub max_passes: usize,
    /// Exclusive upper bound for raw pick values (picks are reduced
    /// modulo the applicable-rewrite count at application time).
    pub pick_range: u32,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            max_passes: 3,
            pick_range: 64,
        }
    }
}

/// One applied pass, as recorded by [`Pipeline::apply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedPass {
    /// The rule the pass resolved to.
    pub rule: RuleName,
    /// The thread the rewrite happened in.
    pub thread: usize,
    /// The engine's dotted site path.
    pub site: String,
    /// `true` if the rewritten statement window touches a volatile
    /// location.  Reorderings over volatiles are roach-motel moves whose
    /// safety is conditional on the DRF guarantee, so they are excluded
    /// from the unconditional per-model refinement expectation.
    pub volatile_involved: bool,
}

impl AppliedPass {
    /// Whether this pass refines behaviours under `model` for *every*
    /// program, racy or not: trace-preserving moves always do, and the
    /// §8 fragment rules ([`RuleName::subsumed_under`]) do because the
    /// model's own machine performs them — provided no volatile access
    /// is involved (the fragment speaks about normal accesses only).
    #[must_use]
    pub fn unconditionally_refines_under(&self, model: transafety_traces::MemoryModelKind) -> bool {
        self.rule.is_trace_preserving()
            || (self.rule.subsumed_under(model) && !self.volatile_involved)
    }
}

/// The outcome of running a pipeline over a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Application {
    /// The transformed program.
    pub result: Program,
    /// The passes that found an applicable rewrite, in order.
    pub applied: Vec<AppliedPass>,
    /// Passes that had no applicable rewrite (skipped as no-ops).
    pub skipped: usize,
}

impl Application {
    /// `true` if no pass changed the program.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.applied.is_empty()
    }

    /// Whether every applied pass unconditionally refines under `model`
    /// (see [`AppliedPass::unconditionally_refines_under`]).
    #[must_use]
    pub fn unconditionally_refines_under(&self, model: transafety_traces::MemoryModelKind) -> bool {
        self.applied
            .iter()
            .all(|p| p.unconditionally_refines_under(model))
    }
}

impl Pipeline {
    /// The empty (identity) pipeline.
    #[must_use]
    pub fn identity() -> Self {
        Pipeline::default()
    }

    /// Number of passes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// `true` if the pipeline has no passes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// Draw a random pipeline from `rng`.
    #[must_use]
    pub fn random(rng: &mut Rng, config: &PipelineConfig) -> Self {
        let n = rng.gen_range_usize(1, config.max_passes.max(1) + 1);
        let passes = (0..n)
            .map(|_| {
                let set = match rng.gen_range(0, 3) {
                    0 => PassSet::Eliminations,
                    1 => PassSet::Reorderings,
                    _ => PassSet::Any,
                };
                Pass {
                    set,
                    pick: rng.gen_range_u32(0, config.pick_range.max(1)),
                }
            })
            .collect();
        Pipeline { passes }
    }

    /// Apply the pipeline to `program`: each pass enumerates the
    /// one-step rewrites of its family and deterministically takes
    /// `pick % count`; a pass with no applicable rewrite is a no-op.
    #[must_use]
    pub fn apply(&self, program: &Program) -> Application {
        let mut current = program.clone();
        let mut applied = Vec::new();
        let mut skipped = 0usize;
        for pass in &self.passes {
            let mut options = rewrites(&current, pass.set.rule_set());
            if options.is_empty() {
                skipped += 1;
                continue;
            }
            let idx = pass.pick as usize % options.len();
            let chosen = options.swap_remove(idx);
            let volatile_involved = if chosen.rule.is_reordering() {
                current
                    .thread(chosen.thread)
                    .and_then(|body| site_window(body, &chosen.site))
                    .is_none_or(|window| {
                        window
                            .iter()
                            .any(|s| s.shared_locs().iter().any(|l| l.is_volatile()))
                    })
            } else {
                // Fig. 10 eliminations and T-MOV moves never fire on a
                // volatile access (their side conditions exclude them).
                false
            };
            applied.push(AppliedPass {
                rule: chosen.rule,
                thread: chosen.thread,
                site: chosen.site,
                volatile_involved,
            });
            current = chosen.result;
        }
        Application {
            result: current,
            applied,
            skipped,
        }
    }

    /// All one-step shrink candidates of the pipeline: drop one pass,
    /// truncate to a strict prefix, or halve a pick value.  Every
    /// candidate is strictly smaller under (`len`, sum of picks), so
    /// shrinking terminates.
    #[must_use]
    pub fn shrink_candidates(&self) -> Vec<Pipeline> {
        let mut out = Vec::new();
        for i in 0..self.passes.len() {
            let mut dropped = self.passes.clone();
            dropped.remove(i);
            out.push(Pipeline { passes: dropped });
        }
        if self.passes.len() > 1 {
            for keep in 1..self.passes.len() {
                out.push(Pipeline {
                    passes: self.passes[..keep].to_vec(),
                });
            }
        }
        for i in 0..self.passes.len() {
            if self.passes[i].pick > 0 {
                let mut smaller = self.passes.clone();
                smaller[i].pick /= 2;
                out.push(Pipeline { passes: smaller });
            }
        }
        out
    }
}

impl fmt::Display for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.passes.is_empty() {
            return write!(f, "identity");
        }
        for (i, p) in self.passes.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

/// Error parsing a pipeline descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePipelineError(String);

impl fmt::Display for ParsePipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad pipeline descriptor: {}", self.0)
    }
}

impl std::error::Error for ParsePipelineError {}

impl FromStr for Pipeline {
    type Err = ParsePipelineError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() || s == "identity" {
            return Ok(Pipeline::identity());
        }
        let mut passes = Vec::new();
        for tok in s.split_whitespace() {
            let (family, pick) = tok
                .split_once(':')
                .ok_or_else(|| ParsePipelineError(format!("missing ':' in `{tok}`")))?;
            let set = match family {
                "elim" => PassSet::Eliminations,
                "reorder" => PassSet::Reorderings,
                "any" => PassSet::Any,
                other => return Err(ParsePipelineError(format!("unknown pass family `{other}`"))),
            };
            let pick: u32 = pick
                .parse()
                .map_err(|_| ParsePipelineError(format!("bad pick in `{tok}`")))?;
            passes.push(Pass { set, pick });
        }
        Ok(Pipeline { passes })
    }
}

/// Resolve the engine's dotted site path to the (up to two) statements
/// the rewrite window starts at.  Returns `None` when the path does not
/// resolve (callers treat that conservatively).
fn site_window<'a>(thread: &'a [Stmt], site: &str) -> Option<Vec<&'a Stmt>> {
    #[derive(Clone, Copy)]
    enum Cursor<'a> {
        List(&'a [Stmt]),
        One(&'a Stmt),
    }
    let tokens: Vec<&str> = site.split('.').collect();
    let mut cursor = Cursor::List(thread);
    for (k, tok) in tokens.iter().enumerate() {
        // a lone Block statement is transparent: its body is the list
        if let Cursor::One(Stmt::Block(body)) = cursor {
            cursor = Cursor::List(body);
        }
        let last = k + 1 == tokens.len();
        match cursor {
            Cursor::List(list) => {
                let idx: usize = tok.parse().ok()?;
                if last {
                    let end = (idx + 2).min(list.len());
                    return Some(list.get(idx..end)?.iter().collect());
                }
                cursor = Cursor::One(list.get(idx)?);
            }
            Cursor::One(stmt) => match (stmt, *tok) {
                (Stmt::If { then_branch: b, .. }, "then") => cursor = Cursor::One(b),
                (Stmt::If { else_branch: b, .. }, "else") => cursor = Cursor::One(b),
                (Stmt::While { body: b, .. }, "body") => cursor = Cursor::One(b),
                _ => return None,
            },
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use transafety_lang::parse_program;

    #[test]
    fn display_parse_roundtrip() {
        for text in ["identity", "elim:3", "reorder:0 any:7 elim:12"] {
            let p: Pipeline = text.parse().unwrap();
            assert_eq!(p.to_string(), text);
            let again: Pipeline = p.to_string().parse().unwrap();
            assert_eq!(p, again);
        }
        assert_eq!("".parse::<Pipeline>().unwrap(), Pipeline::identity());
        assert!("bogus:1".parse::<Pipeline>().is_err());
        assert!("elim".parse::<Pipeline>().is_err());
    }

    #[test]
    fn apply_is_deterministic_and_picks_modulo() {
        let p = parse_program("r1 := x; r2 := x; print r2;")
            .unwrap()
            .program;
        let pipe: Pipeline = "elim:0".parse().unwrap();
        let a = pipe.apply(&p);
        let b = pipe.apply(&p);
        assert_eq!(a.result, b.result);
        assert_eq!(a.applied.len(), 1);
        // a huge pick reduces modulo the applicable count
        let pipe_large = Pipeline {
            passes: vec![Pass {
                set: PassSet::Eliminations,
                pick: u32::MAX,
            }],
        };
        let c = pipe_large.apply(&p);
        assert_eq!(c.applied.len(), 1);
    }

    #[test]
    fn inapplicable_pass_is_noop() {
        let p = parse_program("print r0;").unwrap().program;
        let pipe: Pipeline = "elim:0 reorder:1".parse().unwrap();
        let a = pipe.apply(&p);
        assert!(a.is_identity());
        assert_eq!(a.skipped, 2);
        assert_eq!(a.result, p);
    }

    #[test]
    fn shrink_candidates_are_strictly_smaller() {
        let pipe: Pipeline = "any:8 elim:3 reorder:0".parse().unwrap();
        let weight = |p: &Pipeline| (p.len(), p.passes.iter().map(|q| q.pick as u64).sum::<u64>());
        for cand in pipe.shrink_candidates() {
            assert!(weight(&cand) < weight(&pipe), "{cand} not smaller");
        }
    }

    #[test]
    fn volatile_reordering_is_flagged() {
        // R-WR with a volatile second access: fires, but must not be
        // treated as unconditionally refining under TSO.
        let p = parse_program("volatile v; x := r0; r1 := v; print r1;")
            .unwrap()
            .program;
        let pipe: Pipeline = "reorder:0".parse().unwrap();
        let a = pipe.apply(&p);
        for pass in &a.applied {
            if pass.rule.is_reordering() {
                assert!(
                    pass.volatile_involved,
                    "{} should touch a volatile",
                    pass.rule
                );
                assert!(
                    !pass.unconditionally_refines_under(transafety_traces::MemoryModelKind::Tso)
                );
            }
        }
    }

    #[test]
    fn random_pipelines_are_seed_deterministic() {
        let config = PipelineConfig::default();
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(
                Pipeline::random(&mut a, &config),
                Pipeline::random(&mut b, &config)
            );
        }
    }

    #[test]
    fn nested_site_windows_resolve() {
        let p = parse_program("if (r0 == 1) { r1 := x; r2 := x; print r2; } else skip;")
            .unwrap()
            .program;
        let rws = transafety_syntactic::all_rewrites(&p);
        for rw in rws {
            // every reported site must resolve in the pre-program
            assert!(
                site_window(p.thread(rw.thread).unwrap(), &rw.site).is_some(),
                "site {} did not resolve",
                rw.site
            );
        }
    }
}
