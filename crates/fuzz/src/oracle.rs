//! The per-model refinement oracle.
//!
//! For a (program, pipeline, model) triple the oracle applies the
//! pipeline and compares the behaviour sets and race verdicts of the
//! original and the transformed program under the chosen memory model
//! (both sides go through the budgeted [`Analysis`] engine — the
//! SC-only `behaviour_refinement` entry point is deliberately not
//! used).  Refinement is *required* exactly when the paper promises it:
//!
//! - the original is DRF under the model (Theorems 1–4 plus the model's
//!   DRF guarantee), or
//! - every applied pass is unconditionally refining under the model —
//!   trace-preserving moves, and the §8 fragment rules the model's own
//!   machine performs (see
//!   [`AppliedPass::unconditionally_refines_under`]).
//!
//! A divergence where refinement was required is a [`Outcome::Violation`]
//! (a soundness bug in the rules, the machines or the classifier); a
//! divergence on a racy original outside the fragment is an
//! [`Outcome::ExpectedDivergence`] — the Fig. 1 phenomenon, and under
//! TSO/PSO exactly the witness that justifies
//! `classify_transformation_under` flagging the kind.

use std::time::{Duration, Instant};

use transafety_checker::{classify_transformation_under, Analysis, Verdict};
use transafety_interleaving::Budget;
use transafety_lang::Program;
use transafety_traces::{MemoryModelKind, Value};
use transafety_transform::EliminationKind;

use crate::pipeline::{AppliedPass, Pipeline};

/// Oracle configuration: the model to check under and the per-side
/// analysis budget.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// The memory model both sides are explored under.
    pub model: MemoryModelKind,
    /// Per-side exploration budget (a case runs at most two full
    /// analyses plus, on divergence, one classification).
    pub budget: Budget,
    /// Worker threads handed to each analysis (keep at 1 inside a
    /// fuzzing pool; the pool itself provides the parallelism).
    pub jobs: usize,
    /// Partial-order reduction toggle (mirrors `TRANSAFETY_NO_POR`).
    pub por: bool,
}

impl OracleConfig {
    /// A config for `model` with the default fuzzing budget
    /// (200 ms / 50 000 states per side).
    #[must_use]
    pub fn for_model(model: MemoryModelKind) -> Self {
        OracleConfig {
            model,
            budget: Budget::unlimited()
                .timeout(Duration::from_millis(200))
                .max_states(50_000),
            jobs: 1,
            por: true,
        }
    }

    /// The `Analysis` both oracle sides run through.
    #[must_use]
    pub fn analysis(&self) -> Analysis {
        Analysis::new()
            .model(self.model)
            .jobs(self.jobs.max(1))
            .budget(self.budget)
            .por(self.por)
    }
}

/// How the transformed program escaped the original's envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DivergenceKind {
    /// A behaviour (print sequence) of the transformed program that the
    /// original cannot produce under the model.
    NewBehaviour(Vec<Value>),
    /// The original is DRF under the model but the transformed program
    /// races.
    RaceIntroduced,
}

/// A concrete divergence witness plus the classifier's opinion of the
/// transformation that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// What diverged.
    pub kind: DivergenceKind,
    /// `classify_transformation_under(..).safe_under_model` for the
    /// pair — recorded for cross-validation (a divergence where
    /// refinement was *required* yet the classifier says safe is
    /// upgraded to a violation by the caller's expectation logic).
    pub classifier_safe: bool,
    /// The elimination kinds the classifier flagged under the model
    /// (e.g. `OverwrittenWrite` under TSO).
    pub flagged_kinds: Vec<EliminationKind>,
}

/// The oracle's verdict on one (program, pipeline, model) case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// No pass changed the program.
    Identity,
    /// Refinement checked and holds.
    Refines,
    /// A budget tripped before the check could be decided.
    Inconclusive,
    /// Divergence on a racy original outside the model's fragment —
    /// allowed, and the witness the classifier's flag predicts.
    ExpectedDivergence(Divergence),
    /// Divergence where refinement was required: a soundness bug.
    Violation(Divergence),
}

impl Outcome {
    /// `true` for [`Outcome::Violation`].
    #[must_use]
    pub fn is_violation(&self) -> bool {
        matches!(self, Outcome::Violation(_))
    }

    /// `true` for either divergence outcome.
    #[must_use]
    pub fn is_divergence(&self) -> bool {
        matches!(self, Outcome::Violation(_) | Outcome::ExpectedDivergence(_))
    }
}

/// One oracle run, with enough context to report or replay it.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// The oracle verdict.
    pub outcome: Outcome,
    /// The model checked under.
    pub model: MemoryModelKind,
    /// The passes that actually fired.
    pub applied: Vec<AppliedPass>,
    /// The original program's verdict under the model.
    pub original_verdict: Verdict,
    /// The transformed program's verdict under the model.
    pub transformed_verdict: Verdict,
    /// The transformed program (for witness reporting).
    pub transformed: Program,
    /// Wall-clock time the case took.
    pub elapsed: Duration,
}

/// Run the refinement oracle on one (program, pipeline) pair under
/// `config`.
#[must_use]
pub fn check_pair(program: &Program, pipeline: &Pipeline, config: &OracleConfig) -> CaseReport {
    let start = Instant::now();
    let application = pipeline.apply(program);
    let analysis = config.analysis();

    if application.is_identity() {
        return CaseReport {
            outcome: Outcome::Identity,
            model: config.model,
            applied: application.applied,
            original_verdict: Verdict::Unknown,
            transformed_verdict: Verdict::Unknown,
            transformed: application.result,
            elapsed: start.elapsed(),
        };
    }

    let original = analysis.run(program);
    let transformed = analysis.run(&application.result);

    let original_drf = original.verdict == Verdict::DrfProven;
    let required = original_drf || application.unconditionally_refines_under(config.model);

    // Soundness of the subset check only needs the *original* side to be
    // complete: any behaviour the (possibly truncated) transformed run
    // did reach is a real behaviour, so its absence from a complete
    // original set is a genuine divergence.
    let divergence_kind = if original.behaviours.complete {
        transformed
            .behaviours
            .value
            .iter()
            .find(|b| !original.behaviours.value.contains(*b))
            .cloned()
            .map(DivergenceKind::NewBehaviour)
            .or_else(|| {
                (original_drf && transformed.verdict == Verdict::Racy)
                    .then_some(DivergenceKind::RaceIntroduced)
            })
    } else {
        None
    };

    let outcome = match divergence_kind {
        Some(kind) => {
            // Cross-validate against the model-aware classifier; only
            // divergent cases pay for the (expensive) classification.
            let classification =
                classify_transformation_under(&application.result, program, &analysis);
            let divergence = Divergence {
                kind,
                classifier_safe: classification.safe_under_model,
                flagged_kinds: classification.flagged_kinds,
            };
            if required {
                Outcome::Violation(divergence)
            } else {
                Outcome::ExpectedDivergence(divergence)
            }
        }
        None => {
            if original.behaviours.complete && transformed.behaviours.complete {
                // Full refinement established.  When the original is DRF
                // the transformed side must also stay DRF; `Unknown`
                // with complete behaviours cannot happen (complete runs
                // are verdict-conclusive), so only Racy trips above.
                Outcome::Refines
            } else {
                Outcome::Inconclusive
            }
        }
    };

    CaseReport {
        outcome,
        model: config.model,
        applied: application.applied,
        original_verdict: original.verdict,
        transformed_verdict: transformed.verdict,
        transformed: application.result,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transafety_lang::parse_program;

    fn oracle(model: MemoryModelKind) -> OracleConfig {
        OracleConfig {
            budget: Budget::unlimited()
                .timeout(Duration::from_secs(5))
                .max_states(200_000),
            ..OracleConfig::for_model(model)
        }
    }

    #[test]
    fn identity_pipeline_is_identity() {
        let p = parse_program("x := 1; || r0 := x; print r0;")
            .unwrap()
            .program;
        let report = check_pair(&p, &Pipeline::identity(), &oracle(MemoryModelKind::Sc));
        assert_eq!(report.outcome, Outcome::Identity);
    }

    #[test]
    fn forwarding_elimination_refines_under_all_models() {
        // E-RAW on a single thread: safe under SC, and in the §8
        // fragment under TSO/PSO — must refine everywhere.
        let p = parse_program("x := r0; r1 := x; print r1; || y := r0;")
            .unwrap()
            .program;
        let pipe: Pipeline = "elim:0".parse().unwrap();
        for model in [
            MemoryModelKind::Sc,
            MemoryModelKind::Tso,
            MemoryModelKind::Pso,
        ] {
            let report = check_pair(&p, &pipe, &oracle(model));
            assert!(
                matches!(report.outcome, Outcome::Refines | Outcome::Identity),
                "{model:?}: {:?}",
                report.outcome
            );
        }
    }

    #[test]
    fn overwritten_write_elimination_diverges_under_tso() {
        // T0 buffers x:=1 before y:=1: under TSO the FIFO store buffer
        // makes x==1 visible no later than y==1.  Eliminating the
        // overwritten write drops that ordering, so the reader can see
        // y==1, x==0 and take the guarded print — a behaviour the
        // original cannot produce.  The original is racy, E-WBW is
        // outside the TSO fragment, and the classifier flags
        // OverwrittenWrite: an *expected* divergence.  (Register moves
        // are hoisted so the between-stores segment is move-free.)
        let p = parse_program(
            "r0 := 1; r1 := 1; r2 := 2; x := r0; y := r1; x := r2; \
             || r3 := y; r4 := x; if (r4 == 0) print r3;",
        )
        .unwrap()
        .program;
        let rewrites = transafety_syntactic::elimination_rewrites(&p);
        let idx = rewrites
            .iter()
            .position(|r| r.rule == transafety_syntactic::RuleName::EWbw)
            .expect("E-WBW applies");
        let pipe = Pipeline {
            passes: vec![crate::pipeline::Pass {
                set: crate::pipeline::PassSet::Eliminations,
                pick: u32::try_from(idx).unwrap(),
            }],
        };
        let report = check_pair(&p, &pipe, &oracle(MemoryModelKind::Tso));
        match &report.outcome {
            Outcome::ExpectedDivergence(d) => {
                assert!(!d.classifier_safe, "E-WBW must be flagged under TSO");
                assert!(d.flagged_kinds.contains(&EliminationKind::OverwrittenWrite));
                assert!(matches!(d.kind, DivergenceKind::NewBehaviour(_)));
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn drf_original_never_diverges() {
        // A lock-disciplined program is DRF; every safe rewrite must
        // refine under every model (Theorems 1–4 + DRF guarantee).
        let p = parse_program(
            "lock m; x := r0; r1 := x; unlock m; print r1; || lock m; x := r2; unlock m;",
        )
        .unwrap()
        .program;
        for model in [
            MemoryModelKind::Sc,
            MemoryModelKind::Tso,
            MemoryModelKind::Pso,
        ] {
            for pick in 0..4u32 {
                let pipe = Pipeline {
                    passes: vec![crate::pipeline::Pass {
                        set: crate::pipeline::PassSet::Any,
                        pick,
                    }],
                };
                let report = check_pair(&p, &pipe, &oracle(model));
                assert!(
                    !report.outcome.is_divergence(),
                    "{model:?} pick {pick}: {:?}",
                    report.outcome
                );
            }
        }
    }
}
