//! Tracesets: prefix-closed sets of traces, stored as a trie.

use std::collections::BTreeMap;
use std::fmt;

use crate::{Action, Domain, ThreadId, Trace, TraceError, WildAction, WildTrace};

/// A *traceset*: a prefix-closed, well-locked, properly-started set of
/// traces representing a program (§3 of the paper).
///
/// The traceset is stored as a trie, which makes prefix closure
/// structural: every trie node is a member trace. [`Traceset::insert`]
/// validates the §3 well-formedness conditions and implicitly inserts all
/// prefixes.
///
/// [`Traceset::belongs_to`] implements the §4 *belongs-to* judgement for
/// wildcard traces: a wildcard trace belongs to `T` iff **all** of its
/// instances over the given domain are members.
///
/// # Example
///
/// ```
/// use transafety_traces::{Action, Domain, Loc, ThreadId, Trace, Traceset,
///     Value, WildAction, WildTrace};
/// let y = Loc::normal(1);
/// let mut t = Traceset::new();
/// for v in Domain::zero_to(1).iter() {
///     t.insert(Trace::from_actions([
///         Action::start(ThreadId::new(0)),
///         Action::read(y, v),
///     ]))?;
/// }
/// let wild = WildTrace::from_elements([
///     Action::start(ThreadId::new(0)).into(),
///     WildAction::wildcard_read(y),
/// ]);
/// assert!(t.belongs_to(&wild, &Domain::zero_to(1)));
/// assert!(!t.belongs_to(&wild, &Domain::zero_to(2))); // no R[y=2] branch
/// # Ok::<(), transafety_traces::TraceError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Traceset {
    root: Node,
}

#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Node {
    children: BTreeMap<Action, Node>,
}

impl Node {
    fn count(&self) -> usize {
        1 + self.children.values().map(Node::count).sum::<usize>()
    }
}

impl Traceset {
    /// Creates the traceset containing only the empty trace.
    #[must_use]
    pub fn new() -> Self {
        Traceset::default()
    }

    /// Builds a traceset from traces, validating each.
    ///
    /// # Errors
    ///
    /// Returns the first [`TraceError`] raised by
    /// [`Trace::validate`].
    pub fn from_traces<I: IntoIterator<Item = Trace>>(traces: I) -> Result<Self, TraceError> {
        let mut t = Traceset::new();
        for tr in traces {
            t.insert(tr)?;
        }
        Ok(t)
    }

    /// Inserts a trace (and implicitly all of its prefixes).
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] if the trace is not properly started or
    /// not well locked; nothing is inserted in that case.
    pub fn insert(&mut self, trace: Trace) -> Result<(), TraceError> {
        trace.validate()?;
        let mut node = &mut self.root;
        for a in &trace {
            node = node.children.entry(*a).or_default();
        }
        Ok(())
    }

    /// Inserts every trace of `other` into `self`.
    pub fn union_with(&mut self, other: &Traceset) {
        fn merge(dst: &mut Node, src: &Node) {
            for (a, child) in &src.children {
                merge(dst.children.entry(*a).or_default(), child);
            }
        }
        merge(&mut self.root, &other.root);
    }

    /// The union of two tracesets.
    #[must_use]
    pub fn union(mut self, other: &Traceset) -> Traceset {
        self.union_with(other);
        self
    }

    /// Membership test for a concrete trace. Because tracesets are prefix
    /// closed, this is a simple trie walk.
    #[must_use]
    pub fn contains(&self, trace: &Trace) -> bool {
        self.contains_actions(trace.actions())
    }

    /// Membership test for a sequence of actions.
    #[must_use]
    pub fn contains_actions(&self, actions: &[Action]) -> bool {
        let mut node = &self.root;
        for a in actions {
            match node.children.get(a) {
                Some(n) => node = n,
                None => return false,
            }
        }
        true
    }

    /// The number of member traces, including the empty trace (i.e. the
    /// number of trie nodes).
    #[must_use]
    pub fn member_count(&self) -> usize {
        self.root.count()
    }

    /// Returns `true` if the traceset contains only the empty trace.
    #[must_use]
    pub fn is_trivial(&self) -> bool {
        self.root.children.is_empty()
    }

    /// Iterates over **all** member traces (every prefix), in
    /// depth-first lexicographic order. The empty trace is yielded first.
    #[must_use]
    pub fn traces(&self) -> TracesetTraces<'_> {
        TracesetTraces {
            stack: vec![Frame {
                node: &self.root,
                depth: 0,
                label: None,
            }],
            prefix: Vec::new(),
        }
    }

    /// Iterates over the maximal traces (trie leaves).
    #[must_use]
    pub fn maximal_traces(&self) -> MaximalTraces<'_> {
        MaximalTraces {
            inner: self.traces(),
        }
    }

    /// The entry points (thread identifiers) of the program: the threads
    /// whose start action roots a branch of the trie.
    #[must_use]
    pub fn threads(&self) -> Vec<ThreadId> {
        let mut out: Vec<ThreadId> = self
            .root
            .children
            .keys()
            .filter_map(|a| match a {
                Action::Start(t) => Some(*t),
                _ => None,
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// The sub-traceset of traces of the given thread.
    #[must_use]
    pub fn thread_traceset(&self, thread: ThreadId) -> Traceset {
        let mut out = Traceset::new();
        if let Some(n) = self.root.children.get(&Action::start(thread)) {
            out.root.children.insert(Action::start(thread), n.clone());
        }
        out
    }

    /// The §4 *belongs-to* judgement: do **all** instances of `wild` over
    /// `domain` belong to this traceset?
    #[must_use]
    pub fn belongs_to(&self, wild: &WildTrace, domain: &Domain) -> bool {
        // Walk the trie breadth-wise, keeping the frontier of nodes reached
        // by every partial instance. A concrete element must exist below
        // every frontier node; a wildcard element fans each frontier node
        // out to a read edge for every domain value.
        let mut frontier: Vec<&Node> = vec![&self.root];
        for e in wild.elements() {
            let mut next = Vec::with_capacity(frontier.len());
            match e {
                WildAction::Concrete(a) => {
                    for n in frontier {
                        match n.children.get(a) {
                            Some(c) => next.push(c),
                            None => return false,
                        }
                    }
                }
                WildAction::WildcardRead(l) => {
                    for n in frontier {
                        for v in domain.iter() {
                            match n.children.get(&Action::read(*l, v)) {
                                Some(c) => next.push(c),
                                None => return false,
                            }
                        }
                    }
                }
            }
            frontier = next;
        }
        true
    }

    /// A cursor at the root of the trie, for incremental searches.
    #[must_use]
    pub fn cursor(&self) -> Cursor<'_> {
        Cursor { node: &self.root }
    }

    /// Does any member trace act as an *origin* for value `v` (§5)?
    ///
    /// Implemented as a trie walk that stops descending once a read of `v`
    /// is seen (everything below can no longer be an origin through this
    /// branch).
    #[must_use]
    pub fn has_origin_for(&self, v: crate::Value) -> bool {
        fn walk(node: &Node, v: crate::Value) -> bool {
            for (a, child) in &node.children {
                match a {
                    Action::Read { value, .. } if *value == v => continue,
                    Action::Write { value, .. } | Action::External(value) if *value == v => {
                        return true
                    }
                    _ => {}
                }
                if walk(child, v) {
                    return true;
                }
            }
            false
        }
        walk(&self.root, v)
    }
}

/// A read-only position inside a [`Traceset`] trie; created by
/// [`Traceset::cursor`]. Searches (e.g. the elimination witness search in
/// `transafety-transform`) use cursors to extend candidate traces one
/// action at a time with trie pruning.
#[derive(Debug, Clone, Copy)]
pub struct Cursor<'a> {
    node: &'a Node,
}

impl<'a> Cursor<'a> {
    /// Steps along the edge labelled `a`, if it exists.
    #[must_use]
    pub fn step(&self, a: &Action) -> Option<Cursor<'a>> {
        self.node.children.get(a).map(|n| Cursor { node: n })
    }

    /// The actions labelling the outgoing edges, in sorted order.
    pub fn children(&self) -> impl Iterator<Item = &'a Action> + '_ {
        self.node.children.keys()
    }

    /// Returns `true` if this position has no continuations (the trace so
    /// far is maximal).
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        self.node.children.is_empty()
    }
}

#[derive(Debug)]
struct Frame<'a> {
    node: &'a Node,
    depth: usize,
    label: Option<Action>,
}

/// Iterator over all member traces of a [`Traceset`]; see
/// [`Traceset::traces`].
#[derive(Debug)]
pub struct TracesetTraces<'a> {
    stack: Vec<Frame<'a>>,
    prefix: Vec<Action>,
}

impl Iterator for TracesetTraces<'_> {
    type Item = Trace;

    fn next(&mut self) -> Option<Trace> {
        // Depth-first pre-order walk; each node visit yields the trace of
        // actions on the path to it.
        let Frame { node, depth, label } = self.stack.pop()?;
        self.prefix.truncate(depth.saturating_sub(1));
        if let Some(a) = label {
            self.prefix.push(a);
        }
        let result = Trace::from_actions(self.prefix.iter().copied());
        // Push children in reverse-sorted order so iteration is sorted.
        for (a, n) in node.children.iter().rev() {
            self.stack.push(Frame {
                node: n,
                depth: depth + 1,
                label: Some(*a),
            });
        }
        Some(result)
    }
}

/// Iterator over maximal traces of a [`Traceset`]; see
/// [`Traceset::maximal_traces`].
#[derive(Debug)]
pub struct MaximalTraces<'a> {
    inner: TracesetTraces<'a>,
}

impl Iterator for MaximalTraces<'_> {
    type Item = Trace;

    fn next(&mut self) -> Option<Trace> {
        loop {
            let is_leaf = self.inner.stack.last()?.node.children.is_empty();
            let t = self.inner.next()?;
            if is_leaf {
                return Some(t);
            }
        }
    }
}

impl fmt::Display for Traceset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{{")?;
        for t in self.maximal_traces() {
            writeln!(f, "  {t}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Loc, Value};

    fn tid(i: u32) -> ThreadId {
        ThreadId::new(i)
    }
    fn x() -> Loc {
        Loc::normal(0)
    }
    fn y() -> Loc {
        Loc::normal(1)
    }
    fn val(n: u32) -> Value {
        Value::new(n)
    }

    fn fig2_left_thread1(domain: &Domain) -> Traceset {
        // {[S(1), R[y=v], W[x=1], X(v)] | v in domain}
        let mut t = Traceset::new();
        for v in domain.iter() {
            t.insert(Trace::from_actions([
                Action::start(tid(1)),
                Action::read(y(), v),
                Action::write(x(), val(1)),
                Action::external(v),
            ]))
            .unwrap();
        }
        t
    }

    #[test]
    fn prefix_closure_is_structural() {
        let d = Domain::zero_to(1);
        let t = fig2_left_thread1(&d);
        assert!(t.contains_actions(&[]));
        assert!(t.contains_actions(&[Action::start(tid(1))]));
        assert!(t.contains_actions(&[Action::start(tid(1)), Action::read(y(), val(0))]));
        assert!(!t.contains_actions(&[Action::read(y(), val(0))]));
    }

    #[test]
    fn member_and_maximal_counts() {
        let d = Domain::zero_to(1);
        let t = fig2_left_thread1(&d);
        // nodes: root, S, R0, R1, W after each R, X after each W = 1+1+2+2+2
        assert_eq!(t.member_count(), 8);
        assert_eq!(t.maximal_traces().count(), 2);
        assert_eq!(t.traces().count(), 8);
    }

    #[test]
    fn traces_iteration_yields_every_prefix_exactly_once() {
        let d = Domain::zero_to(2);
        let t = fig2_left_thread1(&d);
        let mut all: Vec<Trace> = t.traces().collect();
        let n = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), n);
        assert_eq!(n, t.member_count());
        for tr in &all {
            assert!(t.contains(tr));
        }
        assert!(all.contains(&Trace::new()));
    }

    #[test]
    fn insert_rejects_ill_formed() {
        let mut t = Traceset::new();
        let bad = Trace::from_actions([Action::read(x(), val(0))]);
        assert!(t.insert(bad).is_err());
        assert!(t.is_trivial());
    }

    #[test]
    fn union_merges_threads() {
        let d = Domain::zero_to(0);
        let mut a = fig2_left_thread1(&d);
        let mut b = Traceset::new();
        b.insert(Trace::from_actions([
            Action::start(tid(0)),
            Action::read(x(), val(0)),
            Action::write(y(), val(0)),
        ]))
        .unwrap();
        a.union_with(&b);
        assert_eq!(a.threads(), vec![tid(0), tid(1)]);
        let t0 = a.thread_traceset(tid(0));
        assert_eq!(t0.threads(), vec![tid(0)]);
        assert_eq!(t0.maximal_traces().count(), 1);
    }

    #[test]
    fn belongs_to_requires_all_instances() {
        let d = Domain::zero_to(1);
        let t = fig2_left_thread1(&d);
        let wild = WildTrace::from_elements([
            Action::start(tid(1)).into(),
            WildAction::wildcard_read(y()),
            Action::write(x(), val(1)).into(),
        ]);
        assert!(t.belongs_to(&wild, &d));
        // A larger domain has instances (R[y=2]) that are not members.
        assert!(!t.belongs_to(&wild, &Domain::zero_to(2)));
    }

    #[test]
    fn belongs_to_paper_counterexample() {
        // §4: [S(0), W[y=1], R[x=*], X(1)] does not belong to the traceset
        // of "y:=1; r1:=x; print r1" because e.g. the instance with R[x=2]
        // is followed by X(2), not X(1).
        let d = Domain::zero_to(2);
        let mut t = Traceset::new();
        for v in d.iter() {
            t.insert(Trace::from_actions([
                Action::start(tid(0)),
                Action::write(y(), val(1)),
                Action::read(x(), v),
                Action::external(v),
            ]))
            .unwrap();
        }
        let ok = WildTrace::from_elements([
            Action::start(tid(0)).into(),
            Action::write(y(), val(1)).into(),
            WildAction::wildcard_read(x()),
        ]);
        assert!(t.belongs_to(&ok, &d));
        let bad = WildTrace::from_elements([
            Action::start(tid(0)).into(),
            Action::write(y(), val(1)).into(),
            WildAction::wildcard_read(x()),
            Action::external(val(1)).into(),
        ]);
        assert!(!t.belongs_to(&bad, &d));
    }

    #[test]
    fn cursor_walks_the_trie() {
        let d = Domain::zero_to(1);
        let t = fig2_left_thread1(&d);
        let c = t.cursor();
        assert!(!c.is_leaf());
        let c1 = c.step(&Action::start(tid(1))).unwrap();
        assert_eq!(c1.children().count(), 2);
        assert!(c.step(&Action::start(tid(9))).is_none());
        let c2 = c1.step(&Action::read(y(), val(0))).unwrap();
        let c3 = c2.step(&Action::write(x(), val(1))).unwrap();
        let c4 = c3.step(&Action::external(val(0))).unwrap();
        assert!(c4.is_leaf());
    }

    #[test]
    fn origin_detection_on_tracesets() {
        let d = Domain::zero_to(1);
        let t = fig2_left_thread1(&d);
        // writes 1 without reading 1 first: origin for 1
        assert!(t.has_origin_for(val(1)));
        assert!(!t.has_origin_for(val(42)));
        // X(v) after R[y=v] is not an origin for v != 1 (value was read)
        let mut t2 = Traceset::new();
        t2.insert(Trace::from_actions([
            Action::start(tid(0)),
            Action::read(y(), val(7)),
            Action::external(val(7)),
        ]))
        .unwrap();
        assert!(!t2.has_origin_for(val(7)));
    }

    #[test]
    fn empty_traceset_has_empty_maximal_trace() {
        let t = Traceset::new();
        let all: Vec<Trace> = t.maximal_traces().collect();
        assert_eq!(all, vec![Trace::new()]);
        assert!(t.is_trivial());
        assert_eq!(t.member_count(), 1);
    }

    #[test]
    fn display_lists_maximal_traces() {
        let mut t = Traceset::new();
        t.insert(Trace::from_actions([Action::start(tid(0))]))
            .unwrap();
        let s = t.to_string();
        assert!(s.contains("[S(0)]"), "got: {s}");
    }
}
