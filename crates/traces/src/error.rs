//! Error types for trace construction and traceset insertion.

use std::error::Error;
use std::fmt;

use crate::Monitor;

/// An error raised when a trace violates the well-formedness conditions
/// that §3 of the paper imposes on traceset members.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// A non-empty trace whose first action is not a thread start action
    /// ("all traces in a traceset must be properly started").
    NotProperlyStarted,
    /// A start action occurring after the first position of a trace.
    StartNotFirst {
        /// The offending index within the trace.
        index: usize,
    },
    /// A prefix of the trace unlocks monitor `monitor` more times than it
    /// locks it ("tracesets are well locked").
    NotWellLocked {
        /// The monitor whose lock/unlock balance went negative.
        monitor: Monitor,
        /// The index of the offending unlock action.
        index: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::NotProperlyStarted => {
                write!(f, "non-empty trace does not begin with a start action")
            }
            TraceError::StartNotFirst { index } => {
                write!(f, "start action at non-initial index {index}")
            }
            TraceError::NotWellLocked { monitor, index } => write!(
                f,
                "unlock of {monitor} at index {index} exceeds the number of prior locks"
            ),
        }
    }
}

impl Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = TraceError::NotWellLocked {
            monitor: Monitor::new(1),
            index: 4,
        };
        assert!(e.to_string().contains("m1"));
        assert!(e.to_string().contains('4'));
        assert!(!TraceError::NotProperlyStarted.to_string().is_empty());
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: Error + Send + Sync + 'static>(_: E) {}
        takes_error(TraceError::NotProperlyStarted);
    }
}
