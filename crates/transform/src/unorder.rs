//! The unordering construction (§5, "Reordering"): the reordering
//! analogue of unelimination.
//!
//! Given an execution `I'` of a reordered traceset and the original
//! traceset `T`, an *unordering* is a permutation `f` of `dom(I')` such
//! that (i) non-reorderable same-thread pairs keep their order, (ii)
//! synchronisation/external actions keep their order, and (iii) per
//! thread, `f` de-permutes the thread's trace into `T`. The paper proves
//! by induction on `|I'|` that for data-race-free `T` the permuted
//! interleaving is an execution of `T` — which the tests check
//! executably on the paper's examples.

use std::collections::BTreeMap;
use std::fmt;

use transafety_interleaving::{Event, Interleaving};
use transafety_traces::{ThreadId, Traceset};

use crate::reorderable::reorderable;
use crate::reordering::{de_permute, find_reordering, ReorderingFn};

/// The output of [`find_unordering`]: the permutation and the permuted
/// (untransformed) interleaving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnorderingWitness {
    /// `f(i)` = the position in the unordered interleaving of `I'`'s
    /// `i`-th event.
    pub map: Vec<usize>,
    /// The unordered interleaving `f↓(I')`.
    pub unordered: Interleaving,
}

impl UnorderingWitness {
    /// Validates the three unordering conditions against `I'` and `T`.
    #[must_use]
    pub fn check(&self, transformed: &Interleaving, original: &Traceset) -> bool {
        let n = transformed.len();
        if self.map.len() != n || self.unordered.len() != n {
            return false;
        }
        // f is a permutation and the unordered interleaving is f↓(I')
        let mut seen = vec![false; n];
        for (i, &fi) in self.map.iter().enumerate() {
            if fi >= n || seen[fi] {
                return false;
            }
            seen[fi] = true;
            if self.unordered[fi] != transformed[i] {
                return false;
            }
        }
        for i in 0..n {
            for j in i + 1..n {
                let (a, b) = (&transformed[i], &transformed[j]);
                // (i): same-thread non-reorderable pairs keep order.
                // The §4 convention applies: swapping i < j in the
                // transformed program requires A(I'_j) reorderable with
                // A(I'_i).
                if a.thread() == b.thread()
                    && !reorderable(&b.action(), &a.action())
                    && self.map[i] >= self.map[j]
                {
                    return false;
                }
                // (ii): sync/external order is preserved.
                let se = |e: &Event| e.action().is_sync() || e.action().is_external();
                if se(a) && se(b) && self.map[i] >= self.map[j] {
                    return false;
                }
            }
        }
        // (iii): per-thread de-permutation into T.
        for th in transformed.threads() {
            let trace = transformed.trace_of(th);
            let f = self.thread_function(transformed, th);
            let Ok(f) = ReorderingFn::new(f) else {
                return false;
            };
            if !f.is_reordering_function_for(&trace) {
                return false;
            }
            if !original.contains(&de_permute(&trace, &f)) {
                return false;
            }
        }
        true
    }

    /// The restriction of `f` to the events of one thread, renumbered to
    /// trace positions.
    fn thread_function(&self, transformed: &Interleaving, th: ThreadId) -> Vec<usize> {
        let indices: Vec<usize> = (0..transformed.len())
            .filter(|&i| transformed[i].thread() == th)
            .collect();
        // rank of f(i) among this thread's f-images
        let mut images: Vec<usize> = indices.iter().map(|&i| self.map[i]).collect();
        let sorted = {
            let mut s = images.clone();
            s.sort_unstable();
            s
        };
        for v in &mut images {
            *v = sorted.binary_search(v).expect("image present");
        }
        images
    }
}

impl fmt::Display for UnorderingWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unordering {:?} yielding {}", self.map, self.unordered)
    }
}

/// Searches for an unordering of the execution `transformed` into the
/// traceset `original` (§5).
///
/// The construction mirrors the paper's: de-permute each thread trace
/// into `T` (the [`find_reordering`] witness search), then merge the
/// de-permuted threads so synchronisation/external events keep their
/// `I'` order. Returns `None` when some thread trace has no de-permuting
/// function (in particular, when `transformed` is not an execution of a
/// reordering of `original`).
#[must_use]
pub fn find_unordering(
    transformed: &Interleaving,
    original: &Traceset,
) -> Option<UnorderingWitness> {
    let threads = transformed.threads();
    // Step 1: per-thread reordering functions.
    let mut per_thread: BTreeMap<ThreadId, ReorderingFn> = BTreeMap::new();
    for &th in &threads {
        let trace = transformed.trace_of(th);
        per_thread.insert(th, find_reordering(&trace, original)?);
    }
    // Step 2: merge. Each thread contributes its de-permuted sequence;
    // an element is emittable when it is the thread's next de-permuted
    // event and, if it is sync/external, all earlier (in I') sync/
    // external events have been emitted.
    //
    // Build, per thread, the list of I' indices in de-permuted order.
    let mut queues: BTreeMap<ThreadId, std::collections::VecDeque<usize>> = BTreeMap::new();
    for &th in &threads {
        let f = &per_thread[&th];
        let indices: Vec<usize> = (0..transformed.len())
            .filter(|&i| transformed[i].thread() == th)
            .collect();
        // order thread events by their f-image
        let mut order: Vec<usize> = (0..indices.len()).collect();
        order.sort_by_key(|&k| f.apply(k));
        queues.insert(th, order.into_iter().map(|k| indices[k]).collect());
    }
    let se = |i: usize| {
        let a = transformed[i].action();
        a.is_sync() || a.is_external()
    };
    // pending sync/ext events in I' order
    let mut pending_se: std::collections::VecDeque<usize> =
        (0..transformed.len()).filter(|&i| se(i)).collect();
    let mut map = vec![usize::MAX; transformed.len()];
    let mut out: Vec<Event> = Vec::new();
    while out.len() < transformed.len() {
        // prefer a non-sync head
        let mut emitted = false;
        for th in &threads {
            let Some(&head) = queues[th].front() else {
                continue;
            };
            if !se(head) {
                queues.get_mut(th).expect("thread present").pop_front();
                map[head] = out.len();
                out.push(transformed[head]);
                emitted = true;
                break;
            }
        }
        if emitted {
            continue;
        }
        // otherwise the earliest pending sync/ext event must be some
        // thread's head (condition (ii) of the §4 reorderability rules
        // guarantees sync/ext order is preserved per thread)
        let target = *pending_se.front()?;
        let th = transformed[target].thread();
        let head = *queues[&th].front()?;
        if head != target {
            // the per-thread de-permutation disagrees with the global
            // sync order — no unordering from these witnesses
            return None;
        }
        queues.get_mut(&th).expect("thread present").pop_front();
        pending_se.pop_front();
        map[target] = out.len();
        out.push(transformed[target]);
    }
    Some(UnorderingWitness {
        map,
        unordered: Interleaving::from_events(out),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use transafety_interleaving::Explorer;
    use transafety_traces::{Action, Domain, Loc, Trace, Value};

    fn tid(i: u32) -> ThreadId {
        ThreadId::new(i)
    }
    fn v(n: u32) -> Value {
        Value::new(n)
    }
    fn x() -> Loc {
        Loc::normal(0)
    }
    fn y() -> Loc {
        Loc::normal(1)
    }

    /// Fig. 2 with the intermediate set T* (original ∪ the eliminated
    /// trace), against which the transformed program is a plain
    /// reordering.
    fn fig2_t_star(d: &Domain) -> Traceset {
        let mut t = Traceset::new();
        for val in d.iter() {
            t.insert(Trace::from_actions([
                Action::start(tid(0)),
                Action::read(x(), val),
                Action::write(y(), val),
            ]))
            .unwrap();
            t.insert(Trace::from_actions([
                Action::start(tid(1)),
                Action::read(y(), val),
                Action::write(x(), v(1)),
                Action::external(val),
            ]))
            .unwrap();
        }
        t.insert(Trace::from_actions([
            Action::start(tid(1)),
            Action::write(x(), v(1)),
        ]))
        .unwrap();
        t
    }

    fn fig2_transformed(d: &Domain) -> Traceset {
        let mut t = Traceset::new();
        for val in d.iter() {
            t.insert(Trace::from_actions([
                Action::start(tid(0)),
                Action::read(x(), val),
                Action::write(y(), val),
            ]))
            .unwrap();
            t.insert(Trace::from_actions([
                Action::start(tid(1)),
                Action::write(x(), v(1)),
                Action::read(y(), val),
                Action::external(val),
            ]))
            .unwrap();
        }
        t
    }

    #[test]
    fn unorderings_exist_for_all_fig2_executions() {
        let d = Domain::zero_to(1);
        let t_star = fig2_t_star(&d);
        let transformed = fig2_transformed(&d);
        let execs = Explorer::new(&transformed)
            .maximal_executions(transafety_interleaving::ExploreLimits::default());
        assert!(!execs.is_empty());
        for e in &execs {
            let w = find_unordering(e, &t_star).unwrap_or_else(|| panic!("no unordering for {e}"));
            assert!(w.check(e, &t_star), "conditions failed for {e} -> {w}");
            // the §5 induction's conclusion: the unordered interleaving is
            // an interleaving of T* (it is an execution when T* is DRF;
            // Fig. 2 is racy so we only require interleaving-ness here)
            assert!(
                w.unordered.is_interleaving_of(&t_star),
                "{e} -> {}",
                w.unordered
            );
        }
    }

    #[test]
    fn unordered_executions_of_drf_programs_stay_executions() {
        // A DRF reordering instance: thread 0 = y:=1 under lock, thread 1
        // reads z then locks — reorder r:=z into the lock (roach motel).
        use transafety_traces::Monitor;
        let m = Monitor::new(0);
        let d = Domain::zero_to(1);
        let z = Loc::normal(2);
        let mut original = Traceset::new();
        let mut transformed = Traceset::new();
        for val in d.iter() {
            original
                .insert(Trace::from_actions([
                    Action::start(tid(0)),
                    Action::lock(m),
                    Action::write(y(), v(1)),
                    Action::unlock(m),
                ]))
                .unwrap();
            original
                .insert(Trace::from_actions([
                    Action::start(tid(1)),
                    Action::read(z, val),
                    Action::lock(m),
                    Action::external(val),
                    Action::unlock(m),
                ]))
                .unwrap();
            transformed
                .insert(Trace::from_actions([
                    Action::start(tid(0)),
                    Action::lock(m),
                    Action::write(y(), v(1)),
                    Action::unlock(m),
                ]))
                .unwrap();
            transformed
                .insert(Trace::from_actions([
                    Action::start(tid(1)),
                    Action::lock(m),
                    Action::read(z, val),
                    Action::external(val),
                    Action::unlock(m),
                ]))
                .unwrap();
        }
        assert!(Explorer::new(&original).is_data_race_free());
        // Roach-motel reordering is a reordering of an *elimination* of
        // the original (§4): the n = 2 prefix de-permutation [S(1), L]
        // exists only after eliminating the irrelevant read of z from
        // the wildcard prefix [S(1), R[z=*], L]. Build that T*.
        let mut t_star = original.clone();
        t_star
            .insert(Trace::from_actions([
                Action::start(tid(1)),
                Action::lock(m),
            ]))
            .unwrap();
        let original = t_star;
        for e in Explorer::new(&transformed)
            .maximal_executions(transafety_interleaving::ExploreLimits::default())
        {
            let w =
                find_unordering(&e, &original).unwrap_or_else(|| panic!("no unordering for {e}"));
            assert!(w.check(&e, &original));
            // Theorem 2's conclusion, executably: an execution with the
            // same behaviour.
            assert!(
                w.unordered.is_sequentially_consistent(),
                "{e} -> {}",
                w.unordered
            );
            assert!(w.unordered.is_interleaving_of(&original));
            assert_eq!(w.unordered.behaviour(), e.behaviour());
        }
    }

    #[test]
    fn no_unordering_for_unrelated_tracesets() {
        let d = Domain::zero_to(1);
        let t_star = fig2_t_star(&d);
        let bogus = Interleaving::from_events([
            Event::new(tid(0), Action::start(tid(0))),
            Event::new(tid(0), Action::external(v(9))),
        ]);
        assert!(find_unordering(&bogus, &t_star).is_none());
    }
}
