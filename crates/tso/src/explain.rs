//! The §8 claim, executably: TSO behaviour is explained by the paper's
//! transformations.
//!
//! §8: *"we can explain the Sun TSO memory model with our semantic
//! transformations"*. Operationally, TSO differs from SC by delaying
//! stores in FIFO buffers with store-to-load forwarding — which is
//! exactly (i) reordering a write with a later read of a different
//! location (rule R-WR) and (ii) letting a read of the same location
//! take the buffered value (the forwarding eliminations E-RAW/E-RAR).
//! This module checks, per program, that every TSO behaviour is a
//! sequentially consistent behaviour of *some* program in the closure of
//! exactly that rule fragment.

use transafety_interleaving::Behaviours;
use transafety_lang::{ExploreOptions, ModelExplorer, Program, ProgramExplorer};
use transafety_syntactic::{transform_closure_filtered, RuleName};

use crate::model::TsoModel;

/// The result of checking whether a program's TSO behaviours are
/// explained by the write→read-reordering + forwarding-elimination
/// fragment of the paper's transformations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TsoExplanation {
    /// The TSO behaviours of the program.
    pub tso: Behaviours,
    /// The SC behaviours of the (untransformed) program.
    pub sc: Behaviours,
    /// The union of SC behaviours over the transformation closure.
    pub closure_union: Behaviours,
    /// How many programs the closure contained.
    pub closure_size: usize,
    /// Did the program exhibit non-SC behaviour under TSO?
    pub relaxed: bool,
    /// `tso ⊆ closure_union` — the §8 claim for this program.
    pub explained: bool,
    /// No exploration bound was hit anywhere.
    pub complete: bool,
}

/// The TSO rule fragment: write→read reordering, the forwarding
/// eliminations, and the (identity) register-move commutations needed to
/// cross desugaring moves.
#[must_use]
pub fn tso_fragment(rule: RuleName) -> bool {
    rule.subsumed_under(transafety_traces::MemoryModelKind::Tso)
}

/// Checks the §8 claim on one program: every TSO behaviour is an SC
/// behaviour of some member of the TSO-fragment transformation closure
/// (up to `depth` rewrite steps).
#[must_use]
pub fn explain_tso(program: &Program, depth: usize, opts: &ExploreOptions) -> TsoExplanation {
    let tso_b = ModelExplorer::new(&TsoModel::new(program)).behaviours(opts);
    let sc_b = ProgramExplorer::new(program).behaviours(opts);
    let closure = transform_closure_filtered(program, depth, tso_fragment);
    let closure_size = closure.len();
    let mut union: Behaviours = Behaviours::new();
    let mut complete = tso_b.complete && sc_b.complete;
    for q in closure {
        let b = ProgramExplorer::new(&q).behaviours(opts);
        complete &= b.complete;
        union.extend(b.value);
    }
    let relaxed = !tso_b.value.is_subset(&sc_b.value);
    let explained = tso_b.value.is_subset(&union);
    TsoExplanation {
        tso: tso_b.value,
        sc: sc_b.value,
        closure_union: union,
        closure_size,
        relaxed,
        explained,
        complete,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transafety_lang::parse_program;
    use transafety_traces::Value;

    fn v(n: u32) -> Value {
        Value::new(n)
    }

    #[test]
    fn sb_is_relaxed_and_explained() {
        let src = "x := 1; r1 := y; print r1; || y := 1; r2 := x; print r2;";
        let p = parse_program(src).unwrap().program;
        let e = explain_tso(&p, 3, &ExploreOptions::default());
        assert!(e.complete);
        assert!(e.relaxed, "SB exhibits the 0,0 outcome under TSO");
        assert!(e.explained, "… and W→R reordering explains it");
        assert!(e.tso.contains(&vec![v(0), v(0)]));
        assert!(!e.sc.contains(&vec![v(0), v(0)]));
        assert!(e.closure_union.contains(&vec![v(0), v(0)]));
    }

    #[test]
    fn mp_is_unrelaxed_and_trivially_explained() {
        let src = "x := 1; flag := 1; || r1 := flag; r2 := x; print r1; print r2;";
        let p = parse_program(src).unwrap().program;
        let e = explain_tso(&p, 2, &ExploreOptions::default());
        assert!(!e.relaxed, "TSO adds nothing to MP");
        assert!(e.explained);
    }

    #[test]
    fn fenced_sb_needs_no_explanation() {
        let src = "volatile x, y; x := 1; r1 := y; print r1; || y := 1; r2 := x; print r2;";
        let p = parse_program(src).unwrap().program;
        let e = explain_tso(&p, 2, &ExploreOptions::default());
        assert!(!e.relaxed);
        assert!(e.explained);
        assert_eq!(
            e.closure_size, 1,
            "no fragment rule applies to volatile accesses"
        );
    }

    #[test]
    fn forwarding_is_explained_by_eraw() {
        // T0: x:=1; r1:=x; r2:=y; print r1; print r2 — under TSO the read
        // of x forwards from the buffer while the read of y may see 0
        // even after another thread observed x=1. The explanation needs
        // E-RAW (forward) *then* R-WR (delay the store past r2:=y).
        let src = "x := 1; r1 := x; r2 := y; print r1; print r2; \
                   || r3 := x; y := r3;";
        let p = parse_program(src).unwrap().program;
        let e = explain_tso(&p, 4, &ExploreOptions::default());
        assert!(e.explained, "tso={:?} union={:?}", e.tso, e.closure_union);
    }
}
