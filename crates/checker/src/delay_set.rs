//! A Shasha–Snir style *delay-set analysis* — the §7 baseline.
//!
//! The paper positions itself against the line of work that keeps
//! **all** programs sequentially consistent by restricting the compiler
//! (Shasha & Snir 1988 and descendants, §7). The centrepiece of that
//! approach is the delay-set analysis: build the graph of program-order
//! segments and inter-thread conflict edges, find *critical cycles*, and
//! forbid reordering of the program-order pairs on them.
//!
//! This module implements the analysis (for the loop-free fragment, with
//! the standard conservative merge of both branches of a conditional) so
//! experiments can quantify the paper's motivation: how many reorderings
//! does the DRF contract license that an SC-preserving compiler must
//! refuse?

use std::collections::BTreeSet;
use std::fmt;

use transafety_lang::{Program, Stmt};
use transafety_traces::{Action, Loc, Value};

use crate::Analysis;

/// A static shared-memory access site: thread, position in the thread's
/// flattened access sequence, location and kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct AccessSite {
    /// The thread index.
    pub thread: usize,
    /// Position within the thread's flattened access sequence.
    pub index: usize,
    /// The location accessed.
    pub loc: Loc,
    /// `true` for stores.
    pub is_write: bool,
}

impl AccessSite {
    fn conflicts_with(&self, other: &AccessSite) -> bool {
        // To the SC-preserving baseline, volatile locations are ordinary
        // shared memory — its conflict graph includes them (unlike the
        // §3 race definition, which exempts them).
        self.thread != other.thread && self.loc == other.loc && (self.is_write || other.is_write)
    }

    /// A representative dynamic action for reorderability comparisons.
    fn representative(&self) -> Action {
        if self.is_write {
            Action::write(self.loc, Value::new(1))
        } else {
            Action::read(self.loc, Value::new(1))
        }
    }
}

impl fmt::Display for AccessSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t{}#{}:{}{}",
            self.thread,
            self.index,
            if self.is_write { "W " } else { "R " },
            self.loc
        )
    }
}

/// The per-thread flattened access sequences of a program.
///
/// Conditionals contribute both branches in sequence (the standard
/// conservative approximation); loop bodies contribute one iteration.
#[must_use]
pub fn access_sites(program: &Program) -> Vec<Vec<AccessSite>> {
    fn collect(s: &Stmt, thread: usize, out: &mut Vec<AccessSite>) {
        match s {
            Stmt::Store { loc, .. } => out.push(AccessSite {
                thread,
                index: out.len(),
                loc: *loc,
                is_write: true,
            }),
            Stmt::Load { loc, .. } => out.push(AccessSite {
                thread,
                index: out.len(),
                loc: *loc,
                is_write: false,
            }),
            Stmt::Block(b) => {
                for s in b {
                    collect(s, thread, out);
                }
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect(then_branch, thread, out);
                collect(else_branch, thread, out);
            }
            Stmt::While { body, .. } => collect(body, thread, out),
            _ => {}
        }
    }
    program
        .threads()
        .iter()
        .enumerate()
        .map(|(t, body)| {
            let mut v = Vec::new();
            for s in body {
                collect(s, t, &mut v);
            }
            v
        })
        .collect()
}

/// The delay set of a program: the program-order pairs that lie on some
/// critical cycle and therefore may not be reordered by an SC-preserving
/// compiler.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DelaySet {
    pairs: BTreeSet<(AccessSite, AccessSite)>,
}

impl DelaySet {
    /// Must the SC-preserving compiler keep `first` before `second`?
    #[must_use]
    pub fn must_preserve(&self, first: &AccessSite, second: &AccessSite) -> bool {
        self.pairs.contains(&(*first, *second))
    }

    /// The number of delay pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Is the delay set empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterates over the delay pairs.
    pub fn iter(&self) -> impl Iterator<Item = &(AccessSite, AccessSite)> {
        self.pairs.iter()
    }
}

/// Computes the delay set by enumerating critical cycles: sequences of
/// per-thread segments (a single access, or an ordered program-order
/// pair) connected by conflict edges, visiting each thread at most once,
/// and closing back on the first segment.
#[must_use]
pub fn delay_set(program: &Program) -> DelaySet {
    let sites = access_sites(program);
    // per-thread candidate segments: single accesses and ordered pairs
    #[derive(Clone, Copy)]
    struct Segment {
        first: AccessSite,
        last: AccessSite,
    }
    let mut segments: Vec<Vec<Segment>> = Vec::new();
    for thread_sites in &sites {
        let mut segs = Vec::new();
        for (i, &a) in thread_sites.iter().enumerate() {
            segs.push(Segment { first: a, last: a });
            for &b in &thread_sites[i + 1..] {
                segs.push(Segment { first: a, last: b });
            }
        }
        segments.push(segs);
    }
    let threads = segments.len();
    let mut delays: BTreeSet<(AccessSite, AccessSite)> = BTreeSet::new();

    // DFS over chains of segments connected by conflict edges.
    fn dfs(
        chain: &mut Vec<Segment>,
        used: &mut Vec<bool>,
        segments: &[Vec<Segment>],
        delays: &mut BTreeSet<(AccessSite, AccessSite)>,
    ) {
        let last = chain.last().copied().expect("chain non-empty");
        // try to close the cycle (needs ≥ 2 segments)
        if chain.len() >= 2 {
            let first = chain[0];
            if last.last.conflicts_with(&first.first) {
                for seg in chain.iter() {
                    if seg.first != seg.last {
                        delays.insert((seg.first, seg.last));
                    }
                }
            }
        }
        // extend
        for (t, segs) in segments.iter().enumerate() {
            if used[t] {
                continue;
            }
            for &next in segs {
                if last.last.conflicts_with(&next.first) {
                    used[t] = true;
                    chain.push(next);
                    dfs(chain, used, segments, delays);
                    chain.pop();
                    used[t] = false;
                }
            }
        }
    }

    for t0 in 0..threads {
        for &seg in &segments[t0] {
            let mut used = vec![false; threads];
            used[t0] = true;
            let mut chain = vec![seg];
            dfs(&mut chain, &mut used, &segments, &mut delays);
        }
    }
    DelaySet { pairs: delays }
}

/// Summary counts comparing the paper's reorderability with the
/// SC-preserving (delay-set) baseline on the *adjacent* program-order
/// access pairs of a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelayStats {
    /// Adjacent same-thread access pairs.
    pub adjacent_pairs: usize,
    /// Pairs the §4 reorderability relation lets a DRF-contract compiler
    /// swap.
    pub drf_reorderable: usize,
    /// Pairs an SC-preserving compiler may swap (not in the delay set
    /// and not same-location).
    pub sc_reorderable: usize,
    /// Pairs licensed by the DRF contract but forbidden by the delay set
    /// — the paper's motivation, quantified.
    pub drf_only: usize,
}

/// Computes [`DelayStats`] for a program.
#[must_use]
pub fn delay_stats(program: &Program, _opts: &Analysis) -> DelayStats {
    let sites = access_sites(program);
    let delays = delay_set(program);
    let mut adjacent_pairs = 0;
    let mut drf_reorderable = 0;
    let mut sc_reorderable = 0;
    let mut drf_only = 0;
    for thread_sites in &sites {
        for pair in thread_sites.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            adjacent_pairs += 1;
            // §4: swapping a before-pair (a, b) needs b reorderable with a
            let drf_ok =
                transafety_transform::reorderable(&b.representative(), &a.representative());
            let sc_ok = !delays.must_preserve(&a, &b) && a.loc != b.loc;
            if drf_ok {
                drf_reorderable += 1;
            }
            if sc_ok {
                sc_reorderable += 1;
            }
            if drf_ok && !sc_ok {
                drf_only += 1;
            }
        }
    }
    DelayStats {
        adjacent_pairs,
        drf_reorderable,
        sc_reorderable,
        drf_only,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transafety_lang::parse_program;

    fn p(src: &str) -> Program {
        parse_program(src).unwrap().program
    }

    #[test]
    fn sb_has_the_classic_critical_cycle() {
        // SB: T0 = W x; R y — T1 = W y; R x. The W→R pairs form the
        // canonical critical cycle, so both are delay pairs.
        let program = p("x := 1; r1 := y; || y := 1; r2 := x;");
        let d = delay_set(&program);
        assert!(!d.is_empty());
        let sites = access_sites(&program);
        let (w_x, r_y) = (sites[0][0], sites[0][1]);
        let (w_y, r_x) = (sites[1][0], sites[1][1]);
        assert!(d.must_preserve(&w_x, &r_y), "delay pairs: {d:?}");
        assert!(d.must_preserve(&w_y, &r_x));
    }

    #[test]
    fn paper_allows_what_delay_set_forbids_on_sb() {
        let program = p("x := 1; r1 := y; || y := 1; r2 := x;");
        let stats = delay_stats(&program, &Analysis::default());
        assert_eq!(stats.adjacent_pairs, 2);
        assert_eq!(
            stats.drf_reorderable, 2,
            "W→R of different locations is §4-reorderable"
        );
        assert_eq!(
            stats.sc_reorderable, 0,
            "both pairs are on the critical cycle"
        );
        assert_eq!(stats.drf_only, 2, "the paper's motivation, quantified");
    }

    #[test]
    fn independent_threads_have_empty_delay_sets() {
        let program = p("x := 1; r1 := x; || y := 1; r2 := y;");
        assert!(delay_set(&program).is_empty());
        let stats = delay_stats(&program, &Analysis::default());
        assert_eq!(stats.drf_only, 0);
        // same-location pairs are not swappable for anyone
        assert_eq!(stats.drf_reorderable, 0);
        assert_eq!(stats.sc_reorderable, 0);
    }

    #[test]
    fn volatile_sb_constrains_both_contracts() {
        // To the baseline, the volatile SB is just SB: both W→R pairs lie
        // on the critical cycle. The DRF contract forbids them as
        // Rel/Acq reorderings. Neither compiler may touch them.
        let program = p("volatile x, y; x := 1; r1 := y; || y := 1; r2 := x;");
        assert!(!delay_set(&program).is_empty());
        let stats = delay_stats(&program, &Analysis::default());
        assert_eq!(stats.drf_reorderable, 0);
        assert_eq!(stats.sc_reorderable, 0);
        assert_eq!(stats.drf_only, 0);
    }

    #[test]
    fn three_thread_cycles_are_found() {
        // WRC-like shape: cycles through three threads.
        let program = p("x := 1; || r1 := x; y := 1; || r2 := y; r3 := x;");
        let d = delay_set(&program);
        let sites = access_sites(&program);
        // thread 1's R x → W y pair participates in a cycle with t0/t2
        assert!(d.must_preserve(&sites[1][0], &sites[1][1]), "{d:?}");
        // thread 2's R y → R x pair too
        assert!(d.must_preserve(&sites[2][0], &sites[2][1]));
    }

    #[test]
    fn branches_merge_conservatively() {
        let program = p("if (r0 == 0) x := 1; else y := 1; r1 := x; || r9 := x; x := r9;");
        let sites = access_sites(&program);
        assert_eq!(sites[0].len(), 3, "both branch accesses and the load");
    }

    #[test]
    fn display_of_sites() {
        let program = p("x := 1;");
        let sites = access_sites(&program);
        assert_eq!(sites[0][0].to_string(), "t0#0:W l0");
    }
}
