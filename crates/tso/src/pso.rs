//! A PSO (partial store order) machine — the paper's §8 future-work
//! direction, executably.
//!
//! §8 closes with: *"We believe that similar results can be achieved for
//! other processor memory models."* PSO (SPARC's weaker sibling of TSO)
//! additionally relaxes write→write order: store buffers are per
//! location, so stores to different locations may drain out of order.
//! The corresponding transformation fragment adds the W→W reordering
//! rule (R-WW) to TSO's W→R + forwarding fragment; [`explain_pso`]
//! checks that this fragment explains every PSO behaviour, supporting
//! the paper's conjecture on the corpus.

use std::collections::{BTreeMap, VecDeque};

use transafety_interleaving::Behaviours;
use transafety_lang::{
    ExploreOptions, ModelExplorer, Program, ProgramExplorer, Step, ThreadConfig,
};
use transafety_syntactic::{transform_closure_filtered, RuleName};
use transafety_traces::{Action, Domain, Loc, Monitor, Value};

use crate::model::PsoModel;

/// Exhaustive explorer of the PSO executions of a program: per-thread,
/// **per-location** FIFO store buffers with forwarding; locks, unlocks
/// and volatile accesses drain all of the thread's buffers.
///
/// # Example
///
/// Message passing is broken by PSO (unlike TSO): the flag may become
/// visible before the data.
///
/// ```
/// use transafety_lang::{parse_program, ExploreOptions, ModelExplorer};
/// use transafety_tso::{PsoModel, TsoModel};
/// use transafety_traces::Value;
///
/// let src = "x := 1; flag := 1; || r1 := flag; r2 := x; print r1; print r2;";
/// let p = parse_program(src)?.program;
/// let opts = ExploreOptions::default();
/// let stale = vec![Value::new(1), Value::new(0)];
/// let tso = TsoModel::new(&p);
/// let pso = PsoModel::new(&p);
/// assert!(!ModelExplorer::new(&tso).behaviours(&opts).value.contains(&stale));
/// assert!(ModelExplorer::new(&pso).behaviours(&opts).value.contains(&stale));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub(crate) struct PsoExplorer<'p> {
    program: &'p Program,
}

/// A PSO machine state: per-thread configurations, per-thread
/// **per-location** FIFO store buffers, shared memory, and the monitor
/// holder table.
///
/// Public only as the opaque
/// [`MemoryModel::State`](transafety_lang::MemoryModel) of the
/// [`PsoModel`](crate::PsoModel) backend; its contents are an internal
/// encoding.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PsoState {
    threads: Vec<Option<ThreadConfig>>,
    buffers: Vec<BTreeMap<Loc, VecDeque<Value>>>,
    memory: BTreeMap<Loc, Value>,
    holders: BTreeMap<Monitor, usize>,
}

impl PsoState {
    /// The configuration of thread `k` (`None` before its start move).
    pub(crate) fn cfg(&self, k: usize) -> Option<&ThreadConfig> {
        self.threads[k].as_ref()
    }

    /// Does thread `k` have a buffered store to `loc`?
    pub(crate) fn has_buffered(&self, k: usize, loc: Loc) -> bool {
        self.buffers[k].get(&loc).is_some_and(|q| !q.is_empty())
    }
}

#[derive(Debug, Clone)]
pub(crate) enum PsoMove {
    Start {
        thread: usize,
    },
    Act {
        thread: usize,
        action: Action,
        next: ThreadConfig,
    },
    Flush {
        thread: usize,
        loc: Loc,
    },
}

impl<'p> PsoExplorer<'p> {
    /// Creates a PSO explorer for the program.
    #[must_use]
    pub(crate) fn new(program: &'p Program) -> Self {
        PsoExplorer { program }
    }

    pub(crate) fn initial(&self) -> PsoState {
        let n = self.program.thread_count();
        PsoState {
            threads: vec![None; n],
            buffers: vec![BTreeMap::new(); n],
            memory: BTreeMap::new(),
            holders: BTreeMap::new(),
        }
    }

    fn buffers_empty(state: &PsoState, k: usize) -> bool {
        state.buffers[k].values().all(VecDeque::is_empty)
    }

    fn read_value(state: &PsoState, k: usize, loc: Loc) -> Value {
        state.buffers[k]
            .get(&loc)
            .and_then(|q| q.back().copied())
            .unwrap_or_else(|| state.memory.get(&loc).copied().unwrap_or(Value::ZERO))
    }

    fn resolved_read(
        cfg: &ThreadConfig,
        v: Value,
        opts: &ExploreOptions,
    ) -> (Action, ThreadConfig) {
        let at_emit = cfg
            .tau_closure(&Domain::zero_to(0), opts.max_tau)
            .expect("closure already succeeded")
            .0;
        let Step::Emit(succ) = at_emit.step(&Domain::from_values([v])) else {
            unreachable!("closure stopped at an emitting statement")
        };
        succ.into_iter()
            .find(|(a, _)| a.value() == Some(v))
            .expect("domain contains v")
    }

    pub(crate) fn moves(
        &self,
        state: &PsoState,
        opts: &ExploreOptions,
        truncated: &mut bool,
    ) -> Vec<PsoMove> {
        let domain = Domain::zero_to(0);
        let mut out = Vec::new();
        for (k, per_loc) in state.buffers.iter().enumerate() {
            for (&loc, q) in per_loc {
                if !q.is_empty() {
                    out.push(PsoMove::Flush { thread: k, loc });
                }
            }
        }
        for (k, slot) in state.threads.iter().enumerate() {
            let Some(cfg) = slot else {
                out.push(PsoMove::Start { thread: k });
                continue;
            };
            let Some((_, step)) = cfg.tau_closure(&domain, opts.max_tau) else {
                *truncated = true;
                continue;
            };
            let Step::Emit(successors) = step else {
                continue;
            };
            let (first_action, _) = &successors[0];
            match *first_action {
                Action::Read { loc, .. } if !loc.is_volatile() => {
                    let v = Self::read_value(state, k, loc);
                    let (a, next) = Self::resolved_read(cfg, v, opts);
                    out.push(PsoMove::Act {
                        thread: k,
                        action: a,
                        next,
                    });
                }
                Action::Read { loc, .. } => {
                    if Self::buffers_empty(state, k) {
                        let v = state.memory.get(&loc).copied().unwrap_or(Value::ZERO);
                        let (a, next) = Self::resolved_read(cfg, v, opts);
                        out.push(PsoMove::Act {
                            thread: k,
                            action: a,
                            next,
                        });
                    }
                }
                Action::Write { loc, .. } if loc.is_volatile() => {
                    if Self::buffers_empty(state, k) {
                        let (a, next) = successors.into_iter().next().expect("one");
                        out.push(PsoMove::Act {
                            thread: k,
                            action: a,
                            next,
                        });
                    }
                }
                Action::Write { .. } | Action::External(_) => {
                    let (a, next) = successors.into_iter().next().expect("one");
                    out.push(PsoMove::Act {
                        thread: k,
                        action: a,
                        next,
                    });
                }
                Action::Lock(m) => {
                    let free = match state.holders.get(&m) {
                        None => true,
                        Some(&h) => h == k,
                    };
                    if free && Self::buffers_empty(state, k) {
                        let (a, next) = successors.into_iter().next().expect("one");
                        out.push(PsoMove::Act {
                            thread: k,
                            action: a,
                            next,
                        });
                    }
                }
                Action::Unlock(_) => {
                    if Self::buffers_empty(state, k) {
                        let (a, next) = successors.into_iter().next().expect("one");
                        out.push(PsoMove::Act {
                            thread: k,
                            action: a,
                            next,
                        });
                    }
                }
                Action::Start(_) => unreachable!("start is not emitted by thread bodies"),
            }
        }
        out
    }

    pub(crate) fn apply(&self, state: &PsoState, mv: &PsoMove) -> PsoState {
        let mut next = state.clone();
        match mv {
            PsoMove::Start { thread } => {
                next.threads[*thread] = Some(ThreadConfig::new(
                    self.program.thread(*thread).expect("in range").to_vec(),
                ));
            }
            PsoMove::Flush { thread, loc } => {
                if let Some(q) = next.buffers[*thread].get_mut(loc) {
                    if let Some(v) = q.pop_front() {
                        next.memory.insert(*loc, v);
                    }
                    if q.is_empty() {
                        next.buffers[*thread].remove(loc);
                    }
                }
            }
            PsoMove::Act {
                thread,
                action,
                next: cfg,
            } => {
                match *action {
                    Action::Write { loc, value } if !loc.is_volatile() => {
                        next.buffers[*thread]
                            .entry(loc)
                            .or_default()
                            .push_back(value);
                    }
                    Action::Write { loc, value } => {
                        next.memory.insert(loc, value);
                    }
                    Action::Lock(m) => {
                        next.holders.insert(m, *thread);
                    }
                    Action::Unlock(m) if cfg.monitor_nesting(m) == 0 => {
                        next.holders.remove(&m);
                    }
                    _ => {}
                }
                next.threads[*thread] = Some(if cfg.is_done() {
                    ThreadConfig::new(vec![])
                } else {
                    cfg.clone()
                });
            }
        }
        next
    }
}

/// The PSO rule fragment: TSO's fragment plus write→write reordering.
#[must_use]
pub fn pso_fragment(rule: RuleName) -> bool {
    rule.subsumed_under(transafety_traces::MemoryModelKind::Pso)
}

/// The result of [`explain_pso`] (mirrors
/// [`TsoExplanation`](crate::TsoExplanation)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PsoExplanation {
    /// The PSO behaviours of the program.
    pub pso: Behaviours,
    /// The SC behaviours of the untransformed program.
    pub sc: Behaviours,
    /// The union of SC behaviours over the PSO-fragment closure.
    pub closure_union: Behaviours,
    /// Closure size.
    pub closure_size: usize,
    /// Did PSO add non-SC behaviour?
    pub relaxed: bool,
    /// `pso ⊆ closure_union`.
    pub explained: bool,
    /// No exploration bound was hit.
    pub complete: bool,
}

/// Checks the §8 conjecture for PSO on one program: every PSO behaviour
/// is an SC behaviour of some member of the `{R-WR, R-WW, E-RAW, E-RAR,
/// T-MOV}` closure (up to `depth` steps).
#[must_use]
pub fn explain_pso(program: &Program, depth: usize, opts: &ExploreOptions) -> PsoExplanation {
    let pso_b = ModelExplorer::new(&PsoModel::new(program)).behaviours(opts);
    let sc_b = ProgramExplorer::new(program).behaviours(opts);
    let closure = transform_closure_filtered(program, depth, pso_fragment);
    let closure_size = closure.len();
    let mut union: Behaviours = Behaviours::new();
    let mut complete = pso_b.complete && sc_b.complete;
    for q in closure {
        let b = ProgramExplorer::new(&q).behaviours(opts);
        complete &= b.complete;
        union.extend(b.value);
    }
    let relaxed = !pso_b.value.is_subset(&sc_b.value);
    let explained = pso_b.value.is_subset(&union);
    PsoExplanation {
        pso: pso_b.value,
        sc: sc_b.value,
        closure_union: union,
        closure_size,
        relaxed,
        explained,
        complete,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TsoModel;
    use transafety_lang::parse_program;

    fn v(n: u32) -> Value {
        Value::new(n)
    }

    fn tso_behaviours(p: &Program, opts: &ExploreOptions) -> Behaviours {
        let model = TsoModel::new(p);
        ModelExplorer::new(&model).behaviours(opts).value
    }

    fn pso_behaviours(p: &Program, opts: &ExploreOptions) -> Behaviours {
        let model = PsoModel::new(p);
        ModelExplorer::new(&model).behaviours(opts).value
    }

    #[test]
    fn pso_includes_tso_behaviours_on_sb() {
        let p = parse_program("x := 1; r1 := y; print r1; || y := 1; r2 := x; print r2;")
            .unwrap()
            .program;
        let opts = ExploreOptions::default();
        let tso = tso_behaviours(&p, &opts);
        let pso = pso_behaviours(&p, &opts);
        assert!(tso.is_subset(&pso));
        assert!(pso.contains(&vec![v(0), v(0)]));
    }

    #[test]
    fn mp_breaks_under_pso_and_is_explained() {
        let p = parse_program("x := 1; flag := 1; || r1 := flag; r2 := x; print r1; print r2;")
            .unwrap()
            .program;
        let opts = ExploreOptions::default();
        let stale = vec![v(1), v(0)];
        assert!(!tso_behaviours(&p, &opts).contains(&stale));
        let e = explain_pso(&p, 3, &opts);
        assert!(e.complete);
        assert!(e.relaxed, "PSO reorders the two stores");
        assert!(e.pso.contains(&stale));
        assert!(e.explained, "R-WW explains the stale read");
    }

    #[test]
    fn volatile_flag_repairs_mp_under_pso() {
        let p = parse_program(
            "volatile flag; x := 1; flag := 1; \
             || r1 := flag; if (r1 == 1) { r2 := x; print r2; }",
        )
        .unwrap()
        .program;
        let opts = ExploreOptions::default();
        let pso = pso_behaviours(&p, &opts);
        assert!(
            !pso.contains(&vec![v(0)]),
            "fenced flag keeps the data visible"
        );
    }

    #[test]
    fn pso_explained_on_small_corpus() {
        for src in [
            "x := 1; r1 := y; print r1; || y := 1; r2 := x; print r2;",
            "x := 2; x := 1; || r1 := x; print r1;",
            "x := 1; y := 1; || r1 := y; r2 := x; print r1; print r2;",
        ] {
            let p = parse_program(src).unwrap().program;
            let e = explain_pso(&p, 3, &ExploreOptions::default());
            assert!(
                e.explained,
                "{src}: pso={:?} union={:?}",
                e.pso, e.closure_union
            );
        }
    }
}
