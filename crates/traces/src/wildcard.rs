//! Wildcard traces (§4 of the paper).

use std::fmt;

use crate::{Action, Domain, Loc, Trace, Value};

/// An element of a wildcard trace: either an ordinary action or a
/// wildcard read `R[l=*]`.
///
/// Wildcards express that the validity of a trace does not depend on the
/// value an (irrelevant) read observes; semantic elimination (§4) removes
/// such reads.
///
/// # Example
///
/// ```
/// use transafety_traces::{Action, Loc, Value, WildAction};
/// let x = Loc::normal(0);
/// let w = WildAction::wildcard_read(x);
/// assert!(w.matches(&Action::read(x, Value::new(7))));
/// assert!(!w.matches(&Action::write(x, Value::new(7))));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WildAction {
    /// An ordinary, concrete action.
    Concrete(Action),
    /// A wildcard read `R[l=*]` from the given location.
    WildcardRead(Loc),
}

impl WildAction {
    /// Creates a wildcard read of `loc`.
    #[must_use]
    pub const fn wildcard_read(loc: Loc) -> Self {
        WildAction::WildcardRead(loc)
    }

    /// Returns `true` for wildcard reads.
    #[must_use]
    pub const fn is_wildcard(&self) -> bool {
        matches!(self, WildAction::WildcardRead(_))
    }

    /// The concrete action, if this element is not a wildcard.
    #[must_use]
    pub const fn as_concrete(&self) -> Option<Action> {
        match self {
            WildAction::Concrete(a) => Some(*a),
            WildAction::WildcardRead(_) => None,
        }
    }

    /// The location, for wildcard reads and concrete memory accesses.
    #[must_use]
    pub fn loc(&self) -> Option<Loc> {
        match self {
            WildAction::Concrete(a) => a.loc(),
            WildAction::WildcardRead(l) => Some(*l),
        }
    }

    /// Does the given concrete action instantiate this element?
    ///
    /// A concrete action matches itself; a wildcard read `R[l=*]` matches
    /// any read from `l`.
    #[must_use]
    pub fn matches(&self, a: &Action) -> bool {
        match self {
            WildAction::Concrete(c) => c == a,
            WildAction::WildcardRead(l) => {
                matches!(a, Action::Read { loc, .. } if loc == l)
            }
        }
    }

    /// Is this element a read (concrete or wildcard) from a non-volatile
    /// location? Irrelevant-read elimination (Definition 1, case 3) only
    /// applies to such elements.
    #[must_use]
    pub fn is_normal_read(&self) -> bool {
        match self {
            WildAction::Concrete(a) => a.is_read() && a.is_normal_access(),
            WildAction::WildcardRead(l) => !l.is_volatile(),
        }
    }
}

impl From<Action> for WildAction {
    fn from(a: Action) -> Self {
        WildAction::Concrete(a)
    }
}

impl fmt::Display for WildAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WildAction::Concrete(a) => write!(f, "{a}"),
            WildAction::WildcardRead(l) => write!(f, "R[{l}=*]"),
        }
    }
}

/// A wildcard trace: a sequence of [`WildAction`]s (§4).
///
/// A concrete [`Trace`] is an *instance* of a wildcard trace if it is
/// obtained by replacing every wildcard with a read of some concrete
/// value; [`WildTrace::instances`] enumerates all instances over a finite
/// [`Domain`]. A wildcard trace *belongs-to* a traceset if all its
/// instances are members — see
/// [`Traceset::belongs_to`](crate::Traceset::belongs_to).
///
/// # Example
///
/// ```
/// use transafety_traces::{Action, Domain, Loc, ThreadId, Value, WildTrace};
/// let x = Loc::normal(0);
/// let wt = WildTrace::from_elements([
///     Action::start(ThreadId::new(0)).into(),
///     transafety_traces::WildAction::wildcard_read(x),
/// ]);
/// let d = Domain::zero_to(1);
/// assert_eq!(wt.instances(&d).count(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WildTrace {
    elements: Vec<WildAction>,
}

impl WildTrace {
    /// Creates an empty wildcard trace.
    #[must_use]
    pub fn new() -> Self {
        WildTrace {
            elements: Vec::new(),
        }
    }

    /// Creates a wildcard trace from its elements.
    #[must_use]
    pub fn from_elements<I: IntoIterator<Item = WildAction>>(elements: I) -> Self {
        WildTrace {
            elements: elements.into_iter().collect(),
        }
    }

    /// Lifts a concrete trace to a wildcard trace with no wildcards.
    #[must_use]
    pub fn from_trace(t: &Trace) -> Self {
        WildTrace {
            elements: t.iter().map(|a| WildAction::Concrete(*a)).collect(),
        }
    }

    /// The elements of the wildcard trace.
    #[must_use]
    pub fn elements(&self) -> &[WildAction] {
        &self.elements
    }

    /// The length of the wildcard trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Returns `true` for the empty wildcard trace.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Appends an element.
    pub fn push(&mut self, e: WildAction) {
        self.elements.push(e);
    }

    /// The indices of the wildcard positions.
    #[must_use]
    pub fn wildcard_positions(&self) -> Vec<usize> {
        self.elements
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.is_wildcard().then_some(i))
            .collect()
    }

    /// Returns `true` if the concrete trace `t` is an instance of this
    /// wildcard trace.
    #[must_use]
    pub fn is_instance(&self, t: &Trace) -> bool {
        self.len() == t.len()
            && self
                .elements
                .iter()
                .zip(t.iter())
                .all(|(e, a)| e.matches(a))
    }

    /// Instantiates the wildcard trace, reading the wildcard values from
    /// `values` in order.
    ///
    /// Returns `None` if `values` does not supply exactly one value per
    /// wildcard.
    #[must_use]
    pub fn instantiate(&self, values: &[Value]) -> Option<Trace> {
        let mut it = values.iter();
        let mut out = Trace::new();
        for e in &self.elements {
            match e {
                WildAction::Concrete(a) => out.push(*a),
                WildAction::WildcardRead(l) => out.push(Action::read(*l, *it.next()?)),
            }
        }
        if it.next().is_some() {
            return None;
        }
        Some(out)
    }

    /// Enumerates every instance of the wildcard trace over the domain:
    /// the cartesian product of `domain` over the wildcard positions.
    pub fn instances<'a>(&'a self, domain: &'a Domain) -> Instances<'a> {
        Instances {
            wild: self,
            domain,
            counter: vec![0; self.wildcard_positions().len()],
            done: domain.is_empty() && !self.wildcard_positions().is_empty(),
        }
    }

    /// The sublist of elements at the indices in `s` (cf. `t|S`).
    #[must_use]
    pub fn restrict<I: IntoIterator<Item = usize>>(&self, s: I) -> WildTrace {
        let mut idx: Vec<usize> = s.into_iter().filter(|&i| i < self.len()).collect();
        idx.sort_unstable();
        idx.dedup();
        WildTrace {
            elements: idx.into_iter().map(|i| self.elements[i]).collect(),
        }
    }

    /// The prefix of length `n`.
    #[must_use]
    pub fn prefix(&self, n: usize) -> WildTrace {
        WildTrace {
            elements: self.elements[..n.min(self.len())].to_vec(),
        }
    }
}

impl FromIterator<WildAction> for WildTrace {
    fn from_iter<I: IntoIterator<Item = WildAction>>(iter: I) -> Self {
        WildTrace::from_elements(iter)
    }
}

impl From<Trace> for WildTrace {
    fn from(t: Trace) -> Self {
        WildTrace::from_trace(&t)
    }
}

impl fmt::Display for WildTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.elements.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "]")
    }
}

/// Iterator over all instances of a [`WildTrace`] for a [`Domain`];
/// produced by [`WildTrace::instances`].
#[derive(Debug)]
pub struct Instances<'a> {
    wild: &'a WildTrace,
    domain: &'a Domain,
    counter: Vec<usize>,
    done: bool,
}

impl Iterator for Instances<'_> {
    type Item = Trace;

    fn next(&mut self) -> Option<Trace> {
        if self.done {
            return None;
        }
        let values: Vec<Value> = self
            .counter
            .iter()
            .map(|&i| self.domain.values()[i])
            .collect();
        let out = self.wild.instantiate(&values);
        // advance the mixed-radix counter
        let mut i = 0;
        loop {
            if i == self.counter.len() {
                self.done = true;
                break;
            }
            self.counter[i] += 1;
            if self.counter[i] < self.domain.len() {
                break;
            }
            self.counter[i] = 0;
            i += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadId;

    fn x() -> Loc {
        Loc::normal(0)
    }
    fn y() -> Loc {
        Loc::normal(1)
    }

    #[test]
    fn wildcard_matches_any_read_value() {
        let w = WildAction::wildcard_read(x());
        assert!(w.matches(&Action::read(x(), Value::ZERO)));
        assert!(w.matches(&Action::read(x(), Value::new(9))));
        assert!(!w.matches(&Action::read(y(), Value::ZERO)));
        assert!(!w.matches(&Action::write(x(), Value::ZERO)));
    }

    #[test]
    fn concrete_matches_only_itself() {
        let a = Action::write(x(), Value::new(1));
        let c = WildAction::from(a);
        assert!(c.matches(&a));
        assert!(!c.matches(&Action::write(x(), Value::new(2))));
    }

    #[test]
    fn instance_enumeration_counts() {
        // [S(0), R[x=*], W[y=1], R[y=*]] over {0,1,2}: 9 instances
        let wt = WildTrace::from_elements([
            Action::start(ThreadId::new(0)).into(),
            WildAction::wildcard_read(x()),
            Action::write(y(), Value::new(1)).into(),
            WildAction::wildcard_read(y()),
        ]);
        let d = Domain::zero_to(2);
        let all: Vec<Trace> = wt.instances(&d).collect();
        assert_eq!(all.len(), 9);
        for t in &all {
            assert!(wt.is_instance(t));
            assert_eq!(t.len(), 4);
        }
        // instances are pairwise distinct
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 9);
    }

    #[test]
    fn no_wildcards_means_single_instance() {
        let t = Trace::from_actions([Action::start(ThreadId::new(0))]);
        let wt = WildTrace::from_trace(&t);
        let d = Domain::zero_to(5);
        let all: Vec<Trace> = wt.instances(&d).collect();
        assert_eq!(all, vec![t]);
    }

    #[test]
    fn instantiate_checks_arity() {
        let wt = WildTrace::from_elements([WildAction::wildcard_read(x())]);
        assert!(wt.instantiate(&[]).is_none());
        assert!(wt.instantiate(&[Value::ZERO, Value::ZERO]).is_none());
        let t = wt.instantiate(&[Value::new(4)]).unwrap();
        assert_eq!(t[0], Action::read(x(), Value::new(4)));
    }

    #[test]
    fn is_instance_rejects_length_mismatch() {
        let wt = WildTrace::from_elements([WildAction::wildcard_read(x())]);
        assert!(!wt.is_instance(&Trace::new()));
    }

    #[test]
    fn display_uses_star_notation() {
        let wt = WildTrace::from_elements([
            Action::start(ThreadId::new(0)).into(),
            WildAction::wildcard_read(x()),
        ]);
        assert_eq!(wt.to_string(), "[S(0), R[l0=*]]");
    }

    #[test]
    fn normal_read_classification() {
        assert!(WildAction::wildcard_read(x()).is_normal_read());
        assert!(!WildAction::wildcard_read(Loc::volatile(0)).is_normal_read());
        assert!(WildAction::from(Action::read(x(), Value::ZERO)).is_normal_read());
        assert!(!WildAction::from(Action::write(x(), Value::ZERO)).is_normal_read());
    }

    #[test]
    fn restrict_and_prefix() {
        let wt = WildTrace::from_elements([
            Action::start(ThreadId::new(0)).into(),
            WildAction::wildcard_read(x()),
            Action::external(Value::new(1)).into(),
        ]);
        assert_eq!(wt.prefix(2).len(), 2);
        assert_eq!(wt.restrict([0, 2]).len(), 2);
        assert_eq!(
            wt.restrict([0, 2]).elements()[1],
            Action::external(Value::new(1)).into()
        );
    }
}
