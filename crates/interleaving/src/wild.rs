//! Wildcard interleavings (§4 of the paper) and their unique instances.

use std::fmt;

use transafety_traces::{Action, Domain, Loc, ThreadId, Traceset, Value, WildAction, WildTrace};

use crate::{Event, Interleaving};

/// One element of a wildcard interleaving: a thread paired with a
/// [`WildAction`].
///
/// # Example
///
/// ```
/// use transafety_traces::{Loc, ThreadId, WildAction};
/// use transafety_interleaving::WildEvent;
/// let e = WildEvent::new(ThreadId::new(0), WildAction::wildcard_read(Loc::normal(0)));
/// assert!(e.wild_action().is_wildcard());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WildEvent {
    thread: ThreadId,
    action: WildAction,
}

impl WildEvent {
    /// Creates the pair `(thread, wild action)`.
    #[must_use]
    pub const fn new(thread: ThreadId, action: WildAction) -> Self {
        WildEvent { thread, action }
    }

    /// The executing thread.
    #[must_use]
    pub const fn thread(&self) -> ThreadId {
        self.thread
    }

    /// The (possibly wildcard) action.
    #[must_use]
    pub const fn wild_action(&self) -> WildAction {
        self.action
    }
}

impl From<Event> for WildEvent {
    fn from(e: Event) -> Self {
        WildEvent {
            thread: e.thread(),
            action: e.action().into(),
        }
    }
}

impl fmt::Display for WildEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.thread.index(), self.action)
    }
}

/// A wildcard interleaving: an interleaving where some actions are
/// wildcard reads (§4).
///
/// Unlike wildcard *traces*, the instance of a wildcard interleaving is
/// **unique**: each wildcard read is replaced by a read of the value of
/// the most recent write to the same location in the instantiated prefix
/// (or the default value if there is none). See
/// [`WildInterleaving::instance`].
///
/// # Example
///
/// ```
/// use transafety_traces::{Action, Loc, ThreadId, Value, WildAction};
/// use transafety_interleaving::{WildEvent, WildInterleaving};
/// let x = Loc::normal(0);
/// let t0 = ThreadId::new(0);
/// let wi = WildInterleaving::from_events([
///     WildEvent::new(t0, Action::start(t0).into()),
///     WildEvent::new(t0, Action::write(x, Value::new(2)).into()),
///     WildEvent::new(t0, WildAction::wildcard_read(x)),
/// ]);
/// let i = wi.instance();
/// assert_eq!(i[2].action(), Action::read(x, Value::new(2)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WildInterleaving {
    events: Vec<WildEvent>,
}

impl WildInterleaving {
    /// Creates an empty wildcard interleaving.
    #[must_use]
    pub fn new() -> Self {
        WildInterleaving { events: Vec::new() }
    }

    /// Creates a wildcard interleaving from events.
    #[must_use]
    pub fn from_events<I: IntoIterator<Item = WildEvent>>(events: I) -> Self {
        WildInterleaving {
            events: events.into_iter().collect(),
        }
    }

    /// Lifts a concrete interleaving (no wildcards).
    #[must_use]
    pub fn from_interleaving(i: &Interleaving) -> Self {
        WildInterleaving {
            events: i.iter().map(|e| WildEvent::from(*e)).collect(),
        }
    }

    /// The events as a slice.
    #[must_use]
    pub fn events(&self) -> &[WildEvent] {
        &self.events
    }

    /// The length of the wildcard interleaving.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` for the empty wildcard interleaving.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends an event.
    pub fn push(&mut self, e: WildEvent) {
        self.events.push(e);
    }

    /// The (wildcard) trace of a thread.
    #[must_use]
    pub fn trace_of(&self, thread: ThreadId) -> WildTrace {
        self.events
            .iter()
            .filter(|e| e.thread() == thread)
            .map(WildEvent::wild_action)
            .collect()
    }

    /// The threads occurring in the wildcard interleaving, sorted.
    #[must_use]
    pub fn threads(&self) -> Vec<ThreadId> {
        let mut out: Vec<ThreadId> = self.events.iter().map(WildEvent::thread).collect();
        out.sort();
        out.dedup();
        out
    }

    /// The unique instance (§4): every wildcard read observes the most
    /// recent write to its location in the instantiated prefix, or the
    /// default value if none exists.
    #[must_use]
    pub fn instance(&self) -> Interleaving {
        let mut memory: std::collections::BTreeMap<Loc, Value> = Default::default();
        let mut out = Interleaving::new();
        for e in &self.events {
            let action = match e.wild_action() {
                WildAction::Concrete(a) => {
                    if let Action::Write { loc, value } = a {
                        memory.insert(loc, value);
                    }
                    a
                }
                WildAction::WildcardRead(l) => {
                    Action::read(l, memory.get(&l).copied().unwrap_or(Value::ZERO))
                }
            };
            out.push(Event::new(e.thread(), action));
        }
        out
    }

    /// The §4 belongs-to judgement for wildcard interleavings: the
    /// (wildcard) trace of every thread belongs to `t` over `domain`.
    #[must_use]
    pub fn belongs_to(&self, t: &Traceset, domain: &Domain) -> bool {
        self.threads()
            .iter()
            .all(|&th| t.belongs_to(&self.trace_of(th), domain))
    }
}

impl FromIterator<WildEvent> for WildInterleaving {
    fn from_iter<I: IntoIterator<Item = WildEvent>>(iter: I) -> Self {
        WildInterleaving::from_events(iter)
    }
}

impl fmt::Display for WildInterleaving {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }
    fn v(n: u32) -> Value {
        Value::new(n)
    }

    #[test]
    fn instance_reads_most_recent_write() {
        let x = Loc::normal(0);
        let wi = WildInterleaving::from_events([
            WildEvent::new(t(0), Action::start(t(0)).into()),
            WildEvent::new(t(1), Action::start(t(1)).into()),
            WildEvent::new(t(0), Action::write(x, v(1)).into()),
            WildEvent::new(t(1), WildAction::wildcard_read(x)),
            WildEvent::new(t(0), Action::write(x, v(2)).into()),
            WildEvent::new(t(1), WildAction::wildcard_read(x)),
        ]);
        let i = wi.instance();
        assert_eq!(i[3].action(), Action::read(x, v(1)));
        assert_eq!(i[5].action(), Action::read(x, v(2)));
        assert!(i.is_sequentially_consistent());
    }

    #[test]
    fn instance_defaults_to_zero() {
        let x = Loc::normal(0);
        let wi = WildInterleaving::from_events([
            WildEvent::new(t(0), Action::start(t(0)).into()),
            WildEvent::new(t(0), WildAction::wildcard_read(x)),
        ]);
        assert_eq!(wi.instance()[1].action(), Action::read(x, Value::ZERO));
    }

    #[test]
    fn trace_projection_keeps_wildcards() {
        let x = Loc::normal(0);
        let wi = WildInterleaving::from_events([
            WildEvent::new(t(0), Action::start(t(0)).into()),
            WildEvent::new(t(1), Action::start(t(1)).into()),
            WildEvent::new(t(0), WildAction::wildcard_read(x)),
        ]);
        let tr = wi.trace_of(t(0));
        assert_eq!(tr.len(), 2);
        assert!(tr.elements()[1].is_wildcard());
        assert_eq!(wi.threads(), vec![t(0), t(1)]);
    }

    #[test]
    fn belongs_to_checks_every_thread() {
        use transafety_traces::{Trace, Traceset};
        let x = Loc::normal(0);
        let d = Domain::zero_to(1);
        let mut ts = Traceset::new();
        for val in d.iter() {
            ts.insert(Trace::from_actions([
                Action::start(t(0)),
                Action::read(x, val),
            ]))
            .unwrap();
        }
        let wi = WildInterleaving::from_events([
            WildEvent::new(t(0), Action::start(t(0)).into()),
            WildEvent::new(t(0), WildAction::wildcard_read(x)),
        ]);
        assert!(wi.belongs_to(&ts, &d));
        assert!(!wi.belongs_to(&ts, &Domain::zero_to(2)));
    }

    #[test]
    fn lifting_concrete_interleavings() {
        let i = Interleaving::from_events([Event::new(t(0), Action::start(t(0)))]);
        let wi = WildInterleaving::from_interleaving(&i);
        assert_eq!(wi.instance(), i);
    }

    #[test]
    fn display_form() {
        let x = Loc::normal(0);
        let wi =
            WildInterleaving::from_events([WildEvent::new(t(0), WildAction::wildcard_read(x))]);
        assert_eq!(wi.to_string(), "[(0, R[l0=*])]");
    }
}
