//! The unified analysis configuration — one builder-style type carrying
//! every knob of the checker pipeline: the read-value domain, the
//! extraction/exploration/elimination bounds, the interleaving cap and
//! the worker count for the parallel exploration engine.
//!
//! [`Analysis`] subsumes the older trio of option types
//! (`CheckOptions`, plus the engine-level
//! [`ExploreOptions`](transafety_lang::ExploreOptions) and
//! [`ExploreLimits`](transafety_interleaving::ExploreLimits), which it
//! projects via its `explore` field and [`Analysis::limits`]).
//! `CheckOptions` remains as a deprecated alias so existing code keeps
//! compiling.

use std::time::Duration;

use transafety_interleaving::{
    available_jobs, Behaviours, Budget, BudgetGuard, CancelToken, Completeness, ExploreLimits,
    ExploreMetrics, ExploreStats, RaceWitness,
};
use transafety_lang::{
    Bounded, ExploreOptions, ExtractOptions, MemoryModel, ModelExplorer, ModelRaceWitness, Program,
    ProgramExplorer, ScModel, ScheduleStep,
};
use transafety_traces::{Domain, MemoryModelKind};
use transafety_transform::EliminationOptions;
use transafety_tso::{PsoModel, TsoModel};

/// Bounds, domains and parallelism used by every checker entry point.
///
/// Build one fluently and either pass it to the theorem checkers
/// ([`drf_guarantee`](crate::drf_guarantee), …) or call
/// [`run`](Analysis::run) for a one-shot whole-program report:
///
/// # Example
///
/// ```
/// use transafety_checker::Analysis;
/// use transafety_lang::parse_program;
/// use transafety_traces::Domain;
///
/// let program = parse_program("volatile v; v := 1; || r0 := v; print r0;")?.program;
/// let report = Analysis::new()
///     .jobs(2)
///     .max_interleavings(1_000_000)
///     .domain(Domain::zero_to(1))
///     .run(&program);
/// assert!(report.is_data_race_free());
/// assert!(report.behaviours.complete);
/// assert!(report.completeness.is_complete());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Analysis {
    /// The finite read-value domain for traceset extraction and
    /// wildcard-instance enumeration.
    pub domain: Domain,
    /// Bounds for traceset extraction.
    pub extract: ExtractOptions,
    /// Bounds for direct program exploration.
    pub explore: ExploreOptions,
    /// Bounds for the semantic elimination witness search.
    pub elimination: EliminationOptions,
    /// The memory model the exploration engines run under. The default
    /// [`MemoryModelKind::Sc`] is the paper's baseline semantics;
    /// [`Tso`](MemoryModelKind::Tso) and [`Pso`](MemoryModelKind::Pso)
    /// route every phase through the buffered operational machines of
    /// §8. All budgets, panic isolation and metrics apply uniformly;
    /// the partial-order reduction stays enabled only where its
    /// soundness argument holds (SC).
    pub model: MemoryModelKind,
    /// Worker threads for the parallel exploration engine. `1` (the
    /// default) selects the sequential reference driver; higher values
    /// fan exploration out over a work-stealing pool. Results are
    /// identical either way.
    pub jobs: usize,
    /// Resource budget for the analysis: wall-clock deadline, interned
    /// state cap and the interleaving-enumeration cap. Exceeding any
    /// bound is reported as truncation, never silently.
    pub budget: Budget,
    /// Collect exploration metrics (counters, phase timings, event
    /// trace) into [`AnalysisReport::stats`]. Off by default: disabled
    /// metrics are a handful of untaken branches on the hot paths and
    /// the report carries an all-zero [`ExploreStats`]. Never affects
    /// verdicts, behaviours or witnesses.
    pub metrics: bool,
}

impl Default for Analysis {
    fn default() -> Self {
        Analysis {
            domain: Domain::default(),
            extract: ExtractOptions::default(),
            explore: ExploreOptions::default(),
            elimination: EliminationOptions::default(),
            model: MemoryModelKind::Sc,
            jobs: 1,
            budget: Budget::default(),
            metrics: false,
        }
    }
}

impl Analysis {
    /// A default configuration (sequential, default domain and bounds).
    #[must_use]
    pub fn new() -> Self {
        Analysis::default()
    }

    /// A configuration with the given read-value domain (the historical
    /// `CheckOptions::with_domain` constructor).
    #[must_use]
    pub fn with_domain(domain: Domain) -> Self {
        Analysis {
            domain,
            ..Analysis::default()
        }
    }

    /// Sets the read-value domain.
    #[must_use]
    pub fn domain(mut self, domain: Domain) -> Self {
        self.domain = domain;
        self
    }

    /// Selects the memory model the analysis explores under (the
    /// `drfcheck --model` flag). See [`Analysis::model`](Analysis#structfield.model).
    #[must_use]
    pub fn model(mut self, model: MemoryModelKind) -> Self {
        self.model = model;
        self
    }

    /// Sets the worker count (clamped to at least 1).
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Uses every available core (`std::thread::available_parallelism`).
    #[must_use]
    pub fn auto_jobs(self) -> Self {
        let jobs = available_jobs();
        self.jobs(jobs)
    }

    /// Sets the whole resource budget at once.
    #[must_use]
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the wall-clock deadline for the whole analysis.
    #[must_use]
    pub fn timeout(mut self, deadline: Duration) -> Self {
        self.budget.deadline = Some(deadline);
        self
    }

    /// Sets the explored-state cap (an approximate memory budget).
    #[must_use]
    pub fn max_states(mut self, max: usize) -> Self {
        self.budget.max_states = Some(max);
        self
    }

    /// Sets the interleaving-enumeration cap.
    #[must_use]
    pub fn max_interleavings(mut self, max: usize) -> Self {
        self.budget.max_interleavings = max;
        self
    }

    /// Sets the per-execution action bound for direct exploration.
    #[must_use]
    pub fn max_actions(mut self, max: usize) -> Self {
        self.explore.max_actions = max;
        self
    }

    /// Sets the silent-step bound between two actions of one thread.
    #[must_use]
    pub fn max_tau(mut self, max: usize) -> Self {
        self.explore.max_tau = max;
        self
    }

    /// Enables or disables the dynamic partial-order reduction
    /// (default on). With POR the searches explore one canonical
    /// interleaving of commuting thread-local actions; verdicts and
    /// behaviour sets are unchanged, only `states_explored` shrinks.
    /// Loops are handled by a size-decreasing cycle proviso (ample
    /// moves must shrink the remaining code, so a cycle of ample moves
    /// is impossible), and the buffered models additionally reduce
    /// commuting flushes during the behaviour phase; `por(false)`
    /// forces the full unreduced exploration everywhere (the
    /// `drfcheck --no-por` escape hatch).
    #[must_use]
    pub fn por(mut self, enabled: bool) -> Self {
        self.explore.por = enabled;
        self
    }

    /// Enables or disables the await-aware stutter reduction (default
    /// on). With it, a failed re-read inside a recognised spin-await
    /// loop is collapsed into a single stutter state with value-change
    /// wakeup, and a program whose only loops are awaits is explored
    /// without an action bound — busy-wait programs get complete
    /// verdicts instead of budget-truncated ones. Verdicts and
    /// behaviour sets are unchanged wherever the unreduced exploration
    /// completes; the race phase never collapses, so spin-read race
    /// witnesses are unaffected. `awaits(false)` forces the unreduced
    /// behaviour (the `drfcheck --no-await` escape hatch).
    #[must_use]
    pub fn awaits(mut self, enabled: bool) -> Self {
        self.explore.awaits = enabled;
        self
    }

    /// Enables or disables metrics collection (default off). See
    /// [`Analysis::metrics`](Analysis#structfield.metrics).
    #[must_use]
    pub fn metrics(mut self, enabled: bool) -> Self {
        self.metrics = enabled;
        self
    }

    /// The interleaving-level limits this configuration projects to
    /// (for calling [`Explorer`](transafety_interleaving::Explorer)
    /// directly).
    #[must_use]
    pub fn limits(&self) -> ExploreLimits {
        ExploreLimits {
            max_interleavings: self.budget.max_interleavings,
        }
    }

    /// Runs the full single-program analysis — behaviours, race search
    /// and state census — on [`jobs`](Analysis::jobs) workers, under
    /// [`budget`](Analysis::budget).
    #[must_use]
    pub fn run(&self, program: &Program) -> AnalysisReport {
        self.run_with_cancel(program, CancelToken::new())
    }

    /// [`run`](Analysis::run) with an externally held [`CancelToken`]:
    /// cancelling the token (from a signal handler, a watchdog thread,
    /// another task…) stops the analysis at the next cooperative check
    /// and the report comes back
    /// [`Truncated`](Completeness::Truncated) instead of the process
    /// hanging or dying.
    ///
    /// Every exit from this method is graceful: exceeding a budget
    /// bound, being cancelled, or losing a parallel worker to a panic
    /// (quarantined, siblings cancelled, computation retried on the
    /// sequential reference engine) all produce a report that says
    /// exactly how far the analysis got and what stopped it.
    #[must_use]
    pub fn run_with_cancel(&self, program: &Program, cancel: CancelToken) -> AnalysisReport {
        let collector = if self.metrics {
            ExploreMetrics::collector()
        } else {
            ExploreMetrics::disabled()
        };
        let guard = BudgetGuard::with_metrics(&self.budget, cancel, collector.clone());
        let (behaviours, model_race, reachable_states) = match self.model {
            MemoryModelKind::Sc => {
                let ex = ProgramExplorer::new(program);
                let model = ScModel::new(&ex);
                run_phases(
                    &ModelExplorer::new(&model),
                    &self.explore,
                    self.jobs,
                    &guard,
                )
            }
            MemoryModelKind::Tso => {
                let model = TsoModel::new(program);
                run_phases(
                    &ModelExplorer::new(&model),
                    &self.explore,
                    self.jobs,
                    &guard,
                )
            }
            MemoryModelKind::Pso => {
                let model = PsoModel::new(program);
                run_phases(
                    &ModelExplorer::new(&model),
                    &self.explore,
                    self.jobs,
                    &guard,
                )
            }
        };
        let (race, race_schedule) = match model_race {
            Some(w) => (Some(w.witness), Some(w.schedule)),
            None => (None, None),
        };
        let completeness = match guard.trip_reason() {
            None => Completeness::Complete,
            Some(reason) => Completeness::Truncated { reason },
        };
        let verdict = if race.is_some() {
            // A witness in hand is conclusive no matter what was cut
            // short afterwards.
            Verdict::Racy
        } else if completeness.is_complete() {
            Verdict::DrfProven
        } else {
            Verdict::Unknown
        };
        let mut stats = collector.snapshot();
        if stats.enabled {
            // Stamp the backend onto a *live* collector only: a
            // metrics-off run must keep returning pristine default
            // stats (the observer invariant).
            stats.model = self.model.as_str().to_string();
        }
        AnalysisReport {
            behaviours,
            race,
            race_schedule,
            reachable_states,
            model: self.model,
            jobs: self.jobs,
            completeness,
            verdict,
            states_explored: guard.states(),
            faults: guard.faults(),
            elapsed: guard.elapsed(),
            stats,
        }
    }
}

/// Runs the three analysis phases — behaviours, race search, state
/// census — through one [`MemoryModel`] backend, sharing the budget
/// governor across all of them exactly as the historical SC pipeline
/// did.
fn run_phases<M: MemoryModel>(
    mx: &ModelExplorer<'_, M>,
    explore: &ExploreOptions,
    jobs: usize,
    guard: &BudgetGuard,
) -> (Bounded<Behaviours>, Option<ModelRaceWitness>, usize) {
    let behaviours = mx.behaviours_par_governed(explore, jobs, guard);
    let race = mx.race_witness_par_governed(explore, jobs, guard);
    let reachable = mx.count_reachable_states_par_governed(explore, jobs, guard);
    (behaviours, race, reachable)
}

/// The three-valued outcome of the race analysis: a bounded checker
/// must be able to say "I don't know" when its budget ran out, or a
/// truncated search would be laundered into a soundness claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// A data race witness was found. Conclusive: a witness is a real
    /// execution, however the search was bounded.
    Racy,
    /// The exhaustive search completed without finding a race: the
    /// program is data race free under the configured domain. Only ever
    /// reported alongside [`Completeness::Complete`].
    DrfProven,
    /// The search was truncated before it could prove freedom — the
    /// program may or may not race.
    Unknown,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Verdict::Racy => "racy",
            Verdict::DrfProven => "data race free (proven)",
            Verdict::Unknown => "unknown (analysis truncated)",
        })
    }
}

/// The result of [`Analysis::run`]: everything the checker can say
/// about one program under the configured bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisReport {
    /// The behaviours of the program's SC executions (with the
    /// completeness flag of the bounded exploration).
    pub behaviours: Bounded<Behaviours>,
    /// A data race witness, if the program races.
    pub race: Option<RaceWitness>,
    /// The full per-model schedule reaching the race, including the
    /// model-internal steps (store-buffer flushes under TSO/PSO) that
    /// the [`RaceWitness`] event path abstracts away. `Some` exactly
    /// when [`race`](AnalysisReport::race) is.
    pub race_schedule: Option<Vec<ScheduleStep>>,
    /// The number of distinct reachable program states (model states:
    /// under TSO/PSO this counts buffer contents too).
    pub reachable_states: usize,
    /// The memory model the analysis explored under.
    pub model: MemoryModelKind,
    /// The worker count the analysis ran with.
    pub jobs: usize,
    /// Did the analysis run to completion, and if not, which bound (or
    /// fault) stopped it?
    pub completeness: Completeness,
    /// The three-valued race verdict.
    pub verdict: Verdict,
    /// States counted by the budget governor across all phases (`0`
    /// when the budget is unlimited — the inert governor skips the
    /// bookkeeping).
    pub states_explored: usize,
    /// Quarantined worker panics recovered by degrading to the
    /// sequential engine. Non-zero means the numbers in this report
    /// were produced the slow, safe way.
    pub faults: usize,
    /// Wall-clock time the analysis took.
    pub elapsed: Duration,
    /// Exploration metrics, populated when the analysis ran with
    /// [`Analysis::metrics`]`(true)`; all-zero (with
    /// [`ExploreStats::enabled`] `false`) otherwise.
    pub stats: ExploreStats,
}

impl AnalysisReport {
    /// Is the program data race free (§3)?
    ///
    /// `true` merely means *no witness was found*; consult
    /// [`verdict`](AnalysisReport::verdict) to distinguish a proof
    /// ([`Verdict::DrfProven`]) from a truncated search
    /// ([`Verdict::Unknown`]).
    #[must_use]
    pub fn is_data_race_free(&self) -> bool {
        self.race.is_none()
    }
}

/// The pre-0.2 name of [`Analysis`].
#[deprecated(note = "renamed to `Analysis`; use `Analysis::new()` and its builder methods")]
pub type CheckOptions = Analysis;

#[cfg(test)]
mod tests {
    use super::*;
    use transafety_lang::parse_program;
    use transafety_traces::Value;

    #[test]
    fn builder_round_trip() {
        let a = Analysis::new()
            .jobs(8)
            .max_interleavings(123)
            .max_actions(17)
            .max_tau(99)
            .domain(Domain::zero_to(3));
        assert_eq!(a.jobs, 8);
        assert_eq!(a.budget.max_interleavings, 123);
        assert_eq!(a.limits().max_interleavings, 123);
        assert_eq!(a.explore.max_actions, 17);
        assert_eq!(a.explore.max_tau, 99);
        assert_eq!(a.domain.len(), 4);
    }

    #[test]
    fn budget_builders_compose() {
        let a = Analysis::new()
            .timeout(Duration::from_secs(7))
            .max_states(42)
            .max_interleavings(9);
        assert_eq!(a.budget.deadline, Some(Duration::from_secs(7)));
        assert_eq!(a.budget.max_states, Some(42));
        assert_eq!(a.budget.max_interleavings, 9);
        let b = Analysis::new().budget(Budget::unlimited().max_states(5));
        assert_eq!(b.budget.max_states, Some(5));
    }

    #[test]
    fn jobs_clamped_to_one() {
        assert_eq!(Analysis::new().jobs(0).jobs, 1);
        assert!(Analysis::new().auto_jobs().jobs >= 1);
    }

    #[test]
    fn run_report_is_jobs_independent() {
        let program = parse_program("x := 1; || r0 := x; print r0;")
            .unwrap()
            .program;
        let seq = Analysis::new().run(&program);
        let par = Analysis::new().jobs(4).run(&program);
        assert_eq!(seq.behaviours, par.behaviours);
        assert_eq!(
            seq.race, par.race,
            "witness is canonical, not schedule-dependent"
        );
        assert_eq!(seq.reachable_states, par.reachable_states);
        assert_eq!(seq.completeness, par.completeness);
        assert_eq!(seq.verdict, par.verdict);
        assert!(!par.is_data_race_free());
        assert_eq!(par.verdict, Verdict::Racy);
        assert!(par.behaviours.value.contains(&vec![Value::new(1)]));
    }

    #[test]
    fn state_cap_yields_truncated_unknown() {
        let program = parse_program("x := 1; || r0 := x; r1 := x; print r0;")
            .unwrap()
            .program;
        let report = Analysis::new().max_states(1).run(&program);
        assert!(!report.completeness.is_complete());
        assert_ne!(report.verdict, Verdict::DrfProven);
        assert!(report.states_explored >= 1);
    }

    #[test]
    fn pre_cancelled_token_truncates_immediately() {
        use transafety_interleaving::TruncationReason;
        let program = parse_program("x := 1; || r0 := x; print r0;")
            .unwrap()
            .program;
        let token = CancelToken::new();
        token.cancel();
        let report = Analysis::new().run_with_cancel(&program, token);
        assert_eq!(
            report.completeness,
            Completeness::Truncated {
                reason: TruncationReason::Cancelled
            }
        );
        assert_eq!(report.verdict, Verdict::Unknown);
    }

    #[test]
    fn model_dispatch_reaches_tso_behaviours() {
        // Store buffering: the 0,0 outcome exists under TSO, not SC.
        let program = parse_program("x := 1; r1 := y; print r1; || y := 1; r2 := x; print r2;")
            .unwrap()
            .program;
        let zz = vec![Value::new(0), Value::new(0)];
        let sc = Analysis::new().run(&program);
        let tso = Analysis::new().model(MemoryModelKind::Tso).run(&program);
        assert_eq!(sc.model, MemoryModelKind::Sc);
        assert_eq!(tso.model, MemoryModelKind::Tso);
        assert!(sc.behaviours.complete && tso.behaviours.complete);
        assert!(!sc.behaviours.value.contains(&zz));
        assert!(tso.behaviours.value.contains(&zz));
        // Model states include buffer contents, so the census grows.
        assert!(tso.reachable_states > sc.reachable_states);
    }

    #[test]
    fn race_schedule_accompanies_the_witness() {
        let racy = parse_program("x := 1; || r0 := x; print r0;")
            .unwrap()
            .program;
        for model in MemoryModelKind::ALL {
            let report = Analysis::new().model(model).run(&racy);
            assert_eq!(report.verdict, Verdict::Racy, "{model}");
            let schedule = report.race_schedule.as_ref().expect("racy ⇒ schedule");
            assert!(!schedule.is_empty());
        }
        let drf = parse_program("volatile v; v := 1; || r0 := v; print r0;")
            .unwrap()
            .program;
        let report = Analysis::new().model(MemoryModelKind::Tso).run(&drf);
        assert!(report.is_data_race_free());
        assert!(report.race_schedule.is_none());
    }

    #[test]
    fn stats_record_the_model() {
        let program = parse_program("x := 1; || r0 := x; print r0;")
            .unwrap()
            .program;
        let report = Analysis::new()
            .metrics(true)
            .model(MemoryModelKind::Pso)
            .run(&program);
        assert_eq!(report.stats.model, "pso");
        assert!(report.stats.to_json().contains("\"model\":\"pso\""));
        let sc = Analysis::new().metrics(true).run(&program);
        assert_eq!(sc.stats.model, "sc");
    }

    #[test]
    fn deprecated_alias_still_works() {
        #[allow(deprecated)]
        let opts: CheckOptions = CheckOptions::with_domain(Domain::zero_to(1));
        assert_eq!(opts.domain.len(), 2);
        assert_eq!(opts.jobs, 1);
    }
}
