//! The congruence-closure rewrite engine (the Fig. 9 transformation
//! template) and transformation-sequence enumeration.

use std::collections::BTreeSet;
use std::fmt;

use transafety_lang::{Program, Stmt};

use crate::rules::{pair_rewrites, segment_rewrites, RuleName};

/// The longest intervening statement sequence the elimination rules scan
/// over (the Fig. 10 `S`, generalised to a segment).
const MAX_SEGMENT: usize = 4;

/// One applicable single-step rewrite of a program: the rule, a
/// human-readable site, and the resulting program.
///
/// # Example
///
/// ```
/// use transafety_lang::parse_program;
/// use transafety_syntactic::{all_rewrites, RuleName};
/// let p = parse_program("r1 := x; r2 := x; print r2;")?.program;
/// let rewrites = all_rewrites(&p);
/// assert!(rewrites.iter().any(|r| r.rule == RuleName::ERar));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rewrite {
    /// The rule applied.
    pub rule: RuleName,
    /// The thread the rewrite happened in.
    pub thread: usize,
    /// A dotted path into the nested statement structure (list indices).
    pub site: String,
    /// The whole program after the rewrite.
    pub result: Program,
}

impl fmt::Display for Rewrite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at thread {} site {}",
            self.rule, self.thread, self.site
        )
    }
}

/// Which rule families to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleSet {
    /// Fig. 10 elimination rules plus the trace-preserving moves.
    Eliminations,
    /// Fig. 11 reordering rules plus the trace-preserving moves.
    Reorderings,
    /// All safe rules.
    All,
}

impl RuleSet {
    fn admits(self, r: RuleName) -> bool {
        match self {
            RuleSet::Eliminations => r.is_elimination() || r.is_trace_preserving(),
            RuleSet::Reorderings => r.is_reordering() || r.is_trace_preserving(),
            RuleSet::All => true,
        }
    }
}

/// All one-step rewrites of a statement list (including inside nested
/// blocks, branches and loop bodies — the Fig. 9 congruence rules).
fn list_rewrites(stmts: &[Stmt], set: RuleSet, site: &str) -> Vec<(RuleName, String, Vec<Stmt>)> {
    let mut out = Vec::new();
    // window rewrites at this level
    for i in 0..stmts.len() {
        if i + 1 < stmts.len() {
            for (rule, repl) in pair_rewrites(&stmts[i], &stmts[i + 1]) {
                if !set.admits(rule) {
                    continue;
                }
                let mut new = stmts.to_vec();
                new.splice(i..i + 2, repl);
                out.push((rule, format!("{site}{i}"), new));
            }
        }
        for j in i + 2..stmts.len().min(i + 2 + MAX_SEGMENT) {
            for (rule, repl) in segment_rewrites(&stmts[i], &stmts[i + 1..j], &stmts[j]) {
                if !set.admits(rule) {
                    continue;
                }
                let mut new = stmts.to_vec();
                new.splice(i..=j, repl);
                out.push((rule, format!("{site}{i}"), new));
            }
        }
        // congruence: rewrite inside the i-th statement
        for (rule, inner_site, inner) in stmt_rewrites(&stmts[i], set, &format!("{site}{i}.")) {
            let mut new = stmts.to_vec();
            new[i] = inner;
            out.push((rule, inner_site, new));
        }
    }
    out
}

/// All one-step rewrites inside a single statement (T-BLOCK, T-IF,
/// T-WHILE of Fig. 9).
fn stmt_rewrites(s: &Stmt, set: RuleSet, site: &str) -> Vec<(RuleName, String, Stmt)> {
    match s {
        Stmt::Block(body) => list_rewrites(body, set, site)
            .into_iter()
            .map(|(r, st, b)| (r, st, Stmt::Block(b)))
            .collect(),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let mut out = Vec::new();
            for (r, st, b) in stmt_rewrites(then_branch, set, &format!("{site}then.")) {
                out.push((
                    r,
                    st,
                    Stmt::If {
                        cond: *cond,
                        then_branch: Box::new(b),
                        else_branch: else_branch.clone(),
                    },
                ));
            }
            for (r, st, b) in stmt_rewrites(else_branch, set, &format!("{site}else.")) {
                out.push((
                    r,
                    st,
                    Stmt::If {
                        cond: *cond,
                        then_branch: then_branch.clone(),
                        else_branch: Box::new(b),
                    },
                ));
            }
            out
        }
        Stmt::While { cond, body } => stmt_rewrites(body, set, &format!("{site}body."))
            .into_iter()
            .map(|(r, st, b)| {
                (
                    r,
                    st,
                    Stmt::While {
                        cond: *cond,
                        body: Box::new(b),
                    },
                )
            })
            .collect(),
        _ => Vec::new(),
    }
}

/// All one-step rewrites of a program under the given rule set (the
/// Fig. 9 template closes the base rules under T-SEQ, T-BLOCK, T-IF,
/// T-WHILE and T-PAR).
#[must_use]
pub fn rewrites(program: &Program, set: RuleSet) -> Vec<Rewrite> {
    let mut out = Vec::new();
    for (thread, body) in program.threads().iter().enumerate() {
        for (rule, site, new_body) in list_rewrites(body, set, "") {
            let mut threads = program.threads().to_vec();
            threads[thread] = new_body;
            out.push(Rewrite {
                rule,
                thread,
                site,
                result: Program::new(threads),
            });
        }
    }
    out
}

/// All one-step rewrites under every safe rule.
#[must_use]
pub fn all_rewrites(program: &Program) -> Vec<Rewrite> {
    rewrites(program, RuleSet::All)
}

/// All one-step Fig. 10 elimination rewrites (plus trace-preserving
/// moves).
#[must_use]
pub fn elimination_rewrites(program: &Program) -> Vec<Rewrite> {
    rewrites(program, RuleSet::Eliminations)
}

/// All one-step Fig. 11 reordering rewrites (plus trace-preserving
/// moves).
#[must_use]
pub fn reordering_rewrites(program: &Program) -> Vec<Rewrite> {
    rewrites(program, RuleSet::Reorderings)
}

/// The set of programs reachable by at most `depth` rewrite steps
/// (including the original program). Deduplicated; BFS order.
///
/// Theorem 5 quantifies over "any composition of syntactic reorderings
/// or eliminations" — this enumerates that composition space, bounded.
#[must_use]
pub fn transform_closure(program: &Program, set: RuleSet, depth: usize) -> Vec<Program> {
    transform_closure_filtered(program, depth, |r| set.admits(r))
}

/// Like [`transform_closure`] but with an arbitrary rule filter —
/// used e.g. by the §8 TSO experiment, which only grants the
/// write→read-reordering and forwarding-elimination fragment.
#[must_use]
pub fn transform_closure_filtered<F: Fn(RuleName) -> bool>(
    program: &Program,
    depth: usize,
    admit: F,
) -> Vec<Program> {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut order: Vec<Program> = Vec::new();
    let mut frontier = vec![program.clone()];
    seen.insert(format!("{program:?}"));
    order.push(program.clone());
    for _ in 0..depth {
        let mut next = Vec::new();
        for p in &frontier {
            for rw in rewrites(p, RuleSet::All) {
                if !admit(rw.rule) {
                    continue;
                }
                let key = format!("{:?}", rw.result);
                if seen.insert(key) {
                    order.push(rw.result.clone());
                    next.push(rw.result);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use transafety_lang::parse_program;

    #[test]
    fn fig1_thread1_full_elimination_chain() {
        // r1:=y; print r1; r1:=x; r2:=x; print r2
        //   ⇒ (E-RAR) … r2:=r1 … — the paper's Fig. 1 elimination.
        let p = parse_program("r1 := y; print r1; r1 := x; r2 := x; print r2;")
            .unwrap()
            .program;
        let rws = elimination_rewrites(&p);
        let erar: Vec<_> = rws.iter().filter(|r| r.rule == RuleName::ERar).collect();
        assert_eq!(erar.len(), 1);
        let s = erar[0].result.to_string();
        assert!(s.contains("r2 := r1;"), "{s}");
    }

    #[test]
    fn rewrites_descend_into_branches() {
        let p = parse_program("if (r0 == 0) { r1 := x; r2 := x; } else skip;")
            .unwrap()
            .program;
        let rws = elimination_rewrites(&p);
        assert!(rws
            .iter()
            .any(|r| r.rule == RuleName::ERar && r.site.contains("then")));
    }

    #[test]
    fn rewrites_descend_into_while_bodies() {
        let p = parse_program("while (r0 == 0) { r1 := x; r2 := x; }")
            .unwrap()
            .program;
        let rws = elimination_rewrites(&p);
        assert!(rws
            .iter()
            .any(|r| r.rule == RuleName::ERar && r.site.contains("body")));
    }

    #[test]
    fn rule_sets_filter() {
        let p = parse_program("r1 := x; r2 := y;").unwrap().program;
        assert!(elimination_rewrites(&p).is_empty());
        let rord = reordering_rewrites(&p);
        assert_eq!(rord.len(), 1);
        assert_eq!(rord[0].rule, RuleName::RRr);
        assert_eq!(all_rewrites(&p).len(), 1);
    }

    #[test]
    fn rewrites_report_threads() {
        let p = parse_program("skip; || r1 := x; r2 := x;").unwrap().program;
        let rws = elimination_rewrites(&p);
        assert!(rws.iter().all(|r| r.thread == 1));
    }

    #[test]
    fn closure_terminates_and_includes_origin() {
        let p = parse_program("r1 := x; r2 := x; print r2;")
            .unwrap()
            .program;
        let closure = transform_closure(&p, RuleSet::All, 5);
        assert!(closure.len() > 1);
        assert_eq!(closure[0], p);
        // every program in the closure is syntactically distinct
        let mut keys: Vec<String> = closure.iter().map(|q| format!("{q:?}")).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), closure.len());
    }

    #[test]
    fn move_commutation_bridges_desugared_constants() {
        // Fig. 2 thread 1 as parsed: r1:=y; rF:=1; x:=rF; print r1.
        // T-MOV + R-RW/R-WR reach the reordered x:=1; r1:=y; print r1.
        let p = parse_program("r1 := y; x := 1; print r1;").unwrap().program;
        // the reordered program, with the load moved after the store
        let t0 = p.thread(0).unwrap();
        let target = Program::new(vec![vec![
            t0[1].clone(),
            t0[2].clone(),
            t0[0].clone(),
            t0[3].clone(),
        ]]);
        let closure = transform_closure(&p, RuleSet::Reorderings, 4);
        assert!(
            closure.contains(&target),
            "closure of {} should contain {}",
            p,
            target
        );
    }

    #[test]
    fn display_of_rewrite() {
        let p = parse_program("r1 := x; r2 := x;").unwrap().program;
        let rws = elimination_rewrites(&p);
        assert!(rws[0].to_string().contains("E-RAR"));
    }
}

#[cfg(test)]
mod segment_tests {
    use super::*;
    use transafety_lang::parse_program;

    #[test]
    fn elimination_across_multi_statement_segments() {
        // Two intervening statements between the redundant loads.
        let p = parse_program("r1 := x; r3 := y; r4 := z; r2 := x; print r2;")
            .unwrap()
            .program;
        let rws = elimination_rewrites(&p);
        let erar: Vec<_> = rws.iter().filter(|r| r.rule == RuleName::ERar).collect();
        assert_eq!(erar.len(), 1, "the segment form must fire once");
        assert!(erar[0].result.to_string().contains("r2 := r1;"));
        // the intervening statements survive in order
        // (the pretty printer uses interned location names l0, l1, …)
        let s = erar[0].result.to_string();
        let iy = s.find("r3 :=").unwrap();
        let iz = s.find("r4 :=").unwrap();
        assert!(iy < iz);
    }

    #[test]
    fn segment_conditions_reject_interference() {
        // the middle touches x: no rewrite
        let p = parse_program("r1 := x; x := r9; r2 := x;").unwrap().program;
        assert!(elimination_rewrites(&p)
            .iter()
            .all(|r| r.rule != RuleName::ERar));
        // the middle touches r1: no rewrite
        let p2 = parse_program("r1 := x; r1 := 3; r2 := x;").unwrap().program;
        assert!(elimination_rewrites(&p2)
            .iter()
            .all(|r| r.rule != RuleName::ERar));
    }

    #[test]
    fn overwritten_write_across_segment() {
        let p = parse_program("x := r1; r3 := y; x := r2;").unwrap().program;
        let rws = elimination_rewrites(&p);
        let wbw: Vec<_> = rws.iter().filter(|r| r.rule == RuleName::EWbw).collect();
        assert_eq!(wbw.len(), 1);
        assert!(!wbw[0].result.to_string().contains("l0 := r1"));
    }
}
