//! Golden-file contract for `drfcheck --stats=json`: the emitted line
//! must carry exactly the keys of `tests/golden/stats_schema.txt`, in
//! that order, with every counter a non-negative integer and the load
//! factor a finite fraction — on all four bundled workloads, on the
//! `races`/`behaviours` subcommands, and on budget-truncated (exit
//! 3/4) runs, whose partial stats must flush with the partial results.

use std::path::PathBuf;
use std::process::Command;

/// Repo-root-relative path (the test runs with the crate as cwd).
fn repo_path(rel: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
        .to_str()
        .expect("utf-8 path")
        .to_owned()
}

fn drfcheck(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_drfcheck"))
        .args(args)
        .output()
        .expect("drfcheck runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

fn golden_keys() -> Vec<String> {
    std::fs::read_to_string(repo_path("crates/core/tests/golden/stats_schema.txt"))
        .expect("golden schema file exists")
        .lines()
        .map(str::to_owned)
        .filter(|l| !l.is_empty())
        .collect()
}

/// Pulls the stats line out of stdout: exactly one line is the JSON
/// object and it is identifiable by its schema preamble.
fn stats_line(stdout: &str) -> String {
    let mut lines = stdout
        .lines()
        .filter(|l| l.starts_with("{\"schema\":\"drfcheck-stats-v2\""));
    let line = lines
        .next()
        .unwrap_or_else(|| panic!("no stats line in: {stdout}"))
        .to_owned();
    assert!(lines.next().is_none(), "more than one stats line: {stdout}");
    line
}

/// Splits the flat one-line JSON object into `(key, raw value)` pairs.
/// The emitter writes no nested objects, no arrays and no escapes, so
/// top-level comma/colon splitting is exact.
fn parse_flat_json(line: &str) -> Vec<(String, String)> {
    let inner = line
        .strip_prefix('{')
        .and_then(|l| l.strip_suffix('}'))
        .unwrap_or_else(|| panic!("not a JSON object: {line}"));
    inner
        .split(',')
        .map(|pair| {
            let (k, v) = pair
                .split_once(':')
                .unwrap_or_else(|| panic!("not a key:value pair: {pair}"));
            let key = k
                .strip_prefix('"')
                .and_then(|k| k.strip_suffix('"'))
                .unwrap_or_else(|| panic!("unquoted key: {k}"));
            (key.to_owned(), v.to_owned())
        })
        .collect()
}

/// The golden contract for one emitted stats line.
fn assert_schema(line: &str, what: &str) -> Vec<(String, String)> {
    let pairs = parse_flat_json(line);
    let keys: Vec<String> = pairs.iter().map(|(k, _)| k.clone()).collect();
    assert_eq!(keys, golden_keys(), "{what}: key set or order drifted");
    for (key, value) in &pairs {
        match key.as_str() {
            "schema" => assert_eq!(value, "\"drfcheck-stats-v2\"", "{what}"),
            "enabled" => assert_eq!(value, "true", "{what}: --stats ran disabled"),
            "model" => assert!(
                matches!(value.as_str(), "\"sc\"" | "\"tso\"" | "\"pso\""),
                "{what}: unknown model token {value}"
            ),
            "load_factor" => {
                let lf: f64 = value
                    .parse()
                    .unwrap_or_else(|_| panic!("{what}: load_factor not a number: {value}"));
                assert!(
                    lf.is_finite() && (0.0..=1.0).contains(&lf),
                    "{what}: load_factor {lf} out of range"
                );
            }
            _ => {
                // Every counter must parse as an unsigned integer:
                // u64::from_str rejects `-`, `NaN`, exponents and
                // decimal points outright.
                let n: u64 = value.parse().unwrap_or_else(|_| {
                    panic!("{what}: {key} not a non-negative integer: {value}")
                });
                let _ = n;
            }
        }
    }
    pairs
}

fn counter(pairs: &[(String, String)], key: &str) -> u64 {
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .unwrap_or_else(|| panic!("missing counter {key}"))
        .1
        .parse()
        .expect("counter is integral")
}

const WORKLOADS: [&str; 4] = [
    "programs/private_staging.tsl",
    "programs/producer_consumer.tsl",
    "programs/racy_publish.tsl",
    "programs/spinlock_handoff.tsl",
];

#[test]
fn stats_json_matches_golden_schema_on_bundled_workloads() {
    for workload in WORKLOADS {
        let path = repo_path(workload);
        let (stdout, stderr, code) = drfcheck(&["--stats=json", "check", &path]);
        // The bundled programs span the verdict space (DRF, racy, and
        // an action-bound-truncated spin loop) — any documented
        // analysis exit is fine, the schema must hold on all of them.
        assert!(
            matches!(code, Some(0 | 1 | 3 | 4)),
            "{workload}: unexpected exit {code:?}\nstdout: {stdout}\nstderr: {stderr}"
        );
        let pairs = assert_schema(&stats_line(&stdout), workload);
        assert!(
            counter(&pairs, "states_visited") > 0,
            "{workload}: nothing explored"
        );
        assert!(
            counter(&pairs, "states_visited") <= counter(&pairs, "states_interned"),
            "{workload}: visited exceeds interned"
        );
    }
}

#[test]
fn stats_json_schema_holds_on_engine_subcommands() {
    let path = repo_path("programs/racy_publish.tsl");
    for subcommand in ["races", "behaviours"] {
        let (stdout, _, _) = drfcheck(&["--stats=json", subcommand, &path]);
        assert_schema(&stats_line(&stdout), subcommand);
    }
}

#[test]
fn stats_json_records_the_selected_model() {
    let path = repo_path("programs/racy_publish.tsl");
    for (flags, expect) in [
        (vec!["--stats=json"], "\"model\":\"sc\""),
        (vec!["--stats=json", "--model", "sc"], "\"model\":\"sc\""),
        (vec!["--stats=json", "--model", "tso"], "\"model\":\"tso\""),
        (vec!["--stats=json", "--model", "pso"], "\"model\":\"pso\""),
    ] {
        for subcommand in ["check", "races", "behaviours"] {
            let mut args = flags.clone();
            args.push(subcommand);
            args.push(&path);
            let (stdout, _, _) = drfcheck(&args);
            let line = stats_line(&stdout);
            assert_schema(&line, subcommand);
            assert!(line.contains(expect), "{subcommand} {flags:?}: {line}");
        }
    }
}

#[test]
fn unknown_model_is_a_usage_error() {
    let path = repo_path("programs/racy_publish.tsl");
    let (_, stderr, code) = drfcheck(&["--model", "arm", "check", &path]);
    assert_eq!(code, Some(2), "stderr: {stderr}");
    assert!(stderr.contains("--model"), "stderr: {stderr}");
}

#[test]
fn state_capped_run_exits_3_with_valid_stats() {
    let path = repo_path("programs/producer_consumer.tsl");
    let (stdout, stderr, code) = drfcheck(&["--stats=json", "--max-states", "1", "check", &path]);
    assert_eq!(code, Some(3), "stdout: {stdout}\nstderr: {stderr}");
    let pairs = assert_schema(&stats_line(&stdout), "state-capped check");
    assert!(
        counter(&pairs, "trip_states") > 0,
        "state cap tripped but trip_states is zero"
    );
}

#[test]
fn timed_out_run_exits_4_with_valid_stats() {
    let path = repo_path("programs/producer_consumer.tsl");
    // A 1µs deadline: the smallest positive duration the CLI accepts
    // (`--timeout 0` is a usage error, exit 2) that still reliably
    // expires before the explorer's first clock sample.
    let (stdout, stderr, code) =
        drfcheck(&["--stats=json", "--timeout", "0.000001", "check", &path]);
    assert_eq!(code, Some(4), "stdout: {stdout}\nstderr: {stderr}");
    let pairs = assert_schema(&stats_line(&stdout), "timed-out check");
    assert!(
        counter(&pairs, "trip_wall_clock") > 0,
        "deadline tripped but trip_wall_clock is zero"
    );
}

#[test]
fn trace_out_writes_the_event_dump() {
    let path = repo_path("programs/private_staging.tsl");
    let trace = std::env::temp_dir().join(format!("drfcheck-trace-{}.tsv", std::process::id()));
    let trace_path = trace.to_str().expect("utf-8 temp path").to_owned();
    let (_, stderr, code) = drfcheck(&["--trace-out", &trace_path, "check", &path]);
    let dump = std::fs::read_to_string(&trace);
    let _ = std::fs::remove_file(&trace);
    let dump = dump.expect("--trace-out file written");
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(dump.starts_with("# drfcheck trace:"), "{dump}");
    assert!(
        dump.contains("phase_start:behaviour_eval") && dump.contains("phase_end:census"),
        "phase markers missing from the dump: {dump}"
    );
}

#[test]
fn stats_off_emits_no_stats_line() {
    let path = repo_path("programs/private_staging.tsl");
    let (stdout, _, _) = drfcheck(&["check", &path]);
    assert!(
        !stdout.contains("drfcheck-stats-v2"),
        "stats emitted without --stats: {stdout}"
    );
}
