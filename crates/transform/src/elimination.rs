//! The semantic elimination transformation (§4 of the paper), as a
//! complete bounded witness search.

use std::fmt;

use transafety_traces::{Action, Domain, Loc, Matching, Trace, Traceset, WildAction, WildTrace};

use crate::kinds::{eliminable_kinds, is_eliminable, is_properly_eliminable, EliminationKind};

/// Options bounding the elimination witness search.
///
/// # Example
///
/// ```
/// use transafety_transform::EliminationOptions;
/// let opts = EliminationOptions::default();
/// assert_eq!(opts.max_extra, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EliminationOptions {
    /// Maximum number of eliminated elements the candidate wildcard trace
    /// may contain beyond the kept ones. The §4 definition allows any
    /// finite number; the paper's examples never need more than three.
    pub max_extra: usize,
    /// Restrict the search to the *properly eliminable* kinds 1–5
    /// (§6.1), excluding the last-action eliminations. Proper
    /// eliminations compose under trace concatenation, which is why the
    /// syntactic relation is defined in terms of them.
    pub proper_only: bool,
}

impl Default for EliminationOptions {
    fn default() -> Self {
        EliminationOptions {
            max_extra: 4,
            proper_only: false,
        }
    }
}

impl EliminationOptions {
    /// Options restricted to proper eliminations (kinds 1–5 of
    /// Definition 1).
    #[must_use]
    pub fn proper() -> Self {
        EliminationOptions {
            proper_only: true,
            ..EliminationOptions::default()
        }
    }
}

/// A witness that a trace is an elimination of a wildcard trace
/// belonging to the original traceset (§4): the wildcard trace, the
/// (monotone) matching of kept positions, and the Definition 1 kinds
/// justifying each eliminated position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EliminationWitness {
    /// The wildcard trace `t` that belongs to the original traceset.
    pub wild: WildTrace,
    /// The monotone matching from the transformed trace's indices to the
    /// kept indices `S` of `t` (so `t|S` equals the transformed trace).
    pub kept: Matching,
    /// For each eliminated index of `t`, the Definition 1 kinds under
    /// which it is eliminable.
    pub eliminated: Vec<(usize, Vec<EliminationKind>)>,
}

impl EliminationWitness {
    /// Re-validates the witness against the §4 definition: the kept
    /// positions reproduce `t'` in order and every other position of the
    /// wildcard trace is eliminable.
    #[must_use]
    pub fn check(&self, transformed: &Trace) -> bool {
        if !self.kept.is_complete(transformed.len()) || !self.kept.is_monotone() {
            return false;
        }
        for (i, j) in self.kept.iter() {
            match self.wild.elements().get(j) {
                Some(WildAction::Concrete(a)) if Some(a) == transformed.get(i) => {}
                _ => return false,
            }
        }
        let kept: std::collections::BTreeSet<usize> = self.kept.range().into_iter().collect();
        (0..self.wild.len()).all(|j| kept.contains(&j) || is_eliminable(&self.wild, j))
    }
}

impl fmt::Display for EliminationWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "elimination of {} keeping {}", self.wild, self.kept)?;
        for (i, kinds) in &self.eliminated {
            write!(f, "; {i} eliminated as ")?;
            for (n, k) in kinds.iter().enumerate() {
                if n > 0 {
                    write!(f, "/")?;
                }
                write!(f, "{k}")?;
            }
        }
        Ok(())
    }
}

/// The failure report of [`is_elimination_of`]: a member trace of the
/// transformed traceset with no elimination witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotAnElimination {
    /// The transformed-traceset member with no witness.
    pub trace: Trace,
}

impl fmt::Display for NotAnElimination {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace {} is not an elimination of any wildcard trace of the original",
            self.trace
        )
    }
}

impl std::error::Error for NotAnElimination {}

/// Finds an embedding of `transformed` into the *given* wildcard trace
/// `wild` whose skipped positions are all eliminable (Definition 1), i.e.
/// decides "`transformed` is an elimination of `wild`".
///
/// This is the per-pair core of the §4 elimination; callers that also
/// need to *search* for the wildcard trace use [`find_elimination`].
#[must_use]
pub fn witness_against_wild(transformed: &Trace, wild: &WildTrace) -> Option<EliminationWitness> {
    // Eliminability is a property of (wild, index) alone.
    let eliminable: Vec<bool> = (0..wild.len()).map(|i| is_eliminable(wild, i)).collect();
    // Backtracking embedding with failure memoisation.
    fn embed(
        t: &Trace,
        w: &WildTrace,
        eliminable: &[bool],
        i: usize,
        j: usize,
        kept: &mut Vec<(usize, usize)>,
        failed: &mut std::collections::HashSet<(usize, usize)>,
    ) -> bool {
        if i == t.len() {
            if (j..w.len()).all(|k| eliminable[k]) {
                return true;
            }
            return false;
        }
        if j == w.len() || failed.contains(&(i, j)) {
            return false;
        }
        // Option 1: match position j.
        if let WildAction::Concrete(a) = w.elements()[j] {
            if Some(&a) == t.get(i) {
                kept.push((i, j));
                if embed(t, w, eliminable, i + 1, j + 1, kept, failed) {
                    return true;
                }
                kept.pop();
            }
        }
        // Option 2: skip position j (must be eliminable).
        if eliminable[j] && embed(t, w, eliminable, i, j + 1, kept, failed) {
            return true;
        }
        failed.insert((i, j));
        false
    }

    let mut kept_pairs = Vec::new();
    let mut failed = std::collections::HashSet::new();
    if !embed(
        transformed,
        wild,
        &eliminable,
        0,
        0,
        &mut kept_pairs,
        &mut failed,
    ) {
        return None;
    }
    let kept = Matching::from_pairs(kept_pairs.iter().copied()).expect("embedding is injective");
    let kept_set: std::collections::BTreeSet<usize> = kept_pairs.iter().map(|&(_, j)| j).collect();
    let eliminated = (0..wild.len())
        .filter(|j| !kept_set.contains(j))
        .map(|j| (j, eliminable_kinds(wild, j)))
        .collect();
    Some(EliminationWitness {
        wild: wild.clone(),
        kept,
        eliminated,
    })
}

/// The search context shared by [`find_elimination`] invocations: the
/// candidate locations for inserted wildcard reads.
fn wildcard_candidate_locs(original: &Traceset) -> Vec<Loc> {
    let mut locs: Vec<Loc> = Vec::new();
    for t in original.traces() {
        for a in &t {
            if let Action::Read { loc, .. } = a {
                if !loc.is_volatile() {
                    locs.push(*loc);
                }
            }
        }
    }
    locs.sort();
    locs.dedup();
    locs
}

/// Searches for a wildcard trace `t` that **belongs to** `original` (all
/// instances over `domain` are members) such that `transformed` is an
/// elimination of `t` (§4). Complete up to `opts.max_extra` eliminated
/// elements.
#[must_use]
pub fn find_elimination(
    transformed: &Trace,
    original: &Traceset,
    domain: &Domain,
    opts: &EliminationOptions,
) -> Option<EliminationWitness> {
    let wild_locs = wildcard_candidate_locs(original);
    let mut wt: Vec<WildAction> = Vec::new();
    let mut kept_positions: Vec<usize> = Vec::new();
    let frontier = vec![original.cursor()];
    search(
        transformed,
        original,
        domain,
        opts,
        &wild_locs,
        0,
        &frontier,
        &mut wt,
        &mut kept_positions,
    )
}

#[allow(clippy::too_many_arguments, clippy::only_used_in_recursion)]
fn search<'a>(
    transformed: &Trace,
    original: &'a Traceset,
    domain: &Domain,
    opts: &EliminationOptions,
    wild_locs: &[Loc],
    i: usize,
    frontier: &[transafety_traces::Cursor<'a>],
    wt: &mut Vec<WildAction>,
    kept_positions: &mut Vec<usize>,
) -> Option<EliminationWitness> {
    // Accept if the whole transformed trace is matched and all inserted
    // positions are eliminable in the completed wildcard trace.
    if i == transformed.len() {
        let wild = WildTrace::from_elements(wt.iter().copied());
        let kept_set: std::collections::BTreeSet<usize> = kept_positions.iter().copied().collect();
        let ok = |j: usize| {
            if opts.proper_only {
                is_properly_eliminable(&wild, j)
            } else {
                is_eliminable(&wild, j)
            }
        };
        if (0..wild.len()).all(|j| kept_set.contains(&j) || ok(j)) {
            let kept =
                Matching::from_pairs(kept_positions.iter().enumerate().map(|(a, &b)| (a, b)))
                    .expect("kept positions are strictly increasing");
            let eliminated = (0..wild.len())
                .filter(|j| !kept_set.contains(j))
                .map(|j| (j, eliminable_kinds(&wild, j)))
                .collect();
            return Some(EliminationWitness {
                wild,
                kept,
                eliminated,
            });
        }
        // fall through: try extending with more eliminated elements (they
        // may repair future-dependent kinds — e.g. an overwritten write
        // needs its overwriting successor).
    }

    // Option 1: match the next element of the transformed trace.
    if i < transformed.len() {
        let a = transformed[i];
        if let Some(next) = step_all(frontier, &a) {
            wt.push(a.into());
            kept_positions.push(wt.len() - 1);
            if let Some(w) = search(
                transformed,
                original,
                domain,
                opts,
                wild_locs,
                i + 1,
                &next,
                wt,
                kept_positions,
            ) {
                return Some(w);
            }
            kept_positions.pop();
            wt.pop();
        }
    }

    // Option 2: insert an eliminated element (bounded by max_extra).
    let inserted_so_far = wt.len() - kept_positions.len();
    if inserted_so_far >= opts.max_extra {
        return None;
    }

    // 2a: a wildcard (irrelevant) read of a non-volatile location.
    for &l in wild_locs {
        if let Some(next) = step_all_wildcard(frontier, l, domain) {
            wt.push(WildAction::wildcard_read(l));
            if let Some(w) = search(
                transformed,
                original,
                domain,
                opts,
                wild_locs,
                i,
                &next,
                wt,
                kept_positions,
            ) {
                return Some(w);
            }
            wt.pop();
        }
    }

    // 2b: a concrete eliminated action, drawn from the edges available in
    // every frontier node. Locks and starts are never eliminable; inserted
    // concrete reads must already satisfy their backward-looking kind.
    let candidates: Vec<Action> = frontier
        .first()
        .map(|c| c.children().copied().collect())
        .unwrap_or_default();
    for a in candidates {
        if matches!(a, Action::Lock(_) | Action::Start(_)) {
            continue;
        }
        if a.is_read() {
            // Backward-looking kinds (1/2) must hold right now; volatile
            // concrete reads are never eliminable.
            let mut probe: Vec<WildAction> = wt.clone();
            probe.push(a.into());
            let probe_t = WildTrace::from_elements(probe);
            if !is_eliminable(&probe_t, probe_t.len() - 1) {
                continue;
            }
        }
        if let Some(next) = step_all(frontier, &a) {
            wt.push(a.into());
            if let Some(w) = search(
                transformed,
                original,
                domain,
                opts,
                wild_locs,
                i,
                &next,
                wt,
                kept_positions,
            ) {
                return Some(w);
            }
            wt.pop();
        }
    }
    None
}

fn step_all<'a>(
    frontier: &[transafety_traces::Cursor<'a>],
    a: &Action,
) -> Option<Vec<transafety_traces::Cursor<'a>>> {
    let mut out = Vec::with_capacity(frontier.len());
    for c in frontier {
        out.push(c.step(a)?);
    }
    Some(out)
}

fn step_all_wildcard<'a>(
    frontier: &[transafety_traces::Cursor<'a>],
    l: Loc,
    domain: &Domain,
) -> Option<Vec<transafety_traces::Cursor<'a>>> {
    let mut out = Vec::with_capacity(frontier.len() * domain.len());
    for c in frontier {
        for v in domain.iter() {
            out.push(c.step(&Action::read(l, v))?);
        }
    }
    Some(out)
}

/// Decides whether `transformed` is an elimination of `original` (§4):
/// every member trace of `transformed` must be an elimination of some
/// wildcard trace belonging to `original`.
///
/// # Errors
///
/// Returns [`NotAnElimination`] carrying the first member trace for which
/// no witness exists within the search bound.
pub fn is_elimination_of(
    transformed: &Traceset,
    original: &Traceset,
    domain: &Domain,
    opts: &EliminationOptions,
) -> Result<(), NotAnElimination> {
    for t in transformed.traces() {
        if find_elimination(&t, original, domain, opts).is_none() {
            return Err(NotAnElimination { trace: t });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use transafety_traces::{Monitor, ThreadId, Value};

    fn tid(i: u32) -> ThreadId {
        ThreadId::new(i)
    }
    fn x() -> Loc {
        Loc::normal(0)
    }
    fn y() -> Loc {
        Loc::normal(1)
    }
    fn v(n: u32) -> Value {
        Value::new(n)
    }

    /// Original thread 1 of Fig. 1: r1:=y; print r1; r1:=x; r2:=x; print r2
    fn fig1_thread1_original(d: &Domain) -> Traceset {
        let mut t = Traceset::new();
        for vy in d.iter() {
            for v1 in d.iter() {
                for v2 in d.iter() {
                    t.insert(Trace::from_actions([
                        Action::start(tid(1)),
                        Action::read(y(), vy),
                        Action::external(vy),
                        Action::read(x(), v1),
                        Action::read(x(), v2),
                        Action::external(v2),
                    ]))
                    .unwrap();
                }
            }
        }
        t
    }

    #[test]
    fn fig1_redundant_read_elimination() {
        // Transformed thread 1: r1:=y; print r1; r1:=x; r2:=r1; print r2.
        // The paper's §2.1 example trace:
        //   t' = [S(1), R[y=1], X(1), R[x=0], X(0)]
        // is an elimination of
        //   [S(1), R[y=1], X(1), R[x=0], R[x=0], X(0)].
        let d = Domain::zero_to(1);
        let original = fig1_thread1_original(&d);
        let t_prime = Trace::from_actions([
            Action::start(tid(1)),
            Action::read(y(), v(1)),
            Action::external(v(1)),
            Action::read(x(), v(0)),
            Action::external(v(0)),
        ]);
        let w = find_elimination(&t_prime, &original, &d, &EliminationOptions::default())
            .expect("Fig. 1 elimination must be found");
        assert!(w.check(&t_prime));
        assert!(original.belongs_to(&w.wild, &d));
        assert!(w
            .eliminated
            .iter()
            .any(|(_, kinds)| kinds.contains(&EliminationKind::ReadAfterRead)));
    }

    #[test]
    fn fig1_overwritten_write_elimination() {
        // Thread 0 of Fig. 1: x:=2; y:=1; x:=1  —→  y:=1; x:=1.
        let mut original = Traceset::new();
        original
            .insert(Trace::from_actions([
                Action::start(tid(0)),
                Action::write(x(), v(2)),
                Action::write(y(), v(1)),
                Action::write(x(), v(1)),
            ]))
            .unwrap();
        let d = Domain::zero_to(2);
        let t_prime = Trace::from_actions([
            Action::start(tid(0)),
            Action::write(y(), v(1)),
            Action::write(x(), v(1)),
        ]);
        let w = find_elimination(&t_prime, &original, &d, &EliminationOptions::default())
            .expect("overwritten write");
        assert!(w.check(&t_prime));
        assert!(w
            .eliminated
            .iter()
            .any(|(_, kinds)| kinds.contains(&EliminationKind::OverwrittenWrite)));
    }

    #[test]
    fn paper_section4_traceset_example() {
        // §4: all traces of the traceset of
        //     x:=1; print 1; lock m; x:=1; unlock m
        // are eliminations of wildcard traces belonging to the traceset of
        //     x:=1; r1:=y; r2:=x; print r2;
        //     if (r2!=0) { lock m; x:=2; x:=r2; unlock m }
        let d = Domain::zero_to(2);
        let m = Monitor::new(0);
        let mut original = Traceset::new();
        for vy in d.iter() {
            for v2 in d.iter() {
                let mut actions = vec![
                    Action::start(tid(0)),
                    Action::write(x(), v(1)),
                    Action::read(y(), vy),
                    Action::read(x(), v2),
                    Action::external(v2),
                ];
                if v2 != Value::ZERO {
                    actions.extend([
                        Action::lock(m),
                        Action::write(x(), v(2)),
                        Action::write(x(), v2),
                        Action::unlock(m),
                    ]);
                }
                original.insert(Trace::from_actions(actions)).unwrap();
            }
        }
        let mut transformed = Traceset::new();
        transformed
            .insert(Trace::from_actions([
                Action::start(tid(0)),
                Action::write(x(), v(1)),
                Action::external(v(1)),
                Action::lock(m),
                Action::write(x(), v(1)),
                Action::unlock(m),
            ]))
            .unwrap();
        is_elimination_of(&transformed, &original, &d, &EliminationOptions::default())
            .expect("§4 example: the transformed traceset is an elimination");
    }

    #[test]
    fn non_elimination_is_rejected() {
        // The transformed trace prints a value the original never prints.
        let d = Domain::zero_to(1);
        let original = fig1_thread1_original(&d);
        let bogus = Trace::from_actions([
            Action::start(tid(1)),
            Action::external(v(1)), // original always reads y first
        ]);
        assert!(find_elimination(&bogus, &original, &d, &EliminationOptions::default()).is_none());
    }

    #[test]
    fn identity_is_an_elimination() {
        let d = Domain::zero_to(1);
        let original = fig1_thread1_original(&d);
        is_elimination_of(&original, &original, &d, &EliminationOptions::default())
            .expect("every traceset is an elimination of itself");
    }

    #[test]
    fn last_action_eliminations_found() {
        // print 0; x:=1; unlock? — trailing write and release are droppable.
        let m = Monitor::new(0);
        let mut original = Traceset::new();
        original
            .insert(Trace::from_actions([
                Action::start(tid(0)),
                Action::external(v(0)),
                Action::lock(m),
                Action::write(x(), v(1)),
                Action::unlock(m),
            ]))
            .unwrap();
        let d = Domain::zero_to(1);
        // keep only [S(0), X(0), L[m]]
        let t_prime = Trace::from_actions([
            Action::start(tid(0)),
            Action::external(v(0)),
            Action::lock(m),
        ]);
        // prefix membership makes this trivially an elimination (identity
        // on a prefix); the interesting case keeps the lock but drops the
        // write and unlock:
        let w = find_elimination(&t_prime, &original, &d, &EliminationOptions::default())
            .expect("prefix");
        assert!(w.check(&t_prime));
        // Dropping only the *write* while keeping the unlock must fail:
        // the write is not a redundant last write (a release follows) and
        // is not overwritten.
        let t_bad = Trace::from_actions([
            Action::start(tid(0)),
            Action::external(v(0)),
            Action::lock(m),
            Action::unlock(m),
        ]);
        assert!(find_elimination(&t_bad, &original, &d, &EliminationOptions::default()).is_none());
    }

    #[test]
    fn witness_against_wild_rejects_non_eliminable_skips() {
        let wild = WildTrace::from_elements([
            Action::start(tid(0)).into(),
            Action::write(x(), v(1)).into(),
            Action::external(v(1)).into(),
        ]);
        // skipping the write would change behaviour; it is not eliminable
        // (an external action follows, so it is not a redundant last write
        // — wait, externals do not block case 6; but the location is read
        // by nothing and no release follows... case 6 applies!).
        // Use a release to make it genuinely non-eliminable.
        let m = Monitor::new(0);
        let wild2 = WildTrace::from_elements([
            Action::start(tid(0)).into(),
            Action::lock(m).into(),
            Action::write(x(), v(1)).into(),
            Action::unlock(m).into(),
            Action::external(v(1)).into(),
        ]);
        let t_prime = Trace::from_actions([
            Action::start(tid(0)),
            Action::lock(m),
            Action::unlock(m),
            Action::external(v(1)),
        ]);
        assert!(witness_against_wild(&t_prime, &wild2).is_none());
        // sanity: the full trace embeds
        let t_full = Trace::from_actions([
            Action::start(tid(0)),
            Action::write(x(), v(1)),
            Action::external(v(1)),
        ]);
        assert!(witness_against_wild(&t_full, &wild).is_some());
    }

    #[test]
    fn irrelevant_read_elimination_uses_wildcards() {
        // Original: r:=y; x:=1 (read of y is irrelevant).
        let d = Domain::zero_to(1);
        let mut original = Traceset::new();
        for vy in d.iter() {
            original
                .insert(Trace::from_actions([
                    Action::start(tid(0)),
                    Action::read(y(), vy),
                    Action::write(x(), v(1)),
                ]))
                .unwrap();
        }
        let t_prime = Trace::from_actions([Action::start(tid(0)), Action::write(x(), v(1))]);
        let w = find_elimination(&t_prime, &original, &d, &EliminationOptions::default())
            .expect("irrelevant read");
        assert!(w.check(&t_prime));
        assert!(w
            .eliminated
            .iter()
            .any(|(_, kinds)| kinds.contains(&EliminationKind::IrrelevantRead)));
        assert!(original.belongs_to(&w.wild, &d));
    }

    #[test]
    fn display_of_witness_mentions_kinds() {
        let d = Domain::zero_to(1);
        let mut original = Traceset::new();
        for vy in d.iter() {
            original
                .insert(Trace::from_actions([
                    Action::start(tid(0)),
                    Action::read(y(), vy),
                    Action::write(x(), v(1)),
                ]))
                .unwrap();
        }
        let t_prime = Trace::from_actions([Action::start(tid(0)), Action::write(x(), v(1))]);
        let w = find_elimination(&t_prime, &original, &d, &EliminationOptions::default()).unwrap();
        assert!(w.to_string().contains("irrelevant read"), "{w}");
    }
}

#[cfg(test)]
mod proper_tests {
    use super::*;
    use transafety_traces::{ThreadId, Value};

    fn tid(i: u32) -> ThreadId {
        ThreadId::new(i)
    }
    fn v(n: u32) -> Value {
        Value::new(n)
    }

    #[test]
    fn proper_search_rejects_last_action_only_eliminations() {
        // [S, W[x=1], X(2)]: the write is a *redundant last write*
        // (kind 6 — no later release, no later access to x; a later
        // external is allowed). Eliminating it yields [S, X(2)], which is
        // NOT a prefix, so the witness genuinely needs the last-action
        // kind: found in default mode, rejected in proper mode.
        let x = Loc::normal(0);
        let mut original = Traceset::new();
        original
            .insert(Trace::from_actions([
                Action::start(tid(0)),
                Action::write(x, v(1)),
                Action::external(v(2)),
            ]))
            .unwrap();
        let d = Domain::zero_to(2);
        let t_prime = Trace::from_actions([Action::start(tid(0)), Action::external(v(2))]);
        let w = find_elimination(&t_prime, &original, &d, &EliminationOptions::default())
            .expect("kind 6 applies in default mode");
        assert!(w
            .eliminated
            .iter()
            .any(|(_, kinds)| kinds.contains(&EliminationKind::RedundantLastWrite)));
        assert!(
            find_elimination(&t_prime, &original, &d, &EliminationOptions::proper()).is_none(),
            "proper mode must reject the last-action-only witness"
        );
    }

    #[test]
    fn proper_search_finds_proper_witnesses() {
        let x = Loc::normal(0);
        let d = Domain::zero_to(1);
        let mut original = Traceset::new();
        for v1 in d.iter() {
            for v2 in d.iter() {
                original
                    .insert(Trace::from_actions([
                        Action::start(tid(0)),
                        Action::read(x, v1),
                        Action::read(x, v2),
                        Action::external(v2),
                    ]))
                    .unwrap();
            }
        }
        let t_prime = Trace::from_actions([
            Action::start(tid(0)),
            Action::read(x, v(1)),
            Action::external(v(1)),
        ]);
        let w = find_elimination(&t_prime, &original, &d, &EliminationOptions::proper())
            .expect("redundant read after read is proper");
        assert!(w
            .eliminated
            .iter()
            .all(|(_, kinds)| kinds.iter().any(|k| k.is_proper())));
    }

    #[test]
    fn proper_options_constructor() {
        let o = EliminationOptions::proper();
        assert!(o.proper_only);
        assert_eq!(o.max_extra, EliminationOptions::default().max_extra);
    }
}
