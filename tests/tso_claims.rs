//! Integration tests for the §8 TSO experiment (E11 of `DESIGN.md`).

use transafety::interleaving::Behaviours;
use transafety::lang::{Bounded, ExploreOptions, ModelExplorer, Program, ProgramExplorer};
use transafety::litmus::{by_name, corpus, random_program, GeneratorConfig};
use transafety::traces::Value;
use transafety::tso::{explain_tso, PsoModel, TsoModel};

fn v(n: u32) -> Value {
    Value::new(n)
}

fn tso_behaviours(p: &Program, opts: &ExploreOptions) -> Bounded<Behaviours> {
    let model = TsoModel::new(p);
    ModelExplorer::new(&model).behaviours(opts)
}

fn pso_behaviours(p: &Program, opts: &ExploreOptions) -> Bounded<Behaviours> {
    let model = PsoModel::new(p);
    ModelExplorer::new(&model).behaviours(opts)
}

#[test]
fn tso_behaviours_include_sc_behaviours_on_corpus() {
    let opts = ExploreOptions::default();
    for l in corpus() {
        let p = l.parse().program;
        if p.threads().iter().flatten().count() > 14 {
            continue;
        }
        let sc = ProgramExplorer::new(&p).behaviours(&opts);
        let tso = tso_behaviours(&p, &opts);
        if !(sc.complete && tso.complete) {
            continue;
        }
        assert!(
            sc.value.is_subset(&tso.value),
            "{}: SC behaviour missing under TSO",
            l.name
        );
    }
}

#[test]
fn tso_behaviours_include_sc_behaviours_on_random_programs() {
    let opts = ExploreOptions::default();
    let config = GeneratorConfig::default();
    for seed in 0..15 {
        let p = random_program(seed, &config);
        let sc = ProgramExplorer::new(&p).behaviours(&opts);
        let tso = tso_behaviours(&p, &opts);
        if !(sc.complete && tso.complete) {
            continue;
        }
        assert!(sc.value.is_subset(&tso.value), "seed {seed}:\n{p}");
    }
}

#[test]
fn sb_relaxed_outcome_appears_only_under_tso() {
    let p = by_name("sb").unwrap().parse().program;
    let opts = ExploreOptions::default();
    let zz = vec![v(0), v(0)];
    assert!(!ProgramExplorer::new(&p)
        .behaviours(&opts)
        .value
        .contains(&zz));
    assert!(tso_behaviours(&p, &opts).value.contains(&zz));
}

#[test]
fn every_corpus_tso_behaviour_is_explained() {
    let opts = ExploreOptions::default();
    let mut relaxed = 0;
    for l in corpus() {
        let p = l.parse().program;
        if p.threads().iter().flatten().count() > 14 {
            continue;
        }
        let e = explain_tso(&p, 3, &opts);
        if !e.complete {
            continue;
        }
        if e.relaxed {
            relaxed += 1;
        }
        assert!(e.explained, "{}: unexplained TSO behaviour", l.name);
    }
    assert!(relaxed >= 1, "SB must be relaxed");
}

#[test]
fn drf_programs_are_sc_on_tso() {
    // The DRF guarantee carried to hardware: for the corpus programs that
    // are data race free, TSO behaviours coincide with SC behaviours
    // (fences via volatiles/locks cover every communication).
    let opts = ExploreOptions::default();
    let mut checked = 0;
    for l in corpus() {
        let p = l.parse().program;
        if p.threads().iter().flatten().count() > 14 {
            continue;
        }
        if !ProgramExplorer::new(&p).is_data_race_free(&opts) {
            continue;
        }
        let sc = ProgramExplorer::new(&p).behaviours(&opts);
        let tso = tso_behaviours(&p, &opts);
        if !(sc.complete && tso.complete) {
            continue;
        }
        assert_eq!(
            sc.value, tso.value,
            "{}: DRF program with relaxed TSO behaviour",
            l.name
        );
        checked += 1;
    }
    assert!(checked >= 5, "checked only {checked} DRF corpus programs");
}

#[test]
fn random_drf_programs_are_sc_on_tso() {
    let opts = ExploreOptions::default();
    let config = GeneratorConfig::drf();
    for seed in 0..10 {
        let p = random_program(seed, &config);
        let sc = ProgramExplorer::new(&p).behaviours(&opts);
        let tso = tso_behaviours(&p, &opts);
        assert!(sc.complete && tso.complete);
        assert_eq!(sc.value, tso.value, "seed {seed}:\n{p}");
    }
}

#[test]
fn random_programs_tso_explained_by_fragment() {
    // §8 differential check beyond the corpus: for random loop-free
    // programs, every TSO behaviour is explained by the W→R-reordering +
    // forwarding fragment.
    let opts = ExploreOptions::default();
    let config = GeneratorConfig {
        stmts_per_thread: 3,
        if_prob: 0.0, // keep the closure small and exact
        ..GeneratorConfig::default()
    };
    let mut relaxed = 0;
    for seed in 0..12 {
        let p = random_program(seed, &config);
        let e = transafety::tso::explain_tso(&p, 3, &opts);
        if !e.complete {
            continue;
        }
        if e.relaxed {
            relaxed += 1;
        }
        assert!(e.explained, "seed {seed}: unexplained TSO behaviour\n{p}");
    }
    // not all seeds produce write-then-read shapes; just require progress
    let _ = relaxed;
}

#[test]
fn pso_includes_tso_on_corpus() {
    let opts = ExploreOptions::default();
    for l in corpus() {
        let p = l.parse().program;
        if p.threads().iter().flatten().count() > 10 {
            continue;
        }
        let tso = tso_behaviours(&p, &opts);
        let pso = pso_behaviours(&p, &opts);
        if !(tso.complete && pso.complete) {
            continue;
        }
        assert!(
            tso.value.is_subset(&pso.value),
            "{}: TSO behaviour missing under PSO",
            l.name
        );
    }
}

#[test]
fn random_programs_pso_explained_by_extended_fragment() {
    use transafety::tso::explain_pso;
    let opts = ExploreOptions::default();
    let config = GeneratorConfig {
        stmts_per_thread: 3,
        if_prob: 0.0,
        lock_block_prob: 0.0, // pure store/load programs stress W→W
        ..GeneratorConfig::default()
    };
    for seed in 0..10 {
        let p = random_program(seed, &config);
        let e = explain_pso(&p, 3, &opts);
        if !e.complete {
            continue;
        }
        assert!(e.explained, "seed {seed}: unexplained PSO behaviour\n{p}");
    }
}
