//! Property-based tests (proptest) over the core data structures and
//! the safety theorems on randomly generated programs.

use proptest::prelude::*;

use transafety::checker::{drf_guarantee, CheckOptions, DrfVerdict};
use transafety::interleaving::Explorer;
use transafety::lang::{extract_traceset, ExtractOptions};
use transafety::litmus::{random_program, GeneratorConfig};
use transafety::syntactic::all_rewrites;
use transafety::traces::{
    Action, Domain, Loc, Matching, Monitor, ThreadId, Trace, Traceset, Value, WildAction,
    WildTrace,
};
use transafety::transform::{
    de_permute, eliminable_kinds, reorderable, ReorderingFn,
};

// ---------- strategies ---------------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    (0u32..4).prop_map(Value::new)
}

fn arb_loc() -> impl Strategy<Value = Loc> {
    prop_oneof![
        (0u32..3).prop_map(Loc::normal),
        (0u32..2).prop_map(Loc::volatile),
    ]
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (arb_loc(), arb_value()).prop_map(|(l, v)| Action::read(l, v)),
        (arb_loc(), arb_value()).prop_map(|(l, v)| Action::write(l, v)),
        (0u32..2).prop_map(|m| Action::lock(Monitor::new(m))),
        (0u32..2).prop_map(|m| Action::unlock(Monitor::new(m))),
        arb_value().prop_map(Action::external),
    ]
}

/// A well-formed trace: starts with `S(0)`, balanced locks by
/// construction (locks get matching unlocks appended).
fn arb_trace() -> impl Strategy<Value = Trace> {
    proptest::collection::vec(arb_action(), 0..6).prop_map(|actions| {
        let mut t = Trace::from_actions([Action::start(ThreadId::new(0))]);
        let mut depth: std::collections::BTreeMap<Monitor, i64> = Default::default();
        for a in actions {
            match a {
                Action::Unlock(m) if depth.get(&m).copied().unwrap_or(0) == 0 => {
                    // would unbalance: replace by a lock
                    *depth.entry(m).or_insert(0) += 1;
                    t.push(Action::lock(m));
                }
                Action::Lock(m) => {
                    *depth.entry(m).or_insert(0) += 1;
                    t.push(a);
                }
                Action::Unlock(m) => {
                    *depth.entry(m).or_insert(0) -= 1;
                    t.push(a);
                }
                _ => t.push(a),
            }
        }
        t
    })
}

// ---------- traceset invariants ------------------------------------------

proptest! {
    #[test]
    fn traceset_is_prefix_closed(traces in proptest::collection::vec(arb_trace(), 1..5)) {
        let ts = Traceset::from_traces(traces.clone()).unwrap();
        for t in &traces {
            for n in 0..=t.len() {
                prop_assert!(ts.contains(&t.prefix(n)));
            }
        }
        // the member count equals the number of distinct prefixes
        let mut all: Vec<Trace> = traces
            .iter()
            .flat_map(|t| (0..=t.len()).map(|n| t.prefix(n)).collect::<Vec<_>>())
            .collect();
        all.sort();
        all.dedup();
        prop_assert_eq!(all.len(), ts.member_count());
    }

    #[test]
    fn traceset_iteration_roundtrips(traces in proptest::collection::vec(arb_trace(), 1..4)) {
        let ts = Traceset::from_traces(traces).unwrap();
        let rebuilt = Traceset::from_traces(ts.maximal_traces()).unwrap();
        prop_assert_eq!(rebuilt, ts);
    }

    #[test]
    fn wildcard_instances_are_instances(t in arb_trace()) {
        // blank out every non-volatile read
        let wt: WildTrace = t
            .iter()
            .map(|a| match a {
                Action::Read { loc, .. } if !loc.is_volatile() => {
                    WildAction::wildcard_read(*loc)
                }
                other => WildAction::from(*other),
            })
            .collect();
        let d = Domain::zero_to(2);
        for inst in wt.instances(&d).take(64) {
            prop_assert!(wt.is_instance(&inst));
            prop_assert_eq!(inst.len(), wt.len());
        }
    }

    #[test]
    fn belongs_to_iff_all_instances_members(t in arb_trace()) {
        let d = Domain::zero_to(1);
        let wt: WildTrace = t
            .iter()
            .map(|a| match a {
                Action::Read { loc, .. } if !loc.is_volatile() => {
                    WildAction::wildcard_read(*loc)
                }
                other => WildAction::from(*other),
            })
            .collect();
        // traceset built from all instances => belongs-to holds
        let all: Vec<Trace> = wt.instances(&d).collect();
        let ts = Traceset::from_traces(all.clone()).unwrap();
        prop_assert!(ts.belongs_to(&wt, &d));
        // removing one maximal instance breaks it (if there was a wildcard)
        if all.len() > 1 {
            let ts2 = Traceset::from_traces(all[1..].to_vec()).unwrap();
            prop_assert!(!ts2.belongs_to(&wt, &d));
        }
    }
}

// ---------- matching / reordering function laws ---------------------------

proptest! {
    #[test]
    fn matching_compose_inverse_is_identity(pairs in proptest::collection::btree_map(0usize..8, 0usize..8, 0..6)) {
        // btree_map gives a function; make it injective by keeping the
        // first occurrence of each target
        let mut seen = std::collections::BTreeSet::new();
        let mut m = Matching::new();
        for (k, v) in pairs {
            if seen.insert(v) {
                m.insert(k, v).unwrap();
            }
        }
        let id = m.compose(&m.inverse());
        for (a, b) in id.iter() {
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(id.len(), m.len());
    }

    #[test]
    fn identity_always_de_permutes(t in arb_trace()) {
        let f = ReorderingFn::identity(t.len());
        prop_assert!(f.is_reordering_function_for(&t));
        prop_assert_eq!(de_permute(&t, &f), t);
    }

    #[test]
    fn reorderability_classes_are_respected(a in arb_action(), b in arb_action()) {
        // acquire actions never reorder with anything later
        if a.is_acquire() {
            prop_assert!(!reorderable(&a, &b));
        }
        // nothing sinks below a later release except … nothing
        if b.is_release() {
            prop_assert!(!reorderable(&a, &b) || b.is_normal_access());
        }
        // conflicting accesses never reorder
        if a.conflicts_with(&b) {
            prop_assert!(!reorderable(&a, &b));
        }
    }

    #[test]
    fn eliminable_kinds_only_for_eliminable(t in arb_trace(), i in 0usize..8) {
        let wt = WildTrace::from_trace(&t);
        let kinds = eliminable_kinds(&wt, i);
        // start actions and acquires are never eliminable
        if let Some(a) = t.get(i) {
            if a.is_start() || a.is_acquire() {
                prop_assert!(kinds.is_empty(), "{a} at {i} in {t}: {kinds:?}");
            }
        } else {
            prop_assert!(kinds.is_empty());
        }
    }
}

// ---------- end-to-end safety on random programs --------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn safe_rewrites_respect_drf_guarantee(seed in 0u64..5000) {
        let p = random_program(seed, &GeneratorConfig::drf());
        let opts = CheckOptions::default();
        for rw in all_rewrites(&p).into_iter().take(6) {
            let verdict = drf_guarantee(&rw.result, &p, &opts);
            prop_assert!(
                matches!(verdict, DrfVerdict::Holds | DrfVerdict::Inconclusive),
                "seed {}: {} gave {}\n{}", seed, rw, verdict, p
            );
        }
    }

    #[test]
    fn extraction_never_produces_ill_formed_traces(seed in 0u64..5000) {
        let p = random_program(seed, &GeneratorConfig::default());
        let d = Domain::zero_to(1);
        let e = extract_traceset(&p, &d, &ExtractOptions { max_actions: 8, max_tau: 512, ..ExtractOptions::default() });
        for t in e.traceset.maximal_traces() {
            prop_assert!(t.validate().is_ok(), "{t}");
        }
    }

    #[test]
    fn race_witnesses_from_random_programs_are_valid(seed in 0u64..5000) {
        let p = random_program(seed, &GeneratorConfig::default());
        let d = Domain::zero_to(1);
        let e = extract_traceset(&p, &d, &ExtractOptions { max_actions: 8, max_tau: 512, ..ExtractOptions::default() });
        if e.truncated {
            return Ok(());
        }
        if let Some(w) = Explorer::new(&e.traceset).race_witness() {
            prop_assert!(w.execution.is_sequentially_consistent());
            prop_assert!(w.execution.is_interleaving_of(&e.traceset));
        }
    }
}

// ---------- origin preservation (Lemma 2/3 instances) ---------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Lemma 2, executably: a safe rewrite cannot create an origin for a
    /// value the original traceset has no origin for.
    #[test]
    fn rewrites_preserve_origin_freedom(seed in 0u64..5000) {
        let p = random_program(seed, &GeneratorConfig::default());
        let magic = Value::new(41);
        prop_assume!(!p.mentions_constant(magic));
        let d = Domain::from_values([Value::new(2), magic]);
        let ex = ExtractOptions { max_actions: 8, max_tau: 512, ..ExtractOptions::default() };
        let e = extract_traceset(&p, &d, &ex);
        prop_assume!(!e.truncated);
        prop_assert!(!e.traceset.has_origin_for(magic), "Lemma 6 on the original");
        for rw in all_rewrites(&p).into_iter().take(5) {
            let et = extract_traceset(&rw.result, &d, &ex);
            if et.truncated {
                continue;
            }
            prop_assert!(
                !et.traceset.has_origin_for(magic),
                "seed {}: rewrite created an origin\n{}", seed, rw.result
            );
        }
    }

    /// Lemma 3, executably: origin-freedom really does keep the value out
    /// of every behaviour.
    #[test]
    fn origin_freedom_excludes_value_from_behaviours(seed in 0u64..5000) {
        let p = random_program(seed, &GeneratorConfig::default());
        let magic = Value::new(41);
        prop_assume!(!p.mentions_constant(magic));
        let b = transafety::lang::ProgramExplorer::new(&p)
            .behaviours(&transafety::lang::ExploreOptions::default());
        prop_assume!(b.complete);
        for beh in &b.value {
            prop_assert!(!beh.contains(&magic), "seed {seed}: 41 appeared in {beh:?}");
        }
    }
}

// ---------- parse/print round trip ----------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The pretty-printer and parser agree: printing a generated program
    /// and reparsing it yields a structurally identical program
    /// (locations, monitors and registers keep their indices by the
    /// `l<i>`/`v<i>`/`m<i>`/`r<i>` naming convention).
    #[test]
    fn parse_print_roundtrip(seed in 0u64..10_000, volatiles in 0u32..2) {
        let config = GeneratorConfig {
            volatile_locs: volatiles,
            ..GeneratorConfig::default()
        };
        let p = random_program(seed, &config);
        let printed = p.to_string();
        let reparsed = transafety::lang::parse_program(&printed)
            .unwrap_or_else(|e| panic!("printed program failed to parse: {e}\n{printed}"));
        prop_assert_eq!(
            &reparsed.program, &p,
            "round trip changed the program:\n{}\n→\n{}", p, reparsed.program
        );
    }
}
