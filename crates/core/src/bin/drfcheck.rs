//! `drfcheck` — a command-line DRF-soundness validator for shared-memory
//! program transformations, built on the `transafety` library.
//!
//! ```console
//! $ drfcheck races program.tsl
//! $ drfcheck --model tso check program.tsl
//! $ drfcheck behaviours program.tsl
//! $ drfcheck --jobs 8 guarantee original.tsl transformed.tsl
//! $ drfcheck correspondence original.tsl transformed.tsl
//! $ drfcheck rewrites program.tsl
//! $ drfcheck oota program.tsl 42
//! $ drfcheck tso program.tsl
//! $ drfcheck --max-interleavings 10000 executions program.tsl
//! $ drfcheck --timeout 5 --max-states 1000000 check program.tsl
//! $ drfcheck litmus               # list the built-in corpus
//! $ drfcheck --stats=json fuzz --pairs 20000 --witness-dir witnesses/
//! ```
//!
//! `--jobs N` selects the worker count for the parallel exploration
//! engine (default: all available cores; `--jobs 1` forces the
//! sequential reference driver — results are identical either way).
//!
//! `--model sc|tso|pso` selects the memory model the analysis commands
//! (`check`, `races`, `behaviours`) explore under: the sequentially
//! consistent baseline (default) or the store-buffering machines of §8.
//!
//! The analysis commands (`check`, `races`, `behaviours`, `executions`)
//! run under a resource budget: `--timeout SECS` bounds wall-clock time,
//! `--max-states N` caps explored states, `--max-interleavings N` caps
//! execution enumeration, and `Ctrl-C` cancels cooperatively. Exceeding
//! any bound never loses the work done so far — the partial result is
//! flushed, the truncation reason (which bound tripped, how many states
//! were explored, elapsed time) goes to stderr, and the exit code says
//! what happened: `3` for a cap, `4` for timeout or interruption, `5`
//! when a crashed worker was quarantined and the analysis completed on
//! the sequential fallback engine.
//!
//! Program files use the concrete syntax of the paper's §6 language (see
//! `transafety::lang::parse_program`); a corpus name (e.g. `sb`) can be
//! used anywhere a file path is expected.

use std::io::Write;
use std::process::ExitCode;
use std::sync::OnceLock;
use std::time::Duration;

use transafety::checker::{
    classify_transformation, drf_guarantee, no_thin_air, race_witness, Analysis, OotaVerdict,
    TransformationClass,
};
use transafety::interleaving::Behaviours;
use transafety::interleaving::{BudgetGuard, ExploreMetrics, ExploreStats};
use transafety::lang::{
    parse_program_with_symbols, Bounded, ModelExplorer, ModelRaceWitness, Program, ProgramExplorer,
    ScModel, ScheduleStep, SourceProgram,
};
use transafety::litmus::by_name;
use transafety::serve;
use transafety::traces::{Domain, MemoryModelKind, Value};
use transafety::tso::{explain_tso, PsoModel, TsoModel};
use transafety::{BudgetBound, CancelToken, Completeness, TruncationReason, Verdict};

fn load(arg: &str) -> Result<SourceProgram, String> {
    load_with(arg, transafety::lang::SymbolTable::default())
}

fn load_with(arg: &str, symbols: transafety::lang::SymbolTable) -> Result<SourceProgram, String> {
    let source = if let Some(l) = by_name(arg) {
        l.source.to_string()
    } else {
        std::fs::read_to_string(arg).map_err(|e| format!("cannot read {arg}: {e}"))?
    };
    parse_program_with_symbols(&source, symbols).map_err(|e| format!("{arg}: {e}"))
}

/// How `--stats` renders the collected exploration metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum StatsMode {
    /// No stats were requested.
    #[default]
    Off,
    /// Human-readable table on stderr (never disturbs stdout parsing).
    Human,
    /// One line of schema-stable JSON on stdout, after the command's
    /// normal output.
    Json,
}

/// Output configuration carried alongside [`Analysis`] by the flag
/// parser: the stats rendering mode and the optional trace sink.
#[derive(Debug, Clone, Default)]
struct StatsFlags {
    mode: StatsMode,
    trace_out: Option<String>,
}

impl StatsFlags {
    /// Does any flag require the metrics collector to be live?
    fn wants_metrics(&self) -> bool {
        self.mode != StatsMode::Off || self.trace_out.is_some()
    }

    /// The collector the analysis commands should run with.
    fn collector(&self) -> std::sync::Arc<ExploreMetrics> {
        if self.wants_metrics() {
            ExploreMetrics::collector()
        } else {
            ExploreMetrics::disabled()
        }
    }

    /// Renders `stats` per `--stats` and writes the event trace per
    /// `--trace-out`. Called on every exit path of the analysis
    /// commands, including truncated and fault-recovered runs, so
    /// partial metrics are never lost with the partial results.
    fn emit(&self, stats: &ExploreStats) -> Result<(), String> {
        match self.mode {
            StatsMode::Off => {}
            StatsMode::Json => println!("{}", stats.to_json()),
            StatsMode::Human => {
                eprintln!("--- exploration stats ---");
                eprintln!(
                    "states: {} visited, {} interned, {} deduped",
                    stats.states_visited, stats.states_interned, stats.states_deduped
                );
                eprintln!(
                    "moves: {} generated; POR: {} ample, {} full expansions",
                    stats.moves_generated, stats.por_ample_hits, stats.por_full_expansions
                );
                eprintln!(
                    "interner: {} probes, {} hits, {} collisions, {} keys / {} slots \
                     (load {:.3})",
                    stats.intern_probes,
                    stats.intern_hits,
                    stats.intern_collisions,
                    stats.intern_keys,
                    stats.intern_slots,
                    stats.load_factor()
                );
                eprintln!(
                    "pool: {} tasks, {} steals, {} parks, {} wakes",
                    stats.pool_tasks, stats.pool_steals, stats.pool_parks, stats.pool_wakes
                );
                eprintln!(
                    "budget trips: {} wall-clock, {} states, {} cancelled, {} worker-panic, \
                     {} interleavings, {} actions",
                    stats.trip_wall_clock,
                    stats.trip_states,
                    stats.trip_cancelled,
                    stats.trip_worker_panic,
                    stats.trip_interleavings,
                    stats.trip_actions
                );
                eprintln!(
                    "phases (ms): graph build {:.3}, behaviour eval {:.3}, race search {:.3}, \
                     census {:.3}, pool drain {:.3}",
                    stats.graph_build_nanos as f64 / 1e6,
                    stats.behaviour_eval_nanos as f64 / 1e6,
                    stats.race_search_nanos as f64 / 1e6,
                    stats.census_nanos as f64 / 1e6,
                    stats.pool_drain_nanos as f64 / 1e6,
                );
            }
        }
        if let Some(path) = &self.trace_out {
            std::fs::write(path, stats.trace_dump())
                .map_err(|e| format!("--trace-out: cannot write {path}: {e}"))?;
        }
        Ok(())
    }
}

/// Exit code when a state/interleaving/action cap was exceeded.
const EXIT_LIMIT_EXCEEDED: u8 = 3;
/// Exit code when the wall-clock deadline passed or the run was
/// cancelled (`Ctrl-C`).
const EXIT_TIMED_OUT: u8 = 4;
/// Exit code when a worker panic was quarantined; the printed results
/// come from the sequential fallback engine.
const EXIT_FAULT_RECOVERED: u8 = 5;

fn usage() -> ExitCode {
    eprintln!(
        "usage: drfcheck [--model sc|tso|pso] [--jobs N] [--timeout SECS] [--max-states N] \
         [--max-interleavings N] [--no-por] [--no-await] [--stats[=json]] [--trace-out PATH] \
         <command> [args]\n\
         commands:\n  \
           check <program>                      full analysis report (three-valued verdict)\n  \
           races <program>                      find a data race\n  \
           behaviours <program>                 print all SC behaviours\n  \
           executions <program>                 enumerate maximal SC executions\n  \
           guarantee <original> <transformed>   check the DRF guarantee\n  \
           classify <original> <transformed>    strongest safe class (Lemma 4/5)\n  \
           rewrites <program>                   list applicable safe rewrites\n  \
           oota <program> <value>               out-of-thin-air check\n  \
           tso <program>                        TSO behaviours + §8 explanation\n  \
           pso <program>                        PSO behaviours + explanation\n  \
           dot <program>                        Graphviz happens-before graph\n  \
           litmus                               list the built-in corpus\n  \
           serve [serve flags]                  long-running JSON-lines batch service\n                                       \
                                                (stdin/stdout, or --socket PATH)\n  \
           fuzz [fuzz flags]                    differential refinement fuzzing: random\n                                       \
                                                (program × pipeline) pairs, shrink on failure\n\
         flags:\n  \
           --model sc|tso|pso     memory model for check/races/behaviours (default: sc;\n                         \
                                  tso/pso explore the §8 store-buffer machines, POR off)\n  \
           --jobs N               worker threads (default: all cores; 1 = sequential)\n  \
           --timeout SECS         wall-clock budget for the analysis commands\n  \
           --max-states N         cap on explored states (approximate memory budget)\n  \
           --max-interleavings N  cap on enumerated executions\n  \
           --no-por               disable the partial-order reduction (full exploration)\n  \
           --no-await             disable the await-aware spin-loop stutter reduction\n  \
           --stats                print exploration metrics on stderr after the analysis\n  \
           --stats=json           one line of schema-stable stats JSON on stdout instead\n  \
           --trace-out PATH       write the phase/event trace (tab-separated) to PATH\n\
         serve flags:\n  \
           --socket PATH          accept clients on a Unix socket instead of stdin\n  \
           --workers N            concurrent request executors (default: all cores)\n  \
           --queue-depth N        admission queue bound; when full the oldest queued\n                         \
                                  request is shed with an 'overloaded' response (default 256)\n  \
           --cache-dir DIR        enable the crash-safe verdict cache in DIR\n                         \
                                  (or set DRFCHECK_CACHE_DIR)\n  \
           --no-cache             disable the verdict cache regardless of environment\n  \
           --fault-plan SPEC      deterministic fault injection, e.g. 'panic@2,corrupt@3'\n                         \
                                  (or set DRFCHECK_FAULTS; see the user guide)\n  \
           --stats-out PATH       write the serve-section stats JSON to PATH on exit\n\
         fuzz flags:\n  \
           --pairs N              random (program × pipeline) cases (default 1000)\n  \
           --fuzz-seed N          master seed; the whole run is a pure function of it\n  \
           --models LIST          comma-separated models to cycle over (default sc,tso,pso)\n  \
           --case-timeout-ms N    per-side analysis wall-clock budget (default 100; 0 = off)\n  \
           --case-max-states N    per-side analysis state cap (default 20000)\n  \
           --max-passes N         pipeline length bound (default 3)\n  \
           --shrink-attempts N    oracle re-runs the minimiser may spend per divergence\n  \
           --max-witnesses N      expected-divergence witnesses to minimise and keep\n  \
           --witness-dir DIR      save minimised witnesses as .tsl + .pipeline pairs\n  \
           --skip-seeded          skip the built-in known-unsafe seed cases\n\
         exit codes:\n  \
           0  success / property holds\n  \
           1  data race or unsafe transformation found (for fuzz: a refinement\n     \
              violation, a missed seeded case, or a panicking case)\n  \
           2  usage or input error\n  \
           3  a state/interleaving cap was exceeded (partial results flushed)\n  \
           4  deadline exceeded or interrupted by SIGINT/SIGTERM (partial results\n     \
              flushed; serve drains gracefully — a second signal hard-exits at once)\n  \
           5  a worker panic was quarantined; results computed by the sequential fallback\n\
         <program> is a file path or a corpus name (try `drfcheck litmus`)."
    );
    ExitCode::from(2)
}

/// The process-wide cancellation token, shared with the SIGINT handler.
static CANCEL: OnceLock<CancelToken> = OnceLock::new();

fn cancel_token() -> &'static CancelToken {
    CANCEL.get_or_init(CancelToken::new)
}

/// Set by the first SIGINT/SIGTERM. A second signal means the user is
/// done waiting for the graceful drain — the process hard-exits with
/// the interrupt code immediately.
static SIGNAL_SEEN: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    // Everything here is async-signal-safe: atomic swap/store, and on
    // the repeat-signal path `_exit(2)` (no atexit handlers, no
    // unwinding, no allocation).
    if SIGNAL_SEEN.swap(true, std::sync::atomic::Ordering::AcqRel) {
        // SAFETY: `_exit` terminates the process without running any
        // non-signal-safe cleanup; that is exactly the point.
        unsafe { _exit(i32::from(EXIT_TIMED_OUT)) }
    }
    // The analysis observes the token at its next cooperative check and
    // flushes a partial report instead of the process dying mid-print.
    if let Some(token) = CANCEL.get() {
        token.cancel();
    }
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
    fn _exit(code: i32) -> !;
}

fn install_signal_handlers() {
    // Initialise the token first so the handler never races the
    // `OnceLock`.
    let _ = cancel_token();
    // SAFETY: the handler is an `extern "C" fn` that only performs
    // atomic operations on an already-initialised static (or `_exit`).
    unsafe {
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
    }
}

/// Maps a truncated or faulted run to stderr diagnostics plus the exit
/// code documented in `--help`; `None` means the run was complete and
/// fault-free.
fn degraded_exit(
    reason: Option<TruncationReason>,
    faults: usize,
    states: usize,
    elapsed: Duration,
) -> Option<ExitCode> {
    if let Some(reason) = reason {
        eprintln!(
            "drfcheck: analysis truncated: {reason} — {states} states explored in {:.3}s{}",
            elapsed.as_secs_f64(),
            if faults > 0 {
                " (after quarantined worker panics)"
            } else {
                ""
            }
        );
        let code = match reason {
            TruncationReason::Cancelled
            | TruncationReason::BudgetExceeded(BudgetBound::WallClock) => EXIT_TIMED_OUT,
            TruncationReason::BudgetExceeded(_) => EXIT_LIMIT_EXCEEDED,
            TruncationReason::WorkerPanic => EXIT_FAULT_RECOVERED,
        };
        Some(ExitCode::from(code))
    } else if faults > 0 {
        eprintln!(
            "drfcheck: {faults} worker panic(s) quarantined — analysis completed in {:.3}s \
             on the sequential fallback engine",
            elapsed.as_secs_f64()
        );
        Some(ExitCode::from(EXIT_FAULT_RECOVERED))
    } else {
        None
    }
}

/// [`degraded_exit`] reading its inputs off a [`BudgetGuard`].
fn guard_exit(guard: &BudgetGuard) -> Option<ExitCode> {
    degraded_exit(
        guard.trip_reason(),
        guard.faults(),
        guard.states(),
        guard.elapsed(),
    )
}

/// Runs the governed race search through the memory-model backend
/// selected by `--model`.
fn model_race(program: &Program, opts: &Analysis, guard: &BudgetGuard) -> Option<ModelRaceWitness> {
    match opts.model {
        MemoryModelKind::Sc => {
            let ex = ProgramExplorer::new(program);
            let m = ScModel::new(&ex);
            ModelExplorer::new(&m).race_witness_par_governed(&opts.explore, opts.jobs, guard)
        }
        MemoryModelKind::Tso => {
            let m = TsoModel::new(program);
            ModelExplorer::new(&m).race_witness_par_governed(&opts.explore, opts.jobs, guard)
        }
        MemoryModelKind::Pso => {
            let m = PsoModel::new(program);
            ModelExplorer::new(&m).race_witness_par_governed(&opts.explore, opts.jobs, guard)
        }
    }
}

/// Runs the governed behaviour evaluation through the memory-model
/// backend selected by `--model`.
fn model_behaviours(
    program: &Program,
    opts: &Analysis,
    guard: &BudgetGuard,
) -> Bounded<Behaviours> {
    match opts.model {
        MemoryModelKind::Sc => {
            let ex = ProgramExplorer::new(program);
            let m = ScModel::new(&ex);
            ModelExplorer::new(&m).behaviours_par_governed(&opts.explore, opts.jobs, guard)
        }
        MemoryModelKind::Tso => {
            let m = TsoModel::new(program);
            ModelExplorer::new(&m).behaviours_par_governed(&opts.explore, opts.jobs, guard)
        }
        MemoryModelKind::Pso => {
            let m = PsoModel::new(program);
            ModelExplorer::new(&m).behaviours_par_governed(&opts.explore, opts.jobs, guard)
        }
    }
}

/// Prints the full per-model schedule to the race when it contains
/// moves the happens-before event path abstracts away (the store-buffer
/// flushes of the TSO/PSO machines). Under SC every step is an action
/// already shown in the witness, so nothing extra is printed.
fn print_schedule(schedule: &[ScheduleStep]) {
    if !schedule.iter().any(|s| s.label.is_flush()) {
        return;
    }
    println!("schedule (with store-buffer flushes):");
    for step in schedule {
        println!("  {step}");
    }
}

/// Splits global flags off the argument list into an [`Analysis`]
/// configuration; everything else is handed to the subcommands.
fn parse_flags(args: &[String]) -> Result<(Analysis, StatsFlags, Vec<String>), String> {
    let mut opts = Analysis::new().auto_jobs();
    let mut stats = StatsFlags::default();
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--stats" => {
                stats.mode = StatsMode::Human;
            }
            "--stats=json" => {
                stats.mode = StatsMode::Json;
            }
            "--trace-out" => {
                let v = it.next().ok_or("--trace-out requires a path")?;
                stats.trace_out = Some(v.clone());
            }
            "--jobs" | "-j" => {
                let v = it.next().ok_or("--jobs requires a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--jobs: not a number: {v}"))?;
                opts = opts.jobs(n);
            }
            "--max-interleavings" => {
                let v = it.next().ok_or("--max-interleavings requires a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--max-interleavings: not a number: {v}"))?;
                opts = opts.max_interleavings(n);
            }
            "--timeout" => {
                let v = it.next().ok_or("--timeout requires a value (seconds)")?;
                let secs: f64 = v
                    .parse()
                    .map_err(|_| format!("--timeout: not a number: {v}"))?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err(format!("--timeout: not a duration: {v}"));
                }
                if secs == 0.0 {
                    // A zero deadline is a configuration mistake, not a
                    // budget to exceed: reject it up front (exit 2)
                    // instead of reporting a BudgetExceeded truncation.
                    return Err(
                        "--timeout: must be positive (a zero deadline can never admit \
                         any exploration)"
                            .to_string(),
                    );
                }
                opts = opts.timeout(Duration::from_secs_f64(secs));
            }
            "--max-states" => {
                let v = it.next().ok_or("--max-states requires a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--max-states: not a number: {v}"))?;
                opts = opts.max_states(n);
            }
            "--no-por" => {
                opts = opts.por(false);
            }
            "--no-await" => {
                opts = opts.awaits(false);
            }
            "--model" => {
                let v = it
                    .next()
                    .ok_or("--model requires a value (sc, tso or pso)")?;
                let model: MemoryModelKind = v.parse().map_err(|e| format!("--model: {e}"))?;
                opts = opts.model(model);
            }
            _ => rest.push(a.clone()),
        }
    }
    if stats.wants_metrics() {
        opts = opts.metrics(true);
    }
    // Catch the remaining degenerate bounds (e.g. --max-states 0) the
    // same way: as usage errors, before any exploration starts.
    opts.budget.validate()?;
    Ok((opts, stats, rest))
}

fn main() -> ExitCode {
    install_signal_handlers();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = parse_flags(&args).and_then(|(opts, stats, rest)| run(&rest, &opts, &stats));
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("drfcheck: {e}");
            ExitCode::from(2)
        }
    }
}

/// `drfcheck serve`: the long-running JSON-lines batch service. Global
/// flags (`--model`, `--timeout`, `--jobs`, …) become the per-request
/// defaults; the flags parsed here configure the service itself.
fn serve_cmd(args: &[String], opts: &Analysis, stats: &StatsFlags) -> Result<ExitCode, String> {
    let mut socket: Option<String> = None;
    let mut queue_depth: usize = 256;
    let mut workers = transafety::available_jobs();
    let mut cache_dir = std::env::var("DRFCHECK_CACHE_DIR").ok();
    let mut no_cache = false;
    let mut fault_spec = std::env::var("DRFCHECK_FAULTS").unwrap_or_default();
    let mut stats_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => {
                let v = it.next().ok_or("--socket requires a path")?;
                socket = Some(v.clone());
            }
            "--queue-depth" => {
                let v = it.next().ok_or("--queue-depth requires a value")?;
                queue_depth = v
                    .parse()
                    .map_err(|_| format!("--queue-depth: not a number: {v}"))?;
                if queue_depth == 0 {
                    return Err("--queue-depth: must be positive".to_string());
                }
            }
            "--workers" => {
                let v = it.next().ok_or("--workers requires a value")?;
                workers = v
                    .parse()
                    .map_err(|_| format!("--workers: not a number: {v}"))?;
                if workers == 0 {
                    return Err("--workers: must be positive".to_string());
                }
            }
            "--cache-dir" => {
                let v = it.next().ok_or("--cache-dir requires a path")?;
                cache_dir = Some(v.clone());
            }
            "--no-cache" => no_cache = true,
            "--fault-plan" => {
                let v = it.next().ok_or("--fault-plan requires a spec")?;
                fault_spec = v.clone();
            }
            "--stats-out" => {
                let v = it.next().ok_or("--stats-out requires a path")?;
                stats_out = Some(v.clone());
            }
            other => return Err(format!("serve: unknown argument {other:?}")),
        }
    }
    let faults = serve::FaultPlan::parse(&fault_spec).map_err(|e| format!("--fault-plan: {e}"))?;
    if !faults.is_empty() {
        eprintln!("drfcheck: serve: FAULT INJECTION ACTIVE ({faults})");
    }
    let config = serve::ServeConfig {
        workers,
        queue_depth,
        defaults: opts.clone(),
        cache_dir: if no_cache {
            None
        } else {
            cache_dir.map(std::path::PathBuf::from)
        },
        faults,
    };
    let server = serve::Server::new(config).map_err(|e| format!("serve: cache: {e}"))?;

    // Bridge the process-wide signal token to this session's drain
    // token. The poller is detached; it dies with the process.
    let drain = server.drain_token();
    std::thread::spawn(move || loop {
        if cancel_token().is_cancelled() {
            drain.cancel();
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    });

    let summary = if let Some(path) = socket {
        let path = std::path::PathBuf::from(path);
        // A stale socket from a crashed predecessor would make bind
        // fail; connect-refused stale files are safe to clear.
        let _ = std::fs::remove_file(&path);
        let listener = std::os::unix::net::UnixListener::bind(&path)
            .map_err(|e| format!("serve: cannot bind {}: {e}", path.display()))?;
        eprintln!("drfcheck: serving on {}", path.display());
        let summary = server
            .run_unix_listener(listener)
            .map_err(|e| format!("serve: accept loop failed: {e}"))?;
        let _ = std::fs::remove_file(&path);
        summary
    } else {
        let reader = std::io::BufReader::new(std::io::stdin());
        let writer = std::sync::Arc::new(std::sync::Mutex::new(std::io::stdout()));
        server.run(reader, &writer)
    };

    match stats.mode {
        StatsMode::Off => {}
        StatsMode::Human => eprintln!("{}", summary.stats.to_human()),
        StatsMode::Json => println!("{}", summary.stats.to_json()),
    }
    if let Some(path) = &stats_out {
        std::fs::write(path, format!("{}\n", summary.stats.to_json()))
            .map_err(|e| format!("--stats-out: cannot write {path}: {e}"))?;
    }
    if cancel_token().is_cancelled() {
        eprintln!(
            "drfcheck: serve session drained after interrupt: {} responses flushed in {:.3}s",
            summary.stats.latency_count()
                + summary.stats.responses_overloaded
                + summary.stats.responses_cancelled,
            summary.elapsed.as_secs_f64()
        );
        return Ok(ExitCode::from(EXIT_TIMED_OUT));
    }
    Ok(ExitCode::SUCCESS)
}

/// `drfcheck fuzz`: the differential refinement fuzzing soak. Global
/// flags supply the worker count (`--jobs`) and the POR toggle
/// (`--no-por`); the flags parsed here configure the run itself.
fn fuzz_cmd(args: &[String], opts: &Analysis, stats: &StatsFlags) -> Result<ExitCode, String> {
    use transafety::fuzz::{run_soak, SoakConfig};

    let mut config = SoakConfig {
        jobs: opts.jobs,
        por: opts.explore.por,
        ..SoakConfig::default()
    };
    let mut case_timeout_ms: u64 = 100;
    let mut case_max_states: usize = 20_000;
    let mut witness_dir: Option<std::path::PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--pairs" => {
                let v = it.next().ok_or("--pairs requires a value")?;
                config.pairs = v
                    .parse()
                    .map_err(|_| format!("--pairs: not a number: {v}"))?;
            }
            "--fuzz-seed" => {
                let v = it.next().ok_or("--fuzz-seed requires a value")?;
                config.seed = v
                    .parse()
                    .map_err(|_| format!("--fuzz-seed: not a number: {v}"))?;
            }
            "--models" => {
                let v = it.next().ok_or("--models requires a list (e.g. sc,tso)")?;
                config.models = v
                    .split(',')
                    .map(|m| m.trim().parse().map_err(|e| format!("--models: {e}")))
                    .collect::<Result<Vec<MemoryModelKind>, String>>()?;
                if config.models.is_empty() {
                    return Err("--models: the list must not be empty".to_string());
                }
            }
            "--case-timeout-ms" => {
                let v = it.next().ok_or("--case-timeout-ms requires a value")?;
                case_timeout_ms = v
                    .parse()
                    .map_err(|_| format!("--case-timeout-ms: not a number: {v}"))?;
            }
            "--case-max-states" => {
                let v = it.next().ok_or("--case-max-states requires a value")?;
                case_max_states = v
                    .parse()
                    .map_err(|_| format!("--case-max-states: not a number: {v}"))?;
                if case_max_states == 0 {
                    return Err("--case-max-states: must be positive".to_string());
                }
            }
            "--max-passes" => {
                let v = it.next().ok_or("--max-passes requires a value")?;
                config.pipeline.max_passes = v
                    .parse()
                    .map_err(|_| format!("--max-passes: not a number: {v}"))?;
            }
            "--shrink-attempts" => {
                let v = it.next().ok_or("--shrink-attempts requires a value")?;
                config.shrink_attempts = v
                    .parse()
                    .map_err(|_| format!("--shrink-attempts: not a number: {v}"))?;
            }
            "--max-witnesses" => {
                let v = it.next().ok_or("--max-witnesses requires a value")?;
                config.max_witnesses = v
                    .parse()
                    .map_err(|_| format!("--max-witnesses: not a number: {v}"))?;
            }
            "--witness-dir" => {
                let v = it.next().ok_or("--witness-dir requires a path")?;
                witness_dir = Some(std::path::PathBuf::from(v));
            }
            "--skip-seeded" => config.skip_seeded = true,
            other => return Err(format!("fuzz: unknown argument {other:?}")),
        }
    }
    let mut budget = transafety::Budget::unlimited().max_states(case_max_states);
    if case_timeout_ms > 0 {
        budget = budget.timeout(Duration::from_millis(case_timeout_ms));
    }
    config.budget = budget;

    let report = run_soak(&config);

    println!(
        "fuzz: {} pairs checked under {} — {} refine, {} identity, {} inconclusive, \
         {} expected divergences, {} violations",
        report.stats.pairs_checked,
        config
            .models
            .iter()
            .map(|m| m.as_str())
            .collect::<Vec<_>>()
            .join(","),
        report.stats.refines,
        report.stats.identity,
        report.stats.inconclusive,
        report.stats.expected_divergences,
        report.stats.violations,
    );
    if !config.skip_seeded {
        println!(
            "fuzz: seeded known-unsafe cases: {} detected, {} missed",
            report.stats.seeded_detected, report.stats.seeded_missed
        );
    }
    if report.stats.panics > 0 {
        println!(
            "fuzz: {} case(s) panicked inside the fault boundary",
            report.stats.panics
        );
    }
    if let Some(dir) = &witness_dir {
        for (i, w) in report.violations.iter().enumerate() {
            w.save(dir, &format!("violation-{i}"))
                .map_err(|e| format!("--witness-dir: cannot write {}: {e}", dir.display()))?;
        }
        for (i, w) in report.witnesses.iter().enumerate() {
            w.save(dir, &format!("witness-{i}"))
                .map_err(|e| format!("--witness-dir: cannot write {}: {e}", dir.display()))?;
        }
        println!(
            "fuzz: saved {} witness pair(s) to {}",
            report.violations.len() + report.witnesses.len(),
            dir.display()
        );
    }
    for w in &report.violations {
        eprintln!(
            "drfcheck: REFINEMENT VIOLATION under {}:\n{}",
            w.model, w.program
        );
        let rules: Vec<String> = w.rules.iter().map(ToString::to_string).collect();
        eprintln!("pipeline: {} (rules: {})", w.pipeline, rules.join(", "));
    }
    match stats.mode {
        StatsMode::Off => {}
        StatsMode::Human => eprintln!("{}", report.stats.to_human()),
        StatsMode::Json => println!("{}", report.stats.to_json()),
    }
    Ok(if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn run(args: &[String], opts: &Analysis, stats: &StatsFlags) -> Result<ExitCode, String> {
    match args.first().map(String::as_str) {
        Some("check") if args.len() == 2 => {
            let p = load(&args[1])?;
            let report = opts.run_with_cancel(&p.program, cancel_token().clone());
            println!("model: {}", report.model);
            println!("verdict: {}", report.verdict);
            println!(
                "behaviours: {}{}",
                report.behaviours.value.len(),
                if report.behaviours.complete {
                    ""
                } else {
                    " (bounded)"
                }
            );
            println!("reachable states: {}", report.reachable_states);
            println!("completeness: {}", report.completeness);
            if let Some(w) = &report.race {
                println!("{w}");
                if let Some(schedule) = &report.race_schedule {
                    print_schedule(schedule);
                }
            }
            stats.emit(&report.stats)?;
            let reason = match report.completeness {
                Completeness::Complete => None,
                Completeness::Truncated { reason } => Some(reason),
            };
            if let Some(code) = degraded_exit(
                reason,
                report.faults,
                report.states_explored,
                report.elapsed,
            ) {
                return Ok(code);
            }
            Ok(match report.verdict {
                Verdict::Racy => ExitCode::FAILURE,
                Verdict::DrfProven | Verdict::Unknown => ExitCode::SUCCESS,
            })
        }
        Some("races") if args.len() == 2 => {
            let p = load(&args[1])?;
            let collector = stats.collector();
            let guard =
                BudgetGuard::with_metrics(&opts.budget, cancel_token().clone(), collector.clone());
            let witness = model_race(&p.program, opts, &guard);
            let mut snapshot = collector.snapshot();
            snapshot.model = opts.model.as_str().to_string();
            stats.emit(&snapshot)?;
            match witness {
                Some(w) => {
                    // A witness is conclusive however the search was
                    // bounded; note recovered faults but keep exit 1.
                    if guard.faults() > 0 {
                        eprintln!(
                            "drfcheck: {} worker panic(s) quarantined during the race search",
                            guard.faults()
                        );
                    }
                    println!("{}", w.witness);
                    print_schedule(&w.schedule);
                    Ok(ExitCode::FAILURE)
                }
                None => {
                    if let Some(reason) = guard.trip_reason() {
                        println!("unknown: search truncated ({reason})");
                        return Ok(degraded_exit(
                            Some(reason),
                            guard.faults(),
                            guard.states(),
                            guard.elapsed(),
                        )
                        .expect("truncated runs always map to an exit code"));
                    }
                    println!("data race free");
                    Ok(guard_exit(&guard).unwrap_or(ExitCode::SUCCESS))
                }
            }
        }
        Some("behaviours") if args.len() == 2 => {
            let p = load(&args[1])?;
            let collector = stats.collector();
            let guard =
                BudgetGuard::with_metrics(&opts.budget, cancel_token().clone(), collector.clone());
            let b = model_behaviours(&p.program, opts, &guard);
            let mut snapshot = collector.snapshot();
            snapshot.model = opts.model.as_str().to_string();
            stats.emit(&snapshot)?;
            if !b.complete {
                println!("(bounded: exploration hit its limits)");
            }
            for beh in &b.value {
                let rendered: Vec<String> = beh.iter().map(ToString::to_string).collect();
                println!("[{}]", rendered.join(", "));
            }
            // The per-execution action bound is ordinary configuration
            // (loops need one), reported inline above, exit 0 — only
            // hard budget trips and faults change the exit code.
            match guard.trip_reason() {
                Some(TruncationReason::BudgetExceeded(BudgetBound::Actions)) | None => Ok(
                    degraded_exit(None, guard.faults(), guard.states(), guard.elapsed())
                        .unwrap_or(ExitCode::SUCCESS),
                ),
                Some(_) => Ok(guard_exit(&guard).expect("tripped guard maps to an exit code")),
            }
        }
        Some("executions") if args.len() == 2 => {
            let p = load(&args[1])?;
            let collector = stats.collector();
            let guard =
                BudgetGuard::with_metrics(&opts.budget, cancel_token().clone(), collector.clone());
            let e = transafety::lang::extract_traceset(&p.program, &opts.domain, &opts.extract);
            let (execs, capped) = transafety::interleaving::Explorer::new(&e.traceset)
                .maximal_executions_governed(opts.limits(), &guard);
            stats.emit(&collector.snapshot())?;
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            for i in &execs {
                if writeln!(out, "{i}").is_err() {
                    // Downstream closed the pipe (e.g. `| head`); stop
                    // quietly instead of panicking on the next print.
                    return Ok(ExitCode::SUCCESS);
                }
            }
            if capped {
                eprintln!(
                    "drfcheck: execution enumeration was cut short (raise the cap \
                     with --max-interleavings, or the budget with --timeout/--max-states)"
                );
            }
            Ok(guard_exit(&guard).unwrap_or(ExitCode::SUCCESS))
        }
        Some("guarantee") if args.len() == 3 => {
            let original = load(&args[1])?;
            let transformed = load_with(&args[2], original.symbols.clone())?;
            let verdict = drf_guarantee(&transformed.program, &original.program, opts);
            println!("{verdict}");
            Ok(if verdict.is_consistent_with_paper() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        Some("classify") | Some("correspondence") if args.len() == 3 => {
            let original = load(&args[1])?;
            let transformed = load_with(&args[2], original.symbols.clone())?;
            let class = classify_transformation(&transformed.program, &original.program, opts);
            println!("{class}");
            if let TransformationClass::Unsafe {
                witness_trace: Some(t),
            } = &class
            {
                println!("no semantic witness for trace {t}");
            }
            Ok(if class.is_paper_safe() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        Some("rewrites") if args.len() == 2 => {
            let p = load(&args[1])?;
            for rw in transafety::syntactic::all_rewrites(&p.program) {
                let verdict = drf_guarantee(&rw.result, &p.program, opts);
                println!("{rw} — {verdict}");
            }
            Ok(ExitCode::SUCCESS)
        }
        Some("oota") if args.len() == 3 => {
            let p = load(&args[1])?;
            let value: u32 = args[2]
                .parse()
                .map_err(|_| format!("not a value: {}", args[2]))?;
            let value = Value::new(value);
            let domain = Domain::from_values(
                p.program
                    .constants()
                    .into_iter()
                    .chain([value, Value::new(1)]),
            );
            let o = opts.clone().domain(domain);
            let verdict = no_thin_air(&p.program, value, 3, &o);
            println!("{verdict}");
            Ok(match verdict {
                OotaVerdict::Safe { .. } | OotaVerdict::MentionsConstant => ExitCode::SUCCESS,
                _ => ExitCode::FAILURE,
            })
        }
        Some("tso") if args.len() == 2 => {
            let p = load(&args[1])?;
            let e = explain_tso(&p.program, 3, &opts.explore);
            println!(
                "SC behaviours: {} — TSO behaviours: {}{}",
                e.sc.len(),
                e.tso.len(),
                if e.relaxed { " (relaxed)" } else { "" }
            );
            println!(
                "explained by W→R reordering + forwarding elimination \
                 (closure of {} programs): {}",
                e.closure_size,
                if e.explained { "yes" } else { "NO" }
            );
            Ok(if e.explained {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        Some("pso") if args.len() == 2 => {
            let p = load(&args[1])?;
            let e = transafety::tso::explain_pso(&p.program, 3, &opts.explore);
            println!(
                "SC behaviours: {} — PSO behaviours: {}{}",
                e.sc.len(),
                e.pso.len(),
                if e.relaxed { " (relaxed)" } else { "" }
            );
            println!(
                "explained by the W→R + W→W reordering fragment \
                 (closure of {} programs): {}",
                e.closure_size,
                if e.explained { "yes" } else { "NO" }
            );
            Ok(if e.explained {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        Some("dot") if args.len() == 2 => {
            let p = load(&args[1])?;
            // render the racy execution if there is one, otherwise any
            // maximal execution of the (bounded) traceset
            if let Some(w) = race_witness(&p.program, opts) {
                print!("{}", transafety::interleaving::hb_dot(&w.execution));
                return Ok(ExitCode::SUCCESS);
            }
            let e = transafety::lang::extract_traceset(
                &p.program,
                &opts.domain,
                &transafety::lang::ExtractOptions::default(),
            );
            let execs = transafety::interleaving::Explorer::new(&e.traceset).maximal_executions(
                transafety::interleaving::ExploreLimits {
                    max_interleavings: 1,
                },
            );
            match execs.first() {
                Some(i) => print!("{}", transafety::interleaving::hb_dot(i)),
                None => println!("// no executions"),
            }
            Ok(ExitCode::SUCCESS)
        }
        Some("serve") => serve_cmd(&args[1..], opts, stats),
        Some("fuzz") => fuzz_cmd(&args[1..], opts, stats),
        Some("litmus") if args.len() == 1 => {
            for l in transafety::litmus::corpus() {
                println!(
                    "{:<26} {:<12} {}",
                    l.name,
                    l.paper_ref.unwrap_or("-"),
                    l.description
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        _ => Ok(usage()),
    }
}
