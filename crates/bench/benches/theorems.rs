//! Benchmarks for the theorem-scale experiments (E8–E10 of `DESIGN.md`):
//! verifying the DRF guarantee, the semantic correspondences, and the
//! out-of-thin-air guarantee over corpus programs and transformation
//! closures.

use std::hint::black_box;
use transafety_bench::{criterion_group, criterion_main, Criterion};

use transafety::checker::{
    check_rewrite, drf_guarantee, no_thin_air, Analysis, Correspondence, DrfVerdict, OotaVerdict,
};
use transafety::lang::{extract_traceset, ExtractOptions};
use transafety::litmus::parse_pair;
use transafety::litmus::{random_program, GeneratorConfig};
use transafety::syntactic::{all_rewrites, transform_closure, RuleSet};
use transafety::traces::{Domain, Value};
use transafety::transform::{find_elim_reordering, is_elim_reordering_of, EliminationOptions};
use transafety_bench::corpus_program;

fn e8_drf_guarantee_per_rewrite(c: &mut Criterion) {
    let p = corpus_program("fig3-a");
    let rewrites = all_rewrites(&p);
    assert!(!rewrites.is_empty());
    let opts = Analysis::new();
    c.bench_function("E8/drf_guarantee_all_rewrites_fig3a", |b| {
        b.iter(|| {
            for rw in &rewrites {
                let v = drf_guarantee(black_box(&rw.result), &p, &opts);
                assert!(matches!(v, DrfVerdict::Holds));
            }
            rewrites.len()
        })
    });
}

fn e8_lemma4_correspondence(c: &mut Criterion) {
    let p = corpus_program("redundant-load-pair");
    let rewrites = all_rewrites(&p);
    let opts = Analysis::with_domain(Domain::zero_to(1));
    c.bench_function("E8/lemma4_correspondence_redundant_load", |b| {
        b.iter(|| {
            for rw in &rewrites {
                let v = check_rewrite(black_box(&p), rw, &opts);
                assert!(matches!(v, Correspondence::Verified { .. }));
            }
            rewrites.len()
        })
    });
}

fn e9_reordering_verification(c: &mut Criterion) {
    let p = corpus_program("roach-motel");
    let rewrites: Vec<_> = all_rewrites(&p)
        .into_iter()
        .filter(|r| r.rule.is_reordering())
        .collect();
    assert!(!rewrites.is_empty());
    let opts = Analysis::with_domain(Domain::zero_to(1));
    c.bench_function("E9/lemma5_correspondence_roach_motel", |b| {
        b.iter(|| {
            for rw in &rewrites {
                let v = check_rewrite(black_box(&p), rw, &opts);
                assert!(matches!(v, Correspondence::Verified { .. }));
            }
            rewrites.len()
        })
    });
}

fn e10_oota_closure(c: &mut Criterion) {
    let p = corpus_program("oota");
    let opts = Analysis::with_domain(Domain::from_values([Value::new(1), Value::new(42)]));
    c.bench_function("E10/no_thin_air_depth3", |b| {
        b.iter(|| {
            let v = no_thin_air(black_box(&p), Value::new(42), 3, &opts);
            assert!(matches!(v, OotaVerdict::Safe { .. }));
        })
    });
}

fn e8_random_program_throughput(c: &mut Criterion) {
    let config = GeneratorConfig::drf();
    let programs: Vec<_> = (0..8).map(|s| random_program(s, &config)).collect();
    let opts = Analysis::new();
    c.bench_function("E8/drf_guarantee_random_drf_programs", |b| {
        b.iter(|| {
            let mut verified = 0;
            for p in &programs {
                for rw in all_rewrites(p).into_iter().take(2) {
                    let v = drf_guarantee(&rw.result, p, &opts);
                    assert!(!matches!(v, DrfVerdict::NewBehaviour(_)));
                    verified += 1;
                }
            }
            verified
        })
    });
}

/// Ablation for the DESIGN.md §5 memoisation decision: the shared
/// elimination oracle vs. a fresh oracle per transformed trace.
fn ablation_oracle_memoisation(c: &mut Criterion) {
    let (o, t) = parse_pair("fig2-original", "fig2-transformed");
    let d = Domain::zero_to(1);
    let ex = ExtractOptions::default();
    let to = extract_traceset(&o.program, &d, &ex).traceset;
    let tt = extract_traceset(&t.program, &d, &ex).traceset;
    let eo = EliminationOptions::default();
    let mut group = c.benchmark_group("E12/oracle_memoisation_ablation");
    group.bench_function("shared_oracle", |b| {
        b.iter(|| is_elim_reordering_of(black_box(&tt), &to, &d, &eo).is_ok())
    });
    group.bench_function("fresh_oracle_per_trace", |b| {
        b.iter(|| {
            tt.traces()
                .all(|tr| find_elim_reordering(black_box(&tr), &to, &d, &eo).is_some())
        })
    });
    group.finish();
}

fn composition_closure(c: &mut Criterion) {
    let p = corpus_program("fig3-a");
    c.bench_function("E8/transform_closure_depth3", |b| {
        b.iter(|| transform_closure(black_box(&p), RuleSet::All, 3).len())
    });
}

criterion_group! {
    name = theorems;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = e8_drf_guarantee_per_rewrite,
    e8_lemma4_correspondence,
    e9_reordering_verification,
    e10_oota_closure,
    e8_random_program_throughput,
    ablation_oracle_memoisation,
    composition_closure
}
criterion_main!(theorems);
