//! Direct exploration of a program's sequentially consistent executions.
//!
//! The traceset route (extract `[P]`, then run
//! [`Explorer`](transafety_interleaving::Explorer)) is faithful to §3 but
//! materialises wrong-value reads that sequential consistency immediately
//! rules out. This module explores the *program* state space directly —
//! reads observe the current memory — which is exponentially smaller and
//! is the engine the checker and the benchmarks use for whole programs.
//! The two routes are cross-validated in the test suites.
//!
//! # State representation
//!
//! Thread configurations are interned once into a per-explorer
//! [`CfgCache`]: each distinct [`ThreadConfig`] gets a dense `u32` id and
//! a pre-derived [`StepTemplate`] describing its next emitting step, so
//! the hot move loop never re-runs `tau_closure` (the old engine ran it
//! twice per read) and never clones configurations. A machine state is a
//! compact word buffer ([`CState`]): per-thread cfg ids, dense memory
//! values indexed by pre-computed location ids, a written bitmap (the
//! old `BTreeMap` distinguished never-written from written-zero), and an
//! inline holder table. States intern into a
//! [`StateInterner`] and every memo/visited structure keys on `u32` ids
//! hashed with the cheap FxHash. The encoding is bijective with the old
//! `PState` representation (checked by
//! [`audit_intern`](ProgramExplorer::audit_intern) and the property
//! suite); the pre-interning engine is retained as the `*_reference`
//! entry points for differential testing and benchmarking.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::{Arc, Mutex};

use transafety_interleaving::intern::{
    FxHashMap, FxHashSet, InternAudit, ScratchPool, StateInterner,
};
use transafety_interleaving::metrics::ExpansionKind;
use transafety_interleaving::{Behaviours, BudgetGuard, Event, Interleaving, RaceWitness};
use transafety_traces::{Action, Domain, Loc, Monitor, ThreadId, Value};

use crate::ast::Program;
use crate::model::{ModelExplorer, ScModel};
use crate::semantics::{Step, ThreadConfig};

/// Bounds for program-level exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreOptions {
    /// Maximum number of actions along any single execution considered by
    /// [`ProgramExplorer::behaviours`] (loops make the exact set
    /// infinite; the bounded set is exact for executions up to this
    /// length).
    pub max_actions: usize,
    /// Maximum silent steps between two actions of one thread.
    pub max_tau: usize,
    /// Apply the dynamic partial-order reduction to the behaviour and
    /// race entry points (default: `true`). Invisibility is decided
    /// against the *suffix* footprints of the other threads' remaining
    /// code, and an ast-size cycle proviso keeps spinning threads out
    /// of the ample sets, so the reduction is sound on loop-bearing
    /// programs too (the old engine disabled itself on any `while`).
    /// Disabling is for cross-validation and state-space measurement
    /// only: both settings produce the same behaviours and the same
    /// racy/DRF verdict.
    pub por: bool,
    /// Apply the await-aware stutter reduction to the behaviour phase
    /// (default: `true`). A failed re-read inside a recognised await
    /// loop (see [`CfgMeta::awaits`]) maps the state to itself; such
    /// self-loop moves are dropped, so a spinning thread sleeps until a
    /// write changes the watched location (value-change wakeup — the
    /// moves are recomputed per state, so any memory change re-enables
    /// the read). When *every* loop in the program is await-shaped this
    /// makes the behaviour state graph acyclic and the exploration runs
    /// unbounded fuel: spin programs get complete verdicts instead of
    /// budget-truncated ones. The race phase never collapses (a spin
    /// read can race; one representative failed read stays adjacent to
    /// every write of the watched location). Disabling is for
    /// cross-validation: both settings produce the same behaviours and
    /// the same racy/DRF verdict wherever the unreduced run completes.
    pub awaits: bool,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            max_actions: 32,
            max_tau: 4096,
            por: true,
            awaits: true,
        }
    }
}

/// A result that may have been cut short by exploration bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bounded<T> {
    /// The computed value.
    pub value: T,
    /// `true` if no bound was hit, i.e. the value is exact for the
    /// unbounded semantics.
    pub complete: bool,
}

/// Exhaustive explorer of a program's SC executions (the direct,
/// state-space analogue of [`transafety_interleaving::Explorer`]).
///
/// # Example
///
/// ```
/// use transafety_lang::{ExploreOptions, Program, ProgramExplorer, Reg, Stmt};
/// use transafety_traces::{Loc, Value};
/// let x = Loc::normal(0);
/// // T0: x := 1 — T1: r0 := x; print r0
/// let p = Program::new(vec![
///     vec![
///         Stmt::Move { dst: Reg::new(0), src: Value::new(1).into() },
///         Stmt::Store { loc: x, src: Reg::new(0) },
///     ],
///     vec![Stmt::Load { dst: Reg::new(0), loc: x }, Stmt::Print(Reg::new(0))],
/// ]);
/// let ex = ProgramExplorer::new(&p);
/// let b = ex.behaviours(&ExploreOptions::default());
/// assert!(b.complete);
/// assert!(b.value.contains(&vec![Value::new(0)]));
/// assert!(b.value.contains(&vec![Value::new(1)]));
/// assert!(!ex.is_data_race_free(&ExploreOptions::default()), "unsynchronised");
/// ```
#[derive(Debug)]
pub struct ProgramExplorer<'p> {
    program: &'p Program,
    /// Sorted location universe; a location's dense id is its index.
    locs: Vec<Loc>,
    /// Sorted monitor universe.
    monitors: Vec<Monitor>,
    /// The interned thread-configuration space plus derived step
    /// templates, shared by every entry point of this explorer.
    cache: Mutex<CfgCache>,
}

/// Sentinel cfg-id word for a thread that has not started yet.
const NOT_STARTED: u32 = u32::MAX;

/// The per-explorer configuration cache: the interned [`ThreadConfig`]
/// space, a lazily derived [`StepTemplate`] per cfg id, and a memo of
/// read successors. Built for one `max_tau` at a time (templates encode
/// divergence at that bound); a call with a different bound rebuilds it.
#[derive(Debug, Default)]
struct CfgCache {
    max_tau: usize,
    valid: bool,
    cfgs: StateInterner<ThreadConfig>,
    templates: Vec<Option<StepTemplate>>,
    /// `(at_emit cfg id, read value) -> (action, successor cfg id)`.
    read_succ: FxHashMap<(u32, u32), (Action, u32)>,
    /// Per-thread initial cfg ids (the successor of the start move).
    initial: Vec<u32>,
    /// Lazily derived [`CfgMeta`] per cfg id (suffix footprint and
    /// ast size of the remaining code), for the dynamic reduction.
    meta: Vec<Option<Arc<CfgMeta>>>,
}

/// The static footprint and size of one thread configuration's
/// **remaining** code: every location and monitor the continuation can
/// still touch, whether it can still emit output, and the
/// continuation's AST size (the well-founded measure of the cycle
/// proviso). A pure function of the code, memoised per interned cfg id,
/// so the reduced move choice stays a pure function of the state and
/// memoisation/parallel deduplication remain exact.
///
/// Public so other memory-model backends (the TSO/PSO machines of
/// `transafety-tso`) can run the same dynamic-invisibility and
/// cycle-proviso arguments over their own thread configurations.
#[derive(Debug, Default)]
pub struct CfgMeta {
    /// Locations the remaining code can still write.
    pub writes: std::collections::BTreeSet<Loc>,
    /// Locations the remaining code can still read or write.
    pub accesses: std::collections::BTreeSet<Loc>,
    /// Monitors the remaining code can still lock or unlock.
    pub monitors: std::collections::BTreeSet<Monitor>,
    /// Can the remaining code still emit output?
    pub externals: bool,
    /// Statement-node count of the remaining code: the well-founded
    /// measure of the cycle proviso (any non-looping step strictly
    /// shrinks it; a loop unfolding does not).
    pub ast_size: usize,
    /// Locations watched by *await loops* in the remaining code: a
    /// `while` whose body is exactly one shared load (plus `skip` /
    /// block structure — no stores, locks, prints, moves or nested
    /// control). Re-reading such a location without a value change is a
    /// pure stutter; the behaviour phase collapses those self-loops
    /// (see [`ExploreOptions::awaits`]).
    pub awaits: std::collections::BTreeSet<Loc>,
}

impl CfgMeta {
    /// Computes the footprint of a remaining-code statement list.
    #[must_use]
    pub fn of_code(code: &[crate::ast::Stmt]) -> CfgMeta {
        let mut m = CfgMeta::default();
        for s in code {
            m.absorb(s);
        }
        m
    }

    /// Over-approximates (dead branches count), which is the safe
    /// direction for the reduction; `ast_size` counts every statement
    /// node, so any non-looping step strictly shrinks it while a loop
    /// unfolding does not.
    fn absorb(&mut self, s: &crate::ast::Stmt) {
        use crate::ast::Stmt;
        self.ast_size += 1;
        match s {
            Stmt::Store { loc, .. } => {
                self.writes.insert(*loc);
                self.accesses.insert(*loc);
            }
            Stmt::Load { loc, .. } => {
                self.accesses.insert(*loc);
            }
            Stmt::Lock(m) | Stmt::Unlock(m) => {
                self.monitors.insert(*m);
            }
            Stmt::Print(_) => self.externals = true,
            Stmt::Block(b) => {
                for s in b {
                    self.absorb(s);
                }
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                self.absorb(then_branch);
                self.absorb(else_branch);
            }
            Stmt::While { body, .. } => {
                if let Some(loc) = await_watch(body) {
                    self.awaits.insert(loc);
                }
                self.absorb(body);
            }
            _ => {}
        }
    }
}

/// The location a `while` body watches, when the body is await-shaped:
/// exactly one shared load, wrapped in nothing but `skip`s and blocks.
/// Anything else (a store, lock, print, register move, nested control, a
/// second load) has effects a stutter collapse could lose, so the loop
/// is not recognised.
fn await_watch(body: &crate::ast::Stmt) -> Option<Loc> {
    fn scan(s: &crate::ast::Stmt, watch: &mut Option<Loc>) -> bool {
        use crate::ast::Stmt;
        match s {
            Stmt::Skip => true,
            Stmt::Load { loc, .. } => watch.replace(*loc).is_none(),
            Stmt::Block(b) => b.iter().all(|s| scan(s, watch)),
            _ => false,
        }
    }
    let mut watch = None;
    scan(body, &mut watch).then_some(watch).flatten()
}

/// What a thread configuration does next, pre-derived from one
/// `tau_closure` run so the move loop never steps the semantics again.
#[derive(Debug, Clone, Copy)]
enum StepTemplate {
    /// The thread is finished: no moves.
    Done,
    /// `tau_closure` exceeded `max_tau`: silent divergence (the thread's
    /// moves are dropped and the exploration marked truncated).
    Diverged,
    /// The next action reads `loc`; the successor depends on the value
    /// read, resolved through the `read_succ` memo of the `at_emit`
    /// configuration (the closure stopped at the load).
    Read { loc: Loc, at_emit: u32 },
    /// The next action acquires `m` (enabled only when the holder table
    /// allows it).
    Lock {
        m: Monitor,
        action: Action,
        next: u32,
    },
    /// An unconditional emit (write, external, unlock, …). `releases`
    /// is set for an unlock whose successor has left the monitor
    /// entirely — computed from the *pre-normalisation* successor, so a
    /// finishing thread that leaks a lock keeps holding it.
    Emit {
        action: Action,
        next: u32,
        releases: bool,
    },
}

/// The compact machine state: one word per thread (its cfg id, or
/// [`NOT_STARTED`]), dense memory values, the written bitmap, and one
/// holder word per monitor (`holder + 1`, `0` = free).
///
/// Public only as the opaque [`MemoryModel::State`](crate::MemoryModel)
/// of the [`ScModel`](crate::ScModel) backend; its contents are an
/// internal encoding.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CState {
    words: Box<[u32]>,
}

/// A single enabled move in the compact encoding. `Copy`: applying a
/// move clones nothing.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CMove {
    pub(crate) thread: usize,
    pub(crate) action: Action,
    next_cfg: u32,
    releases: bool,
}

/// The uncompressed reference state, kept for the pre-interning
/// reference engine and the encode/decode audits.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PState {
    threads: Vec<Option<ThreadConfig>>, // None = not yet started
    memory: BTreeMap<Loc, Value>,
    holders: BTreeMap<Monitor, usize>,
}

#[derive(Debug, Clone)]
struct PMove {
    thread: usize,
    action: Action,
    next: Option<ThreadConfig>,
}

/// The previous normal access of the race searches, as
/// `(thread, location, was_write)`.
type Prev = Option<(usize, Loc, bool)>;

impl<'p> ProgramExplorer<'p> {
    /// Creates an explorer for the program.
    #[must_use]
    pub fn new(program: &'p Program) -> Self {
        let mut accessed: std::collections::BTreeSet<Loc> = Default::default();
        let mut monitors: std::collections::BTreeSet<Monitor> = Default::default();
        for thread in program.threads() {
            for stmt in thread {
                collect_accesses(stmt, &mut accessed);
                collect_monitors(stmt, &mut monitors);
            }
        }
        ProgramExplorer {
            program,
            locs: accessed.into_iter().collect(),
            monitors: monitors.into_iter().collect(),
            cache: Mutex::new(CfgCache::default()),
        }
    }

    // -- compact layout helpers ---------------------------------------

    fn mem_base(&self) -> usize {
        self.program.thread_count()
    }

    fn bit_base(&self) -> usize {
        self.mem_base() + self.locs.len()
    }

    fn holder_base(&self) -> usize {
        self.bit_base() + self.locs.len().div_ceil(32)
    }

    fn word_count(&self) -> usize {
        self.holder_base() + self.monitors.len()
    }

    fn loc_index(&self, loc: Loc) -> usize {
        self.locs
            .binary_search(&loc)
            .expect("location in the program's access universe")
    }

    fn holder_slot(&self, m: Monitor) -> usize {
        self.holder_base()
            + self
                .monitors
                .binary_search(&m)
                .expect("monitor in the program's universe")
    }

    fn mem(&self, state: &CState, loc: Loc) -> Value {
        // Unwritten cells hold the zero word — exactly the read default.
        Value::new(state.words[self.mem_base() + self.loc_index(loc)])
    }

    pub(crate) fn initial_compact(&self) -> CState {
        let mut words = vec![0u32; self.word_count()].into_boxed_slice();
        for w in words.iter_mut().take(self.program.thread_count()) {
            *w = NOT_STARTED;
        }
        CState { words }
    }

    // -- configuration cache ------------------------------------------

    fn lock_cache(&self) -> std::sync::MutexGuard<'_, CfgCache> {
        // Recover from poisoning: a quarantined worker panic must not
        // take the sequential fallback down with it, and the cache is
        // only ever extended, never left half-updated.
        self.cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn ensure_cache(&self, cache: &mut CfgCache, max_tau: usize) {
        if cache.valid && cache.max_tau == max_tau {
            return;
        }
        *cache = CfgCache {
            max_tau,
            valid: true,
            ..CfgCache::default()
        };
        for k in 0..self.program.thread_count() {
            let cfg = ThreadConfig::new(
                self.program
                    .thread(k)
                    .expect("thread index in range")
                    .to_vec(),
            );
            let id = Self::intern_normalised(cache, cfg);
            cache.initial.push(id);
        }
    }

    /// Interns a configuration, normalising it to its τ-closure first:
    /// silent steps (register moves, branch selection, loop
    /// unfolding/exit) are deterministic and unobservable, so the
    /// emit-point configuration is semantically interchangeable with
    /// any silent predecessor — interning the closed form dedups states
    /// that differ only in silent progress, sharpens the [`CfgMeta`]
    /// suffix footprints (a decided branch drops the untaken side), and
    /// gives the ast-size cycle proviso the *unfolded* view of a loop
    /// head, so entering a register-decided loop iteration is
    /// size-decreasing like any other statement. Finished threads
    /// normalise to the canonical empty config (their registers and
    /// nesting can never be observed again). A silently diverging
    /// configuration is interned as-is; template derivation flags it.
    fn intern_normalised(cache: &mut CfgCache, cfg: ThreadConfig) -> u32 {
        let cfg = match cfg.tau_closure(&Domain::zero_to(0), cache.max_tau) {
            Some((_, Step::Done)) => ThreadConfig::new(vec![]),
            Some((at_emit, _)) => at_emit,
            None => cfg,
        };
        cache.cfgs.intern(cfg).0
    }

    /// The step template of cfg `id`, deriving (and memoising) it on
    /// first use.
    fn template(&self, cache: &mut CfgCache, id: u32) -> StepTemplate {
        let i = id as usize;
        if let Some(Some(t)) = cache.templates.get(i) {
            return *t;
        }
        let t = self.derive_template(cache, id);
        let i = id as usize;
        if i >= cache.templates.len() {
            cache.templates.resize(i + 1, None);
        }
        cache.templates[i] = Some(t);
        t
    }

    /// One `tau_closure` run, folded into a template. The old engine
    /// re-ran the closure on every visit (twice for reads); the template
    /// runs it once per distinct configuration, ever.
    fn derive_template(&self, cache: &mut CfgCache, id: u32) -> StepTemplate {
        let cfg = cache.cfgs.get(id).clone();
        // The read domain is irrelevant for direct exploration (loads
        // read memory); pass a minimal domain and resolve reads through
        // the `at_emit` configuration.
        let domain = Domain::zero_to(0);
        let Some((at_emit, step)) = cfg.tau_closure(&domain, cache.max_tau) else {
            return StepTemplate::Diverged;
        };
        match step {
            Step::Done => StepTemplate::Done,
            Step::Tau(_) => unreachable!("tau_closure never returns Tau"),
            Step::Emit(successors) => {
                let (first_action, _) = &successors[0];
                match *first_action {
                    Action::Read { loc, .. } => StepTemplate::Read {
                        loc,
                        at_emit: cache.cfgs.intern(at_emit).0,
                    },
                    Action::Lock(m) => {
                        let (a, next) = successors.into_iter().next().expect("one successor");
                        StepTemplate::Lock {
                            m,
                            action: a,
                            next: Self::intern_normalised(cache, next),
                        }
                    }
                    _ => {
                        let (a, next) = successors.into_iter().next().expect("one successor");
                        let releases =
                            matches!(a, Action::Unlock(m) if next.monitor_nesting(m) == 0);
                        StepTemplate::Emit {
                            action: a,
                            next: Self::intern_normalised(cache, next),
                            releases,
                        }
                    }
                }
            }
        }
    }

    /// The [`CfgMeta`] of cfg `id`, deriving (and memoising) it on
    /// first use.
    fn meta(&self, cache: &mut CfgCache, id: u32) -> Arc<CfgMeta> {
        let i = id as usize;
        if let Some(Some(m)) = cache.meta.get(i) {
            return Arc::clone(m);
        }
        let m = Arc::new(CfgMeta::of_code(cache.cfgs.get(id).code()));
        if i >= cache.meta.len() {
            cache.meta.resize(i + 1, None);
        }
        cache.meta[i] = Some(Arc::clone(&m));
        m
    }

    /// The successor of the `at_emit` configuration when its load reads
    /// `v`, memoised per `(at_emit, v)`.
    fn read_successor(&self, cache: &mut CfgCache, at_emit: u32, v: Value) -> (Action, u32) {
        if let Some(&r) = cache.read_succ.get(&(at_emit, v.get())) {
            return r;
        }
        let cfg = cache.cfgs.get(at_emit).clone();
        let Step::Emit(succ) = cfg.step(&Domain::from_values([v])) else {
            unreachable!("closure stopped at an emitting statement")
        };
        let (a, next) = succ
            .into_iter()
            .find(|(a, _)| a.value() == Some(v))
            .expect("domain contains v");
        let r = (a, Self::intern_normalised(cache, next));
        cache.read_succ.insert((at_emit, v.get()), r);
        r
    }

    // -- moves and transitions ----------------------------------------

    /// Enabled moves at `state`, appended to the caller's (cleared)
    /// scratch buffer; sets `*truncated` when a thread silently diverges
    /// (its moves are then dropped). Locks the cfg cache once per call.
    fn moves_into(
        &self,
        state: &CState,
        opts: &ExploreOptions,
        out: &mut Vec<CMove>,
        truncated: &mut bool,
    ) {
        out.clear();
        let mut cache = self.lock_cache();
        self.ensure_cache(&mut cache, opts.max_tau);
        for k in 0..self.program.thread_count() {
            let cfg_id = state.words[k];
            if cfg_id == NOT_STARTED {
                out.push(CMove {
                    thread: k,
                    action: Action::start(ThreadId::new(k as u32)),
                    next_cfg: cache.initial[k],
                    releases: false,
                });
                continue;
            }
            match self.template(&mut cache, cfg_id) {
                StepTemplate::Done => {}
                StepTemplate::Diverged => *truncated = true,
                StepTemplate::Read { loc, at_emit } => {
                    let v = self.mem(state, loc);
                    let (action, next_cfg) = self.read_successor(&mut cache, at_emit, v);
                    out.push(CMove {
                        thread: k,
                        action,
                        next_cfg,
                        releases: false,
                    });
                }
                StepTemplate::Lock { m, action, next } => {
                    let h = state.words[self.holder_slot(m)];
                    if h == 0 || h as usize == k + 1 {
                        out.push(CMove {
                            thread: k,
                            action,
                            next_cfg: next,
                            releases: false,
                        });
                    }
                }
                StepTemplate::Emit {
                    action,
                    next,
                    releases,
                } => out.push(CMove {
                    thread: k,
                    action,
                    next_cfg: next,
                    releases,
                }),
            }
        }
    }

    /// The reduced move set, in the caller's scratch buffer: the ample
    /// set of the dynamic partial-order reduction, or all enabled moves
    /// when no reduction applies.
    ///
    /// Each thread has at most one enabled move here (the program
    /// semantics are deterministic per thread given the memory), and a
    /// move that is [dynamically invisible](ProgramExplorer::invisible_dyn)
    /// is *stable*: no move any other thread can **still** perform
    /// changes, disables, observes or conflicts with it. The
    /// lowest-indexed thread with an invisible enabled move that also
    /// passes the [ast-size cycle proviso](ProgramExplorer::proviso_ok)
    /// forms a singleton ample set; the proviso guarantees every cycle
    /// of the reduced state graph contains a fully expanded state, so
    /// the reduction is sound on loop-bearing programs (no ignoring
    /// problem). The choice is a pure function of the state, keeping
    /// memoisation and parallel deduplication exact.
    ///
    /// Returns how the expansion was reduced (metrics distinguish ample
    /// hits, proviso-forced full expansions and plain full expansions).
    fn por_moves_into(
        &self,
        state: &CState,
        opts: &ExploreOptions,
        out: &mut Vec<CMove>,
        truncated: &mut bool,
    ) -> ExpansionKind {
        self.moves_into(state, opts, out, truncated);
        if !opts.por {
            return ExpansionKind::Full;
        }
        let mut cache = self.lock_cache();
        // `out` lists threads in ascending index order.
        let mut saw_invisible = false;
        for pos in 0..out.len() {
            let mv = out[pos];
            if !self.invisible_dyn(&mut cache, state, mv.thread, &mv.action) {
                continue;
            }
            saw_invisible = true;
            if self.proviso_ok(&mut cache, state, &mv) {
                out.clear();
                out.push(mv);
                return ExpansionKind::Ample;
            }
        }
        if saw_invisible {
            ExpansionKind::FullProviso
        } else {
            ExpansionKind::Full
        }
    }

    /// Allocating form of [`por_moves_into`](ProgramExplorer::por_moves_into)
    /// for the parallel drivers (which cannot share a scratch pool).
    pub(crate) fn por_moves_vec(
        &self,
        state: &CState,
        opts: &ExploreOptions,
        truncated: &mut bool,
    ) -> (Vec<CMove>, ExpansionKind) {
        let mut out = Vec::new();
        let kind = self.por_moves_into(state, opts, &mut out, truncated);
        (out, kind)
    }

    /// Allocating form of [`moves_into`](ProgramExplorer::moves_into).
    pub(crate) fn moves_vec(
        &self,
        state: &CState,
        opts: &ExploreOptions,
        truncated: &mut bool,
    ) -> Vec<CMove> {
        let mut out = Vec::new();
        self.moves_into(state, opts, &mut out, truncated);
        out
    }

    /// Applies a move: clone the parent's word buffer and patch the
    /// affected words (no config clones, no tree rebuilds).
    pub(crate) fn apply(&self, state: &CState, mv: &CMove) -> CState {
        let mut words = state.words.clone();
        words[mv.thread] = mv.next_cfg;
        match mv.action {
            Action::Write { loc, value } => {
                let i = self.loc_index(loc);
                words[self.mem_base() + i] = value.get();
                words[self.bit_base() + i / 32] |= 1 << (i % 32);
            }
            Action::Lock(m) => {
                words[self.holder_slot(m)] = mv.thread as u32 + 1;
            }
            Action::Unlock(m) if mv.releases => {
                words[self.holder_slot(m)] = 0;
            }
            _ => {}
        }
        CState { words }
    }

    /// Is `a`, performed by thread `k`, *dynamically invisible* at
    /// `state`: guaranteed — by the suffix footprints of the **other
    /// threads' remaining code** — to neither synchronise nor conflict
    /// with anything any other thread can still do, and to commute with
    /// every move any other thread can still make? Unlike the
    /// whole-program static predicate this retires as threads advance:
    /// a location stops being contended the moment its last foreign
    /// accessor has moved past its accesses, and a lock or `print`
    /// becomes invisible once no *other* thread can ever use the
    /// monitor or emit output again (output order is then fixed by
    /// program order). Mirrors
    /// `transafety_interleaving::Explorer`'s predicate; see
    /// `docs/paper-mapping.md` for the soundness argument.
    fn invisible_dyn(&self, cache: &mut CfgCache, state: &CState, k: usize, a: &Action) -> bool {
        match *a {
            Action::Start(_) => return true,
            Action::Read { loc, .. } | Action::Write { loc, .. } if loc.is_volatile() => {
                return false;
            }
            _ => {}
        }
        for j in 0..self.program.thread_count() {
            if j == k {
                continue;
            }
            let id = match state.words[j] {
                NOT_STARTED => cache.initial[j],
                id => id,
            };
            let m = self.meta(cache, id);
            let conflicts = match *a {
                Action::Start(_) => false,
                Action::Read { loc, .. } => m.writes.contains(&loc),
                Action::Write { loc, .. } => m.accesses.contains(&loc),
                Action::Lock(mon) | Action::Unlock(mon) => m.monitors.contains(&mon),
                Action::External(_) => m.externals,
            };
            if conflicts {
                return false;
            }
        }
        true
    }

    /// The ast-size cycle proviso: may `mv` be an ample singleton
    /// without risking the ignoring problem? `Start` moves are one-shot
    /// (a thread starts at most once), and every other ample move must
    /// strictly shrink the moving thread's remaining AST — so the sum
    /// of remaining sizes is a well-founded measure that strictly
    /// decreases along any ample-only path, and every cycle of the
    /// reduced state graph (a loop iteration maps a configuration back
    /// to itself, size unchanged) contains a fully expanded state.
    fn proviso_ok(&self, cache: &mut CfgCache, state: &CState, mv: &CMove) -> bool {
        if matches!(mv.action, Action::Start(_)) {
            return true;
        }
        let cur = self.meta(cache, state.words[mv.thread]).ast_size;
        self.meta(cache, mv.next_cfg).ast_size < cur
    }

    /// The behaviours of the program's executions, by memoised dynamic
    /// programming.
    ///
    /// For loop-free programs the result is **exact** and the memo is
    /// keyed on program states only (every action strictly consumes a
    /// statement, so the state graph is a DAG). Programs with `while`
    /// loops have infinitely many behaviours in general; they are
    /// explored up to `opts.max_actions` actions per execution, with the
    /// bound recorded in [`Bounded::complete`].
    #[must_use]
    pub fn behaviours(&self, opts: &ExploreOptions) -> Bounded<Behaviours> {
        self.behaviours_governed(opts, &BudgetGuard::unlimited())
    }

    /// [`behaviours`](ProgramExplorer::behaviours) under a budget: the
    /// memoised recursion checks `guard` cooperatively at every state
    /// visit. A tripped guard truncates the set (recorded both in
    /// [`Bounded::complete`] and as the guard's trip reason); fuel or
    /// silent-divergence truncation is recorded on the guard as the
    /// action-bound reason.
    #[must_use]
    pub fn behaviours_governed(
        &self,
        opts: &ExploreOptions,
        guard: &BudgetGuard,
    ) -> Bounded<Behaviours> {
        ModelExplorer::new(&ScModel::new(self)).behaviours_governed(opts, guard)
    }

    /// The per-execution action bound of the behaviour phase. Loop-free
    /// programs need none (every action consumes a statement, so the
    /// state graph is a DAG). With the await reduction on, a program
    /// whose *only* loops are await loops needs none either: the only
    /// moves that could close a cycle are failed await re-reads, the
    /// second of which is an exact self-loop the collapse drops — so
    /// the collapsed graph is acyclic and the exploration is exact.
    pub(crate) fn fuel(&self, opts: &ExploreOptions) -> usize {
        if !program_has_loops(self.program)
            || (opts.awaits && program_loops_are_awaits(self.program))
        {
            usize::MAX
        } else {
            opts.max_actions
        }
    }

    /// The behaviour-phase stutter collapse: drops every move that is a
    /// failed re-read of an await-watched location (see
    /// [`CfgMeta::awaits`]) leaving the state unchanged — applying a
    /// read patches only the moving thread's cfg word, so `next_cfg ==
    /// current cfg` is exactly "the successor state is this state".
    /// Returns `(collapsed, wakeups)`: dropped self-loops, and kept
    /// reads on a watched location (the spinner advancing — a value
    /// change, a loop exit, or the first iteration materialising its
    /// guard register). Never used by the race phase: a spin read can
    /// race, and the representative failed read must stay adjacent to
    /// every write of the watched location.
    pub(crate) fn collapse_awaits(&self, state: &CState, moves: &mut Vec<CMove>) -> (u64, u64) {
        let mut collapsed = 0u64;
        let mut wakeups = 0u64;
        let mut cache = self.lock_cache();
        moves.retain(|mv| {
            let Action::Read { loc, .. } = mv.action else {
                return true;
            };
            let cur = state.words[mv.thread];
            if cur == NOT_STARTED || !self.meta(&mut cache, cur).awaits.contains(&loc) {
                return true;
            }
            if mv.next_cfg == cur {
                collapsed += 1;
                false
            } else {
                wakeups += 1;
                true
            }
        });
        (collapsed, wakeups)
    }

    /// The bounded behaviours, computed on `jobs` workers.
    ///
    /// Identical result to [`behaviours`](ProgramExplorer::behaviours):
    /// the parallel driver deduplicates the fuel-layered state graph
    /// concurrently, then evaluates the same dynamic program bottom-up,
    /// so the behaviour set (and the `complete` flag) is bit-identical
    /// regardless of worker count or scheduling.
    #[must_use]
    pub fn behaviours_par(&self, opts: &ExploreOptions, jobs: usize) -> Bounded<Behaviours> {
        self.behaviours_par_governed(opts, jobs, &BudgetGuard::unlimited())
    }

    /// [`behaviours_par`](ProgramExplorer::behaviours_par) under a
    /// budget. A worker panic is quarantined by the pool; the fault is
    /// recorded on the guard and the computation degrades to the
    /// sequential governed engine, so a crashing worker never takes the
    /// analysis down with it.
    #[must_use]
    pub fn behaviours_par_governed(
        &self,
        opts: &ExploreOptions,
        jobs: usize,
        guard: &BudgetGuard,
    ) -> Bounded<Behaviours> {
        ModelExplorer::new(&ScModel::new(self)).behaviours_par_governed(opts, jobs, guard)
    }

    /// Searches for a data race (§3's adjacent-conflict condition over
    /// the program's executions). Exact: the program state space is
    /// finite (values are drawn from program constants), so the visited
    /// set needs no fuel.
    #[must_use]
    pub fn race_witness(&self, opts: &ExploreOptions) -> Option<RaceWitness> {
        self.race_witness_governed(opts, &BudgetGuard::unlimited())
    }

    /// [`race_witness`](ProgramExplorer::race_witness) under a budget:
    /// the DFS checks `guard` at every newly visited search node. With
    /// a tripped guard the search may return `None` without having
    /// proven freedom — callers must consult the guard's trip reason
    /// before trusting a `None`.
    #[must_use]
    pub fn race_witness_governed(
        &self,
        opts: &ExploreOptions,
        guard: &BudgetGuard,
    ) -> Option<RaceWitness> {
        ModelExplorer::new(&ScModel::new(self))
            .race_witness_governed(opts, guard)
            .map(|w| w.witness)
    }

    /// Is the program data race free?
    #[must_use]
    pub fn is_data_race_free(&self, opts: &ExploreOptions) -> bool {
        self.race_witness(opts).is_none()
    }

    /// The race search, run on `jobs` workers.
    ///
    /// The parallel phase only decides *existence* (it partitions the
    /// `(state, last-access)` search space across workers with early
    /// exit); when a race exists the canonical witness is reconstructed
    /// by the sequential search so the reported execution does not
    /// depend on scheduling.
    #[must_use]
    pub fn race_witness_par(&self, opts: &ExploreOptions, jobs: usize) -> Option<RaceWitness> {
        self.race_witness_par_governed(opts, jobs, &BudgetGuard::unlimited())
    }

    /// [`race_witness_par`](ProgramExplorer::race_witness_par) under a
    /// budget. A pool fault is recorded on the guard and the search
    /// degrades to the sequential governed engine.
    #[must_use]
    pub fn race_witness_par_governed(
        &self,
        opts: &ExploreOptions,
        jobs: usize,
        guard: &BudgetGuard,
    ) -> Option<RaceWitness> {
        ModelExplorer::new(&ScModel::new(self))
            .race_witness_par_governed(opts, jobs, guard)
            .map(|w| w.witness)
    }

    /// Is the program data race free? Decided on `jobs` workers.
    #[must_use]
    pub fn is_data_race_free_par(&self, opts: &ExploreOptions, jobs: usize) -> bool {
        self.race_witness_par(opts, jobs).is_none()
    }

    /// Finds an execution whose behaviour equals `behaviour`, if one
    /// exists within the bounds — the witness extractor behind
    /// counterexample reports.
    #[must_use]
    pub fn execution_with_behaviour(
        &self,
        behaviour: &[Value],
        opts: &ExploreOptions,
    ) -> Option<Interleaving> {
        let mut interner: StateInterner<CState> = StateInterner::new();
        let mut visited: FxHashSet<(u32, usize)> = FxHashSet::default();
        let mut scratch: ScratchPool<CMove> = ScratchPool::new();
        let mut path: Vec<Event> = Vec::new();
        let mut truncated = false;
        self.behaviour_dfs(
            self.initial_compact(),
            behaviour,
            0,
            opts,
            &mut interner,
            &mut visited,
            &mut path,
            &mut scratch,
            &mut truncated,
        )
        .then(|| Interleaving::from_events(path))
    }

    #[allow(clippy::too_many_arguments)]
    fn behaviour_dfs(
        &self,
        state: CState,
        target: &[Value],
        emitted: usize,
        opts: &ExploreOptions,
        interner: &mut StateInterner<CState>,
        visited: &mut FxHashSet<(u32, usize)>,
        path: &mut Vec<Event>,
        scratch: &mut ScratchPool<CMove>,
        truncated: &mut bool,
    ) -> bool {
        if emitted == target.len() {
            return true;
        }
        if path.len() > opts.max_actions {
            return false;
        }
        let (id, _) = interner.intern_ref(&state);
        if !visited.insert((id, emitted)) {
            return false;
        }
        let mut buf = scratch.take();
        self.moves_into(&state, opts, &mut buf, truncated);
        for &mv in buf.iter() {
            let next_emitted = match mv.action {
                Action::External(v) => {
                    if target.get(emitted) != Some(&v) {
                        continue; // wrong output — prune this branch
                    }
                    emitted + 1
                }
                _ => emitted,
            };
            path.push(Event::new(ThreadId::new(mv.thread as u32), mv.action));
            let succ = self.apply(&state, &mv);
            if self.behaviour_dfs(
                succ,
                target,
                next_emitted,
                opts,
                interner,
                visited,
                path,
                scratch,
                truncated,
            ) {
                return true;
            }
            path.pop();
        }
        scratch.put(buf);
        false
    }

    /// Collects **all** racing location/thread combinations reachable in
    /// any execution — a census for diagnostics, where
    /// [`race_witness`](ProgramExplorer::race_witness) stops at the
    /// first.
    #[must_use]
    pub fn racy_locations(&self, opts: &ExploreOptions) -> std::collections::BTreeSet<Loc> {
        let mut races: std::collections::BTreeSet<Loc> = Default::default();
        let mut interner: StateInterner<CState> = StateInterner::new();
        let mut visited: FxHashSet<(u32, Prev)> = FxHashSet::default();
        let mut buf = Vec::new();
        let mut truncated = false;
        let mut stack: Vec<(CState, Prev)> = vec![(self.initial_compact(), None)];
        while let Some((state, prev)) = stack.pop() {
            let (id, _) = interner.intern_ref(&state);
            if !visited.insert((id, prev)) {
                continue;
            }
            self.moves_into(&state, opts, &mut buf, &mut truncated);
            for &mv in buf.iter() {
                if let Some((pk, pl, pw)) = prev {
                    if pk != mv.thread
                        && mv.action.is_access_to(pl)
                        && !pl.is_volatile()
                        && (pw || mv.action.is_write())
                    {
                        races.insert(pl);
                    }
                }
                let next_prev = match mv.action {
                    Action::Read { loc, .. } if !loc.is_volatile() => Some((mv.thread, loc, false)),
                    Action::Write { loc, .. } if !loc.is_volatile() => Some((mv.thread, loc, true)),
                    _ => None,
                };
                stack.push((self.apply(&state, &mv), next_prev));
            }
        }
        races
    }

    /// The number of distinct program states reachable under the bounds
    /// (a size measure for the scaling experiments).
    #[must_use]
    pub fn count_reachable_states(&self, opts: &ExploreOptions) -> usize {
        self.count_reachable_states_governed(opts, &BudgetGuard::unlimited())
    }

    /// [`count_reachable_states`](ProgramExplorer::count_reachable_states)
    /// under a budget; with a tripped guard the count covers only the
    /// states visited before the trip.
    #[must_use]
    pub fn count_reachable_states_governed(
        &self,
        opts: &ExploreOptions,
        guard: &BudgetGuard,
    ) -> usize {
        ModelExplorer::new(&ScModel::new(self)).count_reachable_states_governed(opts, guard)
    }

    /// The reachable-state count, computed on `jobs` workers.
    #[must_use]
    pub fn count_reachable_states_par(&self, opts: &ExploreOptions, jobs: usize) -> usize {
        self.count_reachable_states_par_governed(opts, jobs, &BudgetGuard::unlimited())
    }

    /// [`count_reachable_states_par`](ProgramExplorer::count_reachable_states_par)
    /// under a budget; a pool fault degrades to the sequential governed
    /// count.
    #[must_use]
    pub fn count_reachable_states_par_governed(
        &self,
        opts: &ExploreOptions,
        jobs: usize,
        guard: &BudgetGuard,
    ) -> usize {
        ModelExplorer::new(&ScModel::new(self))
            .count_reachable_states_par_governed(opts, jobs, guard)
    }

    // -----------------------------------------------------------------
    // Pre-interning reference engine and the encode/decode audit
    // -----------------------------------------------------------------

    /// [`behaviours`](ProgramExplorer::behaviours) on the
    /// **pre-interning reference engine**: uncompressed `PState`s
    /// (config clones, `BTreeMap` memory/holders) with SipHash-keyed
    /// memos and per-visit `tau_closure` re-runs, exactly as the engine
    /// worked before the compact encoding landed. Kept for differential
    /// testing and the E17 before/after benchmark; the production entry
    /// points never use it.
    #[must_use]
    pub fn behaviours_reference_governed(
        &self,
        opts: &ExploreOptions,
        guard: &BudgetGuard,
    ) -> Bounded<Behaviours> {
        let mut memo: HashMap<(PState, usize), Arc<Behaviours>> = HashMap::new();
        let mut truncated = false;
        let set = self.ref_suffixes(
            self.ref_initial(),
            self.fuel(opts),
            opts,
            &mut memo,
            &mut truncated,
            guard,
        );
        if truncated {
            guard.trip_action_bound();
        }
        Bounded {
            value: (*set).clone(),
            complete: !truncated,
        }
    }

    /// [`race_witness`](ProgramExplorer::race_witness) on the
    /// pre-interning reference engine (see
    /// [`behaviours_reference_governed`](ProgramExplorer::behaviours_reference_governed)).
    #[must_use]
    pub fn race_witness_reference_governed(
        &self,
        opts: &ExploreOptions,
        guard: &BudgetGuard,
    ) -> Option<RaceWitness> {
        let mut visited: HashSet<(PState, Prev)> = HashSet::new();
        let mut path = Vec::new();
        let mut truncated = false;
        self.ref_race_dfs(
            self.ref_initial(),
            None,
            0,
            opts,
            &mut visited,
            &mut path,
            &mut truncated,
            guard,
        )
        .then(|| RaceWitness {
            execution: Interleaving::from_events(path),
        })
    }

    fn ref_initial(&self) -> PState {
        PState {
            threads: vec![None; self.program.thread_count()],
            memory: BTreeMap::new(),
            holders: BTreeMap::new(),
        }
    }

    /// The reference-engine mirror of the intern-time τ-closure
    /// normalisation: successor configurations advance to their emit
    /// point (or the canonical empty config when they terminate) before
    /// being stored in a [`PState`], so both engines see identical
    /// suffix footprints and ast sizes. A silently diverging
    /// configuration is kept as-is; the next visit's closure flags it.
    fn ref_normalise(cfg: ThreadConfig, max_tau: usize) -> ThreadConfig {
        match cfg.tau_closure(&Domain::zero_to(0), max_tau) {
            Some((_, Step::Done)) => ThreadConfig::new(vec![]),
            Some((at_emit, _)) => at_emit,
            None => cfg,
        }
    }

    /// The old move computation: one `tau_closure` per thread per visit
    /// (two for reads), config clones in every move.
    fn ref_moves(&self, state: &PState, opts: &ExploreOptions, truncated: &mut bool) -> Vec<PMove> {
        let domain = Domain::zero_to(0);
        let mut out = Vec::new();
        for (k, slot) in state.threads.iter().enumerate() {
            let Some(cfg) = slot else {
                out.push(PMove {
                    thread: k,
                    action: Action::start(ThreadId::new(k as u32)),
                    next: Some(Self::ref_normalise(
                        ThreadConfig::new(
                            self.program
                                .thread(k)
                                .expect("thread index in range")
                                .to_vec(),
                        ),
                        opts.max_tau,
                    )),
                });
                continue;
            };
            let Some((_, step)) = cfg.tau_closure(&domain, opts.max_tau) else {
                *truncated = true;
                continue;
            };
            match step {
                Step::Done => {}
                Step::Tau(_) => unreachable!("tau_closure never returns Tau"),
                Step::Emit(successors) => {
                    let (first_action, _) = &successors[0];
                    match first_action {
                        Action::Read { loc, .. } => {
                            let v = state.memory.get(loc).copied().unwrap_or(Value::ZERO);
                            let at_emit = cfg
                                .tau_closure(&domain, opts.max_tau)
                                .expect("closure already succeeded")
                                .0;
                            let Step::Emit(succ2) = at_emit.step(&Domain::from_values([v])) else {
                                unreachable!("closure stopped at an emitting statement")
                            };
                            let (a, next) = succ2
                                .into_iter()
                                .find(|(a, _)| a.value() == Some(v))
                                .expect("domain contains v");
                            out.push(PMove {
                                thread: k,
                                action: a,
                                next: Some(Self::ref_normalise(next, opts.max_tau)),
                            });
                        }
                        Action::Lock(m) => {
                            let free = match state.holders.get(m) {
                                None => true,
                                Some(&h) => h == k,
                            };
                            if free {
                                let (a, next) = successors.into_iter().next().expect("one");
                                out.push(PMove {
                                    thread: k,
                                    action: a,
                                    next: Some(Self::ref_normalise(next, opts.max_tau)),
                                });
                            }
                        }
                        _ => {
                            let (a, next) = successors.into_iter().next().expect("one");
                            out.push(PMove {
                                thread: k,
                                action: a,
                                next: Some(Self::ref_normalise(next, opts.max_tau)),
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// The reference-engine mirror of
    /// [`por_moves_into`](ProgramExplorer::por_moves_into): the same
    /// dynamic invisibility predicate and ast-size proviso, computed
    /// directly from the uncompressed configurations (no memo), so the
    /// two engines select bit-identical ample sets.
    fn ref_por_moves(
        &self,
        state: &PState,
        opts: &ExploreOptions,
        truncated: &mut bool,
    ) -> (Vec<PMove>, ExpansionKind) {
        let moves = self.ref_moves(state, opts, truncated);
        if !opts.por {
            return (moves, ExpansionKind::Full);
        }
        // The suffix footprint of each thread's remaining code; a
        // not-yet-started thread contributes its whole body, a finished
        // one (normalised to the empty config by `ref_apply`) nothing.
        let metas: Vec<CfgMeta> = state
            .threads
            .iter()
            .enumerate()
            .map(|(j, slot)| match slot {
                // Footprints come from the τ-closed form, mirroring the
                // compact engine's normalised initial configurations.
                None => CfgMeta::of_code(
                    Self::ref_normalise(
                        ThreadConfig::new(
                            self.program
                                .thread(j)
                                .expect("thread index in range")
                                .to_vec(),
                        ),
                        opts.max_tau,
                    )
                    .code(),
                ),
                Some(cfg) if cfg.is_done() => CfgMeta::default(),
                Some(cfg) => CfgMeta::of_code(cfg.code()),
            })
            .collect();
        let mut saw_invisible = false;
        for mv in &moves {
            let invisible = match mv.action {
                Action::Start(_) => true,
                Action::Read { loc, .. } => {
                    !loc.is_volatile()
                        && metas
                            .iter()
                            .enumerate()
                            .all(|(j, m)| j == mv.thread || !m.writes.contains(&loc))
                }
                Action::Write { loc, .. } => {
                    !loc.is_volatile()
                        && metas
                            .iter()
                            .enumerate()
                            .all(|(j, m)| j == mv.thread || !m.accesses.contains(&loc))
                }
                Action::Lock(mon) | Action::Unlock(mon) => metas
                    .iter()
                    .enumerate()
                    .all(|(j, m)| j == mv.thread || !m.monitors.contains(&mon)),
                Action::External(_) => metas
                    .iter()
                    .enumerate()
                    .all(|(j, m)| j == mv.thread || !m.externals),
            };
            if !invisible {
                continue;
            }
            saw_invisible = true;
            let proviso = matches!(mv.action, Action::Start(_)) || {
                let next = mv.next.as_ref().expect("moves carry successor configs");
                let next_size = if next.is_done() {
                    0
                } else {
                    CfgMeta::of_code(next.code()).ast_size
                };
                next_size < metas[mv.thread].ast_size
            };
            if proviso {
                return (vec![mv.clone()], ExpansionKind::Ample);
            }
        }
        let kind = if saw_invisible {
            ExpansionKind::FullProviso
        } else {
            ExpansionKind::Full
        };
        (moves, kind)
    }

    /// The reference-engine mirror of the behaviour-phase move set:
    /// [`ref_por_moves`](ProgramExplorer::ref_por_moves) plus the same
    /// await stutter collapse as
    /// [`collapse_awaits`](ProgramExplorer::collapse_awaits), computed
    /// directly on the uncompressed configurations (successor configs
    /// are already τ-normalised, so `next == current` is exactly the
    /// compact engine's `next_cfg == cur`). Only the behaviour suffix
    /// recursion uses this; the reference race search stays uncollapsed
    /// like the production one.
    fn ref_behaviour_moves(
        &self,
        state: &PState,
        opts: &ExploreOptions,
        truncated: &mut bool,
    ) -> Vec<PMove> {
        let (mut moves, _) = self.ref_por_moves(state, opts, truncated);
        if opts.awaits {
            moves.retain(|mv| {
                let Action::Read { loc, .. } = mv.action else {
                    return true;
                };
                let Some(cur) = state.threads[mv.thread].as_ref() else {
                    return true;
                };
                if !CfgMeta::of_code(cur.code()).awaits.contains(&loc) {
                    return true;
                }
                mv.next.as_ref().expect("moves carry successor configs") != cur
            });
        }
        moves
    }

    fn ref_apply(&self, state: &PState, mv: &PMove) -> PState {
        let mut next = state.clone();
        let cfg = mv.next.clone().expect("moves carry successor configs");
        let terminal = cfg.is_done();
        match mv.action {
            Action::Write { loc, value } => {
                next.memory.insert(loc, value);
            }
            Action::Lock(m) => {
                next.holders.insert(m, mv.thread);
            }
            Action::Unlock(m) if cfg.monitor_nesting(m) == 0 => {
                next.holders.remove(&m);
            }
            _ => {}
        }
        // Normalise terminated threads so states converge.
        next.threads[mv.thread] = Some(if terminal {
            ThreadConfig::new(vec![])
        } else {
            cfg
        });
        next
    }

    #[allow(clippy::too_many_arguments)]
    fn ref_suffixes(
        &self,
        state: PState,
        fuel: usize,
        opts: &ExploreOptions,
        memo: &mut HashMap<(PState, usize), Arc<Behaviours>>,
        truncated: &mut bool,
        guard: &BudgetGuard,
    ) -> Arc<Behaviours> {
        let key = (state, fuel);
        if let Some(r) = memo.get(&key) {
            return Arc::clone(r);
        }
        let (state, fuel) = (&key.0, key.1);
        let mut set = Behaviours::new();
        set.insert(Vec::new());
        if guard.should_stop() {
            *truncated = true;
            return Arc::new(set);
        }
        guard.note_state();
        let moves = self.ref_behaviour_moves(state, opts, truncated);
        if fuel == 0 {
            if !moves.is_empty() {
                *truncated = true;
            }
        } else {
            let next_fuel = if fuel == usize::MAX {
                usize::MAX
            } else {
                fuel - 1
            };
            for mv in moves {
                let tail = self.ref_suffixes(
                    self.ref_apply(state, &mv),
                    next_fuel,
                    opts,
                    memo,
                    truncated,
                    guard,
                );
                if let Action::External(v) = mv.action {
                    for suffix in tail.iter() {
                        let mut b = Vec::with_capacity(suffix.len() + 1);
                        b.push(v);
                        b.extend_from_slice(suffix);
                        set.insert(b);
                    }
                } else {
                    set.extend(tail.iter().cloned());
                }
            }
        }
        let rc = Arc::new(set);
        memo.insert(key, Arc::clone(&rc));
        rc
    }

    #[allow(clippy::too_many_arguments)]
    fn ref_race_dfs(
        &self,
        state: PState,
        prev: Prev,
        prev_at: usize,
        opts: &ExploreOptions,
        visited: &mut HashSet<(PState, Prev)>,
        path: &mut Vec<Event>,
        truncated: &mut bool,
        guard: &BudgetGuard,
    ) -> bool {
        if guard.should_stop() || !visited.insert((state.clone(), prev)) {
            return false;
        }
        guard.note_state();
        let (moves, kind) = self.ref_por_moves(&state, opts, truncated);
        for mv in moves {
            let tid = ThreadId::new(mv.thread as u32);
            if let Some((pk, pl, pw)) = prev {
                if pk != mv.thread
                    && mv.action.is_access_to(pl)
                    && !pl.is_volatile()
                    && (pw || mv.action.is_write())
                {
                    crate::model::reorder_carried_witness(path, prev_at, tid);
                    path.push(Event::new(tid, mv.action));
                    return true;
                }
            }
            // Check-before-carry: an ample move was race-checked against
            // the tracked access above (a dynamically invisible move can
            // still race with a *past* access), and when no race fires
            // the tracker is carried through unchanged — overwriting it
            // would mask the pair on every reduced path.
            let (next_prev, next_at) = if kind.is_ample() {
                (prev, prev_at)
            } else {
                match mv.action {
                    Action::Read { loc, .. } if !loc.is_volatile() => {
                        (Some((mv.thread, loc, false)), path.len() + 1)
                    }
                    Action::Write { loc, .. } if !loc.is_volatile() => {
                        (Some((mv.thread, loc, true)), path.len() + 1)
                    }
                    _ => (None, 0),
                }
            };
            path.push(Event::new(tid, mv.action));
            if self.ref_race_dfs(
                self.ref_apply(&state, &mv),
                next_prev,
                next_at,
                opts,
                visited,
                path,
                truncated,
                guard,
            ) {
                return true;
            }
            path.pop();
        }
        false
    }

    /// Encodes a reference state into the compact word buffer (its
    /// configs are already normalised by `ref_apply`).
    fn encode_ref(&self, cache: &mut CfgCache, state: &PState) -> CState {
        let mut words = vec![0u32; self.word_count()].into_boxed_slice();
        for (k, slot) in state.threads.iter().enumerate() {
            words[k] = match slot {
                None => NOT_STARTED,
                Some(cfg) => cache.cfgs.intern_ref(cfg).0,
            };
        }
        for (&loc, &v) in &state.memory {
            let i = self.loc_index(loc);
            words[self.mem_base() + i] = v.get();
            words[self.bit_base() + i / 32] |= 1 << (i % 32);
        }
        for (&m, &holder) in &state.holders {
            words[self.holder_slot(m)] = holder as u32 + 1;
        }
        CState { words }
    }

    /// Decodes a compact state back into the reference representation
    /// (the written bitmap recovers which memory cells exist).
    fn decode(&self, cache: &CfgCache, state: &CState) -> PState {
        let threads = (0..self.program.thread_count())
            .map(|k| match state.words[k] {
                NOT_STARTED => None,
                id => Some(cache.cfgs.get(id).clone()),
            })
            .collect();
        let mut memory = BTreeMap::new();
        for (i, &loc) in self.locs.iter().enumerate() {
            if state.words[self.bit_base() + i / 32] & (1 << (i % 32)) != 0 {
                memory.insert(loc, Value::new(state.words[self.mem_base() + i]));
            }
        }
        let mut holders = BTreeMap::new();
        for &m in &self.monitors {
            let h = state.words[self.holder_slot(m)];
            if h != 0 {
                holders.insert(m, h as usize - 1);
            }
        }
        PState {
            threads,
            memory,
            holders,
        }
    }

    /// Self-audit of the compact encoding: walks the (unreduced)
    /// reachable state space in lockstep on the compact and reference
    /// representations, checking that encode→decode round-trips on every
    /// state, that interned-id equality coincides with structural
    /// `PState` equality, and that both engines produce the same move
    /// lists. `max_states` caps the walk (flagged in
    /// [`InternAudit::capped`]). Test support for the property suite.
    #[doc(hidden)]
    #[must_use]
    pub fn audit_intern(&self, opts: &ExploreOptions, max_states: usize) -> InternAudit {
        let mut interner: StateInterner<CState> = StateInterner::new();
        let mut rmap: HashMap<PState, u32> = HashMap::new();
        let mut stack: Vec<(CState, PState)> = vec![(self.initial_compact(), self.ref_initial())];
        let mut audit = InternAudit {
            states: 0,
            roundtrips: true,
            bijective: true,
            capped: false,
        };
        let mut truncated = false;
        while let Some((cs, rs)) = stack.pop() {
            let (cid, fresh) = interner.intern_ref(&cs);
            let ref_fresh = !rmap.contains_key(&rs);
            if fresh != ref_fresh {
                // One side thinks the state is new and the other does
                // not: the encoding conflated or split states.
                audit.bijective = false;
            }
            if !ref_fresh {
                if rmap[&rs] != cid {
                    audit.bijective = false;
                }
                continue;
            }
            rmap.insert(rs.clone(), cid);
            if !fresh {
                continue;
            }
            audit.states += 1;
            {
                let mut cache = self.lock_cache();
                self.ensure_cache(&mut cache, opts.max_tau);
                if self.encode_ref(&mut cache, &rs) != cs || self.decode(&cache, &cs) != rs {
                    audit.roundtrips = false;
                }
            }
            if audit.states >= max_states {
                audit.capped = true;
                break;
            }
            let cmoves = self.moves_vec(&cs, opts, &mut truncated);
            let rmoves = self.ref_moves(&rs, opts, &mut truncated);
            let agree = cmoves.len() == rmoves.len()
                && cmoves
                    .iter()
                    .zip(&rmoves)
                    .all(|(a, b)| a.thread == b.thread && a.action == b.action);
            if !agree {
                audit.bijective = false;
                continue;
            }
            for (cm, rm) in cmoves.iter().zip(&rmoves) {
                stack.push((self.apply(&cs, cm), self.ref_apply(&rs, rm)));
            }
        }
        audit
    }
}

/// Records every location statement `s` (of thread `k`) can read or
/// write into the access-universe map. Conditions only read registers,
/// so statements' `loc` fields are the complete memory footprint; the
/// walk over-approximates (dead branches count), which is the safe
/// direction.
fn collect_accesses(s: &crate::ast::Stmt, accessed: &mut std::collections::BTreeSet<Loc>) {
    match s {
        crate::ast::Stmt::Store { loc, .. } | crate::ast::Stmt::Load { loc, .. } => {
            accessed.insert(*loc);
        }
        crate::ast::Stmt::Block(b) => {
            for s in b {
                collect_accesses(s, accessed);
            }
        }
        crate::ast::Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            collect_accesses(then_branch, accessed);
            collect_accesses(else_branch, accessed);
        }
        crate::ast::Stmt::While { body, .. } => {
            collect_accesses(body, accessed);
        }
        _ => {}
    }
}

/// Records every monitor statement `s` can lock or unlock (the static
/// monitor universe of the compact holder table).
fn collect_monitors(s: &crate::ast::Stmt, out: &mut std::collections::BTreeSet<Monitor>) {
    match s {
        crate::ast::Stmt::Lock(m) | crate::ast::Stmt::Unlock(m) => {
            out.insert(*m);
        }
        crate::ast::Stmt::Block(b) => {
            for s in b {
                collect_monitors(s, out);
            }
        }
        crate::ast::Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            collect_monitors(then_branch, out);
            collect_monitors(else_branch, out);
        }
        crate::ast::Stmt::While { body, .. } => {
            collect_monitors(body, out);
        }
        _ => {}
    }
}

/// Does the program contain a `while` loop (anywhere)?
pub(crate) fn program_has_loops(p: &Program) -> bool {
    fn stmt_has_loop(s: &crate::ast::Stmt) -> bool {
        match s {
            crate::ast::Stmt::While { .. } => true,
            crate::ast::Stmt::Block(b) => b.iter().any(stmt_has_loop),
            crate::ast::Stmt::If {
                then_branch,
                else_branch,
                ..
            } => stmt_has_loop(then_branch) || stmt_has_loop(else_branch),
            _ => false,
        }
    }
    p.threads().iter().flatten().any(stmt_has_loop)
}

/// Is every `while` loop of the program await-shaped (body = one shared
/// load plus `skip`/block structure; see [`CfgMeta::awaits`])? When
/// true and the await reduction is on, the behaviour phase runs without
/// an action bound: every statement outside a loop is consumed
/// permanently, await bodies write nothing, and the collapse removes
/// the only self-loops, so the collapsed state graph is acyclic.
/// Public so other memory-model backends (the TSO/PSO machines of
/// `transafety-tso`) apply the same fuel policy — an await-only program
/// has no store in any loop, so its store buffers are bounded too.
#[must_use]
pub fn program_loops_are_awaits(p: &Program) -> bool {
    fn stmt_ok(s: &crate::ast::Stmt) -> bool {
        match s {
            crate::ast::Stmt::While { body, .. } => await_watch(body).is_some(),
            crate::ast::Stmt::Block(b) => b.iter().all(stmt_ok),
            crate::ast::Stmt::If {
                then_branch,
                else_branch,
                ..
            } => stmt_ok(then_branch) && stmt_ok(else_branch),
            _ => true,
        }
    }
    p.threads().iter().flatten().all(stmt_ok)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::semantics::{extract_traceset, ExtractOptions};
    use transafety_interleaving::Explorer;

    fn behaviours_via_tracesets(src: &str, domain: &Domain) -> Behaviours {
        let parsed = parse_program(src).unwrap();
        let e = extract_traceset(&parsed.program, domain, &ExtractOptions::default());
        assert!(!e.truncated, "traceset extraction truncated");
        Explorer::new(&e.traceset).behaviours()
    }

    fn behaviours_direct(src: &str) -> Behaviours {
        let parsed = parse_program(src).unwrap();
        let b = ProgramExplorer::new(&parsed.program).behaviours(&ExploreOptions::default());
        assert!(b.complete, "direct exploration truncated");
        b.value
    }

    #[test]
    fn cross_validation_fig2_original() {
        let src = "r2 := x; y := r2; || r1 := y; x := 1; print r1;";
        let d = Domain::zero_to(1);
        assert_eq!(behaviours_via_tracesets(src, &d), behaviours_direct(src));
    }

    #[test]
    fn cross_validation_fig2_transformed() {
        let src = "r2 := x; y := r2; || x := 1; r1 := y; print r1;";
        let d = Domain::zero_to(1);
        let b = behaviours_direct(src);
        assert_eq!(behaviours_via_tracesets(src, &d), b);
        assert!(b.contains(&vec![Value::new(1)]), "transformed can print 1");
    }

    #[test]
    fn cross_validation_with_locks() {
        let src = "lock m; x := 1; r0 := x; print r0; unlock m; \
                   || lock m; x := 2; r1 := x; print r1; unlock m;";
        let d = Domain::zero_to(2);
        let direct = behaviours_direct(src);
        assert_eq!(behaviours_via_tracesets(src, &d), direct);
        assert!(direct.contains(&vec![Value::new(1), Value::new(2)]));
        assert!(direct.contains(&vec![Value::new(2), Value::new(1)]));
        assert!(!direct.contains(&vec![Value::new(2), Value::new(2)]));
    }

    #[test]
    fn cross_validation_with_volatiles() {
        let src = "volatile v; v := 1; || r0 := v; print r0;";
        let d = Domain::zero_to(1);
        let direct = behaviours_direct(src);
        assert_eq!(behaviours_via_tracesets(src, &d), direct);
        let parsed = parse_program(src).unwrap();
        assert!(ProgramExplorer::new(&parsed.program).is_data_race_free(&ExploreOptions::default()));
    }

    #[test]
    fn race_witness_agrees_with_traceset_explorer() {
        let src = "x := 1; || r0 := x; print r0;";
        let parsed = parse_program(src).unwrap();
        let direct = ProgramExplorer::new(&parsed.program);
        let w = direct
            .race_witness(&ExploreOptions::default())
            .expect("racy");
        let (a, b) = w.pair();
        assert!(a.action().conflicts_with(&b.action()));
        // traceset route agrees
        let e = extract_traceset(
            &parsed.program,
            &Domain::zero_to(1),
            &ExtractOptions::default(),
        );
        assert!(!Explorer::new(&e.traceset).is_data_race_free());
    }

    #[test]
    fn drf_by_locking_both_routes() {
        let src = "lock m; x := 1; unlock m; || lock m; r0 := x; unlock m; print r0;";
        let parsed = parse_program(src).unwrap();
        assert!(ProgramExplorer::new(&parsed.program).is_data_race_free(&ExploreOptions::default()));
        let e = extract_traceset(
            &parsed.program,
            &Domain::zero_to(1),
            &ExtractOptions::default(),
        );
        assert!(Explorer::new(&e.traceset).is_data_race_free());
    }

    #[test]
    fn intro_example_cannot_print_one_and_is_fixed_by_volatiles() {
        let intro = |vols: &str| {
            format!(
                "{vols}
                 data := 1;
                 if (requestReady == 1) {{ data := 2; responseReady := 1; }}
                 ||
                 requestReady := 1;
                 if (responseReady == 1) print data;"
            )
        };
        // racy version: cannot print 1 under SC (the §1 claim)
        let b = behaviours_direct(&intro(""));
        assert!(!b.contains(&vec![Value::new(1)]));
        assert!(b.contains(&vec![Value::new(2)]) || b.contains(&vec![]));
        // with volatile flags the program is DRF (§3 end)
        let src = intro("volatile requestReady, responseReady;");
        let parsed = parse_program(&src).unwrap();
        assert!(ProgramExplorer::new(&parsed.program).is_data_race_free(&ExploreOptions::default()));
        // without them it is racy (data is written by T0 and read by T1)
        let parsed_racy = parse_program(&intro("")).unwrap();
        assert!(!ProgramExplorer::new(&parsed_racy.program)
            .is_data_race_free(&ExploreOptions::default()));
    }

    #[test]
    fn spin_loop_state_space_is_finite() {
        // T0 signals; T1 spins until it sees the flag. The race search
        // must terminate despite the loop (visited-state memoisation).
        let src = "flag := 1; || while (flag != 1) skip; print 1;";
        let parsed = parse_program(src).unwrap();
        let ex = ProgramExplorer::new(&parsed.program);
        assert!(
            ex.race_witness(&ExploreOptions::default()).is_some(),
            "flag is racy"
        );
        assert!(ex.count_reachable_states(&ExploreOptions::default()) > 0);
    }

    #[test]
    fn parallel_driver_matches_sequential() {
        let corpus = [
            "r2 := x; y := r2; || r1 := y; x := 1; print r1;",
            "flag := 1; || while (flag != 1) skip; print 1;",
            "lock m; x := 1; unlock m; || lock m; r0 := x; unlock m; print r0;",
            "volatile v; v := 1; || r0 := v; print r0;",
        ];
        let opts = ExploreOptions::default();
        for src in corpus {
            let parsed = parse_program(src).unwrap();
            let ex = ProgramExplorer::new(&parsed.program);
            let seq = ex.behaviours(&opts);
            let seq_drf = ex.is_data_race_free(&opts);
            let seq_states = ex.count_reachable_states(&opts);
            for jobs in [2, 4] {
                assert_eq!(ex.behaviours_par(&opts, jobs), seq, "{src}");
                assert_eq!(ex.is_data_race_free_par(&opts, jobs), seq_drf, "{src}");
                assert_eq!(
                    ex.count_reachable_states_par(&opts, jobs),
                    seq_states,
                    "{src}"
                );
            }
        }
    }

    #[test]
    fn behaviour_fuel_reports_truncation() {
        let src = "while (r0 == r0) print 1;";
        let parsed = parse_program(src).unwrap();
        let b = ProgramExplorer::new(&parsed.program).behaviours(&ExploreOptions {
            max_actions: 4,
            max_tau: 100,
            ..ExploreOptions::default()
        });
        assert!(!b.complete);
        assert!(b.value.contains(&vec![Value::new(1); 3]));
    }

    #[test]
    fn silent_divergence_truncates() {
        let src = "while (r0 == r0) skip;";
        let parsed = parse_program(src).unwrap();
        let b = ProgramExplorer::new(&parsed.program).behaviours(&ExploreOptions {
            max_actions: 4,
            max_tau: 50,
            ..ExploreOptions::default()
        });
        assert!(!b.complete);
        assert_eq!(b.value.len(), 1, "only the empty behaviour");
    }

    #[test]
    fn por_agrees_with_full_engine_on_corpus() {
        let corpus = [
            "r2 := x; y := r2; || r1 := y; x := 1; print r1;",
            "flag := 1; || while (flag != 1) skip; print 1;",
            "lock m; x := 1; unlock m; || lock m; r0 := x; unlock m; print r0;",
            "volatile v; v := 1; || r0 := v; print r0;",
            "a := 1; r0 := a; x := r0; || b := 1; r1 := b; x := r1; print r1;",
        ];
        let on = ExploreOptions::default();
        let off = ExploreOptions {
            por: false,
            ..ExploreOptions::default()
        };
        for src in corpus {
            let parsed = parse_program(src).unwrap();
            let ex = ProgramExplorer::new(&parsed.program);
            assert_eq!(ex.behaviours(&on), ex.behaviours(&off), "{src}");
            assert_eq!(
                ex.race_witness(&on).is_some(),
                ex.race_witness(&off).is_some(),
                "{src}"
            );
            for jobs in [2, 4] {
                assert_eq!(
                    ex.behaviours_par(&on, jobs),
                    ex.behaviours_par(&off, jobs),
                    "{src}"
                );
                assert_eq!(
                    ex.is_data_race_free_par(&on, jobs),
                    ex.is_data_race_free_par(&off, jobs),
                    "{src}"
                );
            }
        }
    }

    #[test]
    fn por_prunes_states_on_loop_free_private_work() {
        use transafety_interleaving::{Budget, CancelToken};
        // Each thread does four actions on a thread-private location
        // before touching the lock-protected shared cell: the private
        // prefixes commute, so POR should collapse their shuffles.
        let src = "a := 1; r0 := a; a := 2; r0 := a; lock m; x := 1; unlock m; \
                   || b := 1; r1 := b; b := 2; r1 := b; lock m; r2 := x; unlock m; print r2;";
        let parsed = parse_program(src).unwrap();
        let ex = ProgramExplorer::new(&parsed.program);
        let on = ExploreOptions::default();
        let off = ExploreOptions {
            por: false,
            ..ExploreOptions::default()
        };
        let reduced = BudgetGuard::new(&Budget::unlimited(), CancelToken::new());
        let full = BudgetGuard::new(&Budget::unlimited(), CancelToken::new());
        let b_on = ex.behaviours_governed(&on, &reduced);
        let b_off = ex.behaviours_governed(&off, &full);
        assert_eq!(b_on, b_off);
        assert!(
            reduced.states() * 2 <= full.states(),
            "POR explored {} states vs {} unreduced",
            reduced.states(),
            full.states()
        );
    }

    #[test]
    fn dpor_stays_enabled_on_loopy_programs() {
        // A spinning thread re-enters the same configuration, so a
        // naive invisible-singleton ample set could starve its sibling
        // forever (the ignoring problem). The ast-size proviso rejects
        // the non-shrinking spin step, keeping the reduction sound with
        // POR *enabled* — the old engine disabled itself on any `while`.
        let src = "flag := 1; || while (flag != 1) skip; print 1;";
        let parsed = parse_program(src).unwrap();
        let ex = ProgramExplorer::new(&parsed.program);
        let on = ExploreOptions::default();
        let off = ExploreOptions {
            por: false,
            ..ExploreOptions::default()
        };
        assert!(ex.race_witness(&on).is_some(), "flag race found reduced");
        assert!(ex.race_witness(&off).is_some(), "flag race found unreduced");
        assert!(ex.behaviours(&on).value.contains(&vec![Value::new(1)]));
        assert_eq!(ex.behaviours(&on), ex.behaviours(&off));
    }

    #[test]
    fn race_straddled_by_private_tails_is_found() {
        // Regression: each racing access is immediately followed by its
        // own thread's private (ample) work. The static reduction let
        // those ample moves overwrite the last-access tracker, masking
        // the x race on *every* reduced path in both access orders —
        // check-before-carry keeps the pair visible.
        let src = "x := 1; a := 1; || r0 := x; b := 1;";
        let parsed = parse_program(src).unwrap();
        let ex = ProgramExplorer::new(&parsed.program);
        let on = ExploreOptions::default();
        let off = ExploreOptions {
            por: false,
            ..ExploreOptions::default()
        };
        assert!(ex.race_witness(&off).is_some(), "x is racy unreduced");
        let w = ex.race_witness(&on).expect("reduction must find the race");
        let (a, b) = w.pair();
        assert!(a.action().conflicts_with(&b.action()));
        assert_ne!(a.thread(), b.thread());
        for jobs in [1, 4] {
            assert!(ex.race_witness_par(&on, jobs).is_some(), "jobs={jobs}");
        }
    }

    #[test]
    fn compact_engine_matches_reference_and_audits_clean() {
        use transafety_interleaving::{Budget, CancelToken};
        let corpus = [
            "r2 := x; y := r2; || r1 := y; x := 1; print r1;",
            "flag := 1; || while (flag != 1) skip; print 1;",
            "lock m; x := 1; unlock m; || lock m; r0 := x; unlock m; print r0;",
            "volatile v; v := 1; || r0 := v; print r0;",
            "a := 1; r0 := a; x := r0; || b := 1; r1 := b; x := r1; print r1;",
        ];
        for src in corpus {
            let parsed = parse_program(src).unwrap();
            let ex = ProgramExplorer::new(&parsed.program);
            for por in [true, false] {
                let opts = ExploreOptions {
                    por,
                    ..ExploreOptions::default()
                };
                let g_new = BudgetGuard::new(&Budget::unlimited(), CancelToken::new());
                let g_ref = BudgetGuard::new(&Budget::unlimited(), CancelToken::new());
                let b_new = ex.behaviours_governed(&opts, &g_new);
                let b_ref = ex.behaviours_reference_governed(&opts, &g_ref);
                assert_eq!(b_new, b_ref, "{src} por={por}");
                assert_eq!(
                    g_new.states(),
                    g_ref.states(),
                    "state-visit counts differ: {src} por={por}"
                );
                let w_new = ex.race_witness_governed(&opts, &BudgetGuard::unlimited());
                let w_ref = ex.race_witness_reference_governed(&opts, &BudgetGuard::unlimited());
                match (&w_new, &w_ref) {
                    (Some(a), Some(b)) => {
                        assert_eq!(a.execution, b.execution, "{src} por={por}");
                    }
                    (None, None) => {}
                    _ => panic!("race verdicts differ: {src} por={por}"),
                }
            }
            let audit = ex.audit_intern(&ExploreOptions::default(), 100_000);
            assert!(audit.states > 1, "{src}");
            assert!(audit.roundtrips, "encode/decode roundtrip failed: {src}");
            assert!(audit.bijective, "id/structural equality diverged: {src}");
            assert!(!audit.capped, "{src}");
        }
    }
}

#[cfg(test)]
mod witness_tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn behaviour_witness_for_fig2_transformed() {
        let p = parse_program("r2 := x; y := r2; || x := 1; r1 := y; print r1;")
            .unwrap()
            .program;
        let ex = ProgramExplorer::new(&p);
        let opts = ExploreOptions::default();
        let w = ex
            .execution_with_behaviour(&[Value::new(1)], &opts)
            .expect("the transformed Fig. 2 can print 1");
        assert_eq!(
            w.behaviour(),
            vec![Value::new(1)],
            "the witness really prints 1: {w}"
        );
        assert!(w.is_sequentially_consistent());
        // and the impossible behaviour has no witness
        assert!(ex
            .execution_with_behaviour(&[Value::new(2)], &opts)
            .is_none());
    }

    #[test]
    fn racy_location_census() {
        let p = parse_program("x := 1; y := 1; || r1 := x; r2 := z;")
            .unwrap()
            .program;
        let ex = ProgramExplorer::new(&p);
        let races = ex.racy_locations(&ExploreOptions::default());
        // x is written by t0 and read by t1: racy. y and z are private
        // to one thread each: not racy.
        assert_eq!(races.len(), 1);
        let sym = parse_program("x := 1; y := 1; || r1 := x; r2 := z;")
            .unwrap()
            .symbols;
        assert!(races.contains(&sym.loc("x").unwrap()));
    }

    #[test]
    fn racy_census_empty_for_drf() {
        let p = parse_program("lock m; x := 1; unlock m; || lock m; r1 := x; unlock m;")
            .unwrap()
            .program;
        assert!(ProgramExplorer::new(&p)
            .racy_locations(&ExploreOptions::default())
            .is_empty());
    }
}
