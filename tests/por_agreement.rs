//! Equivalence of the partial-order-reduced engine and the full
//! engine: with POR on vs off, the `Verdict`, the presence of a
//! `RaceWitness`, and the behaviour set must agree — on the whole
//! litmus corpus and on hundreds of generated programs, sequentially
//! and in parallel. POR is a pruning of redundant interleavings, never
//! of observable outcomes.

mod support;

use support::{capped_budget, configs_full as configs, seeds, JOBS};
use transafety::checker::Analysis;
use transafety::lang::Program;
use transafety::litmus::{corpus, random_program, GeneratorConfig};
use transafety::traces::MemoryModelKind;
use transafety::{AnalysisReport, Budget, Completeness, Verdict};

fn run(program: &Program, por: bool, jobs: usize, budget: &Budget) -> AnalysisReport {
    run_model(program, MemoryModelKind::Sc, por, jobs, budget)
}

fn run_model(
    program: &Program,
    model: MemoryModelKind,
    por: bool,
    jobs: usize,
    budget: &Budget,
) -> AnalysisReport {
    Analysis::new()
        .model(model)
        .jobs(jobs)
        .por(por)
        .budget(*budget)
        .run(program)
}

/// The contract when both engines finish: bit-identical observables.
fn assert_identical(reduced: &AnalysisReport, full: &AnalysisReport, what: &str) {
    assert_eq!(reduced.verdict, full.verdict, "{what}: verdict");
    assert_eq!(
        reduced.race.is_some(),
        full.race.is_some(),
        "{what}: race witness presence"
    );
    assert_eq!(reduced.behaviours, full.behaviours, "{what}: behaviours");
}

/// The contract that must hold even when a budget truncates one side:
/// no soundness inversion. A witness is conclusive, so `Racy` on one
/// side can never meet `DrfProven` on the other (the reduced execution
/// set is a subset of the full one), and no truncated run may claim a
/// proof.
fn assert_sound(reduced: &AnalysisReport, full: &AnalysisReport, what: &str) {
    for (r, tag) in [(reduced, "por"), (full, "no-por")] {
        if r.race.is_some() {
            assert_eq!(r.verdict, Verdict::Racy, "{what} [{tag}]");
        }
        if matches!(r.completeness, Completeness::Truncated { .. }) {
            assert_ne!(
                r.verdict,
                Verdict::DrfProven,
                "{what} [{tag}]: truncated run claimed a proof"
            );
        }
    }
    assert!(
        !(reduced.verdict == Verdict::Racy && full.verdict == Verdict::DrfProven),
        "{what}: POR found a race the full engine proved absent"
    );
    assert!(
        !(full.verdict == Verdict::Racy && reduced.verdict == Verdict::DrfProven),
        "{what}: POR laundered a racy program into a proof"
    );
}

#[test]
fn por_agrees_on_the_litmus_corpus() {
    let budget = Budget::unlimited();
    for litmus in corpus() {
        let program = litmus.parse().program;
        for jobs in JOBS {
            let what = format!("litmus {} jobs={jobs}", litmus.name);
            let reduced = run(&program, true, jobs, &budget);
            let full = run(&program, false, jobs, &budget);
            // The corpus is unbudgeted, so completeness differs only by
            // the deterministic fuel bound — identical on both sides.
            assert_eq!(reduced.completeness, full.completeness, "{what}");
            assert_identical(&reduced, &full, &what);
            assert!(
                reduced.states_explored <= full.states_explored,
                "{what}: POR explored more states ({} > {})",
                reduced.states_explored,
                full.states_explored
            );
        }
    }
}

#[test]
fn por_agrees_on_the_litmus_corpus_under_buffered_models() {
    let budget = capped_budget();
    for litmus in corpus() {
        let program = litmus.parse().program;
        for model in [MemoryModelKind::Tso, MemoryModelKind::Pso] {
            for jobs in JOBS {
                let what = format!("litmus {} model={model} jobs={jobs}", litmus.name);
                let reduced = run_model(&program, model, true, jobs, &budget);
                let full = run_model(&program, model, false, jobs, &budget);
                let both_complete = !matches!(reduced.completeness, Completeness::Truncated { .. })
                    && !matches!(full.completeness, Completeness::Truncated { .. });
                if both_complete {
                    assert_identical(&reduced, &full, &what);
                    // The race phase of the buffered models always runs
                    // on the full expansion, so with one worker the
                    // search is deterministic and the POR flag must not
                    // change the witness at all — not just its presence.
                    if jobs == 1 {
                        assert_eq!(reduced.race, full.race, "{what}: exact witness");
                    }
                }
                assert_sound(&reduced, &full, &what);
            }
        }
    }
}

#[test]
fn por_agrees_on_generated_programs_under_buffered_models() {
    let configs = configs();
    let budget = capped_budget();
    for seed in 0..seeds() {
        let config = &configs[usize::try_from(seed).unwrap() % configs.len()];
        let program = random_program(seed, config);
        // Alternate the model per seed: every configuration meets both
        // models across the seed range at half the wall-clock cost of a
        // full cross product.
        let model = if seed % 2 == 0 {
            MemoryModelKind::Tso
        } else {
            MemoryModelKind::Pso
        };
        for jobs in JOBS {
            let what = format!("seed {seed} model={model} jobs={jobs}");
            let reduced = run_model(&program, model, true, jobs, &budget);
            let full = run_model(&program, model, false, jobs, &budget);
            let both_complete = !matches!(reduced.completeness, Completeness::Truncated { .. })
                && !matches!(full.completeness, Completeness::Truncated { .. });
            if both_complete {
                assert_identical(&reduced, &full, &what);
                if jobs == 1 {
                    assert_eq!(reduced.race, full.race, "{what}: exact witness");
                }
            }
            assert_sound(&reduced, &full, &what);
        }
    }
}

#[test]
fn por_agrees_on_loop_bearing_programs() {
    // Hand-written loop-bearing probes: the historical implementation
    // disabled POR entirely on any program containing `while`, so these
    // pin the reduction staying on and agreeing. The spin loops have
    // unbounded executions, so the budget truncates — agreement is then
    // soundness plus verdict/witness equality where both sides finish.
    let probes = [
        // terminating: guarded one-shot loop next to an unsynchronised race
        "r0 := 0; while (r0 == 0) { x := 1; r0 := 1; } || y := 1; r1 := x; print r1;",
        // non-terminating spin consumer against a publishing producer
        "flag := 1; || while (flag != 1) skip; print 1;",
        // racy spin: the guard location is itself written without locks
        "x := 1; x := 2; || while (x == 0) skip; print 1;",
    ];
    let budget = capped_budget();
    for (i, src) in probes.iter().enumerate() {
        let program = transafety::lang::parse_program(src)
            .unwrap_or_else(|e| panic!("probe {i}: {e}"))
            .program;
        for model in MemoryModelKind::ALL {
            for jobs in JOBS {
                let what = format!("loop probe {i} model={model} jobs={jobs}");
                let reduced = run_model(&program, model, true, jobs, &budget);
                let full = run_model(&program, model, false, jobs, &budget);
                let both_complete = !matches!(reduced.completeness, Completeness::Truncated { .. })
                    && !matches!(full.completeness, Completeness::Truncated { .. });
                if both_complete {
                    assert_identical(&reduced, &full, &what);
                }
                assert_sound(&reduced, &full, &what);
            }
        }
    }
}

fn run_awaits(
    program: &Program,
    model: MemoryModelKind,
    awaits: bool,
    jobs: usize,
    budget: &Budget,
) -> AnalysisReport {
    Analysis::new()
        .model(model)
        .jobs(jobs)
        .awaits(awaits)
        .budget(*budget)
        .run(program)
}

fn load_program(rel: &str) -> Program {
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(rel);
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{rel}: {e}"));
    transafety::lang::parse_program(&src)
        .unwrap_or_else(|e| panic!("{rel}: {e}"))
        .program
}

/// The spin corpus: hand-written busy-wait programs whose loops are all
/// recognised awaits, so the await-aware reduction must complete them
/// while the unreduced engine truncates at the action bound.
fn spin_corpus() -> Vec<(String, Program, Verdict)> {
    let mp_spin = transafety::litmus::by_name("mp-spin")
        .expect("mp-spin litmus exists")
        .parse()
        .program;
    let racy_spin = transafety::lang::parse_program(
        // Non-volatile spin flag: the guard reads race with the
        // publishing store, and the collapse must keep one failed
        // read adjacent to the write so the witness survives.
        "x := 1; flag := 1; || while (flag != 1) skip; r2 := x; print r2;",
    )
    .expect("racy spin parses")
    .program;
    vec![
        ("mp-spin".to_string(), mp_spin, Verdict::DrfProven),
        (
            "spinlock_handoff".to_string(),
            load_program("programs/spinlock_handoff.tsl"),
            Verdict::DrfProven,
        ),
        (
            "seqlock_reader".to_string(),
            load_program("programs/seqlock_reader.tsl"),
            Verdict::DrfProven,
        ),
        ("racy-spin".to_string(), racy_spin, Verdict::Racy),
    ]
}

#[test]
fn await_reduction_completes_and_agrees_on_the_spin_corpus() {
    let budget = capped_budget();
    for (name, program, expect) in spin_corpus() {
        for model in MemoryModelKind::ALL {
            for jobs in JOBS {
                let what = format!("spin {name} model={model} jobs={jobs}");
                let reduced = run_awaits(&program, model, true, jobs, &budget);
                let full = run_awaits(&program, model, false, jobs, &budget);
                // The headline claim: the collapse turns the budget-
                // truncated spin exploration into a complete verdict.
                assert!(
                    reduced.completeness.is_complete(),
                    "{what}: await-aware run truncated ({:?})",
                    reduced.completeness
                );
                assert_eq!(reduced.verdict, expect, "{what}: verdict");
                if expect == Verdict::Racy {
                    // The race phase never collapses, so the witness on
                    // the spinning read must survive the reduction.
                    assert!(reduced.race.is_some(), "{what}: witness lost");
                    assert_eq!(
                        reduced.race.is_some(),
                        full.race.is_some(),
                        "{what}: witness presence differs from the unreduced engine"
                    );
                }
                let both_complete =
                    reduced.completeness.is_complete() && full.completeness.is_complete();
                if both_complete {
                    assert_identical(&reduced, &full, &what);
                }
                assert_sound(&reduced, &full, &what);
            }
        }
    }
}

#[test]
fn await_reduction_agrees_on_generated_awaits() {
    let config = GeneratorConfig::with_awaits();
    let budget = capped_budget();
    for seed in 0..60u64 {
        let program = random_program(seed, &config);
        // Cycle the three models across the seed range.
        let model = MemoryModelKind::ALL[usize::try_from(seed).unwrap() % 3];
        for jobs in JOBS {
            let what = format!("await seed {seed} model={model} jobs={jobs}");
            let reduced = run_awaits(&program, model, true, jobs, &budget);
            let full = run_awaits(&program, model, false, jobs, &budget);
            // Generated awaits are recognised by construction, so the
            // reduced exploration is exact — the state-cap budget is
            // only a guard against pathological seeds.
            assert!(
                reduced.completeness.is_complete(),
                "{what}: await-aware run truncated ({:?})",
                reduced.completeness
            );
            let both_complete =
                reduced.completeness.is_complete() && full.completeness.is_complete();
            if both_complete {
                assert_identical(&reduced, &full, &what);
            }
            assert_sound(&reduced, &full, &what);
        }
    }
}

#[test]
fn por_agrees_on_generated_programs() {
    let configs = configs();
    let budget = capped_budget();
    for seed in 0..seeds() {
        let config = &configs[usize::try_from(seed).unwrap() % configs.len()];
        let program = random_program(seed, config);
        for jobs in JOBS {
            let what = format!("seed {seed} jobs={jobs}");
            let reduced = run(&program, true, jobs, &budget);
            let full = run(&program, false, jobs, &budget);
            let both_complete = !matches!(reduced.completeness, Completeness::Truncated { .. })
                && !matches!(full.completeness, Completeness::Truncated { .. });
            if both_complete {
                assert_identical(&reduced, &full, &what);
            }
            assert_sound(&reduced, &full, &what);
        }
    }
}
