//! E15: overhead of the budget governor.
//!
//! The budgeted engine threads a `BudgetGuard` through every explorer
//! recursion. The legacy entry points pass an *inert* guard (no
//! deadline, no state cap — every `should_stop` is a single boolean
//! load), while budgeted runs pay for an atomic state counter and a
//! strided clock sample. This bench measures both against the E14
//! worker-scaling workloads; the acceptance target is < 3% overhead
//! for the live-but-generous budget on the heaviest programs.

use std::hint::black_box;
use std::time::Duration;
use transafety_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};

use transafety::interleaving::BudgetGuard;
use transafety::lang::{ExploreOptions, ProgramExplorer};
use transafety::{Budget, CancelToken};

/// The E14 workload: the heaviest litmus entries by sequential runtime.
fn corpus() -> Vec<(String, transafety::lang::Program)> {
    ["iriw", "wrc", "dekker-core", "mp-spin"]
        .iter()
        .map(|name| {
            let l = transafety::litmus::by_name(name).expect("corpus name");
            (name.to_string(), l.parse().program)
        })
        .collect()
}

/// A budget generous enough that nothing ever trips: the run is
/// governed (live deadline + state cap) but completes exactly as the
/// ungoverned one, so the difference is pure governor overhead.
fn generous_budget() -> Budget {
    Budget::default()
        .timeout(Duration::from_secs(3600))
        .max_states(usize::MAX / 2)
}

fn behaviours_overhead(c: &mut Criterion) {
    let opts = ExploreOptions::default();
    let budget = generous_budget();
    let mut group = c.benchmark_group("E15/budget_overhead/behaviours");
    for (name, p) in &corpus() {
        group.bench_with_input(BenchmarkId::new("ungoverned", name), p, |b, p| {
            b.iter(|| {
                ProgramExplorer::new(black_box(p))
                    .behaviours(&opts)
                    .value
                    .len()
            })
        });
        group.bench_with_input(BenchmarkId::new("budgeted", name), p, |b, p| {
            b.iter(|| {
                let guard = BudgetGuard::new(&budget, CancelToken::new());
                ProgramExplorer::new(black_box(p))
                    .behaviours_governed(&opts, &guard)
                    .value
                    .len()
            })
        });
    }
    group.finish();
}

fn race_search_overhead(c: &mut Criterion) {
    let opts = ExploreOptions::default();
    let budget = generous_budget();
    let mut group = c.benchmark_group("E15/budget_overhead/race_search");
    for (name, p) in &corpus() {
        group.bench_with_input(BenchmarkId::new("ungoverned", name), p, |b, p| {
            b.iter(|| {
                ProgramExplorer::new(black_box(p))
                    .race_witness(&opts)
                    .is_some()
            })
        });
        group.bench_with_input(BenchmarkId::new("budgeted", name), p, |b, p| {
            b.iter(|| {
                let guard = BudgetGuard::new(&budget, CancelToken::new());
                ProgramExplorer::new(black_box(p))
                    .race_witness_governed(&opts, &guard)
                    .is_some()
            })
        });
    }
    group.finish();
}

fn parallel_pool_overhead(c: &mut Criterion) {
    // The parallel driver's guard checks happen once per interner miss,
    // not per expansion, so the relative overhead should be even
    // smaller than in the sequential recursion. jobs = 4 as in E14.
    let opts = ExploreOptions::default();
    let budget = generous_budget();
    let mut group = c.benchmark_group("E15/budget_overhead/parallel");
    for (name, p) in &corpus() {
        group.bench_with_input(BenchmarkId::new("ungoverned", name), p, |b, p| {
            b.iter(|| {
                ProgramExplorer::new(black_box(p))
                    .behaviours_par(&opts, 4)
                    .value
                    .len()
            })
        });
        group.bench_with_input(BenchmarkId::new("budgeted", name), p, |b, p| {
            b.iter(|| {
                let guard = BudgetGuard::new(&budget, CancelToken::new());
                ProgramExplorer::new(black_box(p))
                    .behaviours_par_governed(&opts, 4, &guard)
                    .value
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = budget;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = behaviours_overhead, race_search_overhead, parallel_pool_overhead
}
criterion_main!(budget);
