//! Equivalence of the partial-order-reduced engine and the full
//! engine: with POR on vs off, the `Verdict`, the presence of a
//! `RaceWitness`, and the behaviour set must agree — on the whole
//! litmus corpus and on hundreds of generated programs, sequentially
//! and in parallel. POR is a pruning of redundant interleavings, never
//! of observable outcomes.

use std::time::Duration;

use transafety::checker::Analysis;
use transafety::lang::Program;
use transafety::litmus::{corpus, random_program, GeneratorConfig};
use transafety::{AnalysisReport, Budget, Completeness, Verdict};

const SEEDS: u64 = 200;
const JOBS: [usize; 2] = [1, 4];

fn configs() -> Vec<GeneratorConfig> {
    vec![
        GeneratorConfig::default(),
        GeneratorConfig::drf(),
        GeneratorConfig::with_volatiles(),
        GeneratorConfig {
            threads: 3,
            stmts_per_thread: 5,
            ..GeneratorConfig::default()
        },
    ]
}

/// Generous enough that small programs complete, bounded enough that an
/// adversarial generated program cannot hang the suite.
fn capped_budget() -> Budget {
    Budget::unlimited()
        .max_states(200_000)
        .timeout(Duration::from_secs(5))
}

fn run(program: &Program, por: bool, jobs: usize, budget: &Budget) -> AnalysisReport {
    Analysis::new()
        .jobs(jobs)
        .por(por)
        .budget(*budget)
        .run(program)
}

/// The contract when both engines finish: bit-identical observables.
fn assert_identical(reduced: &AnalysisReport, full: &AnalysisReport, what: &str) {
    assert_eq!(reduced.verdict, full.verdict, "{what}: verdict");
    assert_eq!(
        reduced.race.is_some(),
        full.race.is_some(),
        "{what}: race witness presence"
    );
    assert_eq!(reduced.behaviours, full.behaviours, "{what}: behaviours");
}

/// The contract that must hold even when a budget truncates one side:
/// no soundness inversion. A witness is conclusive, so `Racy` on one
/// side can never meet `DrfProven` on the other (the reduced execution
/// set is a subset of the full one), and no truncated run may claim a
/// proof.
fn assert_sound(reduced: &AnalysisReport, full: &AnalysisReport, what: &str) {
    for (r, tag) in [(reduced, "por"), (full, "no-por")] {
        if r.race.is_some() {
            assert_eq!(r.verdict, Verdict::Racy, "{what} [{tag}]");
        }
        if matches!(r.completeness, Completeness::Truncated { .. }) {
            assert_ne!(
                r.verdict,
                Verdict::DrfProven,
                "{what} [{tag}]: truncated run claimed a proof"
            );
        }
    }
    assert!(
        !(reduced.verdict == Verdict::Racy && full.verdict == Verdict::DrfProven),
        "{what}: POR found a race the full engine proved absent"
    );
    assert!(
        !(full.verdict == Verdict::Racy && reduced.verdict == Verdict::DrfProven),
        "{what}: POR laundered a racy program into a proof"
    );
}

#[test]
fn por_agrees_on_the_litmus_corpus() {
    let budget = Budget::unlimited();
    for litmus in corpus() {
        let program = litmus.parse().program;
        for jobs in JOBS {
            let what = format!("litmus {} jobs={jobs}", litmus.name);
            let reduced = run(&program, true, jobs, &budget);
            let full = run(&program, false, jobs, &budget);
            // The corpus is unbudgeted, so completeness differs only by
            // the deterministic fuel bound — identical on both sides.
            assert_eq!(reduced.completeness, full.completeness, "{what}");
            assert_identical(&reduced, &full, &what);
            assert!(
                reduced.states_explored <= full.states_explored,
                "{what}: POR explored more states ({} > {})",
                reduced.states_explored,
                full.states_explored
            );
        }
    }
}

#[test]
fn por_agrees_on_generated_programs() {
    let configs = configs();
    let budget = capped_budget();
    for seed in 0..SEEDS {
        let config = &configs[usize::try_from(seed).unwrap() % configs.len()];
        let program = random_program(seed, config);
        for jobs in JOBS {
            let what = format!("seed {seed} jobs={jobs}");
            let reduced = run(&program, true, jobs, &budget);
            let full = run(&program, false, jobs, &budget);
            let both_complete = !matches!(reduced.completeness, Completeness::Truncated { .. })
                && !matches!(full.completeness, Completeness::Truncated { .. });
            if both_complete {
                assert_identical(&reduced, &full, &what);
            }
            assert_sound(&reduced, &full, &what);
        }
    }
}
