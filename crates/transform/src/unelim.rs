//! The unelimination construction (Lemma 1 of the paper, Fig. 5).
//!
//! Given an execution `I'` of an eliminated traceset `T'` and the
//! original traceset `T`, Lemma 1 produces a wildcard interleaving `I`
//! belonging to `T` and an *unelimination function* from `I'` to `I`.
//! The safety proof of eliminations rests on this construction: the
//! instance of `I` is an execution of `T` with the same behaviour as
//! `I'` (provided `T` is data race free).
//!
//! The construction follows the paper's three steps: decompose `I'` into
//! thread traces, uneliminate each thread trace (the elimination witness
//! search of [`find_elimination`]), and re-interleave so that the order
//! of matched synchronisation/external actions is preserved while all
//! *introduced* synchronisation/external actions come last.

use std::fmt;

use transafety_interleaving::{Interleaving, WildEvent, WildInterleaving};
use transafety_traces::{Domain, Matching, ThreadId, Traceset, WildTrace};

use crate::elimination::{find_elimination, EliminationOptions, EliminationWitness};
use crate::kinds::{is_eliminable, is_external, is_sync};

/// The output of the Lemma 1 construction: the wildcard interleaving and
/// the unelimination function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UneliminationWitness {
    /// The uneliminated wildcard interleaving `I` (belongs to the
    /// original traceset).
    pub wild: WildInterleaving,
    /// The unelimination function `f`: a complete matching from the
    /// indices of `I'` to indices of `I`.
    pub matching: Matching,
    /// The indices of `I` that were introduced (not in the range of `f`).
    pub introduced: Vec<usize>,
}

impl UneliminationWitness {
    /// Validates the four conditions of the unelimination definition
    /// against the transformed execution `I'`:
    ///
    /// 1. matched same-thread events preserve their order;
    /// 2. matched synchronisation/external events preserve their order;
    /// 3. every matched synchronisation/external event precedes every
    ///    introduced one;
    /// 4. every introduced index is eliminable in `I`.
    ///
    /// Also checks that `f` is complete and relates equal events.
    #[must_use]
    pub fn check(&self, transformed: &Interleaving) -> bool {
        let n = transformed.len();
        if !self.matching.is_complete(n) {
            return false;
        }
        // matched events must be equal (thread and concrete action)
        for (i, fi) in self.matching.iter() {
            let e = &transformed[i];
            let w = &self.wild.events()[fi];
            if w.thread() != e.thread() || w.wild_action().as_concrete() != Some(e.action()) {
                return false;
            }
        }
        // (i) and (ii)
        for i in 0..n {
            for j in i + 1..n {
                let (fi, fj) = (
                    self.matching.get(i).expect("complete"),
                    self.matching.get(j).expect("complete"),
                );
                let (a, b) = (&transformed[i], &transformed[j]);
                if a.thread() == b.thread() && fi >= fj {
                    return false;
                }
                let sync_or_ext = |e: &transafety_interleaving::Event| {
                    e.action().is_sync() || e.action().is_external()
                };
                if sync_or_ext(a) && sync_or_ext(b) && fi >= fj {
                    return false;
                }
            }
        }
        // (iii)
        let range: std::collections::BTreeSet<usize> = self.matching.range().into_iter().collect();
        for (k, w) in self.wild.events().iter().enumerate() {
            let se = is_sync(&w.wild_action()) || is_external(&w.wild_action());
            if !se {
                continue;
            }
            if range.contains(&k) {
                // matched sync/ext: must precede all introduced sync/ext
                for &j in &self.introduced {
                    let wj = &self.wild.events()[j];
                    if (is_sync(&wj.wild_action()) || is_external(&wj.wild_action())) && j < k {
                        return false;
                    }
                }
            }
        }
        // (iv): introduced indices are eliminable in their thread's trace
        for &j in &self.introduced {
            if range.contains(&j) {
                return false;
            }
            let thread = self.wild.events()[j].thread();
            let trace_index = self.trace_index_of(j, thread);
            let trace = self.wild.trace_of(thread);
            if !is_eliminable(&trace, trace_index) {
                return false;
            }
        }
        true
    }

    /// The position within its thread's trace of global index `j`.
    fn trace_index_of(&self, j: usize, thread: ThreadId) -> usize {
        self.wild.events()[..j]
            .iter()
            .filter(|e| e.thread() == thread)
            .count()
    }
}

impl fmt::Display for UneliminationWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unelimination {} via {}", self.wild, self.matching)
    }
}

/// The Lemma 1 construction: uneliminate the execution `transformed` of
/// an elimination of `original`.
///
/// Returns `None` when some thread trace of `transformed` has no
/// elimination witness within the search bounds (in particular, when
/// `transformed` is not an execution of an elimination of `original`).
#[must_use]
pub fn find_unelimination(
    transformed: &Interleaving,
    original: &Traceset,
    domain: &Domain,
    opts: &EliminationOptions,
) -> Option<UneliminationWitness> {
    // Step 1: decompose into thread traces and uneliminate each.
    let threads = transformed.threads();
    let mut witnesses: Vec<(ThreadId, EliminationWitness)> = Vec::new();
    for &th in &threads {
        let trace = transformed.trace_of(th);
        let w = find_elimination(&trace, original, domain, opts)?;
        witnesses.push((th, w));
    }

    // Step 2: re-interleave. Matched elements are emitted in I' order;
    // unmatched non-sync/non-external elements are emitted as soon as
    // their thread reaches them; once a thread hits an unmatched
    // synchronisation or external element, the rest of that thread is
    // deferred to a final phase (such elements are last-action
    // eliminations, so no matched sync/external element can follow them).
    struct ThreadState<'w> {
        wild: &'w WildTrace,
        kept: &'w Matching,
        emitted: usize,  // elements of `wild` already emitted
        consumed: usize, // events of I' of this thread already matched
        deferred: bool,
    }
    let mut states: std::collections::BTreeMap<ThreadId, ThreadState<'_>> = witnesses
        .iter()
        .map(|(th, w)| {
            (
                *th,
                ThreadState {
                    wild: &w.wild,
                    kept: &w.kept,
                    emitted: 0,
                    consumed: 0,
                    deferred: false,
                },
            )
        })
        .collect();

    let mut out: Vec<WildEvent> = Vec::new();
    let mut matching = Matching::new();

    for (i, e) in transformed.iter().enumerate() {
        let th = e.thread();
        let st = states.get_mut(&th)?;
        let target = st.kept.get(st.consumed)?;
        if st.deferred {
            // This matched element lies after an introduced sync/external
            // element; Lemma 1's kinds guarantee it is not sync/external
            // itself, so its emission can wait for the final phase.
            st.consumed += 1;
            continue;
        }
        // Emit pending unmatched elements before the matched one, unless
        // one of them is sync/external (then defer the tail).
        while st.emitted < target {
            let w = st.wild.elements()[st.emitted];
            if is_sync(&w) || is_external(&w) {
                st.deferred = true;
                break;
            }
            out.push(WildEvent::new(th, w));
            st.emitted += 1;
        }
        if st.deferred {
            st.consumed += 1;
            continue;
        }
        // Emit the matched element itself.
        out.push(WildEvent::new(th, st.wild.elements()[target]));
        matching.insert(i, out.len() - 1).ok()?;
        st.emitted = target + 1;
        st.consumed += 1;
    }

    // Step 3: final phase — flush every remaining element (including the
    // deferred tails) in thread order, recording matches for deferred
    // matched elements.
    for (&th, st) in &mut states {
        while st.emitted < st.wild.len() {
            let w = st.wild.elements()[st.emitted];
            out.push(WildEvent::new(th, w));
            if let Some(iprime) = st.kept.get_inverse(st.emitted) {
                // find the I' index: kept maps trace'-index -> wild index;
                // convert the trace'-index back to the global I' index.
                let global = nth_event_of_thread(transformed, th, iprime)?;
                matching.insert(global, out.len() - 1).ok()?;
            }
            st.emitted += 1;
        }
    }

    let range: std::collections::BTreeSet<usize> = matching.range().into_iter().collect();
    let introduced = (0..out.len()).filter(|k| !range.contains(k)).collect();
    Some(UneliminationWitness {
        wild: WildInterleaving::from_events(out),
        matching,
        introduced,
    })
}

/// The global index in `i` of the `n`-th event of thread `th`.
fn nth_event_of_thread(i: &Interleaving, th: ThreadId, n: usize) -> Option<usize> {
    let mut count = 0;
    for (k, e) in i.iter().enumerate() {
        if e.thread() == th {
            if count == n {
                return Some(k);
            }
            count += 1;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use transafety_interleaving::{Event, Explorer};
    use transafety_traces::{Action, Loc, Trace, Value};

    fn tid(i: u32) -> ThreadId {
        ThreadId::new(i)
    }
    fn v(n: u32) -> Value {
        Value::new(n)
    }

    /// The Fig. 5 program (v volatile):
    /// thread 0: v:=1; y:=1   — thread 1: r1:=x; r2:=v; print r2.
    fn fig5_original(d: &Domain) -> Traceset {
        let vol = Loc::volatile(9);
        let x = Loc::normal(0);
        let y = Loc::normal(1);
        let mut t = Traceset::new();
        t.insert(Trace::from_actions([
            Action::start(tid(0)),
            Action::write(vol, v(1)),
            Action::write(y, v(1)),
        ]))
        .unwrap();
        for v1 in d.iter() {
            for v2 in d.iter() {
                t.insert(Trace::from_actions([
                    Action::start(tid(1)),
                    Action::read(x, v1),
                    Action::read(vol, v2),
                    Action::external(v2),
                ]))
                .unwrap();
            }
        }
        t
    }

    /// The Fig. 5 execution of the transformed program:
    /// I' = [(0,S(0)), (1,S(1)), (0,W[y=1]), (1,R[v=0]), (1,X(0))].
    fn fig5_transformed_execution() -> Interleaving {
        let vol = Loc::volatile(9);
        let y = Loc::normal(1);
        Interleaving::from_events([
            Event::new(tid(0), Action::start(tid(0))),
            Event::new(tid(1), Action::start(tid(1))),
            Event::new(tid(0), Action::write(y, v(1))),
            Event::new(tid(1), Action::read(vol, v(0))),
            Event::new(tid(1), Action::external(v(0))),
        ])
    }

    #[test]
    fn fig5_unelimination_matches_the_paper() {
        let d = Domain::zero_to(1);
        let original = fig5_original(&d);
        let i_prime = fig5_transformed_execution();
        let w = find_unelimination(&i_prime, &original, &d, &EliminationOptions::default())
            .expect("Lemma 1 construction");
        assert!(w.check(&i_prime), "all four unelimination conditions hold");
        // The wildcard interleaving belongs to the original traceset.
        assert!(w.wild.belongs_to(&original, &d));
        // The paper's key observation: the unelimination function moves
        // the second action of I' (index 2, W[y=1]) to the last position.
        assert_eq!(w.matching.get(2), Some(w.wild.len() - 1));
        // The introduced volatile write (a release) comes after every
        // matched synchronisation/external action.
        let instance = w.wild.instance();
        assert!(
            instance.is_sequentially_consistent(),
            "the instance is an execution (Lemma 1 consequence for race-free prefixes)"
        );
        assert!(instance.is_interleaving_of(&original));
        assert_eq!(instance.behaviour(), i_prime.behaviour(), "same behaviour");
    }

    #[test]
    fn unelimination_of_untransformed_execution_is_identity_like() {
        let d = Domain::zero_to(1);
        let original = fig5_original(&d);
        // any execution of the original itself uneliminates
        let execs = Explorer::new(&original)
            .maximal_executions(transafety_interleaving::ExploreLimits::default());
        for e in execs.iter().take(10) {
            let w = find_unelimination(e, &original, &d, &EliminationOptions::default())
                .expect("executions of T uneliminate into T");
            assert!(w.check(e));
        }
    }

    #[test]
    fn unelimination_fails_for_foreign_executions() {
        let d = Domain::zero_to(1);
        let original = fig5_original(&d);
        let bogus = Interleaving::from_events([
            Event::new(tid(0), Action::start(tid(0))),
            Event::new(tid(0), Action::external(v(7))),
        ]);
        assert!(
            find_unelimination(&bogus, &original, &d, &EliminationOptions::default()).is_none()
        );
    }

    #[test]
    fn behaviour_preservation_on_all_transformed_executions() {
        // Build the transformed traceset (after both eliminations) and
        // check every execution's behaviour is reproduced by its
        // unelimination instance — the heart of Theorem 1.
        let d = Domain::zero_to(1);
        let original = fig5_original(&d);
        let vol = Loc::volatile(9);
        let y = Loc::normal(1);
        let mut transformed = Traceset::new();
        transformed
            .insert(Trace::from_actions([
                Action::start(tid(0)),
                Action::write(y, v(1)),
            ]))
            .unwrap();
        for v2 in d.iter() {
            transformed
                .insert(Trace::from_actions([
                    Action::start(tid(1)),
                    Action::read(vol, v2),
                    Action::external(v2),
                ]))
                .unwrap();
        }
        let execs = Explorer::new(&transformed)
            .maximal_executions(transafety_interleaving::ExploreLimits::default());
        assert!(!execs.is_empty());
        for e in &execs {
            let w = find_unelimination(e, &original, &d, &EliminationOptions::default())
                .unwrap_or_else(|| panic!("unelimination of {e}"));
            assert!(w.check(e), "conditions for {e}");
            let instance = w.wild.instance();
            assert!(instance.is_sequentially_consistent(), "{e} -> {instance}");
            assert_eq!(instance.behaviour(), e.behaviour());
        }
    }
}
