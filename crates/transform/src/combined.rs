//! The combined elimination-then-reordering transformation.
//!
//! §4's worked example and Lemma 5 show that syntactic reordering
//! corresponds to a semantic *elimination followed by a reordering*: the
//! de-permuted prefixes of a transformed trace need not be members of the
//! original traceset, only eliminations of wildcard traces belonging to
//! it (the paper's `T*`). This module provides that composite check.

use std::collections::HashMap;
use std::fmt;

use transafety_traces::{Domain, Trace, Traceset};

use crate::elimination::{find_elimination, EliminationOptions};
use crate::reordering::{find_reordering_with, ReorderingFn};

/// The failure report of [`is_elim_reordering_of`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotATransformation {
    /// The transformed-traceset member with no witness.
    pub trace: Trace,
}

impl fmt::Display for NotATransformation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace {} is not a reordering of any elimination of the original",
            self.trace
        )
    }
}

impl std::error::Error for NotATransformation {}

/// A memoising membership oracle for "is an elimination of some wildcard
/// trace belonging to the original traceset".
///
/// This is the intermediate set `T*` of the §4 worked example, queried
/// lazily: `T*` always contains the original traceset (the identity
/// elimination) plus every bounded elimination of it.
///
/// # Example
///
/// ```
/// use transafety_traces::{Action, Domain, Loc, ThreadId, Trace, Traceset, Value};
/// use transafety_transform::{EliminationOptions, EliminationOracle};
/// let y = Loc::normal(1);
/// let mut t = Traceset::new();
/// let d = Domain::zero_to(1);
/// for v in d.iter() {
///     t.insert(Trace::from_actions([
///         Action::start(ThreadId::new(0)),
///         Action::read(y, v),
///         Action::write(Loc::normal(0), Value::new(1)),
///     ]))?;
/// }
/// let mut oracle = EliminationOracle::new(&t, &d, EliminationOptions::default());
/// // [S(0), W[x=1]] is the elimination of the wildcard trace
/// // [S(0), R[y=*], W[x=1]] — the key step of the §4 worked example.
/// let eliminated = Trace::from_actions([
///     Action::start(ThreadId::new(0)),
///     Action::write(Loc::normal(0), Value::new(1)),
/// ]);
/// assert!(oracle.is_member(&eliminated));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct EliminationOracle<'a> {
    original: &'a Traceset,
    domain: &'a Domain,
    opts: EliminationOptions,
    memo: HashMap<Trace, bool>,
}

impl<'a> EliminationOracle<'a> {
    /// Creates an oracle for eliminations of `original`.
    #[must_use]
    pub fn new(original: &'a Traceset, domain: &'a Domain, opts: EliminationOptions) -> Self {
        EliminationOracle {
            original,
            domain,
            opts,
            memo: HashMap::new(),
        }
    }

    /// Is `t` an elimination of some wildcard trace belonging to the
    /// original traceset?
    pub fn is_member(&mut self, t: &Trace) -> bool {
        if let Some(&r) = self.memo.get(t) {
            return r;
        }
        // Fast path: plain membership (the identity elimination).
        let r = self.original.contains(t)
            || find_elimination(t, self.original, self.domain, &self.opts).is_some();
        self.memo.insert(t.clone(), r);
        r
    }
}

/// Searches for a function de-permuting `t` into the elimination closure
/// of `original` (the composite transformation of Lemma 5).
#[must_use]
pub fn find_elim_reordering(
    t: &Trace,
    original: &Traceset,
    domain: &Domain,
    opts: &EliminationOptions,
) -> Option<ReorderingFn> {
    let mut oracle = EliminationOracle::new(original, domain, *opts);
    find_reordering_with(t, |p| oracle.is_member(p))
}

/// Decides whether `transformed` is a reordering of an elimination of
/// `original`: every member trace must de-permute into the elimination
/// closure.
///
/// # Errors
///
/// Returns [`NotATransformation`] carrying the first member trace with no
/// witness within the search bounds.
pub fn is_elim_reordering_of(
    transformed: &Traceset,
    original: &Traceset,
    domain: &Domain,
    opts: &EliminationOptions,
) -> Result<(), NotATransformation> {
    let mut oracle = EliminationOracle::new(original, domain, *opts);
    for t in transformed.traces() {
        if find_reordering_with(&t, |p| oracle.is_member(p)).is_none() {
            return Err(NotATransformation { trace: t });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use transafety_traces::{Action, Loc, ThreadId, Value};

    fn tid(i: u32) -> ThreadId {
        ThreadId::new(i)
    }
    fn x() -> Loc {
        Loc::normal(0)
    }
    fn y() -> Loc {
        Loc::normal(1)
    }
    fn v(n: u32) -> Value {
        Value::new(n)
    }

    /// Fig. 2 thread 1 original: r1:=y; x:=1; print r1.
    fn fig2_original(d: &Domain) -> Traceset {
        let mut t = Traceset::new();
        for val in d.iter() {
            t.insert(Trace::from_actions([
                Action::start(tid(1)),
                Action::read(y(), val),
                Action::write(x(), v(1)),
                Action::external(val),
            ]))
            .unwrap();
        }
        t
    }

    #[test]
    fn fig2_transformed_is_elim_reordering_of_original() {
        // The §4 worked example, end to end: the transformed thread
        // x:=1; r1:=y; print r1 de-permutes into the elimination closure.
        let d = Domain::zero_to(1);
        let original = fig2_original(&d);
        let mut transformed = Traceset::new();
        for val in d.iter() {
            transformed
                .insert(Trace::from_actions([
                    Action::start(tid(1)),
                    Action::write(x(), v(1)),
                    Action::read(y(), val),
                    Action::external(val),
                ]))
                .unwrap();
        }
        is_elim_reordering_of(&transformed, &original, &d, &EliminationOptions::default())
            .expect("Fig. 2 is an elimination followed by a reordering");
        // but it is NOT a plain reordering (the key subtlety of §4)
        assert!(crate::reordering::is_reordering_of(&transformed, &original).is_err());
    }

    #[test]
    fn oracle_memoises_and_answers_identity() {
        let d = Domain::zero_to(1);
        let original = fig2_original(&d);
        let mut oracle = EliminationOracle::new(&original, &d, EliminationOptions::default());
        for t in original.traces() {
            assert!(
                oracle.is_member(&t),
                "members are eliminations of themselves"
            );
        }
        let bogus = Trace::from_actions([Action::start(tid(1)), Action::external(v(9))]);
        assert!(!oracle.is_member(&bogus));
        assert!(!oracle.is_member(&bogus), "memoised second query");
    }

    #[test]
    fn unsound_swap_is_rejected() {
        // Swapping conflicting accesses must not be accepted even with
        // eliminations available: original r:=x; x:=1 vs transformed
        // x:=1; r:=x would change the read's provenance.
        let d = Domain::zero_to(1);
        let mut original = Traceset::new();
        for val in d.iter() {
            original
                .insert(Trace::from_actions([
                    Action::start(tid(0)),
                    Action::read(x(), val),
                    Action::write(x(), v(1)),
                    Action::external(val),
                ]))
                .unwrap();
        }
        let mut transformed = Traceset::new();
        transformed
            .insert(Trace::from_actions([
                Action::start(tid(0)),
                Action::write(x(), v(1)),
                Action::read(x(), v(1)),
                Action::external(v(1)),
            ]))
            .unwrap();
        let err =
            is_elim_reordering_of(&transformed, &original, &d, &EliminationOptions::default());
        assert!(err.is_err());
        assert!(err.unwrap_err().to_string().contains("not a reordering"));
    }
}
