//! E19: the dynamic partial-order reduction on loop-bearing programs.
//!
//! E16 measured the first POR under its conservative gate: the
//! reduction switched itself off on any program containing `while`, so
//! loop-bearing workloads paid the full interleaving cross product.
//! The dynamic reduction replaces the gate with a size-decreasing
//! cycle proviso, so this bench runs the loop-bearing workload the
//! gate used to abandon — `programs/guarded_staging.tsl`, three
//! register-guarded one-shot staging loops — next to the loop-free
//! `programs/private_staging.tsl` baseline, and asserts an aggregate
//! state reduction of at least 10x with bit-identical behaviours and
//! race verdicts (E16's best aggregate was 6.08x).
//!
//! Spin-loop programs (`mp-spin`, `programs/spinlock_handoff.tsl`) are
//! measured and reported too, but excluded from the ratio gate: a spin
//! iteration reloads its guard location, which is a visible read the
//! proviso must keep fully expanded, so their reduction is inherently
//! modest (~1.2x). Hiding them would overstate the claim; gating on
//! them would misstate it.
//!
//! Before timing anything the bench prints the states table, asserts
//! the observable-equality and ratio claims, checks the `dpor_*`
//! counters are live (proviso blocks on loops, flush-ample hits under
//! TSO), and writes `BENCH_E19.json` (path overridable via the
//! `BENCH_E19_OUT` environment variable).
//!
//! `cargo bench --bench dpor -- --test` runs the smoke mode: the same
//! assertions and JSON emission, skipping the criterion timing loops.
//! The ratio gate runs in both modes — state counts are deterministic,
//! so CI noise cannot flake it.

use std::hint::black_box;
use transafety_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};

use transafety::interleaving::{BudgetGuard, ExploreMetrics, ExploreStats};
use transafety::lang::{parse_program, ExploreOptions, ModelExplorer, Program, ProgramExplorer};
use transafety::tso::TsoModel;
use transafety::{Budget, CancelToken};

fn program(file: &str) -> Program {
    let path = format!("{}/../../programs/{file}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).expect("readable program file");
    parse_program(&src).expect("valid .tsl program").program
}

/// The ratio workload: the loop-bearing staging program the old gate
/// abandoned, plus its loop-free sibling. The >= 10x aggregate gate is
/// asserted over exactly these.
fn ratio_corpus() -> Vec<(String, Program)> {
    vec![
        (
            "guarded_staging".to_string(),
            program("guarded_staging.tsl"),
        ),
        (
            "private_staging".to_string(),
            program("private_staging.tsl"),
        ),
    ]
}

/// Spin-loop programs: measured and reported, excluded from the gate
/// (see module docs).
fn spin_corpus() -> Vec<(String, Program)> {
    let mp = transafety::litmus::by_name("mp-spin").expect("corpus name");
    vec![
        ("mp-spin".to_string(), mp.parse().program),
        (
            "spinlock_handoff".to_string(),
            program("spinlock_handoff.tsl"),
        ),
    ]
}

/// `guarded_staging` needs ~40 actions per maximal trace, above the
/// default fuel of 32; 64 completes every corpus entry that terminates.
fn opts(por: bool) -> ExploreOptions {
    ExploreOptions {
        por,
        max_actions: 64,
        ..ExploreOptions::default()
    }
}

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

struct Row {
    name: String,
    full: usize,
    reduced: usize,
    complete: bool,
}

impl Row {
    fn ratio(&self) -> f64 {
        self.full as f64 / self.reduced.max(1) as f64
    }
}

/// Counts the states the behaviour search visits, feeding the shared
/// collector so the JSON report carries live `dpor_*` counters.
fn governed_states(
    p: &Program,
    por: bool,
    collector: &std::sync::Arc<ExploreMetrics>,
) -> (usize, bool) {
    let guard =
        BudgetGuard::with_metrics(&Budget::unlimited(), CancelToken::new(), collector.clone());
    let b = ProgramExplorer::new(p).behaviours_governed(&opts(por), &guard);
    (guard.states(), b.complete)
}

/// The reduction's primary claim, checked per program before any
/// timing: bit-identical behaviours and race verdicts, fewer states.
fn measure(corpus: &[(String, Program)], collector: &std::sync::Arc<ExploreMetrics>) -> Vec<Row> {
    let mut rows = Vec::new();
    for (name, p) in corpus {
        let ex = ProgramExplorer::new(p);
        let on = ex.behaviours(&opts(true));
        let off = ex.behaviours(&opts(false));
        assert_eq!(on, off, "{name}: POR changed the behaviour set");
        assert_eq!(
            ex.race_witness(&opts(true)).is_some(),
            ex.race_witness(&opts(false)).is_some(),
            "{name}: POR changed the race verdict"
        );
        let (full, full_complete) = governed_states(p, false, &ExploreMetrics::disabled());
        let (reduced, reduced_complete) = governed_states(p, true, collector);
        assert_eq!(
            reduced_complete, full_complete,
            "{name}: POR changed completeness"
        );
        assert!(
            reduced <= full,
            "{name}: POR explored more states ({reduced} > {full})"
        );
        rows.push(Row {
            name: name.clone(),
            full,
            reduced,
            complete: reduced_complete,
        });
    }
    rows
}

fn print_table(title: &str, rows: &[Row]) {
    println!(
        "\n{title}\n{:<22} {:>10} {:>10} {:>9}  complete",
        "program", "full", "reduced", "ratio"
    );
    for r in rows {
        println!(
            "{:<22} {:>10} {:>10} {:>8.2}x  {}",
            r.name,
            r.full,
            r.reduced,
            r.ratio(),
            r.complete
        );
    }
}

/// Aggregate reduction over a row set: total full states over total
/// reduced states, so the heavy entries dominate.
fn aggregate_ratio(rows: &[Row]) -> f64 {
    let full: usize = rows.iter().map(|r| r.full).sum();
    let reduced: usize = rows.iter().map(|r| r.reduced).sum();
    full as f64 / reduced.max(1) as f64
}

/// The reduction counters must be live on the measured corpus: ample
/// hits fired (otherwise the "reduction" is vacuous) and the counter
/// invariants hold.
fn assert_dpor_counters(stats: &ExploreStats) {
    assert!(stats.enabled, "measure pass ran with a dead collector");
    assert!(
        stats.por_ample_hits > 0,
        "no ample hits: the reduction never fired"
    );
    assert!(
        stats.dpor_proviso_blocks <= stats.por_full_expansions,
        "proviso blocks ({}) exceed full expansions ({})",
        stats.dpor_proviso_blocks,
        stats.por_full_expansions
    );
}

/// A loop guarded by a *private* location: the guard reload is an
/// invisible read whose successor configuration is larger (the freshly
/// unfolded loop body), so the size-decreasing cycle proviso must
/// refuse to make it ample and fall back to full expansion —
/// `dpor_proviso_blocks` counts exactly that refusal. The main corpus
/// cannot exercise the counter: register-guarded loops unfold silently
/// into size-decreasing moves, and spin loops reload a *shared* flag,
/// which is visible and never an ample candidate in the first place.
const PROVISO_PROBE: &str = "scratch := 0; while (scratch == 0) { scratch := 1; } \
     lock m; shared := 1; unlock m; \
     || lock m; r0 := shared; unlock m; print r0;";

fn proviso_probe_stats() -> ExploreStats {
    let program = parse_program(PROVISO_PROBE).expect("valid probe").program;
    let ex = ProgramExplorer::new(&program);
    assert_eq!(
        ex.behaviours(&opts(true)),
        ex.behaviours(&opts(false)),
        "proviso probe: POR changed the behaviour set"
    );
    let collector = ExploreMetrics::collector();
    let (full, _) = governed_states(&program, false, &ExploreMetrics::disabled());
    let (reduced, _) = governed_states(&program, true, &collector);
    assert!(
        reduced <= full,
        "proviso probe: POR explored more states ({reduced} > {full})"
    );
    let stats = collector.snapshot();
    assert!(
        stats.dpor_proviso_blocks > 0,
        "proviso probe produced no proviso blocks: the cycle check is dead"
    );
    stats
}

/// Runs the ratio corpus's behaviour phase under TSO with one shared
/// collector: the buffered models must show live flush-commutativity
/// reductions (`dpor_flush_ample_hits`).
fn tso_stats() -> ExploreStats {
    let collector = ExploreMetrics::collector();
    for (name, p) in &ratio_corpus() {
        let model = TsoModel::new(p);
        let mx = ModelExplorer::new(&model);
        let guard =
            BudgetGuard::with_metrics(&Budget::unlimited(), CancelToken::new(), collector.clone());
        let o = ExploreOptions {
            max_actions: 128, // flushes are actions too under TSO
            ..opts(true)
        };
        let b = mx.behaviours_governed(&o, &guard);
        assert!(b.complete, "{name}: TSO behaviour search truncated");
    }
    let mut stats = collector.snapshot();
    // The collector is model-agnostic and stamps "sc" by default; this
    // run drove TsoModel, so relabel before the report is written.
    stats.model = "tso".to_string();
    assert!(
        stats.dpor_flush_ample_hits > 0,
        "no flush-ample hits under TSO: the buffered reduction is dead"
    );
    stats
}

/// Writes the measured reduction as a small hand-rolled JSON report
/// (the offline build has no serde).
fn write_report(
    ratio_rows: &[Row],
    spin_rows: &[Row],
    gate: f64,
    smoke: bool,
    stats: &ExploreStats,
    probe: &ExploreStats,
    tso: &ExploreStats,
) {
    let path = std::env::var("BENCH_E19_OUT").unwrap_or_else(|_| "BENCH_E19.json".to_string());
    let mut out = String::from("{\n  \"experiment\": \"E19\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"aggregate_ratio\": {gate:.3},\n"));
    out.push_str("  \"ratio_gate\": 10.0,\n");
    out.push_str(&format!("  \"sc_stats\": {},\n", stats.to_json()));
    out.push_str(&format!(
        "  \"proviso_probe_stats\": {},\n",
        probe.to_json()
    ));
    out.push_str(&format!("  \"tso_stats\": {},\n", tso.to_json()));
    for (key, rows) in [("programs", ratio_rows), ("spin_programs", spin_rows)] {
        out.push_str(&format!("  \"{key}\": [\n"));
        for (i, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"full_states\": {}, \"reduced_states\": {}, \
                 \"ratio\": {:.3}, \"complete\": {}}}{}\n",
                r.name,
                r.full,
                r.reduced,
                r.ratio(),
                r.complete,
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        out.push_str(if key == "programs" { "  ],\n" } else { "  ]\n" });
    }
    out.push_str("}\n");
    std::fs::write(&path, out).expect("writable BENCH_E19.json path");
    println!("E19 report written to {path}");
}

fn dpor_reduction(c: &mut Criterion) {
    let ratio_corpus = ratio_corpus();
    let spin_corpus = spin_corpus();
    let collector = ExploreMetrics::collector();
    let ratio_rows = measure(&ratio_corpus, &collector);
    let spin_rows = measure(&spin_corpus, &collector);
    print_table(
        "E19/dpor_states_explored (behaviour search, sequential, gated)",
        &ratio_rows,
    );
    print_table(
        "E19/dpor spin programs (reported, excluded from the gate)",
        &spin_rows,
    );
    let gate = aggregate_ratio(&ratio_rows);
    println!("\nE19 aggregate reduction on the gated workload: {gate:.2}x (gate: >= 10x)");
    println!(
        "E19 spin-loop reduction (ungated): {:.2}x\n",
        aggregate_ratio(&spin_rows)
    );
    let stats = collector.snapshot();
    assert_dpor_counters(&stats);
    let probe = proviso_probe_stats();
    let tso = tso_stats();
    println!(
        "E19 counters: {} ample hits, {} prev carries (SC corpus); \
         {} proviso blocks (private-guard probe); {} flush-ample hits (TSO)",
        stats.por_ample_hits,
        stats.dpor_prev_carries,
        probe.dpor_proviso_blocks,
        tso.dpor_flush_ample_hits
    );
    assert!(
        gate >= 10.0,
        "dynamic POR must reduce the loop-bearing workload >= 10x, got {gate:.2}x"
    );
    write_report(
        &ratio_rows,
        &spin_rows,
        gate,
        smoke_mode(),
        &stats,
        &probe,
        &tso,
    );
    if smoke_mode() {
        return; // smoke mode: assertions + report only, no timing loops
    }
    let mut group = c.benchmark_group("E19/dpor/behaviours");
    for (name, p) in ratio_corpus.iter().chain(&spin_corpus) {
        for (tag, por) in [("full", false), ("reduced", true)] {
            let o = opts(por);
            group.bench_with_input(BenchmarkId::new(tag, name), p, |b, p| {
                b.iter(|| {
                    ProgramExplorer::new(black_box(p))
                        .behaviours(&o)
                        .value
                        .len()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, dpor_reduction);
criterion_main!(benches);
