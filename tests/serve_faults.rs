//! Fault-injection suite for the serve pipeline (ISSUE satellite):
//! every degradation path — worker panic, double panic, cache
//! corruption, shed-under-load, budget truncation — is forced
//! deterministically through the production code via `FaultPlan`, and
//! the suite proves the isolation contract:
//!
//! * the server survives every injected fault and answers **every**
//!   admitted request exactly once (no silent drops);
//! * every response, degraded or not, is well-formed flat JSON (checked
//!   with the same strict parser the request path uses);
//! * sibling requests of a faulted request are answered identically to
//!   a cold, fault-free run (modulo timing);
//! * no degraded path ever reports `drf_proven`.

use std::io::Cursor;
use std::sync::{Arc, Mutex};

use transafety::Analysis;
use transafety_serve::proto::parse_flat_object;
use transafety_serve::{FaultPlan, ServeConfig, Server};

/// Runs one stdin-style serve session over `input`, returning the
/// response lines (order is worker-dependent).
fn run_session(config: ServeConfig, input: &str) -> Vec<String> {
    let server = Server::new(config).expect("server construction");
    let out: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
    server.run(Cursor::new(input.to_owned()), &out);
    let bytes = out.lock().unwrap().clone();
    String::from_utf8(bytes)
        .expect("responses are utf-8")
        .lines()
        .map(str::to_owned)
        .collect()
}

/// Every response must parse with the strict flat-JSON parser and echo
/// a known id; returns id → line.
fn index_by_id(lines: &[String]) -> std::collections::BTreeMap<String, String> {
    let mut by_id = std::collections::BTreeMap::new();
    for line in lines {
        let pairs =
            parse_flat_object(line).unwrap_or_else(|e| panic!("malformed response {line:?}: {e}"));
        let id = pairs
            .iter()
            .find(|(k, _)| k == "id")
            .and_then(|(_, v)| v.as_str())
            .unwrap_or_else(|| panic!("response without id: {line}"))
            .to_owned();
        let dup = by_id.insert(id.clone(), line.clone());
        assert!(dup.is_none(), "id {id} answered twice: {line}");
    }
    by_id
}

/// Strips the (timing-dependent) latency field so fault-run responses
/// can be compared bit-for-bit against cold-run responses.
fn without_latency(line: &str) -> String {
    match line.split_once(",\"elapsed_micros\":") {
        Some((head, _)) => format!("{head}}}"),
        None => line.to_owned(),
    }
}

fn request(id: &str, program: &str) -> String {
    format!("{{\"id\":\"{id}\",\"program\":\"{program}\"}}\n")
}

const RACY: &str = "x := 1; || r0 := x; print r0;";
const DRF: &str = "volatile v; v := 1; || r0 := v; print r0;";

#[test]
fn injected_panic_is_quarantined_and_siblings_are_untouched() {
    let input = format!(
        "{}{}{}",
        request("a", RACY),
        request("b", DRF),
        request("c", RACY)
    );
    // Request 2 ("b") panics on its first attempt; the sequential retry
    // answers it.
    let faulty = ServeConfig {
        faults: FaultPlan::parse("panic@2").unwrap(),
        ..ServeConfig::default()
    };
    let fault_run = index_by_id(&run_session(faulty, &input));
    let cold_run = index_by_id(&run_session(ServeConfig::default(), &input));
    assert_eq!(fault_run.len(), 3, "server answered everything");
    let b = &fault_run["b"];
    assert!(b.contains("\"retried\":true"), "retry is visible: {b}");
    assert!(
        b.contains("\"verdict\":\"drf_proven\""),
        "the retry completed cleanly, so the proof stands: {b}"
    );
    for id in ["a", "c"] {
        assert_eq!(
            without_latency(&fault_run[id]),
            without_latency(&cold_run[id]),
            "sibling {id} must be identical to a cold run"
        );
    }
}

#[test]
fn double_panic_degrades_to_an_error_response_and_never_a_verdict() {
    let input = format!("{}{}", request("victim", DRF), request("ok", RACY));
    let config = ServeConfig {
        faults: FaultPlan::parse("panic@1:both").unwrap(),
        ..ServeConfig::default()
    };
    let by_id = index_by_id(&run_session(config, &input));
    let victim = &by_id["victim"];
    assert!(victim.contains("\"status\":\"error\""), "{victim}");
    assert!(
        !victim.contains("drf_proven") && !victim.contains("\"verdict\":"),
        "a double panic must not smuggle out a verdict: {victim}"
    );
    assert!(by_id["ok"].contains("\"verdict\":\"racy\""), "sibling fine");
}

#[test]
fn corrupted_cache_entry_is_quarantined_and_recomputed() {
    let dir = std::env::temp_dir().join(format!(
        "transafety-serve-faults-corrupt-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let with_cache = |faults: &str| ServeConfig {
        cache_dir: Some(dir.clone()),
        faults: FaultPlan::parse(faults).unwrap(),
        ..ServeConfig::default()
    };
    // Session 1: computes, publishes, then the fault plan corrupts the
    // published entry on disk.
    let first = index_by_id(&run_session(with_cache("corrupt@1"), &request("one", DRF)));
    assert!(first["one"].contains("\"cached\":false"));
    // Session 2: the probe must detect the corruption (checksum),
    // quarantine the entry, recompute — and answer identically.
    let second = index_by_id(&run_session(with_cache(""), &request("two", DRF)));
    let canon = |l: &str| {
        without_latency(l)
            .replace("\"id\":\"one\"", "")
            .replace("\"id\":\"two\"", "")
    };
    assert_eq!(
        canon(&first["one"]),
        canon(&second["two"]),
        "recomputed verdict identical to the original"
    );
    assert!(
        second["two"].contains("\"cached\":false"),
        "not served from the corrupt entry"
    );
    let quarantined = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .filter(|e| e.file_name().to_string_lossy().ends_with(".corrupt"))
        .count();
    assert_eq!(quarantined, 1, "corrupt entry kept for post-mortem");
    // Session 3: the recompute re-published a good entry — now a hit.
    let third = index_by_id(&run_session(with_cache(""), &request("three", DRF)));
    assert!(
        third["three"].contains("\"cached\":true"),
        "{}",
        third["three"]
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overload_sheds_oldest_with_explicit_responses_and_no_silent_drops() {
    const N: usize = 12;
    let input: String = (0..N).map(|i| request(&format!("q{i}"), RACY)).collect();
    let config = ServeConfig {
        workers: 1,
        queue_depth: 2,
        // Every processed request stalls, so admission outpaces the
        // worker and the queue must shed.
        faults: FaultPlan::parse("slow@*:100").unwrap(),
        ..ServeConfig::default()
    };
    let server = Server::new(config).expect("server construction");
    let out: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
    let summary = server.run(Cursor::new(input), &out);
    let bytes = out.lock().unwrap().clone();
    let lines: Vec<String> = String::from_utf8(bytes)
        .unwrap()
        .lines()
        .map(str::to_owned)
        .collect();
    let by_id = index_by_id(&lines);
    assert_eq!(by_id.len(), N, "every request answered exactly once");
    let shed = lines
        .iter()
        .filter(|l| l.contains("\"status\":\"overloaded\""))
        .count();
    let ok = lines
        .iter()
        .filter(|l| l.contains("\"status\":\"ok\""))
        .count();
    assert_eq!(shed + ok, N, "only ok/overloaded outcomes here");
    assert!(
        shed >= 5,
        "queue depth 2 with a stalled worker must shed most of {N}: shed {shed}"
    );
    assert!(ok >= 1, "the stalled worker still finishes what it holds");
    assert_eq!(summary.stats.responses_overloaded, shed as u64);
    assert_eq!(summary.stats.responses_ok, ok as u64);
    for line in &lines {
        if line.contains("overloaded") {
            assert!(
                line.contains("shed by admission control"),
                "explicit reason: {line}"
            );
        }
    }
}

#[test]
fn no_degraded_path_reports_a_proof() {
    // Three degradation flavours against DRF programs (the dangerous
    // case: their complete verdict IS drf_proven, so any laundering bug
    // would surface here):
    //  * budget truncation (max_states=1),
    //  * deadline blowout (1ms on an exponential state space),
    //  * double panic.
    let thread = "v := 1; r0 := v; v := r0; r1 := v; print r1;";
    let heavy = format!("volatile v; {}", [thread; 8].join(" || "));
    let input = format!(
        "{{\"id\":\"budget\",\"program\":\"{DRF}\",\"max_states\":1}}\n\
         {{\"id\":\"deadline\",\"program\":\"{heavy}\",\"timeout_ms\":1}}\n\
         {}",
        request("panic", DRF)
    );
    let config = ServeConfig {
        faults: FaultPlan::parse("panic@3:both").unwrap(),
        ..ServeConfig::default()
    };
    let by_id = index_by_id(&run_session(config, &input));
    assert_eq!(by_id.len(), 3);
    for (id, line) in &by_id {
        assert!(
            !line.contains("drf_proven"),
            "degraded request {id} must not claim a proof: {line}"
        );
    }
    assert!(
        by_id["budget"].contains("truncated:"),
        "{}",
        by_id["budget"]
    );
    assert!(
        by_id["deadline"].contains("truncated:"),
        "{}",
        by_id["deadline"]
    );
    assert!(
        by_id["panic"].contains("\"status\":\"error\""),
        "{}",
        by_id["panic"]
    );
}

#[test]
fn chaos_panics_on_every_request_still_answer_everything() {
    // panic@* (first attempt only): every request takes the
    // quarantine-and-retry path; every retry completes; all verdicts
    // correct.
    const N: usize = 8;
    let input: String = (0..N)
        .map(|i| request(&format!("c{i}"), if i % 2 == 0 { RACY } else { DRF }))
        .collect();
    let config = ServeConfig {
        faults: FaultPlan::parse("panic@*").unwrap(),
        defaults: Analysis::new(),
        ..ServeConfig::default()
    };
    let server = Server::new(config).expect("server construction");
    let out: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
    let summary = server.run(Cursor::new(input), &out);
    let bytes = out.lock().unwrap().clone();
    let lines: Vec<String> = String::from_utf8(bytes)
        .unwrap()
        .lines()
        .map(str::to_owned)
        .collect();
    let by_id = index_by_id(&lines);
    assert_eq!(by_id.len(), N);
    for i in 0..N {
        let line = &by_id[&format!("c{i}")];
        assert!(line.contains("\"retried\":true"), "{line}");
        let want = if i % 2 == 0 {
            "\"verdict\":\"racy\""
        } else {
            "\"verdict\":\"drf_proven\""
        };
        assert!(line.contains(want), "{line}");
    }
    assert_eq!(summary.stats.worker_panics, N as u64);
    assert_eq!(summary.stats.retries, N as u64);
}
