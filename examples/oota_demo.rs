//! The out-of-thin-air guarantee (Theorem 5), demonstrated on the §5
//! example and on random racy programs: no composition of the paper's
//! transformations can make a program read, write or output a constant
//! it never mentions.
//!
//! Run with `cargo run --example oota_demo`.

use transafety::checker::{no_thin_air, Analysis, OotaVerdict};
use transafety::litmus::{by_name, random_program, GeneratorConfig};
use transafety::traces::{Domain, Value};

fn main() {
    // The §5 candidate: r2:=y; x:=r2; print r2 || r1:=x; y:=r1.
    // The program is racy, so the DRF guarantee promises *nothing* —
    // yet 42 can still never appear.
    let program = by_name("oota").unwrap().parse().program;
    println!("program:\n{program}");

    let opts = Analysis::with_domain(Domain::from_values([Value::new(1), Value::new(42)]));
    let racy = !transafety::checker::is_data_race_free(&program, &opts);
    println!("racy: {racy} (the DRF guarantee is vacuous here)");

    let verdict = no_thin_air(&program, Value::new(42), 4, &opts);
    match &verdict {
        OotaVerdict::Safe { closure_size } => println!(
            "Theorem 5 verified: across {closure_size} transformed programs, \
             no trace originates 42 — no execution can read, write or print it."
        ),
        other => panic!("out-of-thin-air violation?! {other}"),
    }

    // Scale it out: random racy programs over constants {0, 1, 2} can
    // never conjure 7, however they are transformed.
    let config = GeneratorConfig::default();
    let opts7 = Analysis::with_domain(Domain::from_values([Value::new(2), Value::new(7)]));
    let mut checked = 0;
    for seed in 0..25 {
        let p = random_program(seed, &config);
        if p.mentions_constant(Value::new(7)) {
            continue; // the theorem's hypothesis requires absence
        }
        match no_thin_air(&p, Value::new(7), 2, &opts7) {
            OotaVerdict::Safe { .. } => checked += 1,
            OotaVerdict::Inconclusive => {}
            other => panic!("seed {seed}: {other}\n{p}"),
        }
    }
    println!("…and across {checked} random programs (depth-2 transformation closures). ✔");
}
