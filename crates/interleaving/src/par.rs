//! The parallel exploration substrate: a small work-stealing thread
//! pool and graph-shaped drivers built on it.
//!
//! Stateless model checkers scale by exploring independent scheduling
//! branches on separate cores; this module provides the three
//! primitives the explorers need, with **no external dependencies**
//! (the build environment is fully offline, so `rayon` cannot be
//! used — the pool is a ~100-line work-stealing scheduler over
//! `std::thread::scope`):
//!
//! * [`run_tasks`] — the scheduler: each worker owns a deque, pushes
//!   spawned work locally (LIFO) and steals from other workers (FIFO)
//!   when empty;
//! * [`build_state_graph`] — parallel deduplicated expansion of a
//!   state space into an explicit graph (states interned in a sharded
//!   concurrent table);
//! * [`behaviours_of`] / [`count_leaves`] — parallel bottom-up
//!   evaluation of a DAG-shaped state graph (Kahn-style: a node is
//!   evaluated once all of its successors are), used for the memoised
//!   behaviour and execution-count dynamic programs;
//! * [`parallel_reach`] — parallel reachability with early exit, used
//!   by the data-race searches.
//!
//! Every driver is *deterministic in its result*: behaviours are
//! canonical [`BTreeSet`](std::collections::BTreeSet)s assembled by
//! order-independent unions, counts are sums over a fixed graph, and
//! reachability verdicts are exhaustive — so the parallel entry points
//! return bit-identical values to their sequential references
//! regardless of scheduling.
//!
//! # Fault isolation and budgets
//!
//! Every task runs under [`std::panic::catch_unwind`]: a panicking work
//! item is quarantined (its panic recorded in the returned
//! [`PoolOutcome`]), its siblings are cancelled, and the driver entry
//! points surface an [`EngineFault`] instead of aborting the process —
//! callers degrade to the sequential reference engine. The graph and
//! search drivers also take a [`BudgetGuard`] and check it at every
//! state expansion, so wall-clock deadlines, state caps and external
//! cancellation stop the pool cooperatively.

use std::collections::VecDeque;
use std::hash::Hash;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use transafety_traces::Action;

use crate::budget::{BudgetGuard, EngineFault};
use crate::explore::Behaviours;
use crate::intern::{fx_hash, InternStats, StateInterner};
use crate::metrics::{Counter, ExploreMetrics, Phase};

/// The number of worker threads to use by default: the machine's
/// available parallelism (1 if it cannot be determined).
#[must_use]
pub fn available_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

// ---------------------------------------------------------------------
// Fault injection (test-only hook)
// ---------------------------------------------------------------------

/// When set, the next task processed by any pool panics (then the flag
/// clears, so exactly one task is poisoned per arming).
static INJECT_PANIC: AtomicBool = AtomicBool::new(false);

/// Arms the test-only fault hook: the next work item processed by any
/// pool in this process panics, exercising the quarantine-and-degrade
/// path. The `TRANSAFETY_INJECT_WORKER_PANIC` environment variable arms
/// the same hook once at first pool use (for end-to-end CLI tests).
#[doc(hidden)]
pub fn arm_worker_panic() {
    INJECT_PANIC.store(true, Ordering::Release);
}

/// Arms the hook from the environment, once per process.
fn arm_from_env() {
    static ARMED: OnceLock<()> = OnceLock::new();
    ARMED.get_or_init(|| {
        if std::env::var_os("TRANSAFETY_INJECT_WORKER_PANIC").is_some() {
            arm_worker_panic();
        }
    });
}

/// Panics if the injection hook is armed (consuming the arming).
fn maybe_inject_panic() {
    if INJECT_PANIC
        .compare_exchange(true, false, Ordering::AcqRel, Ordering::Relaxed)
        .is_ok()
    {
        panic!("injected worker panic (test hook)");
    }
}

// ---------------------------------------------------------------------
// Work-stealing scheduler
// ---------------------------------------------------------------------

/// The idle-worker gate: an eventcount. A worker that finds no work
/// snapshots the epoch, re-verifies that nothing is queued, and sleeps
/// only if the epoch is still unchanged; every producer bumps the epoch
/// before checking for sleepers, so (both sides being `SeqCst`) a
/// store-buffering miss — the producer seeing no idlers while the idler
/// sees a stale epoch — is impossible and no wakeup is ever lost.
/// Replaces the old 50µs spin-then-sleep poll: idle workers burn no CPU
/// and wake at notify latency instead of polling latency.
struct IdleGate {
    epoch: AtomicU64,
    idlers: AtomicUsize,
    mutex: Mutex<()>,
    cv: Condvar,
}

impl IdleGate {
    fn new() -> Self {
        IdleGate {
            epoch: AtomicU64::new(0),
            idlers: AtomicUsize::new(0),
            mutex: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// The epoch to pass to a later [`sleep`](IdleGate::sleep).
    fn snapshot(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Announces new work (or a state change sleepers must observe).
    /// The epoch bump is one atomic; the mutex and condvar are touched
    /// only when some worker is actually asleep.
    fn wake(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        if self.idlers.load(Ordering::SeqCst) > 0 {
            // Taking (and dropping) the mutex orders this notify after
            // any sleeper currently between its idler registration and
            // its condvar wait, which holds the mutex for that window.
            drop(self.mutex.lock().expect("idle gate poisoned"));
            self.cv.notify_all();
        }
    }

    /// Blocks until the epoch moves past `seen` (or a spurious wakeup;
    /// the worker loop re-checks for work after every return).
    fn sleep(&self, seen: u64) {
        let guard = self.mutex.lock().expect("idle gate poisoned");
        self.idlers.fetch_add(1, Ordering::SeqCst);
        if self.epoch.load(Ordering::SeqCst) == seen {
            let _woken = self.cv.wait(guard).expect("idle gate poisoned");
        }
        self.idlers.fetch_sub(1, Ordering::SeqCst);
    }
}

struct TaskQueue<T> {
    shards: Vec<Mutex<VecDeque<T>>>,
    /// Tasks queued or currently being processed; the pool is done when
    /// this reaches zero.
    pending: AtomicUsize,
    stop: AtomicBool,
    gate: IdleGate,
    /// Work items executed (reported in [`PoolOutcome::tasks`]).
    executed: AtomicU64,
    /// Tasks obtained by stealing (reported in [`PoolOutcome::steals`]).
    steals: AtomicU64,
    /// Idle-gate parks (reported in [`PoolOutcome::parks`]).
    parks: AtomicU64,
}

impl<T> TaskQueue<T> {
    /// Is any deque non-empty? A shard whose lock is contended counts
    /// as work (someone is pushing or popping right now), so a
    /// worker deciding whether to sleep errs on the side of staying
    /// awake.
    fn has_queued_work(&self) -> bool {
        self.shards.iter().any(|s| match s.try_lock() {
            Ok(q) => !q.is_empty(),
            Err(_) => true,
        })
    }
}

/// Handle given to task handlers for spawning follow-up work and for
/// cooperative early exit.
pub struct TaskContext<'q, T> {
    queue: &'q TaskQueue<T>,
    worker: usize,
}

impl<T> TaskContext<'_, T> {
    /// Spawns a follow-up task (onto this worker's own deque, so
    /// recently produced work is processed depth-first unless stolen).
    pub fn push(&self, task: T) {
        self.queue.pending.fetch_add(1, Ordering::AcqRel);
        self.queue.shards[self.worker]
            .lock()
            .expect("task deque poisoned")
            .push_back(task);
        self.queue.gate.wake();
    }

    /// Requests early termination of the whole pool (remaining tasks
    /// are dropped). Used by searches once a witness is found.
    pub fn stop(&self) {
        self.queue.stop.store(true, Ordering::Release);
        self.queue.gate.wake();
    }

    /// Has early termination been requested?
    #[must_use]
    pub fn stopped(&self) -> bool {
        self.queue.stop.load(Ordering::Acquire)
    }
}

/// What happened while a pool drained: how many work items panicked
/// (each quarantined by `catch_unwind`, cancelling the remaining work)
/// and the first panic's message.
#[derive(Debug, Default)]
pub struct PoolOutcome {
    /// Number of quarantined worker panics.
    pub panics: usize,
    /// The payload of the first panic, when it was a string.
    pub first_panic: Option<String>,
    /// Work items executed across all workers.
    pub tasks: u64,
    /// Tasks obtained by stealing from another worker's deque.
    pub steals: u64,
    /// Times a worker parked on the idle gate.
    pub parks: u64,
    /// Idle-gate wake announcements (every push, stop and final drain
    /// bumps the gate epoch once).
    pub wakes: u64,
}

impl PoolOutcome {
    /// Converts a faulted outcome into the error the drivers surface.
    fn fault(&self) -> Option<EngineFault> {
        (self.panics > 0).then(|| EngineFault {
            message: self
                .first_panic
                .clone()
                .unwrap_or_else(|| "worker panicked".to_string()),
        })
    }
}

/// Shared panic accounting for one pool run.
struct FaultLog {
    panics: AtomicUsize,
    first: Mutex<Option<String>>,
}

impl FaultLog {
    fn new() -> Self {
        FaultLog {
            panics: AtomicUsize::new(0),
            first: Mutex::new(None),
        }
    }

    fn record(&self, payload: &(dyn std::any::Any + Send)) {
        self.panics.fetch_add(1, Ordering::AcqRel);
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned());
        if let Some(m) = message {
            let mut slot = self.first.lock().unwrap_or_else(|e| e.into_inner());
            slot.get_or_insert(m);
        }
    }

    fn outcome(self) -> PoolOutcome {
        PoolOutcome {
            panics: self.panics.load(Ordering::Acquire),
            first_panic: self.first.into_inner().unwrap_or_else(|e| e.into_inner()),
            ..PoolOutcome::default()
        }
    }
}

/// Runs `seeds` and all transitively spawned tasks to completion on
/// `jobs` workers (clamped to at least 1). Tasks may spawn further
/// tasks through the [`TaskContext`]; idle workers steal queued tasks
/// from the back of their own deque first and from the front of other
/// workers' deques otherwise.
///
/// A panicking task does not abort the process: it is caught, counted
/// in the returned [`PoolOutcome`], and the pool drains early (the
/// panic cancels its sibling tasks) so callers can fall back to a
/// sequential reference computation.
pub fn run_tasks<T, F>(jobs: usize, seeds: Vec<T>, handler: F) -> PoolOutcome
where
    T: Send,
    F: Fn(T, &TaskContext<'_, T>) + Sync,
{
    arm_from_env();
    let jobs = jobs.max(1);
    let queue = TaskQueue {
        shards: (0..jobs).map(|_| Mutex::new(VecDeque::new())).collect(),
        pending: AtomicUsize::new(seeds.len()),
        stop: AtomicBool::new(false),
        gate: IdleGate::new(),
        executed: AtomicU64::new(0),
        steals: AtomicU64::new(0),
        parks: AtomicU64::new(0),
    };
    let faults = FaultLog::new();
    // Runs one task under panic quarantine; a caught panic cancels the
    // remaining work so the caller can degrade instead of computing a
    // silently incomplete result.
    let guarded = |task: T, ctx: &TaskContext<'_, T>| {
        queue.executed.fetch_add(1, Ordering::Relaxed);
        let result = catch_unwind(AssertUnwindSafe(|| {
            maybe_inject_panic();
            handler(task, ctx);
        }));
        if let Err(payload) = result {
            faults.record(payload.as_ref());
            ctx.stop();
        }
    };
    // Scatter the seeds round-robin so workers start with local work.
    for (i, seed) in seeds.into_iter().enumerate() {
        queue.shards[i % jobs]
            .lock()
            .expect("task deque poisoned")
            .push_back(seed);
    }
    if jobs == 1 {
        // Inline execution: no threads, same semantics.
        let ctx = TaskContext {
            queue: &queue,
            worker: 0,
        };
        while !ctx.stopped() {
            let next = queue.shards[0]
                .lock()
                .expect("task deque poisoned")
                .pop_back();
            match next {
                Some(task) => {
                    guarded(task, &ctx);
                    queue.pending.fetch_sub(1, Ordering::AcqRel);
                }
                None => break,
            }
        }
        return finish(faults, &queue);
    }
    std::thread::scope(|scope| {
        for worker in 0..jobs {
            let queue = &queue;
            let guarded = &guarded;
            scope.spawn(move || {
                let ctx = TaskContext { queue, worker };
                let mut spins = 0u32;
                loop {
                    if ctx.stopped() {
                        break;
                    }
                    // Own deque first (LIFO), then steal (FIFO).
                    let mut task = queue.shards[worker]
                        .lock()
                        .expect("task deque poisoned")
                        .pop_back();
                    if task.is_none() {
                        // Steal half of the first non-empty victim deque
                        // in one lock acquisition: batching amortises the
                        // lock traffic, and `try_lock` keeps contending
                        // stealers from serialising on a busy producer.
                        for off in 1..queue.shards.len() {
                            let victim = (worker + off) % queue.shards.len();
                            let Ok(mut v) = queue.shards[victim].try_lock() else {
                                continue;
                            };
                            let take = v.len().div_ceil(2);
                            if take == 0 {
                                continue;
                            }
                            let mut grabbed: VecDeque<T> = v.drain(..take).collect();
                            drop(v);
                            queue.steals.fetch_add(take as u64, Ordering::Relaxed);
                            task = grabbed.pop_front();
                            if !grabbed.is_empty() {
                                queue.shards[worker]
                                    .lock()
                                    .expect("task deque poisoned")
                                    .extend(grabbed);
                            }
                            break;
                        }
                    }
                    match task {
                        Some(task) => {
                            spins = 0;
                            guarded(task, &ctx);
                            if queue.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                                // Last in-flight task: wake sleepers so
                                // they observe the drain and exit.
                                queue.gate.wake();
                            }
                        }
                        None => {
                            if queue.pending.load(Ordering::Acquire) == 0 {
                                break;
                            }
                            spins += 1;
                            if spins <= 64 {
                                // Brief spin phase: work usually arrives
                                // within a few steal attempts.
                                std::thread::yield_now();
                                continue;
                            }
                            // Park on the gate until a push, a stop or
                            // the final drain. The snapshot-then-recheck
                            // order makes the sleep race-free: anything
                            // queued after the snapshot bumps the epoch
                            // and the sleep returns immediately.
                            let seen = queue.gate.snapshot();
                            if ctx.stopped()
                                || queue.pending.load(Ordering::Acquire) == 0
                                || queue.has_queued_work()
                            {
                                continue;
                            }
                            queue.parks.fetch_add(1, Ordering::Relaxed);
                            queue.gate.sleep(seen);
                        }
                    }
                }
            });
        }
    });
    finish(faults, &queue)
}

/// Folds the queue's scheduler tallies into the fault outcome.
fn finish<T>(faults: FaultLog, queue: &TaskQueue<T>) -> PoolOutcome {
    let mut out = faults.outcome();
    out.tasks = queue.executed.load(Ordering::Relaxed);
    out.steals = queue.steals.load(Ordering::Relaxed);
    out.parks = queue.parks.load(Ordering::Relaxed);
    out.wakes = queue.gate.epoch.load(Ordering::Relaxed);
    out
}

// ---------------------------------------------------------------------
// Sharded state interning
// ---------------------------------------------------------------------

const SHARD_BITS: u32 = 6;
const SHARDS: usize = 1 << SHARD_BITS; // 64

/// The shard of a pre-computed [`fx_hash`] value: the top `SHARD_BITS`
/// bits, disjoint from the low bits the open-addressing probe consumes.
/// Callers hash once and reuse the value for both shard selection and
/// the in-shard probe.
fn shard_of_hash(hash: u64) -> usize {
    (hash >> (64 - SHARD_BITS)) as usize
}

struct InternShard<K> {
    states: StateInterner<K>,
    edges: Vec<Vec<(Option<Action>, u64)>>, // packed successor ids, remapped later
}

struct Interner<K> {
    shards: Vec<Mutex<InternShard<K>>>,
}

fn pack(shard: usize, local: u32) -> u64 {
    ((shard as u64) << 32) | u64::from(local)
}

impl<K: Eq + Hash + Clone> Interner<K> {
    fn new() -> Self {
        Interner {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(InternShard {
                        states: StateInterner::new(),
                        edges: Vec::new(),
                    })
                })
                .collect(),
        }
    }

    /// Interns `key`, returning its packed id and whether it was new.
    /// The key is hashed once (outside the shard lock) and cloned only
    /// when it is genuinely new.
    fn intern(&self, key: &K) -> (u64, bool) {
        let hash = fx_hash(key);
        let s = shard_of_hash(hash);
        let mut shard = self.shards[s].lock().expect("intern shard poisoned");
        let (local, fresh) = shard.states.intern_hashed_ref(hash, key);
        if fresh {
            shard.edges.push(Vec::new());
        }
        (pack(s, local), fresh)
    }

    fn set_edges(&self, packed: u64, edges: Vec<(Option<Action>, u64)>) {
        let (s, local) = ((packed >> 32) as usize, (packed & 0xFFFF_FFFF) as usize);
        self.shards[s].lock().expect("intern shard poisoned").edges[local] = edges;
    }
}

/// An explicit, deduplicated state graph: node `i` has key `nodes[i]`
/// and deterministic, move-ordered labelled edges `edges[i]`.
pub struct StateGraph<K> {
    /// The interned state of each node.
    pub nodes: Vec<K>,
    /// Labelled successor edges per node, in the move order the
    /// expansion function produced them. A `None` label is an internal
    /// machine transition with no action (e.g. a store-buffer flush
    /// under a buffered memory model); the behaviour evaluation treats
    /// it exactly like a non-external action.
    pub edges: Vec<Vec<(Option<Action>, u32)>>,
    /// The node index of the initial state.
    pub root: u32,
    /// `true` if any expansion reported hitting a bound.
    pub truncated: bool,
}

/// One state expansion: the enabled moves (optional action label plus
/// successor state) and whether a bound was hit at this state.
pub struct Expansion<K> {
    /// Enabled moves in deterministic order (`None` labels are
    /// unlabelled internal transitions such as buffer flushes).
    pub moves: Vec<(Option<Action>, K)>,
    /// Did expanding this state hit an exploration bound?
    pub truncated: bool,
}

/// Builds the full reachable state graph from `root` using `jobs`
/// workers. `expand` must be pure: equal states must produce equal
/// move lists (the function is called exactly once per distinct state).
///
/// The guard is consulted before every expansion: once it trips, the
/// remaining frontier states become leaves and the graph is marked
/// truncated. A quarantined worker panic yields an [`EngineFault`]
/// instead of a graph — callers fall back to the sequential engine.
pub fn build_state_graph<K, F>(
    jobs: usize,
    root: K,
    guard: &BudgetGuard,
    expand: F,
) -> Result<StateGraph<K>, EngineFault>
where
    K: Eq + Hash + Clone + Send + Sync,
    F: Fn(&K) -> Expansion<K> + Sync,
{
    let metrics = guard.metrics();
    let _span = metrics.span(Phase::GraphBuild);
    let interner: Interner<K> = Interner::new();
    let truncated = AtomicBool::new(false);
    let (root_id, _) = interner.intern(&root);
    guard.note_state();
    let outcome = run_tasks(
        jobs,
        vec![(root_id, root)],
        |(id, state), ctx: &TaskContext<'_, (u64, K)>| {
            if guard.should_stop() {
                // The budget tripped: this state stays a leaf; the set
                // of behaviours below it is under-approximated, which
                // the truncation flag records.
                truncated.store(true, Ordering::Relaxed);
                interner.set_edges(id, Vec::new());
                return;
            }
            let expansion = expand(&state);
            if expansion.truncated {
                truncated.store(true, Ordering::Relaxed);
            }
            let mut edges = Vec::with_capacity(expansion.moves.len());
            for (action, succ) in expansion.moves {
                let (succ_id, new) = interner.intern(&succ);
                edges.push((action, succ_id));
                if new {
                    guard.note_state();
                    ctx.push((succ_id, succ));
                }
            }
            interner.set_edges(id, edges);
        },
    );
    metrics.record_pool(outcome.tasks, outcome.steals, outcome.parks, outcome.wakes);
    if let Some(fault) = outcome.fault() {
        return Err(fault);
    }
    // Compact packed (shard, local) ids into dense indices.
    let shards: Vec<InternShard<K>> = interner
        .shards
        .into_iter()
        .map(|m| m.into_inner().expect("intern shard poisoned"))
        .collect();
    if metrics.is_enabled() {
        let stats = shards.iter().fold(InternStats::default(), |acc, s| {
            acc.merged(s.states.probe_stats())
        });
        metrics.record_intern(stats);
        // Every interned key is a distinct graph node; every probe hit
        // was a move whose successor was already known.
        metrics.add(Counter::StatesInterned, stats.keys);
        metrics.add(Counter::StatesDeduped, stats.hits);
        metrics.event("graph_build_nodes", stats.keys);
    }
    let mut base = vec![0u32; SHARDS];
    let mut total: u32 = 0;
    for (s, shard) in shards.iter().enumerate() {
        base[s] = total;
        total = total
            .checked_add(u32::try_from(shard.states.len()).expect("shard size"))
            .expect("more than 2^32 explorer states");
    }
    let dense =
        |packed: u64| -> u32 { base[(packed >> 32) as usize] + (packed & 0xFFFF_FFFF) as u32 };
    let mut nodes = Vec::with_capacity(total as usize);
    let mut edges = Vec::with_capacity(total as usize);
    for shard in shards {
        nodes.extend(shard.states.into_keys());
        edges.extend(shard.edges.into_iter().map(|es| {
            es.into_iter()
                .map(|(a, p)| (a, dense(p)))
                .collect::<Vec<_>>()
        }));
    }
    Ok(StateGraph {
        nodes,
        edges,
        root: dense(root_id),
        truncated: truncated.load(Ordering::Relaxed),
    })
}

// ---------------------------------------------------------------------
// Parallel bottom-up DAG evaluation
// ---------------------------------------------------------------------

/// Evaluates a node of the behaviour dynamic program from its
/// successor sets: the union over enabled moves, with external actions
/// prepending their value (and the empty behaviour always present, for
/// prefix closure).
fn behaviour_step(edges: &[(Option<Action>, u32)], tails: &[Arc<Behaviours>]) -> Behaviours {
    let mut set = Behaviours::new();
    set.insert(Vec::new());
    for ((action, _), tail) in edges.iter().zip(tails) {
        if let Some(Action::External(v)) = action {
            for suffix in tail.iter() {
                let mut b = Vec::with_capacity(suffix.len() + 1);
                b.push(*v);
                b.extend_from_slice(suffix);
                set.insert(b);
            }
        } else {
            set.extend(tail.iter().cloned());
        }
    }
    set
}

/// Runs the Kahn-style bottom-up evaluation of `value` over the DAG on
/// `jobs` workers: a node is evaluated once every successor is done.
///
/// All pool-invariant violations that used to abort the process — a
/// node scheduled twice, an unevaluated successor, a cycle in the
/// input graph — now surface as an [`EngineFault`] (the first two via
/// the quarantined panic, the cycle via the unevaluated root), so
/// callers can degrade to the sequential reference engine.
fn evaluate_dag<K, V, F>(
    graph: &StateGraph<K>,
    jobs: usize,
    metrics: &ExploreMetrics,
    value: F,
) -> Result<V, EngineFault>
where
    K: Sync,
    V: Clone + Send + Sync,
    F: Fn(&[(Option<Action>, u32)], &[V]) -> V + Sync,
{
    let _span = metrics.span(Phase::PoolDrain);
    let n = graph.nodes.len();
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut ready: Vec<u32> = Vec::new();
    for (i, es) in graph.edges.iter().enumerate() {
        if es.is_empty() {
            ready.push(i as u32);
        }
        for &(_, j) in es {
            preds[j as usize].push(i as u32);
        }
    }
    let remaining: Vec<AtomicUsize> = graph
        .edges
        .iter()
        .map(|es| AtomicUsize::new(es.len()))
        .collect();
    let results: Vec<OnceLock<V>> = (0..n).map(|_| OnceLock::new()).collect();
    let outcome = run_tasks(jobs, ready, |i, ctx: &TaskContext<'_, u32>| {
        let es = &graph.edges[i as usize];
        let tails: Vec<V> = es
            .iter()
            .map(|&(_, j)| {
                results[j as usize]
                    .get()
                    .expect("successor evaluated first")
                    .clone()
            })
            .collect();
        let v = value(es, &tails);
        results[i as usize]
            .set(v)
            .unwrap_or_else(|_| panic!("node evaluated twice"));
        for &p in &preds[i as usize] {
            if remaining[p as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                ctx.push(p);
            }
        }
    });
    metrics.record_pool(outcome.tasks, outcome.steals, outcome.parks, outcome.wakes);
    if let Some(fault) = outcome.fault() {
        return Err(fault);
    }
    results[graph.root as usize]
        .get()
        .cloned()
        .ok_or_else(|| EngineFault {
            message: "root never evaluated (cyclic state graph or cancelled evaluation)"
                .to_string(),
        })
}

/// The behaviours of the state graph (the parallel form of the
/// memoised suffix-behaviour dynamic program). Bit-identical to the
/// sequential computation: sets are canonical and unions commute.
/// A quarantined worker panic surfaces as an [`EngineFault`].
pub fn behaviours_of<K: Sync>(
    graph: &StateGraph<K>,
    jobs: usize,
    metrics: &ExploreMetrics,
) -> Result<Behaviours, EngineFault> {
    evaluate_dag(graph, jobs, metrics, |edges, tails: &[Arc<Behaviours>]| {
        Arc::new(behaviour_step(edges, tails))
    })
    .map(|b| b.as_ref().clone())
}

/// The number of maximal paths (executions) of the state graph, by the
/// parallel form of the counting dynamic program. Saturates at
/// `u128::MAX` (see [`count_leaves_checked`]).
/// A quarantined worker panic surfaces as an [`EngineFault`].
pub fn count_leaves<K: Sync>(
    graph: &StateGraph<K>,
    jobs: usize,
    metrics: &ExploreMetrics,
) -> Result<u128, EngineFault> {
    count_leaves_checked(graph, jobs, metrics).map(|(count, _)| count)
}

/// [`count_leaves`] with overflow accounting: path counts grow as a
/// product of branching factors, so adversarial graphs overflow even
/// `u128`. Additions are `checked_add`; on overflow the count clamps to
/// `u128::MAX` and the returned flag is `true`, so a clamped value can
/// never be mistaken for an exact count.
pub fn count_leaves_checked<K: Sync>(
    graph: &StateGraph<K>,
    jobs: usize,
    metrics: &ExploreMetrics,
) -> Result<(u128, bool), EngineFault> {
    evaluate_dag(graph, jobs, metrics, |_edges, tails: &[(u128, bool)]| {
        if tails.is_empty() {
            (1, false)
        } else {
            tails
                .iter()
                .fold((0u128, false), |(acc, sat), &(tail, tail_sat)| {
                    match acc.checked_add(tail) {
                        Some(sum) => (sum, sat || tail_sat),
                        None => (u128::MAX, true),
                    }
                })
        }
    })
}

// ---------------------------------------------------------------------
// Parallel reachability search with early exit
// ---------------------------------------------------------------------

/// One search expansion: successor states plus whether the target was
/// hit while expanding this state.
pub struct SearchStep<K> {
    /// Successor search states.
    pub successors: Vec<K>,
    /// Was the search target found at this state?
    pub found: bool,
}

/// Explores the search space from `root` on `jobs` workers, returning
/// `true` as soon as any expansion reports `found` (the pool drains
/// early) and `false` only after exhausting the space. The verdict is
/// deterministic because the search is exhaustive in the negative case.
///
/// The guard is consulted before every expansion: once it trips, the
/// remaining frontier is dropped and a negative verdict means "not
/// found within budget" (the guard's trip reason says why). A
/// quarantined worker panic surfaces as an [`EngineFault`].
pub fn parallel_reach<K, F>(
    jobs: usize,
    root: K,
    guard: &BudgetGuard,
    expand: F,
) -> Result<bool, EngineFault>
where
    K: Eq + Hash + Clone + Send + Sync,
    F: Fn(&K) -> SearchStep<K> + Sync,
{
    let visited: Vec<Mutex<StateInterner<K>>> = (0..SHARDS)
        .map(|_| Mutex::new(StateInterner::new()))
        .collect();
    let found = AtomicBool::new(false);
    let root_hash = fx_hash(&root);
    visited[shard_of_hash(root_hash)]
        .lock()
        .expect("visited shard poisoned")
        .intern_hashed_ref(root_hash, &root);
    guard.note_state();
    let outcome = run_tasks(jobs, vec![root], |state, ctx: &TaskContext<'_, K>| {
        if found.load(Ordering::Acquire) {
            return;
        }
        if guard.should_stop() {
            ctx.stop();
            return;
        }
        let step = expand(&state);
        if step.found {
            found.store(true, Ordering::Release);
            ctx.stop();
            return;
        }
        for succ in step.successors {
            // Hash once; clone into the shard only when actually new.
            let hash = fx_hash(&succ);
            let (_, fresh) = visited[shard_of_hash(hash)]
                .lock()
                .expect("visited shard poisoned")
                .intern_hashed_ref(hash, &succ);
            if fresh {
                guard.note_state();
                ctx.push(succ);
            }
        }
    });
    record_shard_stats(guard.metrics(), &outcome, &visited);
    if let Some(fault) = outcome.fault() {
        return Err(fault);
    }
    Ok(found.load(Ordering::Acquire))
}

/// Folds a search driver's pool outcome and sharded visited-set stats
/// into the run's metrics (no-op on the disabled collector).
fn record_shard_stats<K: Eq + Hash>(
    metrics: &ExploreMetrics,
    outcome: &PoolOutcome,
    shards: &[Mutex<StateInterner<K>>],
) {
    if !metrics.is_enabled() {
        return;
    }
    metrics.record_pool(outcome.tasks, outcome.steals, outcome.parks, outcome.wakes);
    let stats = shards.iter().fold(InternStats::default(), |acc, s| {
        acc.merged(
            s.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .probe_stats(),
        )
    });
    metrics.record_intern(stats);
    metrics.add(Counter::StatesInterned, stats.keys);
    metrics.add(Counter::StatesDeduped, stats.hits);
}

/// Applies `f` to every item on `jobs` workers, returning the results
/// in input order (so the output is independent of scheduling).
///
/// A quarantined worker panic leaves its slot (and any slots the early
/// drain dropped) unmapped; those items are recomputed inline on the
/// calling thread — the per-item sequential degradation path.
pub fn parallel_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let results: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let indexed: Vec<usize> = (0..items.len()).collect();
    run_tasks(jobs, indexed, |i, _ctx: &TaskContext<'_, usize>| {
        let r = f(&items[i]);
        *results[i].lock().expect("result slot poisoned") = Some(r);
    });
    results
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .unwrap_or_else(|| f(&items[i]))
        })
        .collect()
}

/// Counts the distinct states reachable from `root` on `jobs` workers.
///
/// The guard is consulted before every expansion (a tripped guard
/// leaves the count partial; its trip reason records why). A
/// quarantined worker panic surfaces as an [`EngineFault`].
pub fn parallel_state_count<K, F>(
    jobs: usize,
    root: K,
    guard: &BudgetGuard,
    expand: F,
) -> Result<usize, EngineFault>
where
    K: Eq + Hash + Clone + Send + Sync,
    F: Fn(&K) -> Vec<K> + Sync,
{
    let visited: Vec<Mutex<StateInterner<K>>> = (0..SHARDS)
        .map(|_| Mutex::new(StateInterner::new()))
        .collect();
    let root_hash = fx_hash(&root);
    visited[shard_of_hash(root_hash)]
        .lock()
        .expect("visited shard poisoned")
        .intern_hashed_ref(root_hash, &root);
    guard.note_state();
    let outcome = run_tasks(jobs, vec![root], |state, ctx: &TaskContext<'_, K>| {
        if guard.should_stop() {
            ctx.stop();
            return;
        }
        for succ in expand(&state) {
            let hash = fx_hash(&succ);
            let (_, fresh) = visited[shard_of_hash(hash)]
                .lock()
                .expect("visited shard poisoned")
                .intern_hashed_ref(hash, &succ);
            if fresh {
                guard.note_state();
                ctx.push(succ);
            }
        }
    });
    record_shard_stats(guard.metrics(), &outcome, &visited);
    if let Some(fault) = outcome.fault() {
        return Err(fault);
    }
    Ok(visited
        .iter()
        .map(|s| s.lock().expect("visited shard poisoned").len())
        .sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        for jobs in [1, 2, 4, 8] {
            let items: Vec<u64> = (0..100).collect();
            let out = parallel_map(jobs, &items, |x| x * x);
            assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn run_tasks_processes_spawned_work() {
        for jobs in [1, 2, 4] {
            let count = AtomicUsize::new(0);
            // Seed 1 task that spawns a binary tree of depth 10.
            let outcome = run_tasks(jobs, vec![0u32], |depth, ctx: &TaskContext<'_, u32>| {
                count.fetch_add(1, Ordering::Relaxed);
                if depth < 10 {
                    ctx.push(depth + 1);
                    ctx.push(depth + 1);
                }
            });
            assert_eq!(count.load(Ordering::Relaxed), (1 << 11) - 1, "jobs={jobs}");
            assert_eq!(outcome.panics, 0);
        }
    }

    #[test]
    fn early_stop_terminates() {
        let count = AtomicUsize::new(0);
        run_tasks(4, vec![0u64], |n, ctx: &TaskContext<'_, u64>| {
            if count.fetch_add(1, Ordering::Relaxed) > 100 {
                ctx.stop();
                return;
            }
            ctx.push(n + 1);
            ctx.push(n + 2);
        });
        // the pool stopped rather than exploring the infinite space
        assert!(count.load(Ordering::Relaxed) < 100_000);
    }

    #[test]
    fn graph_build_and_count_on_grid() {
        // states (i, j) with i, j <= N, edges increment one coordinate;
        // leaves = 1, path count = C(2N, N).
        let n = 8u32;
        for jobs in [1, 4] {
            let g = build_state_graph(jobs, (0u32, 0u32), &BudgetGuard::unlimited(), |&(i, j)| {
                let mut moves = Vec::new();
                if i < n {
                    moves.push((
                        Some(Action::external(transafety_traces::Value::new(0))),
                        (i + 1, j),
                    ));
                }
                if j < n {
                    moves.push((
                        Some(Action::external(transafety_traces::Value::new(1))),
                        (i, j + 1),
                    ));
                }
                Expansion {
                    moves,
                    truncated: false,
                }
            })
            .expect("no faults");
            assert_eq!(g.nodes.len(), ((n + 1) * (n + 1)) as usize);
            assert!(!g.truncated);
            assert_eq!(
                count_leaves(&g, jobs, &ExploreMetrics::disabled()).expect("no faults"),
                12870
            ); // C(16, 8)
        }
    }

    #[test]
    fn count_leaves_saturates_instead_of_wrapping() {
        // A chain of 128 levels with 4 parallel edges per level:
        // 4^128 = 2^256 maximal paths, far past u128::MAX.
        let g = build_state_graph(2, 0u32, &BudgetGuard::unlimited(), |&s| Expansion {
            moves: if s < 128 {
                (0..4)
                    .map(|v| {
                        (
                            Some(Action::external(transafety_traces::Value::new(v))),
                            s + 1,
                        )
                    })
                    .collect()
            } else {
                Vec::new()
            },
            truncated: false,
        })
        .expect("no faults");
        for jobs in [1, 4] {
            let m = ExploreMetrics::disabled();
            let (count, saturated) = count_leaves_checked(&g, jobs, &m).expect("no faults");
            assert_eq!(count, u128::MAX, "jobs={jobs}");
            assert!(saturated, "jobs={jobs}: overflow must be flagged");
            assert_eq!(count_leaves(&g, jobs, &m).expect("no faults"), u128::MAX);
        }
    }

    #[test]
    fn idle_workers_sleep_and_wake_on_late_work() {
        // One producer task trickles out work slowly enough that the
        // other workers exhaust their spin phase and park on the gate;
        // every wakeup must be delivered (a lost one would hang the
        // pool, which the test harness would report as a timeout).
        let done = AtomicUsize::new(0);
        let outcome = run_tasks(4, vec![0u32], |n, ctx: &TaskContext<'_, u32>| {
            if n < 10 {
                std::thread::sleep(std::time::Duration::from_millis(2));
                ctx.push(n + 1);
                ctx.push(100 + n); // a leaf for a parked worker
            }
            done.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(outcome.panics, 0);
        assert_eq!(done.load(Ordering::Relaxed), 21);
    }

    #[test]
    fn parallel_reach_finds_and_exhausts() {
        let hit = |target: u32, jobs| {
            parallel_reach(jobs, 0u32, &BudgetGuard::unlimited(), |&s| SearchStep {
                successors: if s < 20 { vec![s + 1] } else { vec![] },
                found: s == target,
            })
            .expect("no faults")
        };
        for jobs in [1, 3] {
            assert!(hit(20, jobs));
            assert!(!hit(21, jobs));
        }
    }

    #[test]
    fn state_cap_truncates_graph_build() {
        use crate::budget::{Budget, CancelToken};
        let guard = BudgetGuard::new(&Budget::unlimited().max_states(10), CancelToken::new());
        // A long chain of 1000 states under a 10-state cap.
        let g = build_state_graph(2, 0u32, &guard, |&s| Expansion {
            moves: if s < 1000 {
                vec![(
                    Some(Action::external(transafety_traces::Value::new(0))),
                    s + 1,
                )]
            } else {
                vec![]
            },
            truncated: false,
        })
        .expect("no faults");
        assert!(g.truncated, "the cap must mark the graph truncated");
        assert!(g.nodes.len() < 1000, "exploration stopped early");
        assert!(guard.trip_reason().is_some());
    }

    #[test]
    fn cancellation_stops_parallel_reach() {
        use crate::budget::{Budget, CancelToken, TruncationReason};
        let token = CancelToken::new();
        let guard = BudgetGuard::new(&Budget::unlimited(), token.clone());
        token.cancel();
        let found = parallel_reach(4, 0u64, &guard, |&s| SearchStep {
            successors: vec![s + 1, s + 2], // infinite space
            found: s == u64::MAX,
        })
        .expect("no faults");
        assert!(!found);
        assert_eq!(guard.trip_reason(), Some(TruncationReason::Cancelled));
    }
}
