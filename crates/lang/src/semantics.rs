//! The labellised small-step semantics (Fig. 7–8) and traceset
//! extraction `[P]`.

use std::collections::BTreeMap;

use transafety_traces::{Action, Domain, Monitor, ThreadId, Trace, Traceset, Value};

use crate::ast::{Cond, Operand, Program, Reg, Stmt};

/// A thread-local configuration `(λ, s, C)` of Fig. 7: the monitor
/// nesting state, the register state, and the remaining code (kept as a
/// flattened continuation list).
///
/// # Example
///
/// ```
/// use transafety_lang::{Stmt, ThreadConfig, Reg};
/// use transafety_traces::{Domain, Value};
/// let cfg = ThreadConfig::new(vec![Stmt::Move {
///     dst: Reg::new(0),
///     src: Value::new(3).into(),
/// }]);
/// match cfg.step(&Domain::default()) {
///     transafety_lang::Step::Tau(next) => assert_eq!(next.reg(Reg::new(0)), Value::new(3)),
///     _ => panic!("a register move is a silent step"),
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ThreadConfig {
    monitors: BTreeMap<Monitor, u32>,
    regs: BTreeMap<Reg, Value>,
    code: Vec<Stmt>,
}

/// The result of one small step of a thread configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// The code is exhausted (`skip;`-equivalent terminal state).
    Done,
    /// A silent (`τ`) step.
    Tau(ThreadConfig),
    /// An action-emitting step; loads fan out over the read domain
    /// (Fig. 7's READ rule reads *any* value of the location's type).
    Emit(Vec<(Action, ThreadConfig)>),
}

impl ThreadConfig {
    /// The initial configuration of a thread body: no monitors held, all
    /// registers zero.
    #[must_use]
    pub fn new(code: Vec<Stmt>) -> Self {
        ThreadConfig {
            monitors: BTreeMap::new(),
            regs: BTreeMap::new(),
            code,
        }
    }

    /// The value of a register (zero if never assigned).
    #[must_use]
    pub fn reg(&self, r: Reg) -> Value {
        self.regs.get(&r).copied().unwrap_or(Value::ZERO)
    }

    /// The nesting level `λ(m)` of a monitor.
    #[must_use]
    pub fn monitor_nesting(&self, m: Monitor) -> u32 {
        self.monitors.get(&m).copied().unwrap_or(0)
    }

    /// The remaining code.
    #[must_use]
    pub fn code(&self) -> &[Stmt] {
        &self.code
    }

    /// Has the configuration terminated?
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.code.is_empty()
    }

    /// `Val(s, ri)` of Fig. 7.
    #[must_use]
    pub fn eval(&self, o: Operand) -> Value {
        match o {
            Operand::Reg(r) => self.reg(r),
            Operand::Const(v) => v,
        }
    }

    /// `Val(s, T)` of Fig. 7.
    #[must_use]
    pub fn eval_cond(&self, c: &Cond) -> bool {
        match c {
            Cond::Eq(a, b) => self.eval(*a) == self.eval(*b),
            Cond::Ne(a, b) => self.eval(*a) != self.eval(*b),
        }
    }

    fn with_rest(&self, extra_front: Vec<Stmt>) -> ThreadConfig {
        let mut code = extra_front;
        code.extend_from_slice(&self.code[1..]);
        ThreadConfig {
            monitors: self.monitors.clone(),
            regs: self.regs.clone(),
            code,
        }
    }

    /// Performs one small step (Fig. 7). Loads fan out over `domain`
    /// per the READ rule; every other statement is deterministic.
    #[must_use]
    pub fn step(&self, domain: &Domain) -> Step {
        let Some(first) = self.code.first() else {
            return Step::Done;
        };
        match first {
            Stmt::Skip => Step::Tau(self.with_rest(vec![])),
            Stmt::Move { dst, src } => {
                let mut next = self.with_rest(vec![]);
                next.regs.insert(*dst, self.eval(*src));
                Step::Tau(next)
            }
            Stmt::Store { loc, src } => {
                let v = self.reg(*src);
                Step::Emit(vec![(Action::write(*loc, v), self.with_rest(vec![]))])
            }
            Stmt::Load { dst, loc } => Step::Emit(
                domain
                    .iter()
                    .map(|v| {
                        let mut next = self.with_rest(vec![]);
                        next.regs.insert(*dst, v);
                        (Action::read(*loc, v), next)
                    })
                    .collect(),
            ),
            Stmt::Lock(m) => {
                let mut next = self.with_rest(vec![]);
                *next.monitors.entry(*m).or_insert(0) += 1;
                Step::Emit(vec![(Action::lock(*m), next)])
            }
            Stmt::Unlock(m) => {
                if self.monitor_nesting(*m) > 0 {
                    let mut next = self.with_rest(vec![]);
                    let entry = next.monitors.entry(*m).or_insert(0);
                    *entry -= 1;
                    if *entry == 0 {
                        next.monitors.remove(m);
                    }
                    Step::Emit(vec![(Action::unlock(*m), next)])
                } else {
                    // E-ULK: unlocking an unheld monitor is silent.
                    Step::Tau(self.with_rest(vec![]))
                }
            }
            Stmt::Print(r) => Step::Emit(vec![(
                Action::external(self.reg(*r)),
                self.with_rest(vec![]),
            )]),
            Stmt::Block(stmts) => Step::Tau(self.with_rest(stmts.clone())),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let taken = if self.eval_cond(cond) {
                    then_branch
                } else {
                    else_branch
                };
                Step::Tau(self.with_rest(vec![(**taken).clone()]))
            }
            Stmt::While { cond, body } => {
                if self.eval_cond(cond) {
                    Step::Tau(self.with_rest(vec![(**body).clone(), first.clone()]))
                } else {
                    Step::Tau(self.with_rest(vec![]))
                }
            }
        }
    }

    /// Follows silent steps until the next action-emitting statement,
    /// termination, or `max_tau` steps.
    ///
    /// Returns `None` if the τ-budget is exhausted (a silent divergence
    /// such as `while (r0 == r0) skip;`).
    #[must_use]
    pub fn tau_closure(&self, domain: &Domain, max_tau: usize) -> Option<(ThreadConfig, Step)> {
        let mut cfg = self.clone();
        for _ in 0..=max_tau {
            match cfg.step(domain) {
                Step::Tau(next) => cfg = next,
                s => return Some((cfg, s)),
            }
        }
        None
    }
}

/// Bounds for traceset extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtractOptions {
    /// Maximum number of actions per trace.
    pub max_actions: usize,
    /// Maximum silent steps between two actions (guards against silent
    /// divergence).
    pub max_tau: usize,
    /// Maximum number of maximal traces to extract in total. Loops whose
    /// exit value lies outside the read domain would otherwise explore
    /// `|domain|^max_actions` spin paths before hitting the per-trace
    /// bound.
    pub max_traces: usize,
}

impl Default for ExtractOptions {
    fn default() -> Self {
        ExtractOptions {
            max_actions: 16,
            max_tau: 4096,
            max_traces: 200_000,
        }
    }
}

/// The result of traceset extraction: the traceset and whether any trace
/// was cut short by the bounds.
#[derive(Debug, Clone)]
pub struct Extraction {
    /// The (prefix-closed) traceset `[P]` up to the bounds.
    pub traceset: Traceset,
    /// `true` if some branch hit `max_actions` or `max_tau` — the
    /// traceset is then a strict under-approximation of the unbounded
    /// `[P]`.
    pub truncated: bool,
}

/// Extracts the traceset `[P]` of §6: the prefix closure of the union
/// over threads of the traces `S(i)` followed by the actions thread `i`
/// may issue, with loads ranging over `domain`.
///
/// # Example
///
/// ```
/// use transafety_lang::{extract_traceset, ExtractOptions, Program, Reg, Stmt};
/// use transafety_traces::{Domain, Loc};
/// let x = Loc::normal(0);
/// let p = Program::new(vec![vec![
///     Stmt::Load { dst: Reg::new(0), loc: x },
///     Stmt::Print(Reg::new(0)),
/// ]]);
/// let e = extract_traceset(&p, &Domain::zero_to(1), &ExtractOptions::default());
/// assert!(!e.truncated);
/// assert_eq!(e.traceset.maximal_traces().count(), 2); // one per read value
/// ```
#[must_use]
pub fn extract_traceset(program: &Program, domain: &Domain, opts: &ExtractOptions) -> Extraction {
    let mut traceset = Traceset::new();
    let mut truncated = false;
    let mut budget = opts.max_traces;
    for (i, body) in program.threads().iter().enumerate() {
        let tid = ThreadId::new(i as u32);
        let mut trace = Trace::from_actions([Action::start(tid)]);
        let cfg = ThreadConfig::new(body.clone());
        extract_thread(
            &cfg,
            domain,
            opts,
            &mut trace,
            &mut traceset,
            &mut truncated,
            &mut budget,
        );
    }
    Extraction {
        traceset,
        truncated,
    }
}

#[allow(clippy::too_many_arguments)]
fn extract_thread(
    cfg: &ThreadConfig,
    domain: &Domain,
    opts: &ExtractOptions,
    trace: &mut Trace,
    out: &mut Traceset,
    truncated: &mut bool,
    budget: &mut usize,
) {
    if *budget == 0 {
        *truncated = true;
        return;
    }
    // `trace` includes the start action, so the action budget is
    // max_actions + 1 elements.
    if trace.len() > opts.max_actions {
        *truncated = true;
        *budget -= 1;
        out.insert(trace.clone())
            .expect("extracted traces are well formed");
        return;
    }
    match cfg.tau_closure(domain, opts.max_tau) {
        None => {
            *truncated = true;
            *budget -= 1;
            out.insert(trace.clone())
                .expect("extracted traces are well formed");
        }
        Some((_, Step::Done)) => {
            *budget -= 1;
            out.insert(trace.clone())
                .expect("extracted traces are well formed");
        }
        Some((_, Step::Emit(successors))) => {
            for (a, next) in successors {
                trace.push(a);
                extract_thread(&next, domain, opts, trace, out, truncated, budget);
                trace.pop();
            }
        }
        Some((_, Step::Tau(_))) => unreachable!("tau_closure never returns Tau"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transafety_traces::Loc;

    fn x() -> Loc {
        Loc::normal(0)
    }
    fn y() -> Loc {
        Loc::normal(1)
    }
    fn r(i: u32) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn store_emits_register_value() {
        let cfg = ThreadConfig::new(vec![
            Stmt::Move {
                dst: r(0),
                src: Value::new(2).into(),
            },
            Stmt::Store {
                loc: x(),
                src: r(0),
            },
        ]);
        let (_, step) = cfg.tau_closure(&Domain::default(), 10).unwrap();
        match step {
            Step::Emit(s) => {
                assert_eq!(s.len(), 1);
                assert_eq!(s[0].0, Action::write(x(), Value::new(2)));
            }
            _ => panic!("expected an emitting step"),
        }
    }

    #[test]
    fn load_fans_out_over_domain() {
        let cfg = ThreadConfig::new(vec![Stmt::Load {
            dst: r(0),
            loc: x(),
        }]);
        match cfg.step(&Domain::zero_to(2)) {
            Step::Emit(s) => {
                assert_eq!(s.len(), 3);
                for (a, next) in &s {
                    assert_eq!(next.reg(r(0)), a.value().unwrap());
                }
            }
            _ => panic!("expected an emitting step"),
        }
    }

    #[test]
    fn unlock_of_unheld_monitor_is_silent() {
        let m = Monitor::new(0);
        let cfg = ThreadConfig::new(vec![Stmt::Unlock(m), Stmt::Print(r(0))]);
        // E-ULK: the unlock disappears; the next action is the print.
        let (_, step) = cfg.tau_closure(&Domain::default(), 10).unwrap();
        match step {
            Step::Emit(s) => assert_eq!(s[0].0, Action::external(Value::ZERO)),
            _ => panic!("expected the print"),
        }
    }

    #[test]
    fn lock_unlock_tracks_nesting() {
        let m = Monitor::new(0);
        let cfg = ThreadConfig::new(vec![Stmt::Lock(m), Stmt::Lock(m), Stmt::Unlock(m)]);
        let Step::Emit(s1) = cfg.step(&Domain::default()) else {
            panic!()
        };
        let c1 = &s1[0].1;
        assert_eq!(c1.monitor_nesting(m), 1);
        let Step::Emit(s2) = c1.step(&Domain::default()) else {
            panic!()
        };
        let c2 = &s2[0].1;
        assert_eq!(c2.monitor_nesting(m), 2);
        let Step::Emit(s3) = c2.step(&Domain::default()) else {
            panic!()
        };
        assert_eq!(s3[0].0, Action::unlock(m));
        assert_eq!(s3[0].1.monitor_nesting(m), 1);
    }

    #[test]
    fn conditionals_and_while_are_silent() {
        // if (r0 == 0) print r0 else skip — then-branch taken
        let cfg = ThreadConfig::new(vec![Stmt::If {
            cond: Cond::Eq(r(0).into(), Value::ZERO.into()),
            then_branch: Box::new(Stmt::Print(r(0))),
            else_branch: Box::new(Stmt::Skip),
        }]);
        let (_, step) = cfg.tau_closure(&Domain::default(), 10).unwrap();
        assert!(matches!(step, Step::Emit(_)));
        // while with false condition terminates silently
        let cfg2 = ThreadConfig::new(vec![Stmt::While {
            cond: Cond::Ne(r(0).into(), Value::ZERO.into()),
            body: Box::new(Stmt::Skip),
        }]);
        let (_, step2) = cfg2.tau_closure(&Domain::default(), 10).unwrap();
        assert!(matches!(step2, Step::Done));
    }

    #[test]
    fn silent_divergence_is_detected() {
        let cfg = ThreadConfig::new(vec![Stmt::While {
            cond: Cond::Eq(r(0).into(), r(0).into()),
            body: Box::new(Stmt::Skip),
        }]);
        assert!(cfg.tau_closure(&Domain::default(), 100).is_none());
    }

    #[test]
    fn extraction_of_fig2_left_program() {
        // T0: r2:=x; y:=r2 — T1: r1:=y; x:=1; print r1
        let d = Domain::zero_to(1);
        let p = Program::new(vec![
            vec![
                Stmt::Load {
                    dst: r(2),
                    loc: x(),
                },
                Stmt::Store {
                    loc: y(),
                    src: r(2),
                },
            ],
            vec![
                Stmt::Load {
                    dst: r(1),
                    loc: y(),
                },
                Stmt::Move {
                    dst: r(0),
                    src: Value::new(1).into(),
                },
                Stmt::Store {
                    loc: x(),
                    src: r(0),
                },
                Stmt::Print(r(1)),
            ],
        ]);
        let e = extract_traceset(&p, &d, &ExtractOptions::default());
        assert!(!e.truncated);
        // thread 0: 2 maximal traces (one per read value); thread 1: 2.
        assert_eq!(e.traceset.maximal_traces().count(), 4);
        let expected = Trace::from_actions([
            Action::start(ThreadId::new(1)),
            Action::read(y(), Value::new(1)),
            Action::write(x(), Value::new(1)),
            Action::external(Value::new(1)),
        ]);
        assert!(e.traceset.contains(&expected));
    }

    #[test]
    fn extraction_reports_truncation() {
        // unbounded printing loop
        let p = Program::new(vec![vec![Stmt::While {
            cond: Cond::Eq(r(0).into(), r(0).into()),
            body: Box::new(Stmt::Print(r(0))),
        }]]);
        let e = extract_traceset(
            &p,
            &Domain::zero_to(0),
            &ExtractOptions {
                max_actions: 5,
                max_tau: 100,
                ..ExtractOptions::default()
            },
        );
        assert!(e.truncated);
        assert!(e.traceset.contains(&Trace::from_actions([
            Action::start(ThreadId::new(0)),
            Action::external(Value::ZERO),
            Action::external(Value::ZERO),
        ])));
    }

    #[test]
    fn blocks_flatten() {
        let p = Program::new(vec![vec![Stmt::Block(vec![
            Stmt::Block(vec![Stmt::Print(r(0))]),
            Stmt::Print(r(0)),
        ])]]);
        let e = extract_traceset(&p, &Domain::zero_to(0), &ExtractOptions::default());
        assert_eq!(e.traceset.maximal_traces().next().unwrap().len(), 3);
    }
}

#[cfg(test)]
mod fig7_rules {
    //! One test per rule of the Fig. 7 small-step semantics.

    use super::*;
    use crate::ast::{Cond, Operand, Stmt};
    use transafety_traces::Loc;

    fn d() -> Domain {
        Domain::zero_to(2)
    }
    fn r(i: u32) -> Reg {
        Reg::new(i)
    }
    fn x() -> Loc {
        Loc::normal(0)
    }

    #[test]
    fn regs_rule_is_silent_and_updates_state() {
        let cfg = ThreadConfig::new(vec![Stmt::Move {
            dst: r(0),
            src: Operand::Const(Value::new(2)),
        }]);
        match cfg.step(&d()) {
            Step::Tau(next) => {
                assert_eq!(next.reg(r(0)), Value::new(2));
                assert!(next.is_done());
            }
            other => panic!("REGS must be a τ step, got {other:?}"),
        }
    }

    #[test]
    fn write_rule_emits_register_value() {
        let mut cfg = ThreadConfig::new(vec![
            Stmt::Move {
                dst: r(1),
                src: Operand::Const(Value::new(2)),
            },
            Stmt::Store {
                loc: x(),
                src: r(1),
            },
        ]);
        if let Step::Tau(next) = cfg.step(&d()) {
            cfg = next;
        }
        match cfg.step(&d()) {
            Step::Emit(s) => assert_eq!(s[0].0, Action::write(x(), Value::new(2))),
            other => panic!("WRITE must emit, got {other:?}"),
        }
    }

    #[test]
    fn read_rule_offers_every_domain_value() {
        let cfg = ThreadConfig::new(vec![Stmt::Load {
            dst: r(0),
            loc: x(),
        }]);
        let Step::Emit(s) = cfg.step(&d()) else {
            panic!("READ must emit")
        };
        let values: Vec<Value> = s.iter().filter_map(|(a, _)| a.value()).collect();
        assert_eq!(values, d().values().to_vec(), "v ∈ t(x), all of them");
    }

    #[test]
    fn lock_rule_increments_nesting() {
        let m = Monitor::new(1);
        let cfg = ThreadConfig::new(vec![Stmt::Lock(m)]);
        let Step::Emit(s) = cfg.step(&d()) else {
            panic!()
        };
        assert_eq!(s[0].0, Action::lock(m));
        assert_eq!(s[0].1.monitor_nesting(m), 1);
    }

    #[test]
    fn ulk_rule_requires_positive_nesting() {
        let m = Monitor::new(1);
        let mut cfg = ThreadConfig::new(vec![Stmt::Lock(m), Stmt::Unlock(m)]);
        let Step::Emit(s) = cfg.step(&d()) else {
            panic!()
        };
        cfg = s.into_iter().next().unwrap().1;
        let Step::Emit(s) = cfg.step(&d()) else {
            panic!("ULK emits when λ(m) > 0")
        };
        assert_eq!(s[0].0, Action::unlock(m));
        assert_eq!(s[0].1.monitor_nesting(m), 0);
    }

    #[test]
    fn e_ulk_rule_is_silent_when_unheld() {
        let m = Monitor::new(1);
        let cfg = ThreadConfig::new(vec![Stmt::Unlock(m)]);
        assert!(
            matches!(cfg.step(&d()), Step::Tau(_)),
            "E-ULK: λ(m) = 0 ⇒ τ"
        );
    }

    #[test]
    fn ext_rule_emits_register_value() {
        let cfg = ThreadConfig::new(vec![Stmt::Print(r(7))]);
        let Step::Emit(s) = cfg.step(&d()) else {
            panic!()
        };
        assert_eq!(
            s[0].0,
            Action::external(Value::ZERO),
            "unset registers read 0"
        );
    }

    #[test]
    fn cond_rules_select_branch_silently() {
        for (cond, expect_then) in [
            (
                Cond::Eq(Operand::Const(Value::new(1)), Operand::Const(Value::new(1))),
                true,
            ),
            (
                Cond::Eq(Operand::Const(Value::new(1)), Operand::Const(Value::new(2))),
                false,
            ),
            (
                Cond::Ne(Operand::Const(Value::new(1)), Operand::Const(Value::new(2))),
                true,
            ),
        ] {
            let cfg = ThreadConfig::new(vec![Stmt::If {
                cond,
                then_branch: Box::new(Stmt::Print(r(0))),
                else_branch: Box::new(Stmt::Skip),
            }]);
            let Step::Tau(next) = cfg.step(&d()) else {
                panic!("COND is τ")
            };
            let took_then = matches!(next.code().first(), Some(Stmt::Print(_)));
            assert_eq!(took_then, expect_then, "{:?}", next.code());
        }
    }

    #[test]
    fn loop_rules_unfold_and_exit() {
        // LOOP-T: body then the loop again
        let t_loop = Stmt::While {
            cond: Cond::Eq(Operand::Const(Value::ZERO), Operand::Const(Value::ZERO)),
            body: Box::new(Stmt::Print(r(0))),
        };
        let cfg = ThreadConfig::new(vec![t_loop.clone()]);
        let Step::Tau(next) = cfg.step(&d()) else {
            panic!("LOOP is τ")
        };
        assert_eq!(next.code().len(), 2);
        assert!(matches!(next.code()[0], Stmt::Print(_)));
        assert!(matches!(next.code()[1], Stmt::While { .. }));
        // LOOP-F: the loop vanishes
        let f_loop = Stmt::While {
            cond: Cond::Ne(Operand::Const(Value::ZERO), Operand::Const(Value::ZERO)),
            body: Box::new(Stmt::Print(r(0))),
        };
        let cfg2 = ThreadConfig::new(vec![f_loop]);
        let Step::Tau(next2) = cfg2.step(&d()) else {
            panic!()
        };
        assert!(next2.is_done());
    }

    #[test]
    fn block_rule_flattens_silently() {
        let cfg = ThreadConfig::new(vec![Stmt::Block(vec![Stmt::Skip, Stmt::Print(r(0))])]);
        let Step::Tau(next) = cfg.step(&d()) else {
            panic!("BLOCK is τ")
        };
        assert_eq!(next.code().len(), 2);
    }

    #[test]
    fn par_rule_prefixes_every_thread_with_its_start_action() {
        let p = Program::new(vec![vec![Stmt::Skip], vec![Stmt::Print(r(0))]]);
        let e = extract_traceset(&p, &d(), &ExtractOptions::default());
        for (i, _) in p.threads().iter().enumerate() {
            assert!(e
                .traceset
                .contains_actions(&[Action::start(ThreadId::new(i as u32))]));
        }
        assert_eq!(e.traceset.threads().len(), 2);
    }
}
