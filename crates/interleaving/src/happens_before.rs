//! The happens-before partial order of an interleaving.

use std::fmt;

use crate::Interleaving;

/// The happens-before partial order `≤hb` of an interleaving (§3,
/// "Orders on Actions"): the transitive closure of *program order*
/// (same-thread sequencing, reflexive) and *synchronises-with* (a release
/// followed by a matching acquire).
///
/// Because happens-before of an `n`-event interleaving is a subset of the
/// total index order, it is represented as an `n × n` boolean matrix and
/// is reflexive by construction.
///
/// # Example
///
/// ```
/// use transafety_traces::{Action, Loc, Monitor, ThreadId, Value};
/// use transafety_interleaving::{Event, Interleaving};
/// let m = Monitor::new(0);
/// let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
/// let i = Interleaving::from_events([
///     Event::new(t0, Action::start(t0)),
///     Event::new(t0, Action::unlock(m)),   // release …
///     Event::new(t1, Action::start(t1)),
///     Event::new(t1, Action::lock(m)),     // … synchronises-with this acquire
/// ]);
/// let hb = i.happens_before();
/// assert!(hb.ordered(0, 1)); // program order
/// assert!(hb.ordered(1, 3)); // synchronises-with
/// assert!(hb.ordered(0, 3)); // transitivity
/// assert!(!hb.ordered(2, 1)); // no order across unsynchronised threads
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HappensBefore {
    n: usize,
    ordered: Vec<bool>,
}

impl HappensBefore {
    /// Computes the happens-before order of an interleaving.
    #[must_use]
    pub fn of(i: &Interleaving) -> Self {
        let n = i.len();
        let mut m = vec![false; n * n];
        let set = |m: &mut Vec<bool>, a: usize, b: usize| m[a * n + b] = true;
        for a in 0..n {
            set(&mut m, a, a);
            for b in a + 1..n {
                // program order
                if i[a].thread() == i[b].thread() {
                    set(&mut m, a, b);
                }
                // synchronises-with
                if i[a].action().is_release_acquire_pair(&i[b].action()) {
                    set(&mut m, a, b);
                }
            }
        }
        // transitive closure (Floyd–Warshall on booleans)
        for k in 0..n {
            for a in 0..n {
                if m[a * n + k] {
                    for b in 0..n {
                        if m[k * n + b] {
                            m[a * n + b] = true;
                        }
                    }
                }
            }
        }
        HappensBefore { n, ordered: m }
    }

    /// The number of events of the underlying interleaving.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the order is over the empty interleaving.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Does `a ≤hb b` hold? Reflexive; out-of-range indices are unordered.
    #[must_use]
    pub fn ordered(&self, a: usize, b: usize) -> bool {
        a < self.n && b < self.n && self.ordered[a * self.n + b]
    }

    /// Are `a` and `b` unrelated (neither `a ≤hb b` nor `b ≤hb a`)?
    #[must_use]
    pub fn unordered(&self, a: usize, b: usize) -> bool {
        a < self.n && b < self.n && !self.ordered(a, b) && !self.ordered(b, a)
    }
}

impl fmt::Display for HappensBefore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "happens-before over {} events:", self.n)?;
        for a in 0..self.n {
            for b in 0..self.n {
                write!(f, "{}", if self.ordered(a, b) { '1' } else { '.' })?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Event;
    use transafety_traces::{Action, Loc, ThreadId, Value};

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn program_order_is_included() {
        let i = Interleaving::from_events([
            Event::new(t(0), Action::start(t(0))),
            Event::new(t(1), Action::start(t(1))),
            Event::new(t(0), Action::external(Value::ZERO)),
        ]);
        let hb = HappensBefore::of(&i);
        assert!(hb.ordered(0, 2));
        assert!(!hb.ordered(1, 2));
        assert!(hb.unordered(1, 2));
        assert!(hb.ordered(1, 1), "reflexive");
    }

    #[test]
    fn volatile_write_read_synchronises() {
        let v = Loc::volatile(0);
        let i = Interleaving::from_events([
            Event::new(t(0), Action::start(t(0))),
            Event::new(t(0), Action::write(v, Value::new(1))),
            Event::new(t(1), Action::start(t(1))),
            Event::new(t(1), Action::read(v, Value::new(1))),
            Event::new(t(1), Action::external(Value::ZERO)),
        ]);
        let hb = HappensBefore::of(&i);
        assert!(hb.ordered(1, 3));
        assert!(
            hb.ordered(0, 4),
            "start hb-precedes the other thread's print"
        );
    }

    #[test]
    fn normal_accesses_do_not_synchronise() {
        let x = Loc::normal(0);
        let i = Interleaving::from_events([
            Event::new(t(0), Action::start(t(0))),
            Event::new(t(0), Action::write(x, Value::new(1))),
            Event::new(t(1), Action::start(t(1))),
            Event::new(t(1), Action::read(x, Value::new(1))),
        ]);
        let hb = HappensBefore::of(&i);
        assert!(hb.unordered(1, 3));
    }

    #[test]
    fn out_of_range_is_unordered_not_panic() {
        let hb = HappensBefore::of(&Interleaving::new());
        assert!(hb.is_empty());
        assert!(!hb.ordered(0, 0));
    }
}
