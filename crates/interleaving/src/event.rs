//! Interleaving events: thread-identifier/action pairs.

use std::fmt;

use transafety_traces::{Action, ThreadId};

/// One element of an interleaving: the pair `p = (θ, a)` of §3, where
/// `T(p) = θ` is the executing thread and `A(p) = a` the action.
///
/// # Example
///
/// ```
/// use transafety_traces::{Action, ThreadId, Value};
/// use transafety_interleaving::Event;
/// let e = Event::new(ThreadId::new(1), Action::external(Value::new(0)));
/// assert_eq!(e.thread(), ThreadId::new(1));
/// assert_eq!(e.to_string(), "(1, X(0))");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Event {
    thread: ThreadId,
    action: Action,
}

impl Event {
    /// Creates the pair `(thread, action)`.
    #[must_use]
    pub const fn new(thread: ThreadId, action: Action) -> Self {
        Event { thread, action }
    }

    /// The projection `T(p)`: the executing thread.
    #[must_use]
    pub const fn thread(&self) -> ThreadId {
        self.thread
    }

    /// The projection `A(p)`: the action.
    #[must_use]
    pub const fn action(&self) -> Action {
        self.action
    }
}

impl From<(ThreadId, Action)> for Event {
    fn from((thread, action): (ThreadId, Action)) -> Self {
        Event { thread, action }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.thread.index(), self.action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transafety_traces::{Loc, Value};

    #[test]
    fn projections() {
        let e = Event::new(ThreadId::new(2), Action::read(Loc::normal(0), Value::ZERO));
        assert_eq!(e.thread().index(), 2);
        assert!(e.action().is_read());
    }

    #[test]
    fn from_tuple() {
        let e: Event = (ThreadId::new(0), Action::start(ThreadId::new(0))).into();
        assert!(e.action().is_start());
    }

    #[test]
    fn display_matches_paper() {
        let e = Event::new(
            ThreadId::new(0),
            Action::write(Loc::normal(1), Value::new(1)),
        );
        assert_eq!(e.to_string(), "(0, W[l1=1])");
    }
}
