//! The litmus corpus of the reproduction: every program appearing in the
//! paper (the §1 request/response example, Figures 1–5, the §4 worked
//! example, the §5 out-of-thin-air candidate), the classic shared-memory
//! litmus tests (SB, MP, LB, IRIW, CoRR, Dekker), and a deterministic
//! random-program generator used as a workload source by the theorem
//! experiments and property tests.
//!
//! # Example
//!
//! ```
//! use transafety_litmus::by_name;
//! use transafety_lang::{ExploreOptions, ProgramExplorer};
//!
//! let fig3a = by_name("fig3-a").unwrap().parse();
//! assert!(ProgramExplorer::new(&fig3a.program)
//!     .is_data_race_free(&ExploreOptions::default()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corpus;
mod generator;
mod rng;

pub use corpus::{by_name, corpus, parse_pair, Litmus};
pub use generator::{random_program, GeneratorConfig};
pub use rng::Rng;
