//! Traces: finite sequences of memory actions of a single thread.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Index;

use crate::{Action, Loc, Monitor, ThreadId, TraceError, Value};

/// A trace: a finite sequence of [`Action`]s performed by one thread
/// (§3 of the paper).
///
/// `Trace` provides the sequence notation of §3 as methods:
/// concatenation ([`concat`](Trace::concat)), prefix tests
/// ([`is_prefix_of`](Trace::is_prefix_of)), the filter
/// `[a ∈ t. P(a)]` ([`filtered`](Trace::filtered)), the sublist
/// `t|S` ([`restrict`](Trace::restrict)) and `ldom(t)`
/// ([`indices`](Trace::indices)).
///
/// The §3 well-formedness conditions on traceset members are exposed as
/// [`validate`](Trace::validate): non-empty traces must begin with a start
/// action (and contain no other starts) and no prefix may unlock a monitor
/// more often than it locked it.
///
/// # Example
///
/// ```
/// use transafety_traces::{Action, Loc, ThreadId, Trace, Value};
/// let y = Loc::normal(1);
/// let t = Trace::from_actions([
///     Action::start(ThreadId::new(1)),
///     Action::read(y, Value::new(1)),
///     Action::external(Value::new(1)),
/// ]);
/// assert!(t.validate().is_ok());
/// assert_eq!(t.behaviour(), vec![Value::new(1)]);
/// assert_eq!(t.to_string(), "[S(1), R[l1=1], X(1)]");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Trace {
    actions: Vec<Action>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace {
            actions: Vec::new(),
        }
    }

    /// Creates a trace from a sequence of actions.
    #[must_use]
    pub fn from_actions<I: IntoIterator<Item = Action>>(actions: I) -> Self {
        Trace {
            actions: actions.into_iter().collect(),
        }
    }

    /// The actions of the trace as a slice.
    #[must_use]
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// The length `|t|` of the trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Returns `true` for the empty trace.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Returns the action at `i`, if in range.
    #[must_use]
    pub fn get(&self, i: usize) -> Option<&Action> {
        self.actions.get(i)
    }

    /// Iterates over the actions.
    pub fn iter(&self) -> std::slice::Iter<'_, Action> {
        self.actions.iter()
    }

    /// The list `ldom(t) = [0, ..., |t|-1]` of indices, in increasing order.
    #[must_use]
    pub fn indices(&self) -> Vec<usize> {
        (0..self.len()).collect()
    }

    /// Appends an action to the end of the trace.
    pub fn push(&mut self, a: Action) {
        self.actions.push(a);
    }

    /// Removes and returns the last action, if any.
    pub fn pop(&mut self) -> Option<Action> {
        self.actions.pop()
    }

    /// Concatenation `t + t'`.
    #[must_use]
    pub fn concat(&self, other: &Trace) -> Trace {
        let mut actions = self.actions.clone();
        actions.extend_from_slice(&other.actions);
        Trace { actions }
    }

    /// The prefix of length `n` (the whole trace if `n >= |t|`).
    #[must_use]
    pub fn prefix(&self, n: usize) -> Trace {
        Trace {
            actions: self.actions[..n.min(self.len())].to_vec(),
        }
    }

    /// Prefix order `t ⊑ t'`: `self` is a prefix of `other`.
    #[must_use]
    pub fn is_prefix_of(&self, other: &Trace) -> bool {
        other.actions.len() >= self.actions.len()
            && other.actions[..self.actions.len()] == self.actions[..]
    }

    /// Strict prefix `t ⊏ t'`.
    #[must_use]
    pub fn is_strict_prefix_of(&self, other: &Trace) -> bool {
        self.len() < other.len() && self.is_prefix_of(other)
    }

    /// The filter `[a ∈ t. P(a)]`: the sub-trace of actions satisfying `p`.
    #[must_use]
    pub fn filtered<P: FnMut(&Action) -> bool>(&self, mut p: P) -> Trace {
        Trace {
            actions: self.actions.iter().filter(|a| p(a)).copied().collect(),
        }
    }

    /// The map-filter `[f(a) | a ∈ t. P(a)]` of §3.
    #[must_use]
    pub fn map_filtered<P, F, T>(&self, mut p: P, f: F) -> Vec<T>
    where
        P: FnMut(&Action) -> bool,
        F: FnMut(&Action) -> T,
    {
        self.actions.iter().filter(|a| p(a)).map(f).collect()
    }

    /// The sublist `t|S`: the actions at the indices in `s`, in increasing
    /// index order. Indices outside `dom(t)` are ignored.
    #[must_use]
    pub fn restrict<I: IntoIterator<Item = usize>>(&self, s: I) -> Trace {
        let mut idx: Vec<usize> = s.into_iter().filter(|&i| i < self.len()).collect();
        idx.sort_unstable();
        idx.dedup();
        Trace {
            actions: idx.into_iter().map(|i| self.actions[i]).collect(),
        }
    }

    /// Checks the §3 well-formedness conditions for traceset membership.
    ///
    /// # Errors
    ///
    /// * [`TraceError::NotProperlyStarted`] if the trace is non-empty and
    ///   does not begin with a start action;
    /// * [`TraceError::StartNotFirst`] if a start action appears at a
    ///   later position;
    /// * [`TraceError::NotWellLocked`] if some prefix unlocks a monitor
    ///   more often than it locks it.
    pub fn validate(&self) -> Result<(), TraceError> {
        if let Some(first) = self.actions.first() {
            if !first.is_start() {
                return Err(TraceError::NotProperlyStarted);
            }
        }
        let mut depth: BTreeMap<Monitor, i64> = BTreeMap::new();
        for (i, a) in self.actions.iter().enumerate() {
            match a {
                Action::Start(_) if i > 0 => return Err(TraceError::StartNotFirst { index: i }),
                Action::Lock(m) => *depth.entry(*m).or_insert(0) += 1,
                Action::Unlock(m) => {
                    let d = depth.entry(*m).or_insert(0);
                    *d -= 1;
                    if *d < 0 {
                        return Err(TraceError::NotWellLocked {
                            monitor: *m,
                            index: i,
                        });
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// The thread this trace belongs to, read off its start action.
    #[must_use]
    pub fn thread(&self) -> Option<ThreadId> {
        match self.actions.first() {
            Some(Action::Start(t)) => Some(*t),
            _ => None,
        }
    }

    /// The *behaviour* of the trace: the values of its external actions, in
    /// order (§1/§5 observe behaviours as sequences of external actions).
    #[must_use]
    pub fn behaviour(&self) -> Vec<Value> {
        self.map_filtered(Action::is_external, |a| {
            a.value().expect("external carries value")
        })
    }

    /// Returns `true` if there is a release–acquire pair strictly between
    /// indices `lo` and `hi`: indices `r`, `a` with `lo < r < a < hi`,
    /// `t_r` a release and `t_a` an acquire (Definition 1 of the paper).
    #[must_use]
    pub fn has_release_acquire_pair_between(&self, lo: usize, hi: usize) -> bool {
        let hi = hi.min(self.len());
        let Some(first_release) = (lo + 1..hi).find(|&r| self.actions[r].is_release()) else {
            return false;
        };
        (first_release + 1..hi).any(|a| self.actions[a].is_acquire())
    }

    /// Returns `true` if any action strictly between `lo` and `hi` is a
    /// write to `l`.
    #[must_use]
    pub fn has_write_to_between(&self, l: Loc, lo: usize, hi: usize) -> bool {
        let hi = hi.min(self.len());
        (lo + 1..hi).any(|i| self.actions[i].is_write() && self.actions[i].loc() == Some(l))
    }

    /// Returns `true` if any action strictly between `lo` and `hi` is a
    /// memory access to `l`.
    #[must_use]
    pub fn has_access_to_between(&self, l: Loc, lo: usize, hi: usize) -> bool {
        let hi = hi.min(self.len());
        (lo + 1..hi).any(|i| self.actions[i].is_access_to(l))
    }

    /// Is this trace an *origin* for value `v`? (§5, out-of-thin-air.)
    ///
    /// A trace `t` is an origin for `v` if some `t_i` is a write of `v` or
    /// an external action with value `v` and no earlier `t_j` is a read of
    /// `v`.
    #[must_use]
    pub fn is_origin_for(&self, v: Value) -> bool {
        for a in &self.actions {
            match a {
                Action::Read { value, .. } if *value == v => return false,
                Action::Write { value, .. } | Action::External(value) if *value == v => {
                    return true
                }
                _ => {}
            }
        }
        false
    }
}

impl Index<usize> for Trace {
    type Output = Action;

    fn index(&self, i: usize) -> &Action {
        &self.actions[i]
    }
}

impl FromIterator<Action> for Trace {
    fn from_iter<I: IntoIterator<Item = Action>>(iter: I) -> Self {
        Trace::from_actions(iter)
    }
}

impl Extend<Action> for Trace {
    fn extend<I: IntoIterator<Item = Action>>(&mut self, iter: I) {
        self.actions.extend(iter);
    }
}

impl From<Vec<Action>> for Trace {
    fn from(actions: Vec<Action>) -> Self {
        Trace { actions }
    }
}

impl From<Trace> for Vec<Action> {
    fn from(t: Trace) -> Self {
        t.actions
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Action;
    type IntoIter = std::slice::Iter<'a, Action>;

    fn into_iter(self) -> Self::IntoIter {
        self.actions.iter()
    }
}

impl IntoIterator for Trace {
    type Item = Action;
    type IntoIter = std::vec::IntoIter<Action>;

    fn into_iter(self) -> Self::IntoIter {
        self.actions.into_iter()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, a) in self.actions.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Loc, Monitor, ThreadId};

    fn tid(i: u32) -> ThreadId {
        ThreadId::new(i)
    }
    fn x() -> Loc {
        Loc::normal(0)
    }
    fn y() -> Loc {
        Loc::normal(1)
    }
    fn val(n: u32) -> Value {
        Value::new(n)
    }

    fn sample() -> Trace {
        Trace::from_actions([
            Action::start(tid(1)),
            Action::read(y(), val(1)),
            Action::external(val(1)),
            Action::read(x(), val(0)),
            Action::external(val(0)),
        ])
    }

    #[test]
    fn prefix_relations() {
        let t = sample();
        let p = t.prefix(2);
        assert!(p.is_prefix_of(&t));
        assert!(p.is_strict_prefix_of(&t));
        assert!(t.is_prefix_of(&t));
        assert!(!t.is_strict_prefix_of(&t));
        assert!(!t.is_prefix_of(&p));
        assert!(Trace::new().is_prefix_of(&t));
    }

    #[test]
    fn restrict_matches_paper_example() {
        // [a,b,c,d]|{1,3} = [b,d]
        let a = Action::start(tid(0));
        let b = Action::read(x(), val(0));
        let c = Action::write(y(), val(1));
        let d = Action::external(val(2));
        let t = Trace::from_actions([a, b, c, d]);
        assert_eq!(t.restrict([1, 3]), Trace::from_actions([b, d]));
        // out-of-range and duplicate indices are ignored
        assert_eq!(t.restrict([3, 1, 3, 99]), Trace::from_actions([b, d]));
    }

    #[test]
    fn filters_and_behaviour() {
        let t = sample();
        assert_eq!(t.filtered(Action::is_external).len(), 2);
        assert_eq!(t.behaviour(), vec![val(1), val(0)]);
        let locs = t.map_filtered(Action::is_read, |a| a.loc().unwrap());
        assert_eq!(locs, vec![y(), x()]);
    }

    #[test]
    fn validate_accepts_well_formed() {
        assert!(sample().validate().is_ok());
        assert!(Trace::new().validate().is_ok());
        let m = Monitor::new(0);
        let t = Trace::from_actions([
            Action::start(tid(0)),
            Action::lock(m),
            Action::lock(m),
            Action::unlock(m),
            Action::unlock(m),
        ]);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn validate_rejects_unstarted() {
        let t = Trace::from_actions([Action::read(x(), val(0))]);
        assert_eq!(t.validate(), Err(TraceError::NotProperlyStarted));
    }

    #[test]
    fn validate_rejects_mid_trace_start() {
        let t = Trace::from_actions([Action::start(tid(0)), Action::start(tid(1))]);
        assert_eq!(t.validate(), Err(TraceError::StartNotFirst { index: 1 }));
    }

    #[test]
    fn validate_rejects_unbalanced_unlock() {
        let m = Monitor::new(2);
        let t = Trace::from_actions([
            Action::start(tid(0)),
            Action::lock(m),
            Action::unlock(m),
            Action::unlock(m),
        ]);
        assert_eq!(
            t.validate(),
            Err(TraceError::NotWellLocked {
                monitor: m,
                index: 3
            })
        );
    }

    #[test]
    fn release_acquire_pair_between_strict_bounds() {
        let m = Monitor::new(0);
        let t = Trace::from_actions([
            Action::start(tid(0)),
            Action::write(x(), val(1)),
            Action::unlock(m),
            Action::lock(m),
            Action::read(x(), val(1)),
            Action::read(x(), val(1)),
        ]);
        // r=2 (release), a=3 (acquire) with 1 < 2 < 3 < 5
        assert!(t.has_release_acquire_pair_between(1, 5));
        assert!(t.has_release_acquire_pair_between(1, 4));
        // no pair strictly inside (2, 4): only the acquire at 3
        assert!(!t.has_release_acquire_pair_between(2, 4));
        // a release with no later acquire inside the window is not a pair
        assert!(!t.has_release_acquire_pair_between(1, 3));
    }

    #[test]
    fn acquire_before_release_is_not_a_pair() {
        let m = Monitor::new(0);
        let t = Trace::from_actions([
            Action::start(tid(0)),
            Action::lock(m),
            Action::unlock(m),
            Action::read(x(), val(0)),
        ]);
        // between 0 and 3: L at 1 (acquire), U at 2 (release): release must
        // come first for a pair, so there is none.
        assert!(!t.has_release_acquire_pair_between(0, 3));
    }

    #[test]
    fn intervening_write_and_access_scans() {
        let t = Trace::from_actions([
            Action::start(tid(0)),
            Action::read(x(), val(0)),
            Action::write(x(), val(1)),
            Action::read(x(), val(1)),
        ]);
        assert!(t.has_write_to_between(x(), 1, 3));
        assert!(!t.has_write_to_between(y(), 1, 3));
        assert!(t.has_access_to_between(x(), 1, 3));
        assert!(!t.has_access_to_between(x(), 2, 3), "strictly between");
    }

    #[test]
    fn origin_detection() {
        // write of 42 with no preceding read of 42: origin
        let t = Trace::from_actions([Action::start(tid(0)), Action::write(x(), val(42))]);
        assert!(t.is_origin_for(val(42)));
        // read of 42 first: not an origin
        let t2 = Trace::from_actions([
            Action::start(tid(0)),
            Action::read(y(), val(42)),
            Action::write(x(), val(42)),
        ]);
        assert!(!t2.is_origin_for(val(42)));
        // external of 42 counts as producing it
        let t3 = Trace::from_actions([Action::start(tid(0)), Action::external(val(42))]);
        assert!(t3.is_origin_for(val(42)));
        assert!(!t3.is_origin_for(val(7)));
    }

    #[test]
    fn display_matches_paper() {
        let t = Trace::from_actions([Action::start(tid(1)), Action::read(y(), val(1))]);
        assert_eq!(t.to_string(), "[S(1), R[l1=1]]");
        assert_eq!(Trace::new().to_string(), "[]");
    }

    #[test]
    fn concat_and_extend() {
        let a = Trace::from_actions([Action::start(tid(0))]);
        let b = Trace::from_actions([Action::external(val(1))]);
        let mut c = a.concat(&b);
        assert_eq!(c.len(), 2);
        c.extend([Action::external(val(2))]);
        assert_eq!(c.behaviour(), vec![val(1), val(2)]);
    }

    #[test]
    fn thread_projection() {
        assert_eq!(sample().thread(), Some(tid(1)));
        assert_eq!(Trace::new().thread(), None);
    }
}
